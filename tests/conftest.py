"""Shared fixtures and hypothesis profiles."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import MinimStrategy
from repro.topology.builder import build_digraph
from repro.topology.digraph import AdHocDigraph
from repro.topology.node import NodeConfig

# Hypothesis: property tests run whole simulations per example, so cap
# example counts modestly and disable deadlines (REPRO_HYPOTHESIS_EXAMPLES
# scales up for a deeper run).
_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "25"))
settings.register_profile(
    "repro",
    max_examples=_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def make_random_graph(
    seed: int,
    n: int = 20,
    *,
    min_range: float = 20.5,
    max_range: float = 30.5,
) -> AdHocDigraph:
    """A random paper-style digraph (positions on the 100x100 square)."""
    rng = np.random.default_rng(seed)
    return build_digraph(sample_configs(n, rng, min_range=min_range, max_range=max_range))


def make_colored_network(seed: int, n: int = 20, **kwargs) -> AdHocNetwork:
    """A network built by sequential Minim joins (valid assignment)."""
    rng = np.random.default_rng(seed)
    net = AdHocNetwork(MinimStrategy(), validate=True)
    for cfg in sample_configs(n, rng, **kwargs):
        net.join(cfg)
    return net


@pytest.fixture
def small_network() -> AdHocNetwork:
    """A 15-node Minim-joined network with a valid assignment."""
    return make_colored_network(seed=42, n=15)


@pytest.fixture
def line_graph() -> AdHocDigraph:
    """Five nodes on a line, ranges covering only adjacent nodes."""
    return build_digraph(
        NodeConfig(i, 10.0 * i, 0.0, tx_range=12.0) for i in range(1, 6)
    )
