"""Tests for the experiment runners (small instances)."""

import pytest

from repro.analysis.series import ExperimentSeries
from repro.errors import ConfigurationError
from repro.sim.experiments import (
    make_strategy,
    run_join_experiment,
    run_movement_disp_experiment,
    run_movement_rounds_experiment,
    run_power_experiment,
    run_range_sweep_experiment,
)
from repro.sim.runner import chunk_evenly, parallel_map, resolve_runs


class TestMakeStrategy:
    @pytest.mark.parametrize("name", ["Minim", "CP", "BBB", "GreedySeq", "Minim/w1"])
    def test_known(self, name):
        assert make_strategy(name) is not None

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_strategy("nope")


class TestRunnerHelpers:
    def test_parallel_map_serial(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_parallel_map_processes(self):
        assert parallel_map(_double, [1, 2, 3], processes=2) == [2, 4, 6]

    def test_resolve_runs(self):
        assert resolve_runs(7, 5, "9") == 7
        assert resolve_runs(None, 5, "9") == 9
        assert resolve_runs(None, 5, None) == 5
        with pytest.raises(ValueError):
            resolve_runs(0, 5, None)

    def test_chunk_evenly(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert chunk_evenly([], 3) == [[], [], []]
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)


def _double(x):
    return x * 2


class TestJoinExperiment:
    def test_structure_and_monotonicity(self):
        series = run_join_experiment(n_values=(10, 20), runs=2, seed=5)
        assert isinstance(series, ExperimentSeries)
        assert series.x_values == [10.0, 20.0]
        assert set(series.metrics) == {"max_color", "recodings", "messages"}
        assert set(series.strategies()) == {"Minim", "CP", "BBB"}
        # more joins, more recodings for everyone
        for s in series.strategies():
            rec = series.series("recodings", s)
            assert rec[1] > rec[0]

    def test_recodings_at_least_n(self):
        series = run_join_experiment(n_values=(15,), runs=2, seed=6)
        for s in ("Minim", "CP"):
            assert series.series("recodings", s)[0] >= 15

    def test_deterministic_given_seed(self):
        a = run_join_experiment(n_values=(12,), runs=2, seed=7)
        b = run_join_experiment(n_values=(12,), runs=2, seed=7)
        assert a.metrics == b.metrics

    def test_processes_do_not_change_results(self):
        a = run_join_experiment(n_values=(12,), runs=3, seed=8)
        b = run_join_experiment(n_values=(12,), runs=3, seed=8, processes=3)
        assert a.metrics == b.metrics

    def test_stderr_populated(self):
        series = run_join_experiment(n_values=(10,), runs=3, seed=9)
        assert set(series.stderr) == set(series.metrics)


class TestRangeSweep:
    def test_colors_grow_with_density(self):
        series = run_range_sweep_experiment((10.0, 40.0), n=25, runs=2, seed=10)
        for s in series.strategies():
            colors = series.series("max_color", s)
            assert colors[1] > colors[0]

    def test_too_small_avg_range_rejected(self):
        with pytest.raises(ConfigurationError):
            run_range_sweep_experiment((2.0,), n=5, runs=1, seed=0)


class TestPowerExperiment:
    def test_raisefactor_one_is_noop(self):
        series = run_power_experiment((1.0,), n=20, runs=2, seed=11)
        for s in ("Minim", "CP"):
            assert series.series("delta_recodings", s)[0] == 0.0
            assert series.series("delta_max_color", s)[0] == 0.0

    def test_minim_recodes_less_than_cp(self):
        series = run_power_experiment((3.0,), n=30, runs=3, seed=12)
        assert (
            series.value_at("delta_recodings", "Minim", 3.0)
            <= series.value_at("delta_recodings", "CP", 3.0)
        )


class TestMovementExperiments:
    def test_disp_zero_no_recodings_minim(self):
        series = run_movement_disp_experiment((0.0,), n=15, runs=2, seed=13)
        assert series.value_at("delta_recodings", "Minim", 0.0) == 0.0

    def test_rounds_cumulative(self):
        series = run_movement_rounds_experiment(3, n=12, runs=2, seed=14)
        assert series.x_values == [1.0, 2.0, 3.0]
        for s in series.strategies():
            rec = series.series("delta_recodings", s)
            assert rec == sorted(rec)  # cumulative -> non-decreasing

    def test_strategy_subset(self):
        series = run_movement_rounds_experiment(
            2, n=10, runs=1, seed=15, strategies=("Minim", "CP")
        )
        assert set(series.strategies()) == {"Minim", "CP"}


class TestSeriesRendering:
    def test_table_and_markdown(self):
        series = run_join_experiment(n_values=(8,), runs=1, seed=16)
        txt = series.table("max_color")
        assert "Minim" in txt and "fig10-join" in txt
        md = series.to_markdown("recodings")
        assert md.startswith("| N |")
        assert "|---|" in md
        assert series.render_all().count("[fig10-join]") == 3
