"""The adaptive run-count control plane: targets, controller, sweep loop."""

from __future__ import annotations

import json
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.control import (
    PrecisionTarget,
    RunController,
    resolve_precision,
    z_score,
)
from repro.sim.registry import get_scenario
from repro.sim.results import JsonDirBackend, SqliteBackend
from repro.sim.sweep import build_sweep, plan_additional_tasks, plan_tasks, run_sweep


def noisy_spec():
    """A small, noisy smoke sweep (variance large relative to means)."""
    return replace(
        get_scenario("paper-join"),
        n=10,
        strategies=("Minim",),
        sweep_values=(6.0, 8.0, 10.0),
    )


def paired_spec():
    return replace(
        get_scenario("fig11-power"),
        n=10,
        strategies=("Minim",),
        sweep_values=(2.0, 4.0),
    )


SMOKE_TARGET = PrecisionTarget(rel=0.5, abs_tol=2.0, min_runs=2, max_runs=12)


class TestZScore:
    def test_standard_quantiles(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_score(0.99) == pytest.approx(2.575829, abs=1e-5)
        assert z_score(0.6827) == pytest.approx(1.0, abs=1e-3)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_confidence_bounds(self, bad):
        with pytest.raises(ConfigurationError, match="confidence"):
            z_score(bad)


class TestPrecisionTarget:
    def test_needs_at_least_one_criterion(self):
        with pytest.raises(ConfigurationError, match="criterion"):
            PrecisionTarget(rel=None, abs_tol=None)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"rel": -0.1}, "rel"),
            ({"abs_tol": 0.0}, "abs_tol"),
            ({"confidence": 1.5}, "confidence"),
            ({"min_runs": 0}, "min_runs"),
            ({"min_runs": 10, "max_runs": 5}, "max_runs"),
            ({"growth": 1.0}, "growth"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            PrecisionTarget(**kwargs)

    def test_abs_only_target_is_valid(self):
        target = PrecisionTarget(rel=None, abs_tol=1.0)
        assert target.rel is None and target.abs_tol == 1.0


class TestRunController:
    def test_single_run_is_never_converged(self):
        # the satellite guard: n=1 has no variance estimate, so it must
        # read as "needs more runs", not "converged at stderr 0"
        ctrl = RunController(PrecisionTarget(rel=0.5, abs_tol=100.0))
        assert not ctrl.converged(np.zeros((1, 1, 3)))

    def test_zero_variance_converges_at_min_runs(self):
        ctrl = RunController(PrecisionTarget(rel=0.05))
        assert ctrl.converged(np.full((2, 1, 3), 7.0))

    def test_noisy_cells_block_convergence(self):
        ctrl = RunController(PrecisionTarget(rel=0.05, confidence=0.95))
        block = np.zeros((4, 1, 3))
        block[:, 0, 0] = [1.0, 9.0, 2.0, 8.0]  # huge CI vs mean 5
        block[:, 0, 1:] = 5.0
        assert not ctrl.converged(block)

    def test_abs_floor_rescues_near_zero_means(self):
        ctrl = RunController(PrecisionTarget(rel=0.05, abs_tol=10.0))
        block = np.zeros((3, 1, 3))
        block[:, 0, 0] = [-0.1, 0.1, 0.0]  # mean ~0: rel alone never converges
        assert ctrl.converged(block)

    def test_plan_grows_unconverged_points_geometrically(self):
        # predict=False keeps the pre-prediction schedule: batch factor
        # growth, converged points untouched
        ctrl = RunController(PrecisionTarget(rel=0.01, max_runs=32, growth=2.0, predict=False))
        noisy = np.array([[1.0], [100.0]]).reshape(2, 1, 1)
        flat = np.full((2, 1, 1), 5.0)
        want = ctrl.plan([noisy, flat], [2, 2])
        assert want == {0: 4}  # converged point untouched, other doubled

    def test_plan_jumps_to_the_variance_prediction(self):
        ctrl = RunController(PrecisionTarget(rel=None, abs_tol=0.5, max_runs=64))
        block = np.array([[1.0], [3.0]]).reshape(2, 1, 1)  # sd=sqrt(2), mean 2
        predicted = math.ceil((z_score(0.95) * math.sqrt(2.0) / 0.5) ** 2)
        assert ctrl.required_runs(block) == predicted
        assert ctrl.plan([block], [2]) == {0: predicted}  # straight jump, one pass

    def test_prediction_never_undershoots_the_geometric_floor(self):
        # a barely-unconverged point predicts ~n runs; growth still
        # guarantees progress
        ctrl = RunController(PrecisionTarget(rel=None, abs_tol=1.0, max_runs=64, growth=2.0))
        block = np.array([[4.4], [5.6]]).reshape(2, 1, 1)  # half-width just over 1.0
        assert ctrl.required_runs(block) <= 4
        assert ctrl.plan([block], [2]) == {0: 4}  # floored at ceil(2 * growth)

    def test_prediction_handles_zero_spread_and_zero_tolerance(self):
        ctrl = RunController(PrecisionTarget(rel=0.05, max_runs=32))
        assert ctrl.required_runs(np.full((3, 1, 1), 7.0)) == 1  # no variance
        # zero mean under a rel-only target can never converge: predict the cap
        dead = np.array([[-1.0], [1.0]]).reshape(2, 1, 1)
        assert ctrl.required_runs(dead) == 32

    def test_constant_zero_cell_does_not_burn_the_budget(self):
        # regression: a metric identically 0.0 across runs (sd=0, tol=0
        # under a rel-only target) is converged (half-width 0 <= 0) and
        # must not drag the prediction to max_runs
        ctrl = RunController(PrecisionTarget(rel=0.2, max_runs=32))
        block = np.array([[0.0, 7.5], [0.0, 12.5], [0.0, 10.0]]).reshape(3, 1, 2)
        noisy_only = np.array([[7.5], [12.5], [10.0]]).reshape(3, 1, 1)
        assert ctrl.required_runs(block) == ctrl.required_runs(noisy_only)
        assert ctrl.plan([block], [3]) == ctrl.plan([noisy_only], [3])
        assert ctrl.plan([block], [3])[0] < 32

    def test_plan_respects_the_hard_cap(self):
        ctrl = RunController(PrecisionTarget(rel=0.0001, max_runs=6, growth=2.0))
        noisy = np.array([[1.0], [100.0], [3.0], [80.0], [2.0]]).reshape(5, 1, 1)
        want = ctrl.plan([noisy], [5])
        assert want == {0: 6}
        assert ctrl.plan([noisy], [6]) == {}  # at the cap: left alone

    def test_plan_paired_raises_whole_rows(self):
        ctrl = RunController(PrecisionTarget(rel=0.0001, max_runs=16))
        noisy = np.array([[1.0], [100.0]]).reshape(2, 1, 1)
        flat = np.full((2, 1, 1), 5.0)
        want = ctrl.plan([noisy, flat], [2, 2], paired=True)
        # the noisy point's prediction hits the cap; pairing raises the
        # converged point with it
        assert want == {0: 16, 1: 16}

    def test_plan_block_count_mismatch_rejected(self):
        ctrl = RunController()
        with pytest.raises(ConfigurationError, match="sample block"):
            ctrl.plan([np.zeros((2, 1, 3))], [2, 2])

    def test_resolve_precision_forms(self):
        assert resolve_precision(None) is None
        ctrl = RunController()
        assert resolve_precision(ctrl) is ctrl
        assert resolve_precision(PrecisionTarget(rel=0.1)).target.rel == 0.1
        assert resolve_precision(0.2).target.rel == 0.2
        with pytest.raises(ConfigurationError, match="not a precision target"):
            resolve_precision("tight")
        with pytest.raises(ConfigurationError, match="not a precision target"):
            resolve_precision(True)


class TestSeedPrefixStability:
    def test_extending_runs_preserves_existing_seeds(self):
        # the invariant incremental planning is built on: run r's seed
        # never depends on how many runs were planned
        for spec in (noisy_spec(), paired_spec()):
            small = build_sweep(spec, runs=2, seed=9)
            large = build_sweep(spec, runs=7, seed=9)
            for i in range(len(small.points)):
                for r in range(2):
                    a, b = small.seeds[i][r], large.seeds[i][r]
                    assert (a.entropy, a.spawn_key) == (b.entropy, b.spawn_key)

    def test_plan_additional_tasks_emits_only_new_runs(self):
        sweep = build_sweep(noisy_spec(), runs=2, seed=9)
        extra = plan_additional_tasks(sweep, [2, 2, 2], {0: 4, 2: 3})
        indices = sorted(ix for g in extra for ix in g.indices)
        assert indices == [(0, 2), (0, 3), (2, 2)]
        base_keys = {k for g in plan_tasks(sweep) for k in g.keys}
        assert base_keys.isdisjoint(k for g in extra for k in g.keys)

    def test_plan_additional_tasks_keeps_warm_rows_whole(self):
        sweep = build_sweep(paired_spec(), runs=1, seed=5)
        extra = plan_additional_tasks(sweep, [1, 1], {0: 3, 1: 3})
        assert len(extra) == 2  # one warm row group per new run
        assert all(g.warm and len(g.indices) == 2 for g in extra)
        assert sorted(g.indices[0][1] for g in extra) == [1, 2]


class TestAdaptiveRunSweep:
    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_reaches_target_under_the_fixed_budget_and_recaches(self, tmp_path, backend_cls):
        # the ISSUE acceptance criterion end to end
        store = backend_cls(tmp_path / "store")
        spec = noisy_spec()
        ctrl = RunController(SMOKE_TARGET)
        first = run_sweep(spec, runs=2, seed=3, store=store, precision=ctrl)
        assert ctrl.total_runs is not None
        assert ctrl.total_runs < SMOKE_TARGET.max_runs * len(spec.sweep_values)
        assert max(ctrl.runs_per_point) <= SMOKE_TARGET.max_runs
        # re-run: full cache hit, identical decisions, identical series
        again_ctrl = RunController(SMOKE_TARGET)
        again = run_sweep(spec, runs=2, seed=3, store=store, precision=again_ctrl)
        assert "0 points computed" in again.notes
        assert again_ctrl.runs_per_point == ctrl.runs_per_point
        a, b = first.to_dict(), again.to_dict()
        a.pop("notes"), b.pop("notes")  # notes records the invocation split
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_notes_and_manifest_record_the_adaptive_outcome(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        ctrl = RunController(SMOKE_TARGET)
        series = run_sweep(noisy_spec(), runs=2, seed=3, store=store, precision=ctrl)
        assert f"adaptive: {ctrl.total_runs} total runs" in series.notes
        manifests = [store.load_manifest(k) for k in store.list_manifests()]
        adaptive = [m for m in manifests if "adaptive" in m]
        assert len(adaptive) == 1
        block = adaptive[0]["adaptive"]
        assert block["runs_per_point"] == ctrl.runs_per_point
        assert block["total_runs"] == ctrl.total_runs
        assert block["target"]["rel"] == SMOKE_TARGET.rel
        assert len(adaptive[0]["points"]) == ctrl.total_runs

    def test_adaptive_and_fixed_manifests_keyed_apart(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        spec = noisy_spec()
        run_sweep(spec, runs=2, seed=3, store=store)
        run_sweep(spec, runs=2, seed=3, store=store, precision=RunController(SMOKE_TARGET))
        assert len(store.list_manifests()) == 2

    def test_paired_sweep_stays_uniform_and_warm(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        ctrl = RunController(PrecisionTarget(rel=0.3, abs_tol=1.0, max_runs=8))
        series = run_sweep(paired_spec(), runs=2, seed=5, store=store, precision=ctrl)
        assert len(set(ctrl.runs_per_point)) == 1
        assert series.runs == ctrl.runs_per_point[0]
        # parity with the fixed-count equivalent at the same run count
        fixed = run_sweep(paired_spec(), runs=ctrl.runs_per_point[0], seed=5)
        assert series.metrics == fixed.metrics
        assert series.stderr == fixed.stderr

    def test_prediction_converges_in_fewer_passes_than_geometric(self):
        # the satellite criterion: jumping to n ∝ (z·σ/tol)² reaches the
        # same final budget in fewer plan→collect passes than doubling
        spec = noisy_spec()
        jump = RunController(PrecisionTarget(rel=0.0001, min_runs=2, max_runs=16))
        run_sweep(spec, runs=2, seed=3, precision=jump)
        slow = RunController(
            PrecisionTarget(rel=0.0001, min_runs=2, max_runs=16, predict=False)
        )
        run_sweep(spec, runs=2, seed=3, precision=slow)
        assert jump.runs_per_point == slow.runs_per_point == [16, 16, 16]
        assert jump.passes == 1  # straight to the cap
        assert slow.passes == 3  # 2 -> 4 -> 8 -> 16
        assert jump.passes < slow.passes

    def test_tight_target_stops_at_the_cap(self):
        ctrl = RunController(PrecisionTarget(rel=0.0001, min_runs=2, max_runs=4))
        run_sweep(noisy_spec(), runs=2, seed=3, precision=ctrl)
        assert ctrl.runs_per_point == [4, 4, 4]

    def test_adaptive_from_single_run_start(self):
        # n=1 points must grow (never "converge" on zero variance)
        ctrl = RunController(PrecisionTarget(rel=0.5, abs_tol=2.0, max_runs=4))
        run_sweep(noisy_spec(), runs=1, seed=3, precision=ctrl)
        assert all(n >= 2 for n in ctrl.runs_per_point)

    def test_delta_rounds_scenario_supports_precision(self):
        spec = replace(
            get_scenario("fig12-move-rounds"),
            n=10,
            strategies=("Minim",),
            sweep_values=(2.0,),
        )
        ctrl = RunController(PrecisionTarget(rel=0.8, abs_tol=4.0, max_runs=6))
        series = run_sweep(spec, runs=2, seed=4, precision=ctrl)
        assert len(ctrl.runs_per_point) == 1
        assert series.x_label == "round"

    def test_float_shorthand_via_run_sweep(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        series = run_sweep(
            replace(noisy_spec(), sweep_values=(6.0,)),
            runs=2,
            seed=3,
            store=store,
            precision=5.0,  # absurdly loose rel target: converges at min runs
        )
        assert "adaptive: 2 total runs" in series.notes


class TestStderrGuard:
    def test_single_run_sweep_stores_zero_stderr_not_nan(self):
        series = run_sweep(noisy_spec(), runs=1, seed=3)
        for per_strategy in series.stderr.values():
            for values in per_strategy.values():
                assert values == [0.0] * len(values)

    def test_ragged_counts_produce_finite_stderr(self):
        ctrl = RunController(SMOKE_TARGET)
        series = run_sweep(noisy_spec(), runs=2, seed=3, precision=ctrl)
        assert len(set(ctrl.runs_per_point)) > 1  # genuinely ragged
        for per_strategy in series.stderr.values():
            for values in per_strategy.values():
                assert all(math.isfinite(v) for v in values)
