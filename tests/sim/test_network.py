"""Tests for the AdHocNetwork facade."""

import numpy as np
import pytest

from repro.errors import ConnectivityError, InvalidEventError, UnknownNodeError
from repro.events.base import JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import MinimStrategy
from repro.topology.node import NodeConfig


class TestEventDispatch:
    def test_apply_routes_all_kinds(self):
        net = AdHocNetwork(MinimStrategy(), validate=True)
        cfg1 = NodeConfig(1, 0.0, 0.0, tx_range=20.0)
        cfg2 = NodeConfig(2, 10.0, 0.0, tx_range=20.0)
        assert net.apply(JoinEvent(cfg1)).event_kind == "join"
        assert net.apply(JoinEvent(cfg2)).event_kind == "join"
        assert net.apply(MoveEvent(2, 12.0, 0.0)).event_kind == "move"
        assert net.apply(PowerChangeEvent(2, 25.0)).event_kind == "power_increase"
        assert net.apply(PowerChangeEvent(2, 22.0)).event_kind == "power_decrease"
        assert net.apply(LeaveEvent(2)).event_kind == "leave"

    def test_unknown_event_type(self):
        net = AdHocNetwork(MinimStrategy())
        with pytest.raises(InvalidEventError):
            net.apply("not an event")  # type: ignore[arg-type]

    def test_equal_range_is_noop_decrease(self):
        net = AdHocNetwork(MinimStrategy())
        net.join(NodeConfig(1, 0.0, 0.0, tx_range=20.0))
        result = net.apply(PowerChangeEvent(1, 20.0))
        assert result.event_kind == "power_decrease"
        assert result.changes == {}

    def test_leave_unknown_raises(self):
        net = AdHocNetwork(MinimStrategy())
        with pytest.raises((UnknownNodeError, KeyError)):
            net.leave(7)


class TestBookkeeping:
    def test_metrics_accumulate(self):
        rng = np.random.default_rng(0)
        net = AdHocNetwork(MinimStrategy())
        for cfg in sample_configs(10, rng):
            net.join(cfg)
        assert len(net.metrics.records) == 10
        assert net.metrics.counts_by_kind() == {"join": 10}
        assert net.metrics.max_color == net.max_color()
        assert net.metrics.total_recodings >= 10  # every join assigns

    def test_assignment_covers_exactly_live_nodes(self):
        rng = np.random.default_rng(1)
        net = AdHocNetwork(MinimStrategy(), validate=True)
        configs = sample_configs(8, rng)
        for cfg in configs:
            net.join(cfg)
        net.leave(configs[3].node_id)
        assert set(net.assignment.nodes()) == set(net.node_ids())

    def test_snapshot_delta(self):
        rng = np.random.default_rng(2)
        net = AdHocNetwork(MinimStrategy())
        configs = sample_configs(10, rng)
        for cfg in configs[:5]:
            net.join(cfg)
        snap = net.metrics.snapshot()
        for cfg in configs[5:]:
            net.join(cfg)
        delta = snap.delta(net.metrics.snapshot())
        assert delta.events == 5
        assert delta.total_recodings >= 5

    def test_snapshot_delta_max_color_is_signed(self):
        # max_color in a delta is a signed difference: when the palette
        # shrinks between snapshots the delta must go negative, while
        # the count fields only ever accumulate.
        from repro.sim.metrics import MetricsSnapshot

        before = MetricsSnapshot(events=3, total_recodings=4, total_messages=9, max_color=7)
        after = MetricsSnapshot(events=5, total_recodings=6, total_messages=12, max_color=5)
        delta = before.delta(after)
        assert delta.max_color == -2
        assert delta.events == 2
        assert delta.total_recodings == 2
        assert delta.total_messages == 3

    def test_leave_can_shrink_max_color_delta(self):
        # A real network path to a negative delta: color the clique,
        # snapshot, then remove nodes until the top color disappears.
        net = AdHocNetwork(MinimStrategy())
        for cfg in [
            NodeConfig(1, 0.0, 0.0, tx_range=20.0),
            NodeConfig(2, 5.0, 0.0, tx_range=20.0),
            NodeConfig(3, 10.0, 0.0, tx_range=20.0),
        ]:
            net.join(cfg)
        snap = net.metrics.snapshot()
        net.leave(3)
        net.leave(2)
        delta = snap.delta(net.metrics.snapshot())
        assert delta.max_color < 0


class TestConnectivityEnforcement:
    def test_isolated_join_rejected_when_enforced(self):
        net = AdHocNetwork(MinimStrategy(), enforce_connectivity=True)
        net.join(NodeConfig(1, 0.0, 0.0, tx_range=10.0))
        net.join(NodeConfig(2, 5.0, 0.0, tx_range=10.0))
        with pytest.raises(ConnectivityError):
            net.join(NodeConfig(3, 500.0, 500.0, tx_range=10.0))

    def test_connected_join_allowed_when_enforced(self):
        net = AdHocNetwork(MinimStrategy(), enforce_connectivity=True)
        net.join(NodeConfig(1, 0.0, 0.0, tx_range=10.0))
        net.join(NodeConfig(2, 5.0, 0.0, tx_range=10.0))
        net.join(NodeConfig(3, 8.0, 0.0, tx_range=10.0))
        assert len(net.graph) == 3

    def test_default_is_permissive(self):
        net = AdHocNetwork(MinimStrategy())
        net.join(NodeConfig(1, 0.0, 0.0, tx_range=10.0))
        net.join(NodeConfig(2, 500.0, 0.0, tx_range=10.0))
        assert len(net.graph) == 2
