"""Single-pass multi-strategy replay: equivalence pin and lane API.

The load-bearing guarantee of the unified sweep pipeline is that
sharing one topology across strategy lanes changes *nothing* about the
results: every lane must produce byte-identical metrics and assignments
to an independently rebuilt per-strategy network replaying the same
events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.events.base import Event, JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.network import AdHocNetwork, MultiStrategyReplay
from repro.sim.random_networks import sample_configs
from repro.strategies import make_strategy

STRATEGY_SETS = [
    ("Minim",),
    ("Minim", "CP", "BBB"),
    ("Minim", "CP", "GreedySeq"),
]


def random_trace(
    n: int,
    extra_events: int,
    rng: np.random.Generator,
    *,
    with_leaves: bool = True,
) -> list[Event]:
    """n joins followed by random move/power(/leave+rejoin) events."""
    configs = sample_configs(n, rng)
    events: list[Event] = [JoinEvent(cfg) for cfg in configs]
    live = {cfg.node_id: cfg for cfg in configs}
    kinds = ["move", "power_up", "power_down"] + (["churn"] if with_leaves else [])
    for _ in range(extra_events):
        kind = kinds[int(rng.integers(len(kinds)))]
        node = int(rng.choice(sorted(live)))
        cfg = live[node]
        if kind == "move":
            x, y = rng.uniform(0.0, 100.0, size=2)
            events.append(MoveEvent(node, float(x), float(y)))
            live[node] = cfg.moved_to(float(x), float(y))
        elif kind == "power_up":
            events.append(PowerChangeEvent(node, cfg.tx_range * 1.5))
        elif kind == "power_down":
            events.append(PowerChangeEvent(node, max(cfg.tx_range * 0.7, 1.0)))
        else:  # leave, then rejoin elsewhere so the id stays live
            events.append(LeaveEvent(node))
            x, y = rng.uniform(0.0, 100.0, size=2)
            rejoined = cfg.moved_to(float(x), float(y))
            events.append(JoinEvent(rejoined))
            live[node] = rejoined
    return events


class TestEquivalencePin:
    @pytest.mark.parametrize("strategies", STRATEGY_SETS)
    @pytest.mark.parametrize("trace_seed", [0, 1, 2])
    def test_shared_replay_matches_independent_networks(self, strategies, trace_seed):
        events = random_trace(18, 30, np.random.default_rng(trace_seed))

        replay = MultiStrategyReplay([make_strategy(s) for s in strategies])
        replay.run(events)

        for lane in replay.lanes:
            solo = AdHocNetwork(make_strategy(lane.name))
            for ev in events:
                solo.apply(ev)
            # Byte-identical per-event metrics, not just equal totals.
            assert lane.metrics.records == solo.metrics.records
            assert lane.assignment.as_dict() == solo.assignment.as_dict()
            assert lane.assignment.max_color() == solo.max_color()

    def test_shared_replay_valid_assignments(self):
        events = random_trace(15, 20, np.random.default_rng(7))
        replay = MultiStrategyReplay([make_strategy(s) for s in ("Minim", "CP")], validate=True)
        replay.run(events)
        from repro.coloring.verify import is_valid

        for lane in replay.lanes:
            assert is_valid(replay.graph, lane.assignment)

    def test_dense_mode_matches_grid_mode(self):
        events = random_trace(14, 16, np.random.default_rng(3), with_leaves=False)
        grid = MultiStrategyReplay([make_strategy("Minim")], dense_conflicts=False)
        dense = MultiStrategyReplay([make_strategy("Minim")], dense_conflicts=True)
        grid.run(events)
        dense.run(events)
        assert grid.lanes[0].metrics.records == dense.lanes[0].metrics.records


class TestReplayApi:
    def test_needs_at_least_one_strategy(self):
        with pytest.raises(ConfigurationError):
            MultiStrategyReplay([])

    def test_lane_lookup_by_name(self):
        replay = MultiStrategyReplay([make_strategy(s) for s in ("Minim", "CP")])
        assert replay.lane("CP").strategy.name == "CP"
        with pytest.raises(ConfigurationError, match="Minim"):
            replay.lane("nope")

    def test_apply_returns_one_result_per_lane(self):
        replay = MultiStrategyReplay([make_strategy(s) for s in ("Minim", "CP")])
        cfgs = sample_configs(3, np.random.default_rng(0))
        results = replay.apply(JoinEvent(cfgs[0]))
        assert len(results) == 2
        assert all(r.event_kind == "join" for r in results)

    def test_topology_applied_once(self):
        replay = MultiStrategyReplay([make_strategy(s) for s in ("Minim", "CP", "BBB")])
        for cfg in sample_configs(6, np.random.default_rng(1)):
            replay.apply(JoinEvent(cfg))
        assert len(replay.graph) == 6
        # All lanes share the graph object; per-lane state is separate.
        assert len({id(lane.assignment) for lane in replay.lanes}) == 3
        for lane in replay.lanes:
            assert len(lane.metrics.records) == 6
