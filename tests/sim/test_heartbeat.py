"""Worker heartbeats: store round-trip, rate limiting, staleness flags."""

from __future__ import annotations

import time

import pytest

from repro.sim.executor import _HeartbeatClock
from repro.sim.monitor import StoreMonitor
from repro.sim.results import open_backend


@pytest.fixture(params=["json", "sqlite"])
def backend(request, tmp_path):
    target = tmp_path / ("store" if request.param == "json" else "store.sqlite")
    return open_backend(target, request.param)


def test_heartbeat_round_trip(backend):
    before = time.time()
    backend.record_heartbeat("w1")
    beats = backend.heartbeats()
    assert set(beats) == {"w1"}
    assert before - 1 <= beats["w1"] <= time.time() + 1


def test_heartbeat_overwrites_per_worker(backend):
    backend.save_heartbeat_record("w1", {"at": 100.0, "pid": 1})
    backend.record_heartbeat("w1")
    backend.record_heartbeat("w2")
    beats = backend.heartbeats()
    assert set(beats) == {"w1", "w2"}
    assert beats["w1"] > 100.0


def test_heartbeat_clock_rate_limits(backend):
    clock = _HeartbeatClock(claim_ttl=300.0)  # every = 100s: second beat suppressed
    clock.maybe_beat(backend, "w1")
    first = backend.heartbeats()["w1"]
    clock.maybe_beat(backend, "w1")
    assert backend.heartbeats()["w1"] == first


def test_heartbeat_clock_floor():
    assert _HeartbeatClock(claim_ttl=0.0).every == pytest.approx(0.05)
    assert _HeartbeatClock(claim_ttl=60.0).every == pytest.approx(20.0)


def test_monitor_flags_stale_workers(backend):
    backend.record_heartbeat("fresh")
    backend.save_heartbeat_record("wedged", {"at": time.time() - 120.0, "pid": 9})
    monitor = StoreMonitor(backend, lease_ttl=60.0)
    stats = {w.worker: w for w in monitor.worker_stats()}
    assert set(stats) == {"fresh", "wedged"}
    assert not stats["fresh"].stale and stats["fresh"].heartbeat_age < 60
    assert stats["wedged"].stale and stats["wedged"].heartbeat_age > 60
    assert stats["wedged"].points == 0  # visible even without any saved points

    rendered = monitor.stats().render()
    assert "STALE" in rendered
    assert "wedged" in rendered
    assert "heartbeat" in rendered


def test_monitor_without_heartbeats_has_no_flags(backend):
    monitor = StoreMonitor(backend)
    assert monitor.worker_stats() == ()
    assert "STALE" not in monitor.stats().render()


def test_worker_run_stamps_heartbeat(tmp_path):
    """A real drain loop heartbeats even when the queue is empty."""
    from repro.sim.executor import run_worker

    backend = open_backend(tmp_path / "store", "json")
    run_worker(backend, once=True)
    beats = backend.heartbeats()
    assert len(beats) == 1
    (worker,) = beats
    assert worker.startswith("worker-")
