"""Tests for the disruption cost model."""

import numpy as np
import pytest

from repro.sim.cost import DisruptionModel
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.sim.workloads import movement_rounds
from repro.strategies.base import RecodeResult
from repro.strategies.cp import CPStrategy
from repro.strategies.minim import MinimStrategy


class TestAnalyze:
    def test_empty(self):
        report = DisruptionModel().analyze([])
        assert report.total_stall == 0.0
        assert report.worst_node is None
        assert report.disrupted_nodes == 0

    def test_counts_and_penalties(self):
        model = DisruptionModel(recode_penalty=2.0, sync_penalty=0.5)
        results = [
            RecodeResult("join", 1, {1: (None, 1)}),
            RecodeResult("move", 2, {2: (1, 3), 5: (2, 4)}),
            RecodeResult("leave", 3, {}),  # no sync barrier when no recode
        ]
        report = model.analyze(results)
        assert report.per_node == {1: 1, 2: 1, 5: 1}
        assert report.total_stall == pytest.approx(2.0 * 3 + 0.5 * 2)
        assert report.events == 3

    def test_worst_node(self):
        model = DisruptionModel()
        results = [
            RecodeResult("move", 2, {7: (1, 2)}),
            RecodeResult("move", 2, {7: (2, 3), 8: (1, 4)}),
        ]
        assert model.analyze(results).worst_node == (7, 2)


class TestStrategyComparison:
    def test_minim_disrupts_less_than_cp_under_mobility(self):
        rng = np.random.default_rng(5)
        configs = sample_configs(25, rng)
        trace = movement_rounds(configs, 4, 35.0, np.random.default_rng(6))
        stalls = {}
        for name, strategy in [("Minim", MinimStrategy()), ("CP", CPStrategy())]:
            net = AdHocNetwork(strategy)
            results = [net.join(cfg) for cfg in configs]
            results.clear()  # compare mobility-phase disruption only
            for rd in trace:
                for ev in rd:
                    results.append(net.apply(ev))
            report = DisruptionModel().analyze(results)
            stalls[name] = report.total_stall
        assert stalls["Minim"] < stalls["CP"]

    def test_network_level_matches_per_result_totals(self):
        rng = np.random.default_rng(7)
        configs = sample_configs(12, rng)
        net = AdHocNetwork(MinimStrategy())
        results = [net.join(cfg) for cfg in configs]
        model = DisruptionModel()
        assert model.analyze_network(net).total_stall == pytest.approx(
            model.analyze(results).total_stall
        )
