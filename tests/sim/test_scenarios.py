"""Scenario engine: registry, placement models, traces, and the driver."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.events.base import JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.registry import available_scenarios, get_scenario, register_scenario
from repro.sim.scenarios import (
    BUILTIN_SCENARIOS,
    ChurnSpec,
    MobilitySpec,
    PlacementSpec,
    PowerSpec,
    ScenarioSpec,
    place_nodes,
    resolve_sweep,
    run_scenario,
    scenario_trace,
)

NEW_SCENARIOS = (
    "poisson-cluster",
    "random-waypoint",
    "uniform-churn",
    "hotspot-churn",
    "dense-urban",
    "sparse-long-range",
)


def _tiny(spec: ScenarioSpec) -> ScenarioSpec:
    """A shrunk copy of ``spec`` for fast smoke runs."""
    small = replace(spec, n=min(spec.n, 16), strategies=("Minim",))
    return replace(small, sweep_values=(spec.sweep_values[0],))


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_scenarios()
        assert set(NEW_SCENARIOS) <= set(names)
        assert "paper-join" in names
        assert len(BUILTIN_SCENARIOS) == len(names)

    def test_at_least_five_new_scenarios(self):
        assert len(NEW_SCENARIOS) >= 5

    def test_get_scenario_roundtrip(self):
        spec = get_scenario("dense-urban")
        assert spec.name == "dense-urban"
        assert spec.min_range == 8.0 and spec.max_range == 12.0

    def test_unknown_scenario_lists_catalog(self):
        with pytest.raises(ConfigurationError, match="dense-urban"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scenario(get_scenario("paper-join"))


class TestSpecValidation:
    def test_bad_placement_kind(self):
        with pytest.raises(ConfigurationError):
            PlacementSpec(kind="pentagonal")

    def test_bad_hotspot_fraction(self):
        with pytest.raises(ConfigurationError):
            PlacementSpec(kind="hotspot", hotspot_fraction=1.5)

    def test_bad_cluster_params(self):
        with pytest.raises(ConfigurationError):
            PlacementSpec(kind="poisson-cluster", cluster_sigma=0.0)

    def test_bad_mobility_kind(self):
        with pytest.raises(ConfigurationError):
            MobilitySpec(kind="teleport")

    def test_bad_churn_fraction(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(kind="uniform", fraction=1.5)

    def test_bad_power_kind(self):
        with pytest.raises(ConfigurationError):
            PowerSpec(kind="lower")

    def test_bad_sweep_axis(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", description="d", sweep_axis="zigzag", sweep_values=(1,))

    def test_bad_ranges(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", description="d", min_range=30.0, max_range=20.0)


class TestPlacement:
    def test_uniform_matches_paper_generator(self):
        spec = get_scenario("paper-join")
        configs = place_nodes(spec, np.random.default_rng(0))
        assert len(configs) == spec.n
        assert [c.node_id for c in configs] == list(range(1, spec.n + 1))

    def test_poisson_cluster_in_area(self):
        spec = replace(get_scenario("poisson-cluster"), n=50)
        configs = place_nodes(spec, np.random.default_rng(1))
        assert len(configs) == 50
        for c in configs:
            assert 0.0 <= c.x <= 100.0 and 0.0 <= c.y <= 100.0
            assert spec.min_range <= c.tx_range <= spec.max_range

    def test_poisson_cluster_is_clustered(self):
        # Mean nearest-neighbor distance must drop well below uniform's.
        n = 80
        uni = replace(get_scenario("paper-join"), n=n)
        clu = replace(
            get_scenario("poisson-cluster"),
            n=n,
            placement=PlacementSpec(kind="poisson-cluster", cluster_rate=4.0, cluster_sigma=5.0),
        )

        def mean_nn(configs):
            pts = np.asarray([(c.x, c.y) for c in configs])
            d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
            np.fill_diagonal(d, np.inf)
            return d.min(axis=1).mean()

        rng = np.random.default_rng(7)
        assert mean_nn(place_nodes(clu, rng)) < 0.6 * mean_nn(place_nodes(uni, rng))

    def test_hotspot_concentrates_nodes(self):
        spec = ScenarioSpec(
            name="hs-test",
            description="d",
            n=100,
            placement=PlacementSpec(kind="hotspot", hotspot_fraction=0.7, hotspot_radius=15.0),
            sweep_values=(100,),
        )
        configs = place_nodes(spec, np.random.default_rng(2))
        inside = sum(1 for c in configs if (c.x - 50) ** 2 + (c.y - 50) ** 2 <= 15.0**2)
        assert inside >= 60  # ~70 expected, allow sampling slack


class TestTraces:
    def test_trace_is_deterministic(self):
        spec = resolve_sweep(get_scenario("hotspot-churn"), 0.2)
        _, a = scenario_trace(spec, np.random.default_rng(5))
        _, b = scenario_trace(spec, np.random.default_rng(5))
        assert a == b

    def test_churn_trace_shape(self):
        spec = resolve_sweep(replace(get_scenario("uniform-churn"), n=20), 0.2)
        _, events = scenario_trace(spec, np.random.default_rng(3))
        joins = [e for e in events if isinstance(e, JoinEvent)]
        leaves = [e for e in events if isinstance(e, LeaveEvent)]
        # 20 initial joins + 2 cycles x 4 leavers rejoining
        assert len(leaves) == 8
        assert len(joins) == 20 + 8

    def test_hotspot_churn_rejoins_inside_disc(self):
        spec = resolve_sweep(replace(get_scenario("hotspot-churn"), n=30), 0.3)
        _, events = scenario_trace(spec, np.random.default_rng(4))
        rejoins = [e for e in events if isinstance(e, JoinEvent)][30:]
        assert rejoins
        r = spec.churn.hotspot_radius
        for e in rejoins:
            assert (e.config.x - 50) ** 2 + (e.config.y - 50) ** 2 <= r * r + 1e-9

    def test_waypoint_trace_emits_moves(self):
        spec = resolve_sweep(replace(get_scenario("random-waypoint"), n=10), 3)
        _, events = scenario_trace(spec, np.random.default_rng(6))
        moves = [e for e in events if isinstance(e, MoveEvent)]
        assert len(moves) == 10 * 3

    def test_power_schedule_emits_changes(self):
        spec = ScenarioSpec(
            name="pw-test",
            description="d",
            n=12,
            power=PowerSpec(kind="raise", raisefactor=3.0, fraction=0.5),
            sweep_axis="raisefactor",
            sweep_values=(3.0,),
        )
        _, events = scenario_trace(resolve_sweep(spec, 3.0), np.random.default_rng(8))
        raises = [e for e in events if isinstance(e, PowerChangeEvent)]
        assert len(raises) == 6

    def test_sweep_axes_resolve(self):
        base = get_scenario("paper-join")
        assert resolve_sweep(base, 80).n == 80
        mob = get_scenario("random-waypoint")
        assert resolve_sweep(mob, 7).mobility.steps == 7
        churn = get_scenario("uniform-churn")
        assert resolve_sweep(churn, 0.3).churn.fraction == 0.3
        rng_spec = replace(base, sweep_axis="avg_range", min_range=20.0, max_range=25.0)
        resolved = resolve_sweep(rng_spec, 40.0)
        assert (resolved.min_range, resolved.max_range) == (37.5, 42.5)


class TestRunScenario:
    @pytest.mark.parametrize("name", NEW_SCENARIOS)
    def test_each_new_scenario_smokes(self, name):
        series = run_scenario(_tiny(get_scenario(name)), runs=1, seed=11)
        assert series.experiment == f"scenario-{name}"
        assert set(series.metrics) == {"max_color", "recodings", "messages"}
        assert series.value_at("max_color", "Minim", series.x_values[0]) >= 1.0

    def test_strategy_override(self):
        spec = _tiny(get_scenario("sparse-long-range"))
        series = run_scenario(spec, runs=1, strategies=("Minim", "GreedySeq"))
        assert series.strategies() == ["Minim", "GreedySeq"]

    def test_run_by_name(self):
        series = run_scenario("sparse-long-range", runs=1, strategies=("Minim",))
        assert series.experiment == "scenario-sparse-long-range"
        assert len(series.x_values) == 3

    def test_empty_sweep_rejected(self):
        spec = replace(get_scenario("paper-join"), sweep_values=())
        with pytest.raises(ConfigurationError):
            run_scenario(spec, runs=1)
