"""The unified sweep orchestrator (every experiment's single entry point)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.sim.registry import get_scenario
from repro.sim.sweep import build_sweep, run_sweep

#: The paper's five figure sweeps, registered as scenarios.
PAPER_SCENARIOS = (
    "fig10-join",
    "fig10-range",
    "fig11-power",
    "fig12-move-disp",
    "fig12-move-rounds",
)

#: The extended catalog introduced alongside the scenario engine.
EXTENDED_SCENARIOS = (
    "poisson-cluster",
    "random-waypoint",
    "uniform-churn",
    "hotspot-churn",
    "dense-urban",
    "sparse-long-range",
)


def _tiny(name: str):
    """A shrunk registered spec for fast smoke runs."""
    spec = get_scenario(name)
    small = replace(spec, n=min(spec.n, 12), strategies=("Minim",))
    if spec.measure == "delta_rounds":
        return replace(small, sweep_values=(2.0,))
    return replace(small, sweep_values=(spec.sweep_values[0],))


class TestOneOrchestratorForEverything:
    @pytest.mark.parametrize("name", PAPER_SCENARIOS + EXTENDED_SCENARIOS)
    def test_every_registered_scenario_runs_through_run_sweep(self, name):
        series = run_sweep(_tiny(name), runs=1, seed=11)
        spec = get_scenario(name)
        assert series.experiment == spec.series_id
        expected = (
            {"delta_max_color", "delta_recodings", "delta_messages"}
            if spec.measure in ("delta", "delta_rounds")
            else {"max_color", "recodings", "messages"}
        )
        assert set(series.metrics) == expected
        assert series.strategies() == ["Minim"]

    def test_run_by_registered_name(self):
        series = run_sweep("fig10-join", runs=1, strategies=("Minim",))
        assert series.experiment == "fig10-join"
        assert series.x_label == "N"
        assert series.x_values == [40.0, 60.0, 80.0, 100.0, 120.0]


class TestBuildSweep:
    def test_empty_sweep_rejected(self):
        spec = replace(get_scenario("paper-join"), sweep_values=())
        with pytest.raises(ConfigurationError, match="no sweep values"):
            build_sweep(spec)

    def test_delta_rounds_needs_single_value(self):
        spec = replace(get_scenario("fig12-move-rounds"), sweep_values=(2.0, 3.0))
        with pytest.raises(ConfigurationError, match="exactly"):
            build_sweep(spec)

    def test_invalid_point_rejected_before_compute(self):
        # avg range 1 with the spec's spread of 5 -> min_range < 0
        spec = replace(get_scenario("fig10-range"), sweep_values=(1.0,))
        with pytest.raises(ConfigurationError):
            build_sweep(spec)

    def test_paired_runs_share_seed_rows(self):
        sweep = build_sweep(get_scenario("fig11-power"), runs=3, seed=5)
        tokens = [tuple((s.entropy, tuple(s.spawn_key)) for s in row) for row in sweep.seeds]
        assert all(row == tokens[0] for row in tokens)

    def test_unpaired_runs_differ_across_points(self):
        sweep = build_sweep(get_scenario("paper-join"), runs=2, seed=5)
        tokens = [tuple((s.entropy, tuple(s.spawn_key)) for s in row) for row in sweep.seeds]
        assert len(set(tokens)) == len(tokens)

    def test_runs_resolution_env(self):
        sweep = build_sweep(get_scenario("paper-join"), env_runs="7")
        assert sweep.runs == 7
        with pytest.raises(ConfigurationError, match="ten"):
            build_sweep(get_scenario("paper-join"), env_runs="ten")


class TestDeterminismAcrossProcesses:
    def test_sweep_bit_identical_for_1_2_4_processes(self):
        spec = replace(
            get_scenario("paper-join"),
            n=10,
            strategies=("Minim", "CP"),
            sweep_values=(8.0, 10.0),
        )
        series = [run_sweep(spec, runs=2, seed=9, processes=p) for p in (1, 2, 4)]
        for other in series[1:]:
            assert other.metrics == series[0].metrics
            assert other.stderr == series[0].stderr
            assert other.x_values == series[0].x_values


class TestDeltaRounds:
    def test_round_axis_and_cumulative_deltas(self):
        spec = replace(
            get_scenario("fig12-move-rounds"),
            n=10,
            strategies=("Minim",),
            sweep_values=(3.0,),
        )
        series = run_sweep(spec, runs=2, seed=4)
        assert series.x_label == "round"
        assert series.x_values == [1.0, 2.0, 3.0]
        rec = series.series("delta_recodings", "Minim")
        assert rec == sorted(rec)  # cumulative -> non-decreasing
