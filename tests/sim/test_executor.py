"""The pluggable execution layer: executors, worker drain, store claims."""

from __future__ import annotations

import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.sim.executor import (
    ProcessExecutor,
    SerialExecutor,
    WorkerExecutor,
    group_from_payload,
    group_payload,
    resolve_executor,
    run_worker,
)
from repro.sim.registry import get_scenario
from repro.sim.results import JsonDirBackend, SqliteBackend
from repro.sim.sweep import build_sweep, plan_tasks, run_sweep


def tiny_spec():
    return replace(
        get_scenario("paper-join"),
        n=8,
        strategies=("Minim",),
        sweep_values=(6.0, 8.0),
    )


def paired_spec():
    return replace(
        get_scenario("fig11-power"),
        n=10,
        strategies=("Minim",),
        sweep_values=(2.0, 4.0),
    )


# ----------------------------------------------------------------------
# Cross-executor / cross-backend series identity (acceptance criterion)
# ----------------------------------------------------------------------
class TestExecutorParity:
    @pytest.fixture(scope="class")
    def reference(self):
        return run_sweep(tiny_spec(), runs=2, seed=3)

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    @pytest.mark.parametrize(
        "executor",
        [
            SerialExecutor(),
            ProcessExecutor(2),
            WorkerExecutor(max_wait=120.0),
            "serial",
            "worker",
        ],
        ids=["serial", "process2", "worker", "serial-name", "worker-name"],
    )
    def test_same_series_for_every_executor_and_backend(
        self, tmp_path, reference, backend_cls, executor
    ):
        store = backend_cls(tmp_path / "store")
        series = run_sweep(tiny_spec(), runs=2, seed=3, store=store, executor=executor)
        assert series.metrics == reference.metrics
        assert series.stderr == reference.stderr
        assert series.x_values == reference.x_values

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_paired_sweep_parity_across_executors(self, tmp_path, backend_cls):
        # warm-start groups must not change results on any executor
        ref = run_sweep(paired_spec(), runs=2, seed=5, warm_start=False)
        for sub, executor in (("a", "serial"), ("b", "worker")):
            store = backend_cls(tmp_path / sub)
            series = run_sweep(paired_spec(), runs=2, seed=5, store=store, executor=executor)
            assert series.metrics == ref.metrics
            assert series.stderr == ref.stderr

    @pytest.mark.parametrize("executor", ["serial", "process", "worker"])
    def test_no_resume_recomputes_on_every_executor(self, tmp_path, executor):
        # resume=False must force recomputation even where artifacts
        # pre-exist — the worker queue may not serve them as "done"
        store = SqliteBackend(tmp_path / "store.sqlite")
        run_sweep(tiny_spec(), runs=1, seed=3, store=store)
        again = run_sweep(
            tiny_spec(), runs=1, seed=3, store=store, resume=False, executor=executor
        )
        assert "2 points computed, 0 from cache" in again.notes

    def test_forced_backend_kind_survives_process_fanout(self, tmp_path):
        # a JSON store whose directory happens to carry a sqlite-ish
        # suffix: pool children must re-open it as JSON, not re-sniff
        from repro.sim.results import open_backend

        store = open_backend(tmp_path / "weird.sqlite", "json")
        assert store.kind == "json"
        series = run_sweep(tiny_spec(), runs=2, seed=3, store=store, processes=2)
        ref = run_sweep(tiny_spec(), runs=2, seed=3)
        assert series.metrics == ref.metrics
        assert (tmp_path / "weird.sqlite" / "points").is_dir()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            run_sweep(tiny_spec(), runs=1, executor="threads")

    def test_worker_executor_requires_store(self):
        with pytest.raises(ConfigurationError, match="results store"):
            run_sweep(tiny_spec(), runs=1, executor="worker")

    def test_resolution_defaults(self):
        import os

        assert resolve_executor(None, None).name == "serial"
        assert resolve_executor(None, 1).name == "serial"
        assert resolve_executor(None, 4).name == "process"
        custom = WorkerExecutor()
        assert resolve_executor(custom, None) is custom
        # explicit "process" with no pool size means the whole machine,
        # not a silent serial fallback
        assert resolve_executor("process", None).processes == os.cpu_count()
        assert resolve_executor("process", 2).processes == 2


# ----------------------------------------------------------------------
# Task payload round trip
# ----------------------------------------------------------------------
class TestTaskPayload:
    def test_group_round_trips_through_json(self):
        import json

        groups = plan_tasks(build_sweep(paired_spec(), runs=2, seed=5))
        for group in groups:
            payload = json.loads(json.dumps(group_payload(group)))
            rebuilt = group_from_payload(payload)
            assert rebuilt.indices == group.indices
            assert rebuilt.points == group.points
            assert rebuilt.keys == group.keys
            assert rebuilt.warm == group.warm
            assert rebuilt.key == group.key

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed task descriptor"):
            group_from_payload({"schema": 1, "indices": [[0, 0]]})

    def test_warm_group_members_persist_as_they_land(self, tmp_path, monkeypatch):
        # a crash mid-group must not lose the members already computed
        from repro.sim.executor import _execute_group_task, group_payload
        from repro.sim.timeline import _ExecState

        backend = JsonDirBackend(tmp_path / "store")
        (group,) = plan_tasks(build_sweep(paired_spec(), runs=1, seed=5))
        assert group.warm and len(group.points) == 2
        real = _ExecState.result
        calls = []

        def dying_result(self, measure):
            if len(calls) == 1:
                raise RuntimeError("simulated crash on member 2")
            calls.append(1)
            return real(self, measure)

        monkeypatch.setattr(_ExecState, "result", dying_result)
        with pytest.raises(RuntimeError, match="simulated crash"):
            _execute_group_task((group_payload(group), (backend.locator, backend.kind)))
        assert backend.load_point(group.keys[0]) is not None  # member 1 survived
        assert backend.load_point(group.keys[1]) is None
        monkeypatch.setattr(_ExecState, "result", real)
        resumed = run_sweep(paired_spec(), runs=1, seed=5, store=backend)
        assert "1 points computed, 1 from cache" in resumed.notes


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
def _publish(backend, spec, runs=1, seed=3):
    groups = plan_tasks(build_sweep(spec, runs=runs, seed=seed))
    for group in groups:
        backend.save_task(group.key, group_payload(group))
    return groups


class TestWorkerLoop:
    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_run_worker_drains_queue(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        groups = _publish(backend, tiny_spec())
        computed = run_worker(backend, once=True)
        assert computed == len(groups)
        assert backend.pending_task_keys() == []
        assert backend.list_claims() == []
        for group in groups:
            for key in group.keys:
                assert backend.load_point(key) is not None

    def test_worker_skips_already_computed_tasks(self, tmp_path):
        backend = SqliteBackend(tmp_path / "store")
        groups = _publish(backend, tiny_spec())
        run_worker(backend, once=True)
        for group in groups:  # republish finished work
            backend.save_task(group.key, group_payload(group))
        assert run_worker(backend, once=True) == 0  # cleaned up, not recomputed
        assert backend.pending_task_keys() == []

    def test_worker_quarantines_poison_task_and_drains_the_rest(self, tmp_path, capsys):
        backend = SqliteBackend(tmp_path / "store")
        groups = _publish(backend, tiny_spec())
        backend.save_task("poison", {"schema": 99, "garbage": True})
        computed = run_worker(backend, once=True)
        assert computed == len(groups)
        # the undecodable task is parked durably, not rescanned forever
        assert backend.pending_task_keys() == []
        assert backend.list_quarantined() == ["poison"]
        assert "undecodable" in backend.load_quarantined("poison")["reason"]
        assert "quarantined undecodable task poison" in capsys.readouterr().out
        # an operator can release it back into the queue after inspection
        assert backend.requeue_quarantined("poison")
        assert backend.pending_task_keys() == ["poison"]

    def test_worker_quarantines_churned_task_instead_of_claiming(self, tmp_path, capsys):
        backend = SqliteBackend(tmp_path / "store")
        groups = _publish(backend, tiny_spec())
        churned = groups[0].key
        for _ in range(3):  # three claimants died holding this group
            backend.record_lease_break(churned)
        computed = run_worker(backend, once=True, quarantine_after=3)
        assert computed == len(groups) - 1  # the poison group was not computed
        assert backend.list_quarantined() == [churned]
        assert "broken leases" in backend.load_quarantined(churned)["reason"]
        assert f"quarantined task {churned}" in capsys.readouterr().out
        for key in groups[0].keys:
            assert backend.load_point(key) is None

    @pytest.mark.parametrize("threshold", [0, -1])
    def test_quarantine_disabled_with_non_positive_threshold(self, tmp_path, threshold):
        backend = SqliteBackend(tmp_path / "store")
        groups = _publish(backend, tiny_spec())
        for _ in range(5):
            backend.record_lease_break(groups[0].key)
        computed = run_worker(backend, once=True, quarantine_after=threshold)
        assert computed == len(groups)
        assert backend.list_quarantined() == []

    def test_completed_group_is_cleaned_up_not_quarantined(self, tmp_path):
        # a claimant that saved every point but died before delete_task
        # leaves a churned-looking descriptor over finished work — the
        # next scan must clean it up, not park it as poison
        backend = SqliteBackend(tmp_path / "store")
        groups = _publish(backend, tiny_spec())
        dead = groups[0]
        from repro.sim.executor import _claimed_compute

        _claimed_compute(backend, dead, dead.key, "doomed-worker")
        for _ in range(3):  # ...and its predecessors all broke leases
            backend.record_lease_break(dead.key)
        computed = run_worker(backend, once=True, quarantine_after=3)
        assert computed == len(groups) - 1  # finished group only cleaned up
        assert backend.list_quarantined() == []
        assert backend.pending_task_keys() == []

    def test_live_claim_blocks_quarantine(self, tmp_path):
        # a healthy claimant mid-computation must not have the task (and
        # its claim) yanked away just because *previous* holders died
        from repro.sim.executor import _maybe_quarantine

        backend = SqliteBackend(tmp_path / "store")
        groups = _publish(backend, tiny_spec())
        gkey = groups[0].key
        for _ in range(3):
            backend.record_lease_break(gkey)
        assert backend.try_claim(gkey, "healthy-worker", ttl=60.0)
        assert not _maybe_quarantine(backend, gkey, 3, claim_ttl=60.0)
        assert backend.list_claims() == [gkey]  # the live claim survived
        backend.release_claim(gkey)
        assert _maybe_quarantine(backend, gkey, 3, claim_ttl=60.0)
        assert backend.list_quarantined() == [gkey]

    def test_payload_schema_is_gated(self):
        groups = plan_tasks(build_sweep(tiny_spec(), runs=1, seed=3))
        payload = group_payload(groups[0])
        payload["schema"] = 2
        with pytest.raises(ConfigurationError, match="schema 2"):
            group_from_payload(payload)

    def test_worker_idle_exit(self, tmp_path):
        backend = JsonDirBackend(tmp_path / "store")
        start = time.monotonic()
        assert run_worker(backend, poll=0.01, max_idle=0.05) == 0
        assert time.monotonic() - start < 5.0

    def test_worker_exits_after_max_idle_even_with_finished_history(self, tmp_path):
        # idle means "no pending work", not "the store is empty": a
        # drained queue with points/quarantine history must still exit
        backend = SqliteBackend(tmp_path / "store")
        _publish(backend, tiny_spec())
        run_worker(backend, once=True)
        start = time.monotonic()
        assert run_worker(backend, poll=0.01, max_idle=0.1) == 0
        assert time.monotonic() - start < 5.0

    def test_late_published_group_is_picked_up_within_poll(self, tmp_path):
        # a group published mid-drain (another sweep joining the store)
        # must be found by the poll loop before the idle timer fires
        import threading

        backend = SqliteBackend(tmp_path / "store")
        groups = plan_tasks(build_sweep(tiny_spec(), runs=1, seed=3))

        def publish_later():
            time.sleep(0.3)
            for group in groups:
                backend.save_task(group.key, group_payload(group))

        publisher = threading.Thread(target=publish_later)
        publisher.start()
        try:
            computed = run_worker(backend, poll=0.05, max_idle=3.0)
        finally:
            publisher.join()
        assert computed == len(groups)
        assert backend.pending_task_keys() == []

    def test_computed_points_carry_worker_provenance(self, tmp_path):
        backend = SqliteBackend(tmp_path / "store")
        groups = _publish(backend, tiny_spec())
        run_worker(backend, once=True, owner="worker-test-7")
        for group in groups:
            context = backend.load_point_record(group.keys[0])["context"]
            assert context["worker"] == "worker-test-7"
            assert context["saved_at"] > 0
            assert context["core"] in {"array", "dict", "dense"}

    def test_worker_executor_fails_loudly_on_quarantined_group(self, tmp_path):
        # the orchestrator must not wait forever on a parked group — it
        # points the operator at `store requeue` instead
        backend = SqliteBackend(tmp_path / "store")
        spec = tiny_spec()
        groups = plan_tasks(build_sweep(spec, runs=1, seed=3))
        for _ in range(3):
            backend.record_lease_break(groups[0].key)
        with pytest.raises(ConfigurationError, match="store requeue"):
            run_sweep(spec, runs=1, seed=3, store=backend, executor=WorkerExecutor(max_wait=30.0))
        assert backend.list_quarantined() == [groups[0].key]

    def test_two_worker_processes_share_one_store(self, tmp_path):
        # The ISSUE's distributed story end to end: the orchestrator
        # publishes, two real `minim-cdma worker` processes drain, and a
        # subsequent resume run serves everything from cache.
        backend = SqliteBackend(tmp_path / "store.sqlite")
        spec = tiny_spec()
        _publish(backend, spec, runs=2, seed=3)
        # spawned interpreters must see the package even when the suite
        # runs via pyproject's pythonpath=["src"] without an install
        import os
        from pathlib import Path

        import repro

        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).parent.parent)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "--results",
                    str(backend.path),
                    "--max-idle",
                    "1",
                    "--poll",
                    "0.05",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            for _ in range(2)
        ]
        outputs = [p.communicate(timeout=120)[0] for p in procs]
        assert all(p.returncode == 0 for p in procs), outputs
        assert backend.pending_task_keys() == []
        series = run_sweep(spec, runs=2, seed=3, store=backend)
        assert "0 points computed, 4 from cache" in series.notes
        # all 4 groups were computed, duplicates allowed (at-least-once:
        # a worker may re-claim in the window between a peer's release
        # and task deletion; saves are idempotent so this is safe)
        total = sum(int(out.split("computed ")[1].split(" ")[0]) for out in outputs)
        assert 4 <= total <= 8


# ----------------------------------------------------------------------
# Store-backed checkpoint links: cross-process prefix sharing
# ----------------------------------------------------------------------
class TestWorkerCheckpointLinks:
    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_worker_drain_stores_delta_links(self, tmp_path, backend_cls, monkeypatch):
        # a warm group walked by a worker persists its boundary states
        # as delta links in the store's checkpoint table
        monkeypatch.delenv("REPRO_CKPT_STORE", raising=False)
        backend = backend_cls(tmp_path / "store")
        _publish(backend, paired_spec(), runs=1, seed=3)
        assert run_worker(backend, once=True) >= 1
        stats = backend.checkpoint_stats()
        assert stats["count"] > 0
        assert stats["writes"] >= stats["count"]

    def test_deeper_sweep_resumes_from_another_workers_links(self, tmp_path, monkeypatch):
        # the cross-process pickup story: worker A drains a paired sweep,
        # worker B (a fresh process state — nothing warm in memory) drains
        # a deeper sweep over the same axis and serves the shared prefix
        # from A's stored links instead of replaying it
        monkeypatch.delenv("REPRO_CKPT_STORE", raising=False)
        backend = SqliteBackend(tmp_path / "store.sqlite")
        spec = paired_spec()
        _publish(backend, spec, runs=1, seed=3)
        run_worker(backend, once=True)
        hits_before = backend.checkpoint_stats()["hits"]
        deeper = replace(spec, sweep_values=(2.0, 4.0, 6.0, 8.0))
        _publish(backend, deeper, runs=1, seed=3)
        run_worker(backend, once=True)
        assert backend.checkpoint_stats()["hits"] > hits_before
        series = run_sweep(deeper, runs=1, seed=3, store=backend)
        ref = run_sweep(deeper, runs=1, seed=3)
        assert series.metrics == ref.metrics
        assert series.stderr == ref.stderr

    def test_env_kill_switch_disables_link_writes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_STORE", "0")
        backend = SqliteBackend(tmp_path / "store.sqlite")
        _publish(backend, paired_spec(), runs=1, seed=3)
        run_worker(backend, once=True)
        assert backend.checkpoint_stats()["count"] == 0

    def test_cold_groups_never_write_links(self, tmp_path, monkeypatch):
        # unpaired sweeps plan singleton (cold) groups; serializing their
        # boundaries would be pure overhead, so the scope stays off
        monkeypatch.delenv("REPRO_CKPT_STORE", raising=False)
        backend = SqliteBackend(tmp_path / "store.sqlite")
        groups = _publish(backend, tiny_spec(), runs=1, seed=3)
        assert all(not g.warm for g in groups)
        run_worker(backend, once=True)
        assert backend.checkpoint_stats()["count"] == 0


# ----------------------------------------------------------------------
# Claim + save races across real processes (satellite: store concurrency)
# ----------------------------------------------------------------------
def _claim_once(args):
    locator, kind, key, owner = args
    from repro.sim.results import open_backend

    return open_backend(locator, kind).try_claim(key, owner)


def _save_same_point(args):
    locator, kind, key, payload = args
    from repro.sim.results import open_backend

    backend = open_backend(locator, kind)
    for _ in range(20):
        backend.save_point(key, payload, context={"race": True})
    return backend.load_point(key)


class TestStoreConcurrency:
    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_claim_is_exclusive_across_processes(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        backend.save_task("k1", {"x": 1})  # materialize the store
        args = [(backend.locator, backend.kind, "k1", f"owner-{i}") for i in range(4)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            wins = list(pool.map(_claim_once, args))
        assert sum(wins) == 1

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_concurrent_saves_of_one_point_stay_consistent(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        payload = [[1.0, 2.0, 3.0]]
        args = [(backend.locator, backend.kind, "pt", payload)] * 4
        with ProcessPoolExecutor(max_workers=4) as pool:
            seen = list(pool.map(_save_same_point, args))
        assert all(s == payload for s in seen)
        assert backend.load_point("pt") == payload

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_stale_claim_is_broken(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        assert backend.try_claim("k", "dead-worker", ttl=0.05)
        assert not backend.try_claim("k", "live-worker", ttl=60.0)
        time.sleep(0.1)
        assert backend.try_claim("k", "live-worker", ttl=0.05)

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_renew_keeps_a_lease_fresh(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        assert backend.try_claim("k", "slow-worker", ttl=1.0)
        time.sleep(0.6)
        backend.renew_claim("k", "slow-worker")
        time.sleep(0.6)
        # 1.2s since claim but only 0.6s since renewal: still held
        assert not backend.try_claim("k", "thief", ttl=1.0)

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_renew_by_non_owner_or_absent_is_noop(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        backend.renew_claim("never-claimed", "anyone")  # must not raise
        assert backend.try_claim("k", "owner", ttl=0.2)
        backend.renew_claim("k", "impostor")
        time.sleep(0.3)
        # the impostor's renew must not have extended the owner's lease
        assert backend.try_claim("k", "next", ttl=0.2)

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_release_is_idempotent(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        backend.release_claim("never-claimed")
        assert backend.try_claim("k", "o")
        backend.release_claim("k")
        backend.release_claim("k")
        assert backend.try_claim("k", "o2")
