"""Run fan-out utilities: parallel_map plumbing and chunk_evenly."""

from __future__ import annotations

import pytest

import repro.sim.runner as runner
from repro.errors import ConfigurationError
from repro.sim.runner import chunk_evenly, parallel_map, resolve_runs


class TestChunkEvenly:
    def test_exported(self):
        assert "chunk_evenly" in runner.__all__

    def test_empty_input(self):
        assert chunk_evenly([], 3) == [[], [], []]

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 4) == [[1], [2], [], []]

    def test_uneven_split_front_loads_remainder(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert chunk_evenly(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]

    def test_exact_split(self):
        assert chunk_evenly([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_preserves_order_and_coverage(self):
        items = list(range(23))
        chunks = chunk_evenly(items, 5)
        assert [x for chunk in chunks for x in chunk] == items
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_bad_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)


class TestResolveRuns:
    def test_explicit_wins(self):
        assert resolve_runs(7, 5, "3") == 7

    def test_env_beats_default(self):
        assert resolve_runs(None, 5, "3") == 3

    def test_default_fallback(self):
        assert resolve_runs(None, 5, None) == 5

    def test_rejects_nonpositive_explicit(self):
        with pytest.raises(ValueError):
            resolve_runs(0, 5, None)

    def test_nonpositive_env_raises_configuration_error(self):
        # every env-derived failure is environment misconfiguration, so
        # "0" must match the non-integer case, not surface as ValueError
        with pytest.raises(ConfigurationError, match=">= 1"):
            resolve_runs(None, 5, "0")
        with pytest.raises(ConfigurationError, match="-2"):
            resolve_runs(None, 5, "-2")

    def test_non_numeric_env_raises_configuration_error(self):
        # e.g. REPRO_RUNS=ten must not surface as a bare ValueError
        with pytest.raises(ConfigurationError, match="'ten'"):
            resolve_runs(None, 5, "ten")
        with pytest.raises(ConfigurationError, match="REPRO_RUNS"):
            resolve_runs(None, 5, "3.5")


class TestParallelMap:
    def test_serial_matches_map(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_single_item_short_circuits(self):
        assert parallel_map(lambda x: x + 1, [41], processes=8) == [42]
