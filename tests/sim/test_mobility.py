"""Tests for the random-waypoint mobility model."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.mobility import RandomWaypointModel
from repro.sim.random_networks import sample_configs


def model(seed=0, n=8, **kwargs):
    rng = np.random.default_rng(seed)
    return RandomWaypointModel(sample_configs(n, rng), rng, **kwargs), n


class TestRandomWaypoint:
    def test_step_emits_sorted_events(self):
        m, n = model()
        events = m.step()
        assert len(events) == n
        ids = [e.node_id for e in events]
        assert ids == sorted(ids)

    def test_positions_stay_in_arena(self):
        m, _ = model(speed_range=(5.0, 20.0))
        for _ in range(200):
            for ev in m.step():
                assert 0.0 <= ev.x <= 100.0 and 0.0 <= ev.y <= 100.0

    def test_step_length_bounded_by_speed(self):
        m, _ = model(speed_range=(2.0, 4.0))
        prev = {v: m.position_of(v) for v in range(1, 9)}
        for _ in range(50):
            for ev in m.step():
                x0, y0 = prev[ev.node_id]
                assert math.hypot(ev.x - x0, ev.y - y0) <= 4.0 + 1e-9
                prev[ev.node_id] = (ev.x, ev.y)

    def test_pause_suppresses_events(self):
        # Huge speed: every step arrives, then pauses.
        m, n = model(speed_range=(500.0, 500.0), pause_steps=2)
        first = m.step()
        assert len(first) == n  # everyone arrives somewhere
        second = m.step()
        assert len(second) == 0  # all paused
        third = m.step()
        assert len(third) == 0
        fourth = m.step()
        assert len(fourth) == n  # pause over

    def test_walkers_eventually_move_far(self):
        m, _ = model(speed_range=(5.0, 10.0))
        start = m.position_of(1)
        m.run(100)
        end = m.position_of(1)
        assert math.hypot(end[0] - start[0], end[1] - start[1]) > 1.0

    def test_run_shape(self):
        m, _ = model()
        rounds = m.run(5)
        assert len(rounds) == 5

    def test_deterministic(self):
        m1, _ = model(seed=3)
        m2, _ = model(seed=3)
        assert m1.run(10) == m2.run(10)

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        cfgs = sample_configs(2, rng)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(cfgs, rng, speed_range=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(cfgs, rng, pause_steps=-1)
        m = RandomWaypointModel(cfgs, rng)
        with pytest.raises(ConfigurationError):
            m.run(-1)
