"""Checkpoint-timeline equivalence pins: stages, trees, chained restores.

The acceptance criterion of the execution-timeline refactor: series
produced with checkpoint-tree prefix sharing are byte-identical to cold
execution for every registered scenario, round-level sharing included.
Extends the PR 3 warm-start pins in ``test_warmstart.py``.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.events.base import JoinEvent
from repro.sim.network import MultiStrategyReplay
from repro.sim.random_networks import sample_configs
from repro.sim.registry import available_scenarios, get_scenario
from repro.sim.scenarios import scenario_phases, scenario_plan
from repro.sim.sweep import build_sweep, plan_tasks, run_sweep
from repro.sim.timeline import (
    CheckpointTree,
    build_plan,
    compute_group,
    compute_point,
    prefix_token,
)
from repro.strategies import make_strategy


def steps_spec(**overrides):
    """A paired delta sweep over round counts: the deep-sharing shape."""
    spec = replace(
        get_scenario("fig12-move-rounds"),
        n=10,
        strategies=("Minim", "CP"),
        sweep_axis="steps",
        sweep_values=(2.0, 4.0, 6.0),
        measure="delta",
    )
    return replace(spec, **overrides) if overrides else spec


def paired_spec(**overrides):
    spec = replace(
        get_scenario("fig11-power"),
        n=12,
        strategies=("Minim", "CP"),
        sweep_values=(2.0, 3.0, 4.0),
    )
    return replace(spec, **overrides) if overrides else spec


# ----------------------------------------------------------------------
# Stage keys
# ----------------------------------------------------------------------
class TestStageKeys:
    def test_round_structured_axis_chains_are_prefixes(self):
        # the property round-level sharing rests on: the steps=2 trace
        # is a stage-key prefix of the steps=4 trace on the same seed
        seed = np.random.SeedSequence(7)
        base = steps_spec()
        plans = [
            build_plan(replace(base, mobility=replace(base.mobility, steps=k)), seed)
            for k in (2, 4, 6)
        ]
        assert [len(p.stages) for p in plans] == [3, 5, 7]  # join + k rounds
        for shorter, longer in zip(plans, plans[1:]):
            assert longer.stage_keys[: len(shorter.stage_keys)] == shorter.stage_keys

    def test_keys_commit_to_strategies_seed_and_measure(self):
        spec = steps_spec()
        a = build_plan(spec, np.random.SeedSequence(1))
        b = build_plan(spec, np.random.SeedSequence(2))
        assert a.stage_keys[0] != b.stage_keys[0]  # different draw, different chain
        c = build_plan(replace(spec, strategies=("Minim",)), np.random.SeedSequence(1))
        assert a.stage_keys[0] != c.stage_keys[0]  # lane lineup is part of the root
        # checkpointed state is measure-shaped (delta_rounds carries
        # per-round sample lists), so the measure keys chains apart too
        d = build_plan(
            replace(spec, measure="absolute", paired_runs=False), np.random.SeedSequence(1)
        )
        assert a.stage_keys[0] != d.stage_keys[0]

    def test_placement_affecting_fields_key_apart(self):
        seed = np.random.SeedSequence(3)
        base = build_plan(steps_spec(), seed)
        bigger = build_plan(replace(steps_spec(), n=11), seed)
        wider = build_plan(replace(steps_spec(), min_range=5.0, max_range=80.0), seed)
        assert base.stage_keys[0] != bigger.stage_keys[0]
        assert base.stage_keys[0] != wider.stage_keys[0]

    def test_plan_flat_events_match_unstaged_phases(self):
        spec = steps_spec()
        seed = np.random.SeedSequence(11)
        plan = build_plan(spec, seed)
        phases = scenario_phases(spec, np.random.default_rng(seed))
        assert plan.events == phases.events
        assert plan.baseline == phases.baseline
        assert plan.rounds == phases.rounds

    def test_scenario_plan_matches_build_plan(self):
        spec = steps_spec()
        seed = np.random.SeedSequence(5)
        via_scenarios = scenario_plan(spec, np.random.default_rng(seed))
        assert via_scenarios.stage_keys == build_plan(spec, seed).stage_keys


class TestPrefixToken:
    def test_token_tracks_placement_inputs_only(self):
        seed = np.random.SeedSequence(9)
        base = steps_spec()
        assert prefix_token(base, seed) == prefix_token(
            replace(base, mobility=replace(base.mobility, steps=9, maxdisp=70.0)), seed
        )
        assert prefix_token(base, seed) != prefix_token(replace(base, n=11), seed)
        assert prefix_token(base, seed) != prefix_token(base, np.random.SeedSequence(10))
        assert prefix_token(base, seed) != prefix_token(
            replace(base, strategies=("Minim",)), seed
        )

    def test_token_agrees_with_join_stage_key_sharing(self):
        # equal tokens must imply equal join-stage content keys — the
        # planner's static judgment matches the executed reality
        seed = np.random.SeedSequence(13)
        a, b = steps_spec(), steps_spec(mobility=replace(steps_spec().mobility, steps=8))
        assert prefix_token(a, seed) == prefix_token(b, seed)
        assert build_plan(a, seed).stage_keys[0] == build_plan(b, seed).stage_keys[0]


# ----------------------------------------------------------------------
# Checkpoint-tree execution
# ----------------------------------------------------------------------
class TestCheckpointTreeEquivalence:
    def test_shared_walk_equals_cold_per_member(self):
        sweep = build_sweep(steps_spec(), runs=1, seed=3)
        (group,) = plan_tasks(sweep)
        assert group.warm and len(group.points) == 3
        shared = compute_group(group.points, group.seed)
        cold = [compute_point(point, group.seed) for point in group.points]
        assert shared == cold

    def test_tree_shares_rounds_not_just_the_baseline(self):
        sweep = build_sweep(steps_spec(), runs=1, seed=3)
        (group,) = plan_tasks(sweep)
        tree = CheckpointTree()
        compute_group(group.points, group.seed, tree=tree)
        # only resume boundaries are checkpointed: member 2 resumes at
        # member 1's round 2, member 3 at member 2's round 4 — shallower
        # shared stages are shadowed and never stored, and each
        # checkpoint is evicted by its final consumer
        assert tree.stored == 2
        assert tree.hits == 2  # members 2 and 3 each resume mid-chain
        assert tree.evicted == 2
        assert len(tree) == 0  # nothing outlives its last consumer

    def test_only_deepest_shared_boundaries_are_checkpointed(self):
        from repro.sim.timeline import _resume_boundaries

        seed = np.random.SeedSequence(3)
        base = steps_spec()
        plans = [
            build_plan(replace(base, mobility=replace(base.mobility, steps=k)), seed)
            for k in (2, 4, 6)
        ]
        needed = _resume_boundaries(plans)
        # plan 2 resumes at plan 1's last round (r2), plan 3 at plan 2's (r4)
        assert needed == {plans[0].stage_keys[2]: 1, plans[1].stage_keys[4]: 1}

    def test_pinned_checkpoints_survive_their_resumes(self):
        # a checkpoint stored without a consumer budget (externally
        # threaded trees) is never evicted
        sweep = build_sweep(steps_spec(), runs=1, seed=3)
        (group,) = plan_tasks(sweep)
        plan = build_plan(group.points[0], group.seed)
        from repro.sim.timeline import _ExecState

        tree = CheckpointTree()
        state = _ExecState.fresh(plan.strategies)
        for stage in plan.stages:
            state.apply_stage(stage, plan.measure)
        tree.checkpoint(plan.stages[-1].key, state)  # pinned
        for _ in range(3):
            resumed, start = tree.resume(plan)
            assert start == len(plan.stages)
            assert resumed is not state
        assert len(tree) == 1 and tree.evicted == 0

    def test_divergent_placement_falls_back_to_cold(self):
        # regression: a hand-built "shared" group over a placement-
        # affecting axis must fall back to cold execution, never reuse
        # a stale prefix
        points = (steps_spec(), replace(steps_spec(), n=11))
        seed = np.random.SeedSequence(5)
        tree = CheckpointTree()
        shared = compute_group(points, seed, share=True, tree=tree)
        assert tree.hits == 0  # nothing shared: every chain keyed apart
        assert shared == [compute_point(p, seed) for p in points]

    def test_placement_axis_sweep_plans_cold_and_matches_no_share(self):
        spec = paired_spec(sweep_axis="n", sweep_values=(10.0, 12.0))
        groups = plan_tasks(build_sweep(spec, runs=2, seed=1))
        assert all(not g.warm and len(g.points) == 1 for g in groups)
        shared = run_sweep(spec, runs=2, seed=1)
        cold = run_sweep(spec, runs=2, seed=1, warm_start=False)
        assert shared.metrics == cold.metrics
        assert shared.stderr == cold.stderr

    def test_delta_rounds_decomposes_into_steps_sweep_points(self):
        # the motivating identity: sampling round k of a delta_rounds
        # trace equals the steps=k point of a paired delta sweep — the
        # checkpoint tree makes the sweep cost one trace, not sum(k)
        rounds_spec = replace(
            get_scenario("fig12-move-rounds"),
            n=10,
            strategies=("Minim", "CP"),
            sweep_values=(4.0,),
        )
        sweep_spec = steps_spec(sweep_values=(1.0, 2.0, 3.0, 4.0))
        by_rounds = run_sweep(rounds_spec, runs=2, seed=8)
        by_points = run_sweep(sweep_spec, runs=2, seed=8)
        for metric in by_rounds.metrics:
            for strategy in by_rounds.metrics[metric]:
                assert by_rounds.metrics[metric][strategy] == pytest.approx(
                    by_points.metrics[metric][strategy]
                )

    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    def test_every_registered_scenario_is_timeline_equivalent(self, name):
        # the acceptance criterion: checkpoint-timeline series are
        # byte-identical to cold execution for all registered scenarios
        spec = get_scenario(name)
        shrunk = replace(
            spec,
            n=min(spec.n, 12),
            strategies=("Minim",),
            sweep_values=spec.sweep_values[: 1 if spec.measure == "delta_rounds" else 2],
        )
        shared = run_sweep(shrunk, runs=2, seed=17)
        cold = run_sweep(shrunk, runs=2, seed=17, warm_start=False)
        a, b = shared.to_dict(), cold.to_dict()
        a.pop("notes"), b.pop("notes")  # notes record the computed/cached split
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class _DictStore:
    """Minimal in-memory checkpoint table (the duck type trees need)."""

    def __init__(self):
        self.links: dict[str, dict] = {}
        self.puts = 0

    def put_checkpoint(self, key: str, payload: dict) -> bool:
        self.puts += 1
        if key in self.links:
            return False
        # force the JSON round trip every real store performs
        self.links[key] = json.loads(json.dumps(payload))
        return True

    def get_checkpoint(self, key: str) -> dict | None:
        return self.links.get(key)


def steps_point(steps: int):
    spec = steps_spec()
    return replace(spec, mobility=replace(spec.mobility, steps=steps))


# ----------------------------------------------------------------------
# Chained trees: delta links, byte budgets, store-backed sharing
# ----------------------------------------------------------------------
class TestChainedCheckpointTree:
    def test_default_tree_is_not_chained(self):
        assert not CheckpointTree().chained

    def test_env_budget_makes_trees_chained(self, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_MEM_MB", "64")
        tree = CheckpointTree()
        assert tree.chained
        assert tree._max_bytes == 64_000_000

    def test_budget_starved_walk_matches_cold(self):
        # max_bytes=1 evicts every live state the moment the next one
        # lands; resumes must come back through delta rebuilds and the
        # member results must stay byte-identical to cold execution
        (group,) = plan_tasks(build_sweep(steps_spec(), runs=1, seed=3))
        tree = CheckpointTree(max_bytes=1)
        shared = compute_group(group.points, group.seed, tree=tree)
        cold = [compute_point(point, group.seed) for point in group.points]
        assert json.dumps(shared) == json.dumps(cold)
        assert tree.delta_stored > 0
        assert tree.delta_bytes > 0

    def test_rebuild_from_link_only_chain(self):
        # live=False records the serialized link without keeping state:
        # resume must walk the chain to the fresh root and apply every
        # delta forward, landing byte-identical to the cold walk
        from repro.sim.timeline import _ExecState

        seed = np.random.SeedSequence(3)
        point = steps_point(4)
        plan = build_plan(point, seed)
        tree = CheckpointTree(store=_DictStore())
        state = _ExecState.fresh(plan.strategies)
        for stage in plan.stages[:3]:
            state.apply_stage(stage, plan.measure)
            tree.checkpoint(stage.key, state, live=False)
        assert len(tree) == 0  # links only, no live state
        resumed, start = tree.resume(plan)
        assert start == 3
        assert tree.rebuilds == 1
        assert tree.delta_applied == 3
        for stage in plan.stages[start:]:
            resumed.apply_stage(stage, plan.measure)
        assert resumed.result(plan.measure) == compute_point(point, seed)

    def test_broken_chain_names_the_missing_link(self):
        from repro.sim.timeline import _ExecState

        store = _DictStore()
        plan = build_plan(steps_point(4), np.random.SeedSequence(3))
        tree = CheckpointTree(store=store)
        state = _ExecState.fresh(plan.strategies)
        for stage in plan.stages[:2]:
            state.apply_stage(stage, plan.measure)
            tree.checkpoint(stage.key, state, live=False)
        root = plan.stages[0].key
        del store.links[root]
        fresh_tree = CheckpointTree(store=store)
        with pytest.raises(ConfigurationError, match=root):
            fresh_tree.resume(plan)

    def test_store_backed_chain_is_shared_across_trees(self):
        # the fleet scenario in miniature: a second tree (a second
        # process) resumes the prefix a first tree walked, paying only
        # the rounds beyond the deepest stored boundary
        store = _DictStore()
        (g1,) = plan_tasks(build_sweep(steps_spec(sweep_values=(2.0, 4.0)), runs=1, seed=3))
        compute_group(g1.points, g1.seed, store=store)
        assert store.links  # join + resume + final boundaries persisted
        deep = steps_spec(sweep_values=(2.0, 4.0, 6.0, 8.0))
        (g2,) = plan_tasks(build_sweep(deep, runs=1, seed=3))
        tree2 = CheckpointTree(store=store)
        shared = compute_group(g2.points, g2.seed, tree=tree2)
        assert tree2.rebuilds >= 1  # picked up at least one stored boundary
        cold = [compute_point(point, g2.seed) for point in g2.points]
        assert json.dumps(shared) == json.dumps(cold)

    def test_duplicate_checkpoints_write_each_link_once(self):
        store = _DictStore()
        (group,) = plan_tasks(build_sweep(steps_spec(), runs=1, seed=3))
        compute_group(group.points, group.seed, store=store)
        before = dict(store.links)
        compute_group(group.points, group.seed, store=store)
        # second walk resumes from the store; identical content keys
        # mean no link is ever rewritten with different bytes
        assert store.links == before


class TestExecStateForkIsolation:
    def _walked(self, upto: int):
        from repro.sim.timeline import _ExecState

        plan = build_plan(steps_point(4), np.random.SeedSequence(11))
        state = _ExecState.fresh(plan.strategies)
        for stage in plan.stages[:upto]:
            state.apply_stage(stage, plan.measure)
        return plan, state

    def test_fork_mutations_never_leak_into_the_parent(self):
        plan, state = self._walked(3)
        frozen = json.dumps(state.delta_payload(), sort_keys=True)
        fork = state.fork()
        for stage in plan.stages[3:]:
            fork.apply_stage(stage, plan.measure)
        assert json.dumps(state.delta_payload(), sort_keys=True) == frozen

    def test_stored_checkpoint_is_immune_to_later_walking(self):
        # the tree stores a fork; the producer keeps walking its own
        # state — resuming later must replay from the boundary, not
        # from wherever the producer has wandered to
        plan, state = self._walked(3)
        tree = CheckpointTree()
        tree.checkpoint(plan.stages[2].key, state)
        for stage in plan.stages[3:]:
            state.apply_stage(stage, plan.measure)
        resumed, start = tree.resume(plan)
        assert start == 3
        for stage in plan.stages[start:]:
            resumed.apply_stage(stage, plan.measure)
        assert resumed.result(plan.measure) == state.result(plan.measure)

    def test_delta_payload_round_trips_measurement_state(self):
        from repro.sim.timeline import _decode_baselines, _encode_baselines

        _, state = self._walked(3)
        payload = json.loads(json.dumps(state.delta_payload()))
        assert payload["kind"] == "exec-delta"
        assert payload["base"] is None and payload["base_version"] == 0
        decoded = _decode_baselines(payload["baselines"])
        assert decoded == state.baselines
        assert _encode_baselines(decoded) == payload["baselines"]


class TestChainedScenarioEquivalence:
    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    def test_every_scenario_chained_equals_cold(self, name):
        # the acceptance criterion with delta checkpointing ON: a
        # store-backed chained walk, and a second walk resuming purely
        # from stored links (max_bytes=0 evicts all live state), both
        # byte-identical to cold execution
        spec = get_scenario(name)
        shrunk = replace(
            spec,
            n=min(spec.n, 12),
            strategies=("Minim",),
            sweep_values=spec.sweep_values[: 1 if spec.measure == "delta_rounds" else 2],
        )
        store = _DictStore()
        for group in plan_tasks(build_sweep(shrunk, runs=1, seed=17)):
            cold = [compute_point(point, group.seed) for point in group.points]
            first = compute_group(group.points, group.seed, store=store)
            assert json.dumps(first) == json.dumps(cold)
            tree = CheckpointTree(store=store, max_bytes=0)
            again = compute_group(group.points, group.seed, tree=tree)
            assert json.dumps(again) == json.dumps(cold)


class TestGroupStageTokens:
    def test_planned_groups_carry_member_tokens(self):
        sweep = build_sweep(paired_spec(), runs=1, seed=5)
        (group,) = plan_tasks(sweep)
        assert len(group.stage_tokens) == len(group.points)
        assert len(set(group.stage_tokens)) == 1  # grouped because tokens agree
        assert group.stage_tokens[0] == prefix_token(group.points[0], group.seed)

    def test_tokens_survive_the_payload_round_trip(self):
        from repro.sim.executor import group_from_payload, group_payload

        (group,) = plan_tasks(build_sweep(paired_spec(), runs=1, seed=5))
        payload = json.loads(json.dumps(group_payload(group)))
        assert group_from_payload(payload).stage_tokens == group.stage_tokens

    def test_tokenless_legacy_payload_recomputes_tokens(self):
        from repro.sim.executor import group_from_payload, group_payload

        (group,) = plan_tasks(build_sweep(paired_spec(), runs=1, seed=5))
        payload = group_payload(group)
        del payload["stage_tokens"]
        assert group_from_payload(payload).stage_tokens == group.stage_tokens

    def test_subset_shrinks_all_member_tuples(self):
        (group,) = plan_tasks(build_sweep(paired_spec(), runs=1, seed=5))
        shrunk = group.subset([0, 2])
        assert shrunk.indices == (group.indices[0], group.indices[2])
        assert shrunk.keys == (group.keys[0], group.keys[2])
        assert shrunk.stage_tokens == (group.stage_tokens[0], group.stage_tokens[2])
        assert shrunk.warm == group.warm


# ----------------------------------------------------------------------
# Serializable checkpoints: replay snapshot/restore, chained graph restores
# ----------------------------------------------------------------------
class TestReplaySnapshotRestore:
    def _replayed(self, upto: int):
        rng = np.random.default_rng(21)
        configs = sample_configs(14, rng)
        replay = MultiStrategyReplay([make_strategy("Minim"), make_strategy("CP")])
        for cfg in configs[:upto]:
            replay.apply(JoinEvent(cfg))
        return configs, replay

    def test_restore_mid_chain_continues_byte_identically(self):
        configs, live = self._replayed(10)
        # full JSON round trip: checkpoints must survive serialization
        snap = json.loads(json.dumps(live.snapshot()))
        restored = MultiStrategyReplay.restore(snap)
        for replay in (live, restored):
            for cfg in configs[10:]:
                replay.apply(JoinEvent(cfg))
        for lane_l, lane_r in zip(live.lanes, restored.lanes):
            assert lane_l.assignment == lane_r.assignment
            assert lane_l.metrics.snapshot() == lane_r.metrics.snapshot()
            assert lane_l.metrics.records == lane_r.metrics.records

    def test_chained_snapshot_restore_chain(self):
        # snapshot -> restore -> replay -> snapshot -> restore: the
        # checkpoint-tree lifecycle, pinned end to end
        configs, live = self._replayed(8)
        hop1 = MultiStrategyReplay.restore(live.snapshot())
        for cfg in configs[8:11]:
            hop1.apply(JoinEvent(cfg))
            live.apply(JoinEvent(cfg))
        hop2 = MultiStrategyReplay.restore(json.loads(json.dumps(hop1.snapshot())))
        for cfg in configs[11:]:
            hop2.apply(JoinEvent(cfg))
            live.apply(JoinEvent(cfg))
        assert hop2.snapshot() == live.snapshot()

    def test_unknown_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="replay snapshot schema"):
            MultiStrategyReplay.restore({"schema": 9})

    def test_lane_state_refuses_wrong_strategy(self):
        _, live = self._replayed(5)
        state = live.lanes[0].state_dict()
        from repro.sim.network import StrategyLane

        with pytest.raises(ConfigurationError, match="lane state is for strategy"):
            StrategyLane(make_strategy("CP")).load_state(state)


class TestDigraphSnapshotVersioning:
    def test_snapshot_records_the_propagation_model(self):
        from repro.topology.digraph import AdHocDigraph

        g = AdHocDigraph()
        snap = g.snapshot()
        assert snap["schema"] == 3
        assert snap["propagation"] == "FreeSpacePropagation"
        assert AdHocDigraph.restore(snap).snapshot() == snap  # idempotent chain

    def test_legacy_schema_1_still_restores(self):
        from repro.topology.digraph import AdHocDigraph

        g = AdHocDigraph()
        for cfg in sample_configs(6, np.random.default_rng(2)):
            g.add_node(cfg)
        snap = g.snapshot()
        legacy = {k: v for k, v in snap.items() if k != "propagation"}
        legacy["schema"] = 1
        # Schema 1 recorded the dense N×N counter block, not triples.
        n = len(snap["nodes"])
        dense = [[0] * n for _ in range(n)]
        for u, v, count in snap["c2"]:
            dense[u][v] = count
        legacy["c2"] = dense
        h = AdHocDigraph.restore(legacy)
        assert h.snapshot()["nodes"] == snap["nodes"]
        assert h.snapshot()["edges"] == snap["edges"]

    def test_non_default_propagation_must_be_supplied(self):
        from repro.geometry.obstacles import RectObstacle
        from repro.topology.digraph import AdHocDigraph
        from repro.topology.propagation import FreeSpacePropagation, ObstructedPropagation

        prop = ObstructedPropagation((RectObstacle(40.0, 40.0, 60.0, 60.0),))
        g = AdHocDigraph(prop)
        snap = g.snapshot()
        assert snap["propagation"] == "ObstructedPropagation"
        with pytest.raises(ConfigurationError, match="propagation model"):
            AdHocDigraph.restore(snap)
        with pytest.raises(ConfigurationError, match="was given"):
            AdHocDigraph.restore(snap, propagation=FreeSpacePropagation())
        restored = AdHocDigraph.restore(snap, propagation=prop)
        assert type(restored.propagation) is ObstructedPropagation
