"""The results backends: artifacts, manifests, series, and sweep resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.series import ExperimentSeries
from repro.errors import ConfigurationError
from repro.sim.registry import get_scenario
from repro.sim.results import (
    CheckpointScope,
    JsonDirBackend,
    ResultsStore,
    SqliteBackend,
    migrate_store,
    open_backend,
    seed_token,
    spec_digest,
)
from repro.sim.sweep import build_sweep, run_sweep


def tiny_spec():
    from dataclasses import replace

    return replace(
        get_scenario("paper-join"),
        n=8,
        strategies=("Minim",),
        sweep_values=(6.0, 8.0),
    )


class TestKeys:
    def test_spec_digest_stable_and_sensitive(self):
        spec = tiny_spec()
        assert spec_digest(spec) == spec_digest(spec)
        from dataclasses import replace

        assert spec_digest(spec) != spec_digest(replace(spec, n=9))
        assert spec_digest(spec) != spec_digest(spec, extra={"runs": 3})

    def test_seed_token_int_and_seedsequence(self):
        assert seed_token(7) == "int-7"
        root = np.random.SeedSequence(5)
        child = root.spawn(2)[1]
        assert seed_token(root) == "ss-5-root"
        assert seed_token(child) == "ss-5-1"
        # identity follows the derivation path, not the object
        assert seed_token(np.random.SeedSequence(5).spawn(2)[1]) == seed_token(child)


class TestStoreIO:
    def test_point_roundtrip(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.load_point("abc") is None
        store.save_point("abc", [[1.0, 2.0, 3.0]], context={"run": 0})
        assert store.load_point("abc") == [[1.0, 2.0, 3.0]]
        payload = json.loads(store.point_path("abc").read_text())
        assert payload["context"] == {"run": 0}

    def test_corrupt_point_raises(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.point_path("bad").parent.mkdir(parents=True)
        store.point_path("bad").write_text("{not json")
        with pytest.raises(ConfigurationError, match="corrupt"):
            store.load_point("bad")

    def test_series_roundtrip(self, tmp_path):
        store = ResultsStore(tmp_path)
        series = ExperimentSeries(
            experiment="exp-x",
            x_label="N",
            x_values=[1.0, 2.0],
            metrics={"recodings": {"Minim": [1.0, 2.0]}},
            runs=2,
            stderr={"recodings": {"Minim": [0.1, 0.2]}},
        )
        store.save_series(series)
        loaded = store.load_series("exp-x")
        assert loaded == series
        assert store.list_series() == ["exp-x"]

    def test_missing_series_lists_catalog(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(ConfigurationError, match="no stored series"):
            store.load_series("nope")

    def test_results_store_is_the_json_backend(self):
        # backwards compatibility: the pre-refactor class name resolves
        assert ResultsStore is JsonDirBackend

    def test_corrupt_manifest_raises_with_path(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.manifest_path("bad")
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match=str(path)):
            store.load_manifest("bad")

    def test_corrupt_series_raises_with_path(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.series_path("bad")
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match=str(path)):
            store.load_series("bad")


class TestSqliteBackend:
    def test_point_roundtrip(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        assert store.load_point("abc") is None
        store.save_point("abc", [[1.0, 2.0, 3.0]], context={"run": 0})
        assert store.load_point("abc") == [[1.0, 2.0, 3.0]]
        assert store.load_point_record("abc")["context"] == {"run": 0}
        assert store.list_points() == ["abc"]

    def test_manifest_and_series_roundtrip(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        store.save_manifest("sw", {"runs": 2})
        assert store.load_manifest("sw") == {"runs": 2}
        series = ExperimentSeries(
            experiment="exp-s",
            x_label="N",
            x_values=[1.0],
            metrics={"recodings": {"Minim": [1.0]}},
            runs=1,
        )
        store.save_series(series)
        assert store.load_series("exp-s") == series
        assert store.list_series() == ["exp-s"]
        with pytest.raises(ConfigurationError, match="no stored series"):
            store.load_series("nope")

    def test_tasks_roundtrip(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        assert store.pending_task_keys() == []
        store.save_task("t1", {"k": 1})
        assert store.load_task("t1") == {"k": 1}
        assert store.pending_task_keys() == ["t1"]
        store.delete_task("t1")
        store.delete_task("t1")  # idempotent
        assert store.load_task("t1") is None

    def test_directory_path_resolves_to_store_sqlite(self, tmp_path):
        store = SqliteBackend(tmp_path)
        assert store.path.name == "store.sqlite"

    def test_load_points_bulk_matches_per_key(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        keys = [f"k{i}" for i in range(7)]
        for i, key in enumerate(keys[:5]):
            store.save_point(key, [[float(i)]])
        bulk = store.load_points(keys)
        assert bulk == {key: store.load_point(key) for key in keys[:5]}
        assert store.load_points([]) == {}

    def test_reads_never_create_the_database(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        assert store.load_point("x") is None
        assert store.load_manifest("x") is None
        assert store.list_points() == []
        assert store.list_claims() == []
        assert not store.path.exists()


class TestOpenBackend:
    def test_sniffs_sqlite_suffix_and_existing_file(self, tmp_path):
        assert open_backend(tmp_path / "a.sqlite").kind == "sqlite"
        assert open_backend(tmp_path / "a.db").kind == "sqlite"
        assert open_backend(tmp_path / "plain-dir").kind == "json"
        sq = SqliteBackend(tmp_path / "made.sqlite")
        sq.save_task("t", {})
        assert open_backend(sq.path).kind == "sqlite"

    def test_dir_with_store_sqlite_routes_to_sqlite(self, tmp_path):
        SqliteBackend(tmp_path / "store.sqlite").save_task("t", {})
        backend = open_backend(tmp_path)
        assert backend.kind == "sqlite"

    def test_forced_kinds_and_bad_kind(self, tmp_path):
        assert open_backend(tmp_path, "json").kind == "json"
        assert open_backend(tmp_path / "x", "sqlite").kind == "sqlite"
        with pytest.raises(ConfigurationError, match="unknown results-backend"):
            open_backend(tmp_path, "parquet")

    def test_locator_round_trips(self, tmp_path):
        for backend in (JsonDirBackend(tmp_path / "j"), SqliteBackend(tmp_path / "s.sqlite")):
            reopened = open_backend(backend.locator)
            assert reopened.kind == backend.kind
            assert reopened.locator == backend.locator


class TestBackendParity:
    def test_sweep_series_identical_on_json_and_sqlite(self, tmp_path):
        # the ISSUE acceptance criterion: same spec+seed, either backend
        spec = tiny_spec()
        js = run_sweep(spec, runs=2, seed=3, store=JsonDirBackend(tmp_path / "j"))
        sq = run_sweep(spec, runs=2, seed=3, store=SqliteBackend(tmp_path / "s.sqlite"))
        assert js.metrics == sq.metrics
        assert js.stderr == sq.stderr
        assert js.x_values == sq.x_values

    def test_migrate_json_to_sqlite_preserves_everything(self, tmp_path):
        src = JsonDirBackend(tmp_path / "j")
        run_sweep(tiny_spec(), runs=1, seed=3, store=src)
        dst = SqliteBackend(tmp_path / "s.sqlite")
        counts = migrate_store(src, dst)
        assert counts["points"] == 2 and counts["series"] == 1 and counts["manifests"] == 1
        for key in src.list_points():
            assert dst.load_point_record(key) == src.load_point_record(key)
        exp = src.list_series()[0]
        assert dst.load_series(exp) == src.load_series(exp)
        # and back again
        back = JsonDirBackend(tmp_path / "j2")
        migrate_store(dst, back)
        assert back.load_series(exp) == src.load_series(exp)

    def test_compact_folds_points_and_resume_survives(self, tmp_path):
        store = JsonDirBackend(tmp_path / "st")
        spec = tiny_spec()
        run_sweep(spec, runs=1, seed=3, store=store)
        compacted = store.compact()
        assert compacted.kind == "sqlite"
        assert not (tmp_path / "st" / "points").exists()
        # open_backend on the original root now finds the sqlite store
        reopened = open_backend(tmp_path / "st")
        assert reopened.kind == "sqlite"
        again = run_sweep(spec, runs=1, seed=3, store=reopened)
        assert "0 points computed, 2 from cache" in again.notes


class TestChurnAndQuarantine:
    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_lease_break_counters(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        assert backend.lease_breaks("k") == 0
        assert backend.record_lease_break("k") == 1
        assert backend.record_lease_break("k") == 2
        assert backend.record_lease_break("other") == 1
        assert backend.lease_break_counts() == {"k": 2, "other": 1}
        backend.reset_lease_breaks("k")
        backend.reset_lease_breaks("k")  # idempotent
        assert backend.lease_breaks("k") == 0

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_breaking_a_stale_lease_is_counted(self, tmp_path, backend_cls):
        import time as _time

        backend = backend_cls(tmp_path / "store")
        assert backend.try_claim("k", "dead", ttl=0.05)
        _time.sleep(0.1)
        assert backend.try_claim("k", "breaker", ttl=0.05)
        assert backend.lease_breaks("k") == 1
        # a vanilla release-then-claim cycle is not churn
        backend.release_claim("k")
        assert backend.try_claim("k", "next", ttl=60.0)
        assert backend.lease_breaks("k") == 1

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_quarantine_round_trip(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        backend.save_task("k", {"schema": 1, "x": 2})
        backend.record_lease_break("k")
        assert backend.quarantine_task("k", reason="why")
        assert backend.load_task("k") is None
        assert backend.pending_task_keys() == []
        record = backend.load_quarantined("k")
        assert record["payload"] == {"schema": 1, "x": 2}
        assert record["reason"] == "why" and record["lease_breaks"] == 1
        assert backend.quarantine_task("k") is True  # idempotent re-park
        assert backend.requeue_quarantined("k")
        assert backend.load_task("k") == {"schema": 1, "x": 2}
        assert backend.list_quarantined() == []
        assert backend.lease_breaks("k") == 0
        assert backend.requeue_quarantined("k") is False
        assert backend.quarantine_task("never-published") is False

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_claim_info_reports_owner_and_age(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        assert backend.claim_info() == {}
        assert backend.try_claim("k", "worker-x", ttl=60.0)
        info = backend.claim_info()
        assert list(info) == ["k"]
        assert info["k"]["owner"] == "worker-x"
        assert 0.0 <= info["k"]["age"] < 30.0

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_claim_age_single_key_lookup(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        assert backend.claim_age("k") is None
        assert backend.try_claim("k", "worker-x", ttl=60.0)
        age = backend.claim_age("k")
        assert age is not None and 0.0 <= age < 30.0
        backend.release_claim("k")
        assert backend.claim_age("k") is None

    def test_racing_breakers_count_one_eviction_once(self, tmp_path):
        # the breaker that goes on to WIN the claim does the accounting;
        # a breaker that loses the race must not also bump the counter
        import time as _time

        backend = JsonDirBackend(tmp_path / "store")
        assert backend.try_claim("k", "dead", ttl=0.05)
        _time.sleep(0.1)
        # simulate the losing breaker: the lease vanished under it (a
        # peer broke it first) and the peer's fresh claim now exists
        backend.claim_path("k").unlink()
        assert backend.try_claim("k", "winner", ttl=0.05)
        assert backend.lease_breaks("k") == 0  # winner saw no stale lease
        # the normal single-breaker path still counts exactly once
        _time.sleep(0.1)
        assert backend.try_claim("k", "breaker", ttl=0.05)
        assert backend.lease_breaks("k") == 1

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_queue_stats_aggregates(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        empty = backend.queue_stats()
        assert empty["tasks"] == empty["claims"] == empty["quarantined"] == 0
        backend.save_task("a", {"schema": 1})
        backend.save_task("b", {"schema": 1})
        backend.try_claim("a", "w", ttl=60.0)
        backend.record_lease_break("b")
        backend.quarantine_task("b", reason="r")
        backend.save_point("p", [[1.0, 2.0, 3.0]])
        stats = backend.queue_stats()
        assert stats["points"] == 1 and stats["tasks"] == 1
        assert stats["claims"] == 1 and stats["oldest_claim_age"] >= 0.0
        assert stats["quarantined"] == 1 and stats["lease_breaks"] == 1
        assert stats["backend"] == backend.kind and stats["locator"] == backend.locator

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_iter_point_records_matches_per_key_loads(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        for i in range(3):
            backend.save_point(f"k{i}", [[float(i)]], context={"run": i})
        records = dict(backend.iter_point_records())
        assert records == {k: backend.load_point_record(k) for k in backend.list_points()}


class TestCheckpointTable:
    def _link(self, base=None, version=10, points=None):
        payload = {
            "schema": 1,
            "kind": "exec-delta",
            "base": base,
            "base_version": 0,
            "version": version,
            "replay": {"schema": 1},
            "baselines": None,
            "samples": [],
        }
        if points is not None:
            payload["points"] = points
        return payload

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_put_is_conditional_first_writer_wins(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        assert backend.get_checkpoint("k1") is None
        assert backend.put_checkpoint("k1", self._link(version=3)) is True
        # content keys mean racers carry identical payloads; the loser's
        # write is simply a no-op, never an overwrite
        assert backend.put_checkpoint("k1", self._link(version=99)) is False
        assert backend.get_checkpoint("k1")["version"] == 3
        assert backend.list_checkpoints() == ["k1"]

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_delete_and_stats(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        backend.put_checkpoint("a", self._link())
        backend.put_checkpoint("b", self._link(base="a", version=20))
        backend.get_checkpoint("a")
        backend.get_checkpoint("missing")
        stats = backend.checkpoint_stats()
        assert stats["count"] == 2 and stats["bytes"] > 0
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 2
        backend.delete_checkpoint("a")
        backend.delete_checkpoint("a")  # idempotent
        assert backend.list_checkpoints() == ["b"]

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_queue_stats_carries_the_checkpoint_row(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        assert backend.queue_stats()["checkpoints"].get("count", 0) == 0
        backend.put_checkpoint("a", self._link())
        stats = backend.queue_stats()["checkpoints"]
        assert stats["count"] == 1 and stats["bytes"] > 0

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_scope_stamps_the_groups_points(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        scope = CheckpointScope(backend, points=["pA", "pB"])
        assert scope.put_checkpoint("k", self._link()) is True
        assert backend.get_checkpoint("k")["points"] == ["pA", "pB"]
        assert scope.get_checkpoint("k") == backend.get_checkpoint("k")
        bare = CheckpointScope(backend, points=[])
        bare.put_checkpoint("k2", self._link())
        assert "points" not in backend.get_checkpoint("k2")

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_gc_keeps_only_manifest_referenced_links(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        backend.save_manifest("sw", {"points": ["pA", "pB"]})
        backend.put_checkpoint("live", self._link(points=["pA"]))
        backend.put_checkpoint("orphan", self._link(points=["gone"]))
        backend.put_checkpoint("unstamped", self._link())
        result = backend.gc_checkpoints()
        assert result == {"kept": 1, "removed": 2}
        assert backend.list_checkpoints() == ["live"]
        assert backend.checkpoint_stats()["gc_removed"] == 2

    def test_migrate_carries_checkpoints_both_ways(self, tmp_path):
        src = JsonDirBackend(tmp_path / "j")
        src.put_checkpoint("k", self._link(points=["p"]))
        dst = SqliteBackend(tmp_path / "s.sqlite")
        counts = migrate_store(src, dst)
        assert counts["checkpoints"] == 1
        assert dst.get_checkpoint("k") == src.get_checkpoint("k")
        back = JsonDirBackend(tmp_path / "j2")
        assert migrate_store(dst, back)["checkpoints"] == 1
        assert back.get_checkpoint("k") == src.get_checkpoint("k")

    def test_compact_gcs_then_folds_checkpoints_away(self, tmp_path):
        store = JsonDirBackend(tmp_path / "st")
        store.save_manifest("sw", {"points": ["pA"]})
        store.put_checkpoint("live", self._link(points=["pA"]))
        store.put_checkpoint("orphan", self._link(points=["zz"]))
        compacted = store.compact()
        assert compacted.kind == "sqlite"
        assert not (tmp_path / "st" / "checkpoints").exists()
        # the fold prunes unreferenced links and carries the survivors
        assert compacted.list_checkpoints() == ["live"]


class TestSweepResume:
    def test_identical_rerun_hits_cache_entirely(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = tiny_spec()
        first = run_sweep(spec, runs=2, seed=3, store=store)
        assert "4 points computed, 0 from cache" in first.notes
        second = run_sweep(spec, runs=2, seed=3, store=store)
        assert "0 points computed, 4 from cache" in second.notes
        assert first.metrics == second.metrics
        assert first.x_values == second.x_values

    def test_extending_runs_recomputes_only_new_points(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = tiny_spec()
        run_sweep(spec, runs=1, seed=3, store=store)
        grown = run_sweep(spec, runs=2, seed=3, store=store)
        # runs=1 wrote points for run 0; runs=2 reuses them (same seed
        # derivation path) and computes only run 1.
        assert "2 points computed, 2 from cache" in grown.notes

    def test_no_resume_recomputes(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = tiny_spec()
        run_sweep(spec, runs=1, seed=3, store=store)
        again = run_sweep(spec, runs=1, seed=3, store=store, resume=False)
        assert "2 points computed, 0 from cache" in again.notes

    def test_cache_is_spec_sensitive(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = tiny_spec()
        run_sweep(spec, runs=1, seed=3, store=store)
        other_seed = run_sweep(spec, runs=1, seed=4, store=store)
        assert "2 points computed" in other_seed.notes

    def test_points_persist_independently_of_sweep_completion(self, tmp_path):
        # Points are saved by the workers as they land (also across a
        # real process pool), so a sweep that dies before assembling its
        # series still leaves resumable artifacts: wiping the manifest
        # and series must not force recomputation.
        store = ResultsStore(tmp_path)
        spec = tiny_spec()
        run_sweep(spec, runs=1, seed=3, store=store, processes=2)
        for artifact in list(tmp_path.glob("sweeps/*")) + list(tmp_path.glob("series/*")):
            artifact.unlink()
        again = run_sweep(spec, runs=1, seed=3, store=store)
        assert "0 points computed, 2 from cache" in again.notes

    def test_manifest_written(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = tiny_spec()
        run_sweep(spec, runs=2, seed=3, store=store)
        sweep = build_sweep(spec, runs=2, seed=3)
        manifest = store.load_manifest(sweep.sweep_key)
        assert manifest is not None
        assert manifest["computed"] == 4 and manifest["cached"] == 0
        assert manifest["core"] in {"array", "dict", "dense"}
        assert len(manifest["points"]) == 4
        for key in manifest["points"]:
            assert store.point_path(key).exists()

    def test_cached_series_loadable_for_reports(self, tmp_path):
        from repro.analysis.report import panels_from_store, render_report

        store = ResultsStore(tmp_path)
        run_sweep(tiny_spec(), runs=1, seed=3, store=store)
        panels = panels_from_store(
            store,
            [("scenario-paper-join", "Fig X", "max_color", "colors stay bounded")],
        )
        doc = render_report("T", "intro", panels)
        assert "scenario-paper-join" in doc and "max_color" in doc
