"""Tests for random network generation, workloads and RNG plumbing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.random_networks import sample_configs
from repro.sim.rng import rng_from, spawn_seeds
from repro.sim.workloads import (
    join_workload,
    movement_rounds,
    power_raise_workload,
)


class TestSampleConfigs:
    def test_paper_parameters(self):
        rng = np.random.default_rng(0)
        cfgs = sample_configs(100, rng)
        assert len(cfgs) == 100
        assert all(0 <= c.x <= 100 and 0 <= c.y <= 100 for c in cfgs)
        assert all(20.5 <= c.tx_range <= 30.5 for c in cfgs)
        assert [c.node_id for c in cfgs] == list(range(1, 101))

    def test_custom_id_start(self):
        cfgs = sample_configs(3, np.random.default_rng(0), id_start=10)
        assert [c.node_id for c in cfgs] == [10, 11, 12]

    def test_deterministic(self):
        a = sample_configs(5, np.random.default_rng(3))
        b = sample_configs(5, np.random.default_rng(3))
        assert a == b

    def test_invalid_ranges(self):
        with pytest.raises(ConfigurationError):
            sample_configs(1, np.random.default_rng(0), min_range=0.0)
        with pytest.raises(ConfigurationError):
            sample_configs(1, np.random.default_rng(0), min_range=5.0, max_range=4.0)

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            sample_configs(-1, np.random.default_rng(0))


class TestJoinWorkload:
    def test_order_preserved(self):
        cfgs = sample_configs(5, np.random.default_rng(0))
        events = join_workload(cfgs)
        assert [e.config for e in events] == cfgs


class TestPowerRaiseWorkload:
    def test_half_of_nodes_by_default(self):
        cfgs = sample_configs(10, np.random.default_rng(0))
        events = power_raise_workload(cfgs, 2.0, np.random.default_rng(1))
        assert len(events) == 5
        by_id = {c.node_id: c for c in cfgs}
        for ev in events:
            assert ev.new_range == pytest.approx(by_id[ev.node_id].tx_range * 2.0)

    def test_no_duplicate_nodes(self):
        cfgs = sample_configs(20, np.random.default_rng(0))
        events = power_raise_workload(cfgs, 3.0, np.random.default_rng(1))
        ids = [e.node_id for e in events]
        assert len(ids) == len(set(ids))

    def test_fraction(self):
        cfgs = sample_configs(10, np.random.default_rng(0))
        assert len(power_raise_workload(cfgs, 2.0, np.random.default_rng(0), fraction=0.3)) == 3

    def test_invalid_raisefactor(self):
        cfgs = sample_configs(4, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            power_raise_workload(cfgs, 0.5, np.random.default_rng(0))

    def test_invalid_fraction(self):
        cfgs = sample_configs(4, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            power_raise_workload(cfgs, 2.0, np.random.default_rng(0), fraction=1.5)


class TestMovementRounds:
    def test_rounds_structure(self):
        cfgs = sample_configs(6, np.random.default_rng(0))
        rounds = movement_rounds(cfgs, 3, 40.0, np.random.default_rng(1))
        assert len(rounds) == 3
        for rd in rounds:
            assert [e.node_id for e in rd] == [c.node_id for c in cfgs]

    def test_positions_stay_in_area(self):
        cfgs = sample_configs(10, np.random.default_rng(0))
        for rd in movement_rounds(cfgs, 5, 80.0, np.random.default_rng(1)):
            for ev in rd:
                assert 0.0 <= ev.x <= 100.0 and 0.0 <= ev.y <= 100.0

    def test_displacement_bounded(self):
        cfgs = sample_configs(8, np.random.default_rng(0))
        pos = {c.node_id: (c.x, c.y) for c in cfgs}
        for rd in movement_rounds(cfgs, 4, 15.0, np.random.default_rng(1)):
            for ev in rd:
                x0, y0 = pos[ev.node_id]
                # clamping can only shrink the step
                assert np.hypot(ev.x - x0, ev.y - y0) <= 15.0 + 1e-9
                pos[ev.node_id] = (ev.x, ev.y)

    def test_zero_disp_keeps_positions(self):
        cfgs = sample_configs(4, np.random.default_rng(0))
        rounds = movement_rounds(cfgs, 2, 0.0, np.random.default_rng(1))
        for rd in rounds:
            for ev, cfg in zip(rd, cfgs):
                assert (ev.x, ev.y) == (cfg.x, cfg.y)

    def test_invalid_params(self):
        cfgs = sample_configs(2, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            movement_rounds(cfgs, -1, 10.0, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            movement_rounds(cfgs, 1, -5.0, np.random.default_rng(0))


class TestRng:
    def test_rng_from_int(self):
        assert rng_from(3).random() == rng_from(3).random()

    def test_rng_from_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert rng_from(g) is g

    def test_spawn_seeds_stable(self):
        a = spawn_seeds(42, 5)
        b = spawn_seeds(42, 5)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert len(a) == 5

    def test_spawn_seeds_prefix_stable(self):
        # Child i does not depend on how many siblings are spawned.
        a = spawn_seeds(42, 3)
        b = spawn_seeds(42, 10)
        for x, y in zip(a, b):
            assert np.random.default_rng(x).random() == np.random.default_rng(y).random()

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
