"""Snapshot warm starts: digraph snapshot/restore, replay forks, sweeps."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.events.base import JoinEvent
from repro.sim.network import MultiStrategyReplay
from repro.sim.random_networks import sample_configs
from repro.sim.registry import get_scenario
from repro.sim.scenarios import scenario_phases
from repro.sim.sweep import build_sweep, plan_tasks, run_sweep
from repro.strategies import make_strategy
from repro.topology.digraph import AdHocDigraph


def paired_spec(**overrides):
    spec = replace(
        get_scenario("fig11-power"),
        n=12,
        strategies=("Minim", "CP"),
        sweep_values=(2.0, 3.0, 4.0),
    )
    return replace(spec, **overrides) if overrides else spec


def _graph_state(graph: AdHocDigraph):
    ids, adj = graph.adjacency()
    cids, conflicts = graph.conflict_adjacency()
    return (ids, adj.tolist(), cids, conflicts.tolist(), graph.configs())


# ----------------------------------------------------------------------
# AdHocDigraph.snapshot() / restore()
# ----------------------------------------------------------------------
class TestDigraphSnapshot:
    @pytest.mark.parametrize("dense", [False, True], ids=["grid", "dense"])
    def test_restore_then_replay_matches_uninterrupted_graph(self, dense):
        rng = np.random.default_rng(11)
        cfgs = sample_configs(25, rng)
        g = AdHocDigraph(dense_conflicts=dense)
        for c in cfgs[:15]:
            g.add_node(c)
        # full JSON round trip: snapshots must survive serialization
        snap = json.loads(json.dumps(g.snapshot()))
        h = AdHocDigraph.restore(snap)
        for graph in (g, h):
            for c in cfgs[15:]:
                graph.add_node(c)
            graph.move_node(cfgs[2].node_id, 5.0, 95.0)
            graph.set_range(cfgs[4].node_id, cfgs[4].tx_range * 3.0)
            graph.remove_node(cfgs[7].node_id)
        assert _graph_state(g) == _graph_state(h)

    def test_snapshot_preserves_version_and_mode(self):
        g = AdHocDigraph()
        for c in sample_configs(5, np.random.default_rng(0)):
            g.add_node(c)
        snap = g.snapshot()
        h = AdHocDigraph.restore(snap)
        assert not h.dense_conflicts
        assert h.snapshot() == snap

    def test_empty_graph_round_trips(self):
        g = AdHocDigraph()
        h = AdHocDigraph.restore(g.snapshot())
        assert len(h) == 0
        h.add_node(sample_configs(1, np.random.default_rng(0))[0])
        assert len(h) == 1

    def test_unknown_schema_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="snapshot schema"):
            AdHocDigraph.restore({"schema": 99})


# ----------------------------------------------------------------------
# MultiStrategyReplay.fork()
# ----------------------------------------------------------------------
class TestReplayFork:
    def test_fork_then_replay_equals_cold_rebuild(self):
        # the acceptance criterion: snapshot -> restore -> replay must be
        # byte-equivalent to rebuilding from scratch
        spec = replace(paired_spec(), sweep_values=(3.0,))
        from repro.sim.scenarios import resolve_sweep

        point = resolve_sweep(spec, 3.0)
        seed = np.random.SeedSequence(42)

        phases = scenario_phases(point, np.random.default_rng(seed))
        base = MultiStrategyReplay([make_strategy(s) for s in point.strategies])
        for ev in phases.baseline:
            base.apply(ev)
        fork = base.fork()
        for round_events in phases.rounds:
            for ev in round_events:
                fork.apply(ev)

        cold_phases = scenario_phases(point, np.random.default_rng(seed))
        cold = MultiStrategyReplay([make_strategy(s) for s in point.strategies])
        for ev in cold_phases.events:
            cold.apply(ev)

        assert _graph_state(fork.graph) == _graph_state(cold.graph)
        for lane_f, lane_c in zip(fork.lanes, cold.lanes):
            assert lane_f.assignment == lane_c.assignment
            assert lane_f.metrics.snapshot() == lane_c.metrics.snapshot()
            assert lane_f.metrics.records == lane_c.metrics.records

    def test_fork_is_isolated_from_base(self):
        cfgs = sample_configs(10, np.random.default_rng(3))
        base = MultiStrategyReplay([make_strategy("Minim")])
        for c in cfgs[:8]:
            base.apply(JoinEvent(c))
        before = (_graph_state(base.graph), base.lanes[0].assignment.as_dict())
        fork = base.fork()
        for c in cfgs[8:]:
            fork.apply(JoinEvent(c))
        assert (_graph_state(base.graph), base.lanes[0].assignment.as_dict()) == before
        assert len(fork.graph) == 10 and len(base.graph) == 8

    def test_two_forks_diverge_independently(self):
        cfgs = sample_configs(12, np.random.default_rng(9))
        base = MultiStrategyReplay([make_strategy("Minim")])
        for c in cfgs[:10]:
            base.apply(JoinEvent(c))
        f1, f2 = base.fork(), base.fork()
        f1.apply(JoinEvent(cfgs[10]))
        f2.apply(JoinEvent(cfgs[11]))
        assert cfgs[10].node_id in f1.graph and cfgs[10].node_id not in f2.graph
        assert cfgs[11].node_id in f2.graph and cfgs[11].node_id not in f1.graph


# ----------------------------------------------------------------------
# Warm-start sweeps through run_sweep
# ----------------------------------------------------------------------
class TestWarmSweeps:
    def test_paired_delta_sweep_identical_with_and_without_warm_start(self):
        warm = run_sweep(paired_spec(), runs=2, seed=6)  # warm by default
        cold = run_sweep(paired_spec(), runs=2, seed=6, warm_start=False)
        assert warm.metrics == cold.metrics
        assert warm.stderr == cold.stderr
        assert warm.x_values == cold.x_values

    def test_fig12_style_maxdisp_sweep_identical(self):
        spec = replace(
            get_scenario("fig12-move-disp"),
            n=10,
            strategies=("Minim",),
            sweep_values=(10.0, 30.0),
        )
        warm = run_sweep(spec, runs=2, seed=8)
        cold = run_sweep(spec, runs=2, seed=8, warm_start=False)
        assert warm.metrics == cold.metrics
        assert warm.stderr == cold.stderr

    def test_plan_groups_paired_delta_sweeps_per_run(self):
        sweep = build_sweep(paired_spec(), runs=2, seed=6)
        groups = plan_tasks(sweep)
        assert len(groups) == 2  # one warm group per run
        assert all(g.warm and len(g.points) == 3 for g in groups)
        # opt-out: one singleton per (point, run)
        singles = plan_tasks(sweep, warm_start=False)
        assert len(singles) == 6
        assert all(not g.warm and len(g.points) == 1 for g in singles)

    def test_placement_axes_never_warm_group(self):
        # a paired delta sweep over n would diverge at the baseline;
        # planning must keep those as singleton (cold) groups
        spec = replace(
            paired_spec(),
            sweep_axis="n",
            sweep_values=(10.0, 12.0),
            power=get_scenario("fig11-power").power,
        )
        groups = plan_tasks(build_sweep(spec, runs=2, seed=1))
        assert all(not g.warm for g in groups)

    def test_partially_cached_warm_group_shrinks(self, tmp_path):
        from repro.sim.results import JsonDirBackend

        store = JsonDirBackend(tmp_path)
        spec = paired_spec()
        full = run_sweep(spec, runs=1, seed=6, store=store)
        # drop one of the three point artifacts: the run's warm group
        # must shrink to the missing member instead of recomputing all
        victim = store.list_points()[0]
        store.point_path(victim).unlink()
        again = run_sweep(spec, runs=1, seed=6, store=store)
        assert "1 points computed, 2 from cache" in again.notes
        assert again.metrics == full.metrics
