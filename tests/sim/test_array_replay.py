"""Array core on vs off: byte-identical sweeps, replays and checkpoints.

The array conflict core and the contiguous color lanes are execution
knobs, not state: every registered scenario must produce byte-identical
series with ``REPRO_ARRAY`` on and off — including through the
checkpoint-tree timeline — and snapshots written by either core must
restore into the other and continue identically.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.coloring.assignment import ArrayCodeAssignment, CodeAssignment
from repro.sim.network import MultiStrategyReplay
from repro.sim.registry import available_scenarios, get_scenario
from repro.sim.scenarios import resolve_sweep, scenario_trace
from repro.sim.sweep import run_sweep
from repro.strategies import make_strategy
from repro.topology.digraph import AdHocDigraph


def _shrunk(name):
    spec = get_scenario(name)
    return replace(
        spec,
        n=min(spec.n, 12),
        strategies=("Minim",),
        sweep_values=spec.sweep_values[: 1 if spec.measure == "delta_rounds" else 2],
    )


def _series_dict(spec, *, seed=23, warm_start=None):
    series = run_sweep(spec, runs=2, seed=seed, warm_start=warm_start)
    out = series.to_dict()
    out.pop("notes")  # notes record the computed/cached split, not results
    return json.dumps(out, sort_keys=True)


class TestSweepsIdenticalAcrossCores:
    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    def test_registered_scenario_is_core_independent(self, name, monkeypatch):
        # the tentpole acceptance criterion: array-on output is
        # byte-identical to array-off for every registered scenario,
        # through the default checkpoint-tree timeline
        spec = _shrunk(name)
        monkeypatch.setenv("REPRO_ARRAY", "1")
        with_array = _series_dict(spec)
        monkeypatch.setenv("REPRO_ARRAY", "0")
        without = _series_dict(spec)
        assert with_array == without

    def test_core_independent_through_cold_replay_too(self, monkeypatch):
        spec = _shrunk("fig12-move-rounds")
        monkeypatch.setenv("REPRO_ARRAY", "1")
        warm = _series_dict(spec, warm_start=True)
        monkeypatch.setenv("REPRO_ARRAY", "0")
        cold = _series_dict(spec, warm_start=False)
        assert warm == cold


def _replay_events(n=14, seed=5):
    spec = resolve_sweep(replace(get_scenario("random-waypoint"), n=n), 4.0)
    _, events = scenario_trace(spec, np.random.default_rng(seed))
    return events


def _lane_states(replay):
    return [lane.state_dict() for lane in replay.lanes]


class TestCrossCoreSnapshots:
    @pytest.mark.parametrize("writer,reader", [(True, False), (False, True)])
    def test_digraph_snapshot_round_trips_between_cores(self, writer, reader):
        events = _replay_events()
        g = AdHocDigraph(array_core=writer)
        for ev in events[:10]:
            g.apply_event(ev)
        snap = g.snapshot()
        restored = AdHocDigraph.restore(snap, array_core=reader)
        assert restored.core == ("array" if reader else "dict")
        assert restored.snapshot() == snap  # idempotent across the core swap
        # both continue identically from the restore point
        cont = AdHocDigraph.restore(snap, array_core=writer)
        for ev in events[10:]:
            restored.apply_event(ev)
            cont.apply_event(ev)
        assert restored.snapshot() == cont.snapshot()

    @pytest.mark.parametrize("writer", ["0", "1"])
    def test_replay_checkpoint_restores_under_either_core(self, writer, monkeypatch):
        events = _replay_events()
        monkeypatch.setenv("REPRO_ARRAY", writer)
        replay = MultiStrategyReplay([make_strategy("Minim"), make_strategy("CP")])
        replay.run(events[:10])
        checkpoint = replay.snapshot()
        states = _lane_states(replay)
        for reader in ("0", "1"):
            monkeypatch.setenv("REPRO_ARRAY", reader)
            resumed = MultiStrategyReplay.restore(checkpoint)
            assert resumed.snapshot() == checkpoint
            assert _lane_states(resumed) == states
            resumed.run(events[10:])
            monkeypatch.setenv("REPRO_ARRAY", writer)
            straight = MultiStrategyReplay.restore(checkpoint).run(events[10:])
            assert resumed.snapshot() == straight.snapshot()
            assert _lane_states(resumed) == _lane_states(straight)


class TestLaneContainers:
    def test_lanes_follow_the_graph_core(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY", "1")
        replay = MultiStrategyReplay([make_strategy("Minim")])
        assert isinstance(replay.lanes[0].assignment, ArrayCodeAssignment)
        monkeypatch.setenv("REPRO_ARRAY", "0")
        replay = MultiStrategyReplay([make_strategy("Minim")])
        assert isinstance(replay.lanes[0].assignment, CodeAssignment)
        assert not isinstance(replay.lanes[0].assignment, ArrayCodeAssignment)

    def test_fork_preserves_the_container_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY", "1")
        replay = MultiStrategyReplay([make_strategy("Minim")])
        replay.run(_replay_events(n=8)[:6])
        fork = replay.fork()
        assert isinstance(fork.lanes[0].assignment, ArrayCodeAssignment)
        assert fork.lanes[0].assignment.as_dict() == replay.lanes[0].assignment.as_dict()
