"""Conflict cores on vs off: byte-identical sweeps, replays, checkpoints.

The conflict cores (dict, array, sparse) and the contiguous color
lanes are execution knobs, not state: every registered scenario must
produce byte-identical series under ``REPRO_ARRAY`` on/off and
``REPRO_SPARSE=1`` — including through the checkpoint-tree timeline —
and snapshots written by any core must restore into any other and
continue identically.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.coloring.assignment import ArrayCodeAssignment, CodeAssignment
from repro.sim.network import MultiStrategyReplay
from repro.sim.registry import available_scenarios, get_scenario
from repro.sim.scenarios import resolve_sweep, scenario_trace
from repro.sim.sweep import run_sweep
from repro.strategies import make_strategy
from repro.topology.digraph import AdHocDigraph


def _set_core_env(monkeypatch, core):
    monkeypatch.setenv("REPRO_ARRAY", "0" if core == "dict" else "1")
    monkeypatch.setenv("REPRO_SPARSE", "1" if core == "sparse" else "0")


def _shrunk(name):
    spec = get_scenario(name)
    return replace(
        spec,
        n=min(spec.n, 12),
        strategies=("Minim",),
        sweep_values=spec.sweep_values[: 1 if spec.measure == "delta_rounds" else 2],
    )


def _series_dict(spec, *, seed=23, warm_start=None):
    series = run_sweep(spec, runs=2, seed=seed, warm_start=warm_start)
    out = series.to_dict()
    out.pop("notes")  # notes record the computed/cached split, not results
    return json.dumps(out, sort_keys=True)


class TestSweepsIdenticalAcrossCores:
    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    def test_registered_scenario_is_core_independent(self, name, monkeypatch):
        # the tentpole acceptance criterion: array-on and sparse-on
        # output is byte-identical to array-off for every registered
        # scenario, through the default checkpoint-tree timeline
        spec = _shrunk(name)
        _set_core_env(monkeypatch, "array")
        with_array = _series_dict(spec)
        _set_core_env(monkeypatch, "dict")
        without = _series_dict(spec)
        assert with_array == without
        _set_core_env(monkeypatch, "sparse")
        with_sparse = _series_dict(spec)
        assert with_sparse == with_array

    def test_core_independent_through_cold_replay_too(self, monkeypatch):
        spec = _shrunk("fig12-move-rounds")
        monkeypatch.setenv("REPRO_ARRAY", "1")
        warm = _series_dict(spec, warm_start=True)
        monkeypatch.setenv("REPRO_ARRAY", "0")
        cold = _series_dict(spec, warm_start=False)
        assert warm == cold


def _replay_events(n=14, seed=5):
    spec = resolve_sweep(replace(get_scenario("random-waypoint"), n=n), 4.0)
    _, events = scenario_trace(spec, np.random.default_rng(seed))
    return events


def _lane_states(replay):
    return [lane.state_dict() for lane in replay.lanes]


_CORE_KWARGS = {
    "dict": dict(array_core=False),
    "array": dict(array_core=True),
    "sparse": dict(sparse_core=True),
}


class TestCrossCoreSnapshots:
    @pytest.mark.parametrize(
        "writer,reader",
        [(w, r) for w in _CORE_KWARGS for r in _CORE_KWARGS if w != r],
    )
    def test_digraph_snapshot_round_trips_between_cores(self, writer, reader):
        events = _replay_events()
        g = AdHocDigraph(**_CORE_KWARGS[writer])
        for ev in events[:10]:
            g.apply_event(ev)
        snap = g.snapshot()
        restored = AdHocDigraph.restore(snap, **_CORE_KWARGS[reader])
        assert restored.core == reader
        assert restored.snapshot() == snap  # idempotent across the core swap
        # both continue identically from the restore point
        cont = AdHocDigraph.restore(snap, **_CORE_KWARGS[writer])
        for ev in events[10:]:
            restored.apply_event(ev)
            cont.apply_event(ev)
        assert restored.snapshot() == cont.snapshot()

    @pytest.mark.parametrize("writer", ["dict", "array", "sparse"])
    def test_replay_checkpoint_restores_under_any_core(self, writer, monkeypatch):
        events = _replay_events()
        _set_core_env(monkeypatch, writer)
        replay = MultiStrategyReplay([make_strategy("Minim"), make_strategy("CP")])
        replay.run(events[:10])
        checkpoint = replay.snapshot()
        states = _lane_states(replay)
        for reader in ("dict", "array", "sparse"):
            _set_core_env(monkeypatch, reader)
            resumed = MultiStrategyReplay.restore(checkpoint)
            assert resumed.snapshot() == checkpoint
            assert _lane_states(resumed) == states
            resumed.run(events[10:])
            _set_core_env(monkeypatch, writer)
            straight = MultiStrategyReplay.restore(checkpoint).run(events[10:])
            assert resumed.snapshot() == straight.snapshot()
            assert _lane_states(resumed) == _lane_states(straight)


class TestLaneContainers:
    def test_lanes_follow_the_graph_core(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPARSE", raising=False)
        monkeypatch.setenv("REPRO_ARRAY", "1")
        replay = MultiStrategyReplay([make_strategy("Minim")])
        assert isinstance(replay.lanes[0].assignment, ArrayCodeAssignment)
        monkeypatch.setenv("REPRO_ARRAY", "0")
        replay = MultiStrategyReplay([make_strategy("Minim")])
        assert isinstance(replay.lanes[0].assignment, CodeAssignment)
        assert not isinstance(replay.lanes[0].assignment, ArrayCodeAssignment)
        # the sparse core keeps the contiguous slot-aligned lanes
        monkeypatch.setenv("REPRO_SPARSE", "1")
        replay = MultiStrategyReplay([make_strategy("Minim")])
        assert replay.graph.core == "sparse"
        assert isinstance(replay.lanes[0].assignment, ArrayCodeAssignment)

    def test_fork_preserves_the_container_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY", "1")
        replay = MultiStrategyReplay([make_strategy("Minim")])
        replay.run(_replay_events(n=8)[:6])
        fork = replay.fork()
        assert isinstance(fork.lanes[0].assignment, ArrayCodeAssignment)
        assert fork.lanes[0].assignment.as_dict() == replay.lanes[0].assignment.as_dict()


def _rounds(events, size):
    return [events[i : i + size] for i in range(0, len(events), size)]


class TestRoundReplay:
    """``MultiStrategyReplay.apply_round``: round-commit semantics.

    Lane reactions observe the post-round graph, so recode *choices*
    may legitimately differ from the sequential path — but the graph
    itself must land byte-identically, every assignment must stay
    conflict-free, and the per-event result lists must stay aligned
    with the round's events.
    """

    @pytest.mark.parametrize("core", ["array", "sparse"])
    def test_rounds_land_on_the_sequential_graph_state(self, core, monkeypatch):
        _set_core_env(monkeypatch, core)
        events = _replay_events(n=16, seed=9)
        rounds = _rounds(events, 5)
        batched = MultiStrategyReplay([make_strategy("Minim")]).run_rounds(rounds)
        sequential = MultiStrategyReplay([make_strategy("Minim")]).run(events)
        assert batched.graph.snapshot() == sequential.graph.snapshot()
        from repro.coloring.verify import is_valid

        for lane in batched.lanes:
            assert is_valid(batched.graph, lane.assignment)  # recodes stay valid

    def test_result_lists_align_with_events(self, monkeypatch):
        _set_core_env(monkeypatch, "sparse")
        events = _replay_events(n=12, seed=3)
        replay = MultiStrategyReplay([make_strategy("Minim"), make_strategy("CP")])
        for round_events in _rounds(events, 4):
            results = replay.apply_round(round_events)
            assert len(results) == len(round_events)

    def test_node_joining_and_leaving_within_a_round_is_skipped(self, monkeypatch):
        from repro.events.base import JoinEvent, LeaveEvent
        from repro.topology.node import NodeConfig

        _set_core_env(monkeypatch, "sparse")
        replay = MultiStrategyReplay([make_strategy("Minim")])
        replay.run(_replay_events(n=8, seed=1)[:8])
        base = replay.graph.snapshot()
        round_events = [
            JoinEvent(NodeConfig(901, 5.0, 5.0, 20.0)),
            JoinEvent(NodeConfig(902, 8.0, 5.0, 20.0)),
            LeaveEvent(901),  # ephemeral: lanes never saw it
        ]
        results = replay.apply_round(round_events)
        assert len(results) == 3
        assert results[0] == [] and results[2] == []  # join+leave suppressed
        assert 901 not in replay.graph and 902 in replay.graph
        assert replay.graph.snapshot() != base
        from repro.coloring.verify import is_valid

        for lane in replay.lanes:
            assert is_valid(replay.graph, lane.assignment)
