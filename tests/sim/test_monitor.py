"""Store observability: stats snapshots, watch loop, CSV export, CLI."""

from __future__ import annotations

import csv
import io
import time
from dataclasses import replace

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.sim.monitor import CSV_COLUMNS, StoreMonitor, WorkerStats, export_csv
from repro.sim.registry import get_scenario
from repro.sim.results import JsonDirBackend, SqliteBackend
from repro.sim.sweep import run_sweep


def tiny_spec():
    return replace(
        get_scenario("paper-join"),
        n=8,
        strategies=("Minim",),
        sweep_values=(6.0, 8.0),
    )


def _seeded_queue_state(backend):
    """A deterministic mid-drain store state, identical per backend."""
    backend.save_task("t-pending", {"schema": 1})
    backend.save_task("t-claimed", {"schema": 1})
    backend.save_task("t-poison", {"schema": 1})
    assert backend.try_claim("t-claimed", "worker-a", ttl=60.0)
    backend.record_lease_break("t-poison")
    backend.record_lease_break("t-poison")
    backend.quarantine_task("t-poison", reason="2 broken leases")
    backend.save_point("p1", [[1.0, 2.0, 3.0]], context={"worker": "worker-a", "saved_at": 100.0})
    backend.save_point("p2", [[1.0, 2.0, 3.0]], context={"worker": "worker-a", "saved_at": 104.0})
    backend.save_point("p3", [[1.0, 2.0, 3.0]], context={"worker": "worker-b", "saved_at": 102.0})


class TestStoreStats:
    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_snapshot_counts(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        _seeded_queue_state(backend)
        stats = StoreMonitor(backend).stats()
        assert stats.points == 3
        assert stats.tasks == 2 and stats.claims == 1 and stats.tasks_pending == 1
        assert stats.quarantined == 1 and stats.lease_breaks == 2
        assert stats.claim_details["t-claimed"]["owner"] == "worker-a"
        assert stats.claim_details["t-claimed"]["age"] >= 0
        assert stats.quarantine_reasons == {"t-poison": "2 broken leases"}

    def test_stats_consistent_across_backends(self, tmp_path):
        # the ISSUE acceptance criterion: identical state, identical stats
        snapshots = []
        for backend_cls, name in ((JsonDirBackend, "j"), (SqliteBackend, "s.sqlite")):
            backend = backend_cls(tmp_path / name)
            _seeded_queue_state(backend)
            stats = StoreMonitor(backend).stats()
            snapshots.append(
                (
                    stats.points,
                    stats.tasks,
                    stats.claims,
                    stats.quarantined,
                    stats.lease_breaks,
                    stats.quarantine_reasons,
                    {w.worker: w.points for w in stats.workers},
                )
            )
        assert snapshots[0] == snapshots[1]

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_per_worker_throughput(self, tmp_path, backend_cls):
        backend = backend_cls(tmp_path / "store")
        _seeded_queue_state(backend)
        workers = {w.worker: w for w in StoreMonitor(backend).worker_stats()}
        assert workers["worker-a"].points == 2
        assert workers["worker-a"].points_per_sec == pytest.approx(1 / 4.0)
        assert workers["worker-b"].points == 1
        assert workers["worker-b"].points_per_sec is None  # one point: no rate

    def test_unattributed_points_grouped(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite")
        backend.save_point("p", [[1.0, 2.0, 3.0]], context={"run": 0})
        (worker,) = StoreMonitor(backend).worker_stats()
        assert worker.worker == "<unattributed>" and worker.points == 1

    def test_workers_false_skips_the_point_walk(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite")
        _seeded_queue_state(backend)
        stats = StoreMonitor(backend).stats(workers=False)
        assert stats.workers == ()
        assert stats.points == 3  # aggregates still present

    def test_render_mentions_every_section(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite")
        _seeded_queue_state(backend)
        text = StoreMonitor(backend).stats().render()
        for needle in (
            "sqlite store",
            "quarantined 1",
            "lease breaks 2",
            "t-claimed",
            "owner=worker-a",
            "t-poison",
            "2 broken leases",
            "worker-b",
        ):
            assert needle in text, text

    def test_real_sweep_provenance_feeds_the_monitor(self, tmp_path):
        store = SqliteBackend(tmp_path / "s.sqlite")
        run_sweep(tiny_spec(), runs=2, seed=3, store=store, executor="worker")
        stats = StoreMonitor(store).stats()
        assert stats.points == 4 and stats.tasks == 0 and stats.quarantined == 0
        assert sum(w.points for w in stats.workers) == 4
        assert all(w.worker.startswith("orchestrator-") for w in stats.workers)


class TestWatch:
    def test_watch_prints_bounded_snapshots(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite")
        _seeded_queue_state(backend)
        out = io.StringIO()
        printed = StoreMonitor(backend).watch(interval=0.01, iterations=2, stream=out)
        assert printed == 2
        assert out.getvalue().count("sqlite store") == 2

    def test_watch_rejects_bad_interval(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite")
        with pytest.raises(ConfigurationError, match="interval"):
            StoreMonitor(backend).watch(interval=0.0, iterations=1)

    def test_worker_stats_rate_guard(self):
        w = WorkerStats(worker="w", points=3, first_saved_at=5.0, last_saved_at=5.0)
        assert w.points_per_sec is None  # zero span must not divide by zero


class TestExportCsv:
    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_point_rows_from_a_real_sweep(self, tmp_path, backend_cls):
        store = backend_cls(tmp_path / "store")
        run_sweep(tiny_spec(), runs=2, seed=3, store=store)
        out = tmp_path / "points.csv"
        assert export_csv(store, out) == 4
        rows = list(csv.DictReader(out.open()))
        assert len(rows) == 4
        assert set(rows[0]) == set(CSV_COLUMNS)
        assert {row["sweep_value"] for row in rows} == {"6.0", "8.0"}
        assert {row["run"] for row in rows} == {"0", "1"}
        assert all(row["strategy"] == "Minim" for row in rows)
        assert all(row["worker"].startswith("proc-") for row in rows)
        assert all(row["core"] in {"array", "dict", "dense"} for row in rows)
        assert all(float(row["recodings"]) >= 0 for row in rows)

    def test_delta_rounds_points_get_one_row_per_round(self, tmp_path):
        spec = replace(
            get_scenario("fig12-move-rounds"),
            n=8,
            strategies=("Minim",),
            sweep_values=(3.0,),
        )
        store = SqliteBackend(tmp_path / "s.sqlite")
        run_sweep(spec, runs=1, seed=4, store=store)
        buf = io.StringIO()
        assert export_csv(store, buf) == 3  # one point, three rounds
        rows = list(csv.DictReader(io.StringIO(buf.getvalue())))
        assert [row["round"] for row in rows] == ["1", "2", "3"]

    def test_foreign_points_without_context_are_tolerated(self, tmp_path):
        backend = SqliteBackend(tmp_path / "s.sqlite")
        backend.save_point("bare", [[1.0, 2.0, 3.0]])
        backend.save_point_record("weird", {"schema": 1, "result": "not-a-list"})
        buf = io.StringIO()
        assert export_csv(backend, buf) == 1
        (row,) = csv.DictReader(io.StringIO(buf.getvalue()))
        assert row["strategy"] == "s0" and row["max_color"] == "1.0"


class TestInspectQuarantined:
    """``store inspect KEY``: serial replay + auto-requeue triage."""

    def _parked_real_group(self, backend):
        """Publish one real task group and park it as poison."""
        from repro.sim.executor import group_payload
        from repro.sim.sweep import build_sweep, plan_tasks

        (group, *rest) = plan_tasks(build_sweep(tiny_spec(), runs=1, seed=3))
        backend.save_task(group.key, group_payload(group))
        for _ in range(3):
            backend.record_lease_break(group.key)
        assert backend.quarantine_task(group.key, reason="3 broken leases")
        return group

    @pytest.mark.parametrize("backend_cls", [JsonDirBackend, SqliteBackend])
    def test_success_saves_points_and_requeues(self, tmp_path, backend_cls):
        from repro.sim.monitor import inspect_quarantined

        backend = backend_cls(tmp_path / "store")
        group = self._parked_real_group(backend)
        stream = io.StringIO()
        summary = inspect_quarantined(backend, group.key, stream=stream)
        assert summary["members"] == 1 and summary["requeued"]
        assert summary["reason"] == "3 broken leases"
        assert backend.list_quarantined() == []
        assert backend.load_point(group.keys[0]) is not None
        assert backend.lease_breaks(group.key) == 0  # clean slate
        assert "replaying 1 member(s)" in stream.getvalue()
        # the requeued task now looks complete: one worker scan cleans it
        from repro.sim.executor import run_worker

        assert run_worker(backend, once=True) == 0  # cleaned, not recomputed
        assert backend.pending_task_keys() == []

    def test_inspecting_a_healthy_key_is_an_error(self, tmp_path):
        from repro.sim.monitor import inspect_quarantined

        backend = SqliteBackend(tmp_path / "s.sqlite")
        with pytest.raises(ConfigurationError, match="not quarantined"):
            inspect_quarantined(backend, "nope")

    def test_undecodable_descriptor_surfaces_the_decode_error(self, tmp_path):
        from repro.sim.monitor import inspect_quarantined

        backend = SqliteBackend(tmp_path / "s.sqlite")
        backend.save_task("t-bogus", {"schema": 1})  # malformed: no members
        backend.quarantine_task("t-bogus", reason="undecodable descriptor")
        with pytest.raises(ConfigurationError, match="malformed task descriptor"):
            inspect_quarantined(backend, "t-bogus", stream=io.StringIO())
        # triage failed: the task stays parked for the operator
        assert backend.list_quarantined() == ["t-bogus"]

    def test_store_inspect_cli_success(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        backend = SqliteBackend(db)
        group = self._parked_real_group(backend)
        assert main(["store", "inspect", str(db), group.key]) == 0
        out = capsys.readouterr().out
        assert "replay ok" in out and "requeued with a clean slate" in out

    def test_store_inspect_cli_needs_a_key(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        SqliteBackend(db)
        assert main(["store", "inspect", str(db)]) == 2
        assert "KEY" in capsys.readouterr().err

    def test_store_inspect_cli_undecodable_is_a_clean_error(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        backend = SqliteBackend(db)
        backend.save_task("t-bogus", {"schema": 1})
        backend.quarantine_task("t-bogus", reason="undecodable")
        assert main(["store", "inspect", str(db), "t-bogus"]) == 2
        assert "malformed task descriptor" in capsys.readouterr().err


class TestExportParquet:
    def test_missing_pyarrow_is_a_clean_configuration_error(self, tmp_path, monkeypatch):
        import sys as _sys

        from repro.sim.monitor import export_parquet

        # poison the import whether or not pyarrow is installed
        monkeypatch.setitem(_sys.modules, "pyarrow", None)
        backend = SqliteBackend(tmp_path / "s.sqlite")
        with pytest.raises(ConfigurationError, match="needs pyarrow"):
            export_parquet(backend, tmp_path / "points.parquet")

    def test_parquet_rows_carry_sweep_join_columns(self, tmp_path):
        pa = pytest.importorskip("pyarrow")
        pq = pytest.importorskip("pyarrow.parquet")

        from repro.sim.monitor import PARQUET_SWEEP_COLUMNS, export_parquet

        backend = SqliteBackend(tmp_path / "s.sqlite")
        run_sweep(tiny_spec(), runs=1, seed=3, store=backend)
        out = tmp_path / "points.parquet"
        rows = export_parquet(backend, out)
        table = pq.read_table(out)
        assert table.num_rows == rows == 2
        assert set(CSV_COLUMNS) | set(PARQUET_SWEEP_COLUMNS) == set(table.column_names)
        (sweep_key,) = backend.list_manifests()
        assert table.column("sweep_key").to_pylist() == [sweep_key, sweep_key]
        assert table.column("sweep_seed").to_pylist() == [3, 3]
        del pa  # importorskip handle

    def test_parquet_cli_flag_gates_cleanly_without_pyarrow(self, tmp_path, capsys, monkeypatch):
        import sys as _sys

        monkeypatch.setitem(_sys.modules, "pyarrow", None)
        db = tmp_path / "store.sqlite"
        run_sweep(tiny_spec(), runs=1, seed=3, store=SqliteBackend(db))
        rc = main(["store", "export", str(db), "--parquet", str(tmp_path / "p.parquet")])
        assert rc == 2
        assert "needs pyarrow" in capsys.readouterr().err


class TestStoreCliActions:
    def _quarantined_store(self, tmp_path):
        db = tmp_path / "store.sqlite"
        backend = SqliteBackend(db)
        _seeded_queue_state(backend)
        return db, backend

    def test_store_stats_cli(self, tmp_path, capsys):
        db, _ = self._quarantined_store(tmp_path)
        assert main(["store", "stats", str(db)]) == 0
        out = capsys.readouterr().out
        assert "quarantined 1" in out and "worker-a" in out

    def test_store_stats_no_workers(self, tmp_path, capsys):
        db, _ = self._quarantined_store(tmp_path)
        assert main(["store", "stats", str(db), "--no-workers"]) == 0
        assert "workers:" not in capsys.readouterr().out

    def test_store_watch_cli_iterations(self, tmp_path, capsys):
        db, _ = self._quarantined_store(tmp_path)
        rc = main(["store", "watch", str(db), "--interval", "0.01", "--iterations", "2"])
        assert rc == 0
        assert capsys.readouterr().out.count("sqlite store") == 2

    def test_store_requeue_cli_releases_everything(self, tmp_path, capsys):
        db, backend = self._quarantined_store(tmp_path)
        assert main(["store", "requeue", str(db)]) == 0
        out = capsys.readouterr().out
        assert "requeued t-poison" in out and "released 1 task(s)" in out
        assert backend.list_quarantined() == []
        assert "t-poison" in backend.pending_task_keys()
        assert backend.lease_breaks("t-poison") == 0

    def test_store_requeue_cli_unknown_key_fails(self, tmp_path, capsys):
        db, _ = self._quarantined_store(tmp_path)
        assert main(["store", "requeue", str(db), "--key", "nope"]) == 2
        assert "not quarantined" in capsys.readouterr().err

    def test_store_export_cli(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        run_sweep(tiny_spec(), runs=1, seed=3, store=SqliteBackend(db))
        out_csv = tmp_path / "points.csv"
        assert main(["store", "export", str(db), "--csv", str(out_csv)]) == 0
        assert "wrote 2 row(s)" in capsys.readouterr().out
        assert out_csv.read_text().startswith("point_key")

    def test_store_export_cli_stdout_and_missing_csv(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        run_sweep(tiny_spec(), runs=1, seed=3, store=SqliteBackend(db))
        assert main(["store", "export", str(db)]) == 2
        assert "--csv" in capsys.readouterr().err
        assert main(["store", "export", str(db), "--csv", "-"]) == 0
        assert "point_key" in capsys.readouterr().out

    def test_store_ls_reports_quarantined(self, tmp_path, capsys):
        db, _ = self._quarantined_store(tmp_path)
        assert main(["store", "ls", str(db)]) == 0
        assert "quarantined 1" in capsys.readouterr().out


class TestAdaptiveCliFlags:
    def test_ci_target_flag_runs_adaptively(self, tmp_path, capsys):
        rc = main(
            [
                "scenario",
                "sparse-long-range",
                "--runs",
                "2",
                "--strategies",
                "Minim",
                "--ci-target",
                "5.0",  # loose: converges at the starting budget
                "--ci-abs",
                "10.0",
                "--max-runs",
                "6",
                "--results",
                str(tmp_path / "store.sqlite"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "adaptive:" in out

    def test_max_runs_without_target_is_rejected(self, tmp_path, capsys):
        rc = main(["scenario", "sparse-long-range", "--runs", "1", "--max-runs", "4"])
        assert rc == 2
        assert "--ci-target" in capsys.readouterr().err

    def test_figure_commands_report_flag_errors_cleanly(self, capsys):
        # fig commands must print the same clean error as scenario, not
        # a raw traceback
        rc = main(["fig11", "--runs", "1", "--max-runs", "4"])
        assert rc == 2
        assert "--ci-target" in capsys.readouterr().err

    def test_parser_accepts_adaptive_flags_on_figures(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fig11", "--ci-target", "0.1", "--ci-abs", "0.5", "--max-runs", "16"]
        )
        assert args.ci_target == 0.1 and args.ci_abs == 0.5 and args.max_runs == 16


def test_watch_sleeps_between_snapshots(tmp_path):
    backend = JsonDirBackend(tmp_path / "store")
    start = time.monotonic()
    StoreMonitor(backend).watch(interval=0.05, iterations=3, stream=io.StringIO())
    assert time.monotonic() - start >= 0.1  # two sleeps of 0.05s
