"""Tests for event-trace serialization and replay."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.events.base import JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.sim.trace import (
    event_from_dict,
    event_to_dict,
    load_trace,
    replay,
    save_trace,
)
from repro.sim.workloads import join_workload, movement_rounds
from repro.strategies.minim import MinimStrategy
from repro.topology.node import NodeConfig

ALL_EVENTS = [
    JoinEvent(NodeConfig(1, 2.0, 3.0, tx_range=4.0)),
    LeaveEvent(1),
    MoveEvent(2, 5.0, 6.0),
    PowerChangeEvent(3, 7.5),
]


class TestRoundtrip:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.kind)
    def test_dict_roundtrip(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(ALL_EVENTS, path, note="unit test")
        loaded = load_trace(path)
        assert loaded == ALL_EVENTS
        doc = json.loads(path.read_text())
        assert doc["note"] == "unit test"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            event_from_dict({"kind": "explode"})

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v999.json"
        path.write_text(
            json.dumps({"format": "minim-cdma-trace", "version": 999, "events": []})
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)


class TestStagedPlanRoundtrip:
    def _plan(self):
        from dataclasses import replace

        from repro.sim.registry import get_scenario
        from repro.sim.timeline import build_plan

        spec = replace(
            get_scenario("fig12-move-rounds"),
            n=8,
            strategies=("Minim", "CP"),
            sweep_values=(3.0,),
        )
        return build_plan(spec, np.random.SeedSequence(4))

    def test_staged_plan_round_trips_with_keys_intact(self, tmp_path):
        from repro.sim.timeline import TracePlan

        plan = self._plan()
        path = tmp_path / "plan.json"
        save_trace(plan, path, note="staged")
        loaded = load_trace(path)
        assert isinstance(loaded, TracePlan)
        assert loaded == plan  # stages, events, keys, strategies, measure
        assert loaded.stage_keys == plan.stage_keys
        doc = json.loads(path.read_text())
        assert doc["version"] == 2 and doc["note"] == "staged"

    def test_flat_consumers_see_the_same_events(self, tmp_path):
        plan = self._plan()
        staged, flat = tmp_path / "staged.json", tmp_path / "flat.json"
        save_trace(plan, staged)
        save_trace(plan.events, flat)
        assert load_trace(staged).events == load_trace(flat)
        assert json.loads(flat.read_text())["version"] == 1

    def test_malformed_staged_doc_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(
            json.dumps(
                {
                    "format": "minim-cdma-trace",
                    "version": 2,
                    "strategies": ["Minim"],
                    "measure": "delta",
                    "stages": [{"kind": "join"}],  # no index/key/events
                }
            )
        )
        with pytest.raises(ConfigurationError, match="malformed staged trace"):
            load_trace(path)


class TestReplay:
    def test_replay_reproduces_live_run(self, tmp_path):
        rng = np.random.default_rng(5)
        configs = sample_configs(12, rng)
        events = list(join_workload(configs))
        for rd in movement_rounds(configs, 2, 30.0, rng):
            events.extend(rd)

        live = AdHocNetwork(MinimStrategy())
        replay(events, live)

        path = tmp_path / "t.json"
        save_trace(events, path)
        replayed = AdHocNetwork(MinimStrategy())
        results = replay(load_trace(path), replayed)

        assert replayed.assignment == live.assignment
        assert len(results) == len(events)
        assert replayed.metrics.total_recodings == live.metrics.total_recodings
