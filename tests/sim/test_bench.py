"""The event-loop benchmark harness and its JSON artifact."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.events.base import JoinEvent, MoveEvent
from repro.sim.bench import (
    drive_event_loop,
    drive_event_rounds,
    run_event_loop_bench,
    write_bench_json,
)
from repro.sim.random_networks import sample_configs


class TestDrive:
    def test_drive_runs_all_modes(self):
        events = [JoinEvent(c) for c in sample_configs(15, np.random.default_rng(0))]
        assert drive_event_loop(events, mode="array") > 0.0
        assert drive_event_loop(events, mode="grid") > 0.0
        assert drive_event_loop(events, mode="dense") > 0.0
        assert drive_event_loop(events, mode="sparse") > 0.0
        assert drive_event_loop(events, mode="sparse-scalar") > 0.0

    def test_unknown_mode_rejected(self):
        events = [JoinEvent(c) for c in sample_configs(5, np.random.default_rng(0))]
        with pytest.raises(ValueError):
            drive_event_loop(events, mode="bogus")
        with pytest.raises(ValueError):
            drive_event_rounds([events], mode="bogus")

    def test_setup_events_are_untimed_but_applied(self):
        configs = sample_configs(12, np.random.default_rng(0))
        setup = [JoinEvent(c) for c in configs]
        moves = [MoveEvent(c.node_id, c.x + 1.0, c.y) for c in configs[:4]]
        assert drive_event_loop(moves, mode="sparse", setup=setup) > 0.0

    def test_drive_rounds(self):
        configs = sample_configs(12, np.random.default_rng(0))
        setup = [JoinEvent(c) for c in configs]
        rounds = [
            [MoveEvent(c.node_id, c.x + dx, c.y) for c in configs[:5]]
            for dx in (1.0, 2.0, 3.0)
        ]
        assert drive_event_rounds(rounds, mode="sparse", setup=setup) > 0.0
        assert drive_event_rounds(rounds, mode="array", setup=setup) > 0.0

    def test_legacy_dense_conflicts_kwarg_still_maps(self):
        events = [JoinEvent(c) for c in sample_configs(10, np.random.default_rng(0))]
        assert drive_event_loop(events, dense_conflicts=False) > 0.0
        assert drive_event_loop(events, dense_conflicts=True) > 0.0


class TestBenchHarness:
    @pytest.fixture(scope="class")
    def entries(self):
        return run_event_loop_bench(n=24, runs=1, seed=5)

    def test_entry_schema(self, entries):
        assert len(entries) == 8  # 2 traces x 4 modes
        for e in entries:
            assert {"scenario", "n", "mode", "events", "wall_seconds", "events_per_sec"} <= set(e)
            assert e["events_per_sec"] > 0
            assert e["wall_seconds"] > 0
            assert e["peak_mem_mb"] > 0  # every entry tracks its memory

    def test_traces_and_modes_present(self, entries):
        assert {e["scenario"] for e in entries} == {"fig10-join", "random-waypoint"}
        assert {e["mode"] for e in entries} == {"array", "grid", "dense", "sparse"}

    def test_speedup_on_array_entries(self, entries):
        array = [e for e in entries if e["mode"] == "array"]
        assert len(array) == 2
        assert all("speedup_vs_dict" in e and e["speedup_vs_dict"] > 0 for e in array)
        assert all("speedup_vs_dict" not in e for e in entries if e["mode"] != "array")

    def test_speedup_on_grid_entries(self, entries):
        grid = [e for e in entries if e["mode"] == "grid"]
        assert all("speedup_vs_dense" in e and e["speedup_vs_dense"] > 0 for e in grid)
        assert all("speedup_vs_dense" not in e for e in entries if e["mode"] == "dense")

    def test_small_n_sparse_entries_publish_their_array_ratio(self, entries):
        # the honest small-N record: the sparse core is slower than the
        # array core here (ratio typically < 1), which is exactly why
        # auto-promotion waits for N >= 4096 — the field must be present
        # either way so the regression is visible in the artifact
        sparse = [e for e in entries if e["mode"] == "sparse"]
        assert len(sparse) == 2
        assert all("speedup_vs_array" in e and e["speedup_vs_array"] > 0 for e in sparse)

    def test_json_written(self, entries, tmp_path):
        path = write_bench_json(entries, tmp_path / "BENCH_eventloop.json")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(entries))  # round-trips losslessly

    def test_bad_runs_rejected(self):
        with pytest.raises(ValueError):
            run_event_loop_bench(n=8, runs=0)


class TestLargeNBench:
    def test_rejects_sub_scale_n(self):
        from repro.sim.bench import run_large_n_bench

        # the real n>=2000 measurement runs in CI's smoke-bench and
        # sparse-core jobs; the tier-1 suite only pins the guard rails
        with pytest.raises(ConfigurationError):
            run_large_n_bench(n=500)
        with pytest.raises(ConfigurationError):
            run_large_n_bench(runs=0)

    @pytest.fixture(scope="class")
    def entries(self):
        from repro.sim.bench import run_large_n_bench

        # the floor of the large-n regime: big enough to exercise every
        # leg (array, scalar baseline, bulk sparse, rounds) in seconds
        return run_large_n_bench(n=2000, runs=1, seed=5, max_mem_mb=256.0)

    def test_labels_carry_the_node_count_off_the_canonical_point(self, entries):
        # the regression gate keys on (scenario, mode): only the
        # canonical N=10^4 point may use the bare labels
        assert {e["scenario"] for e in entries} == {"large-join-2000", "large-rounds-2000"}
        assert all(e["n"] == 2000 for e in entries)

    def test_all_legs_and_gated_ratios_present(self, entries):
        assert [e["mode"] for e in entries] == [
            "array",
            "sparse-scalar",
            "sparse",
            "sparse-rounds",
        ]
        sparse = entries[2]
        assert sparse["speedup_vs_array"] > 0
        assert sparse["speedup_vs_pr7"] > 0  # bulk join vs the PR 7 loop
        assert entries[3]["round_batch_speedup"] > 0
        assert all(e["peak_mem_mb"] > 0 for e in entries)

    def test_comparison_legs_drop_beyond_their_ceilings(self, monkeypatch):
        import repro.sim.bench as bench

        # above the array/scalar ceilings (N=10^5 regime) only the bulk
        # sparse legs run, and the ratio fields vanish with their legs
        monkeypatch.setattr(bench, "_ARRAY_MAX_LARGE_N", 0)
        monkeypatch.setattr(bench, "_SCALAR_MAX_LARGE_N", 0)
        entries = bench.run_large_n_bench(n=2000, runs=1, seed=5, max_mem_mb=None)
        assert [e["mode"] for e in entries] == ["sparse", "sparse-rounds"]
        assert "speedup_vs_array" not in entries[0]
        assert "speedup_vs_pr7" not in entries[0]

    def test_memory_ceiling_enforced(self, monkeypatch):
        import repro.sim.bench as bench

        monkeypatch.setattr(bench, "_ARRAY_MAX_LARGE_N", 0)
        monkeypatch.setattr(bench, "_SCALAR_MAX_LARGE_N", 0)
        with pytest.raises(ConfigurationError, match="ceiling"):
            bench.run_large_n_bench(n=2000, runs=1, seed=5, max_mem_mb=0.001)


class TestWarmstartBench:
    @pytest.fixture(scope="class")
    def entries(self):
        from repro.sim.bench import run_warmstart_bench

        return run_warmstart_bench(n=20, runs=1, sweep_points=3, lanes=2, seed=5)

    def test_entry_schema(self, entries):
        assert [e["mode"] for e in entries] == ["cold", "warm"]
        for e in entries:
            assert e["scenario"] == "warmstart-delta-sweep"
            assert e["wall_seconds"] > 0 and e["events_per_sec"] > 0

    def test_both_modes_report_logical_events(self, entries):
        # same logical sweep either way, so events counts must match and
        # the events/sec ratio equals the recorded speedup
        assert entries[0]["events"] == entries[1]["events"]
        assert entries[1]["speedup_vs_cold"] > 0

    def test_bad_args_rejected(self):
        from repro.sim.bench import run_warmstart_bench

        with pytest.raises(ValueError):
            run_warmstart_bench(n=8, runs=0)
        with pytest.raises(ValueError):
            run_warmstart_bench(n=8, sweep_points=0)


class TestAdaptiveBench:
    @pytest.fixture(scope="class")
    def entries(self):
        from repro.sim.bench import run_adaptive_bench

        return run_adaptive_bench(runs=1, fixed_runs=8, seed=5)

    def test_entry_schema(self, entries):
        assert [e["mode"] for e in entries] == ["fixed", "adaptive"]
        for e in entries:
            assert e["scenario"] == "adaptive-sweep"
            assert e["wall_seconds"] > 0 and e["events_per_sec"] > 0

    def test_adaptive_never_exceeds_the_fixed_budget(self, entries):
        fixed, adaptive = entries
        assert fixed["events"] == 8 * fixed["sweep_points"]
        assert adaptive["events"] <= fixed["events"]
        assert adaptive["run_savings_vs_fixed"] == fixed["events"] / adaptive["events"]
        assert adaptive["run_savings_vs_fixed"] >= 1.0

    def test_workload_is_noisy_enough_to_exercise_the_growth_loop(self, entries):
        # if every point converged at the 2-run starting budget the gated
        # ratio would be the constant fixed_runs/2, blind to controller
        # regressions — the pinned spec must force at least one extra pass
        _, adaptive = entries
        assert adaptive["events"] > 2 * adaptive["sweep_points"]

    def test_run_counts_are_seed_deterministic(self, entries):
        from repro.sim.bench import run_adaptive_bench

        again = run_adaptive_bench(runs=1, fixed_runs=8, seed=5)
        assert [e["events"] for e in again] == [e["events"] for e in entries]

    def test_bad_args_rejected(self):
        from repro.sim.bench import run_adaptive_bench

        with pytest.raises(ValueError):
            run_adaptive_bench(runs=0)
        with pytest.raises(ValueError):
            run_adaptive_bench(fixed_runs=1)
