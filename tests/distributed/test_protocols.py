"""Tests for the message-driven protocol executions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distributed import (
    Message,
    MessageBus,
    MessageKind,
    run_distributed_cp_join,
    run_distributed_join,
)
from repro.errors import ProtocolError
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.cp import plan_cp_join
from repro.strategies.minim import MinimStrategy, plan_local_matching_recode


class TestMessageBus:
    def test_fifo_delivery(self):
        bus = MessageBus()
        seen = []
        bus.register(1, lambda m: seen.append(m.payload["i"]) or [])
        for i in range(5):
            bus.send(Message(0, 1, MessageKind.COMMIT, {"i": i}))
        bus.run_to_quiescence()
        assert seen == [0, 1, 2, 3, 4]

    def test_reply_chains(self):
        bus = MessageBus()
        log = []
        bus.register(
            1,
            lambda m: [Message(1, 2, MessageKind.COLOR_ACK, {})]
            if m.kind is MessageKind.SET_COLOR
            else [],
        )
        bus.register(2, lambda m: log.append(m.kind) or [])
        bus.send(Message(0, 1, MessageKind.SET_COLOR, {"color": 3}))
        delivered = bus.run_to_quiescence()
        assert delivered == 2
        assert log == [MessageKind.COLOR_ACK]
        assert bus.sent_total == 2
        assert bus.sent_by_kind[MessageKind.SET_COLOR] == 1

    def test_unregistered_destination_raises(self):
        bus = MessageBus()
        bus.send(Message(0, 9, MessageKind.COMMIT, {}))
        with pytest.raises(ProtocolError, match="unregistered"):
            bus.run_to_quiescence()

    def test_livelock_guard(self):
        bus = MessageBus()
        bus.register(1, lambda m: [Message(1, 1, MessageKind.COMMIT, {})])
        bus.send(Message(1, 1, MessageKind.COMMIT, {}))
        with pytest.raises(ProtocolError, match="quiesce"):
            bus.run_to_quiescence(max_deliveries=100)

    def test_double_register_rejected(self):
        bus = MessageBus()
        bus.register(1, lambda m: [])
        with pytest.raises(ProtocolError):
            bus.register(1, lambda m: [])

    def test_unregister(self):
        bus = MessageBus()
        bus.register(1, lambda m: [])
        bus.unregister(1)
        bus.send(Message(0, 1, MessageKind.COMMIT, {}))
        with pytest.raises(ProtocolError):
            bus.run_to_quiescence()


def network_with_pending_join(seed: int, n: int = 18):
    """A Minim network plus one inserted-but-uncolored joiner."""
    rng = np.random.default_rng(seed)
    configs = sample_configs(n, rng)
    net = AdHocNetwork(MinimStrategy(), validate=True)
    for cfg in configs[:-1]:
        net.join(cfg)
    net.graph.add_node(configs[-1])
    return net, configs[-1].node_id


class TestDistributedJoinEquivalence:
    @given(st.integers(0, 2_000))
    def test_changes_match_oracle(self, seed):
        net, joiner = network_with_pending_join(seed)
        oracle = plan_local_matching_recode(net.graph, net.assignment, joiner)
        stats = run_distributed_join(net.graph, net.assignment, joiner)
        assert stats.changes == oracle.changes

    def test_rounds_and_messages(self):
        net, joiner = network_with_pending_join(3)
        stats = run_distributed_join(net.graph, net.assignment, joiner)
        assert stats.rounds in (1, 3)
        in_deg = net.graph.in_degree(joiner)
        out_only = len(
            set(net.graph.out_neighbors(joiner)) - set(net.graph.in_neighbors(joiner))
        )
        floor = 2 * (in_deg + out_only)
        assert stats.messages >= floor

    def test_assignment_not_mutated(self):
        net, joiner = network_with_pending_join(4)
        before = net.assignment.copy()
        run_distributed_join(net.graph, net.assignment, joiner)
        assert net.assignment == before


class TestDistributedCPEquivalence:
    @given(st.integers(0, 2_000))
    def test_changes_match_oracle(self, seed):
        net, joiner = network_with_pending_join(seed)
        oracle = plan_cp_join(net.graph, net.assignment, joiner)
        stats = run_distributed_cp_join(net.graph, net.assignment, joiner)
        assert stats.changes == oracle.changes

    @given(st.integers(0, 500))
    def test_vicinity_variant_matches_too(self, seed):
        net, joiner = network_with_pending_join(seed, n=12)
        oracle = plan_cp_join(net.graph, net.assignment, joiner, vicinity_colors=True)
        stats = run_distributed_cp_join(
            net.graph, net.assignment, joiner, vicinity_colors=True
        )
        assert stats.changes == oracle.changes

    def test_rounds_bounded_by_reselect_size(self):
        net, joiner = network_with_pending_join(5)
        oracle = plan_cp_join(net.graph, net.assignment, joiner)
        stats = run_distributed_cp_join(net.graph, net.assignment, joiner)
        assert 1 <= stats.rounds <= max(len(oracle.reselect), 1)
