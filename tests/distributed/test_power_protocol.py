"""Tests for the distributed power-increase protocol."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.power_protocol import run_distributed_power_increase
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import MinimStrategy, plan_power_increase


def boosted_network(seed: int, factor: float, n: int = 16):
    """A Minim network with one node's range already enlarged."""
    rng = np.random.default_rng(seed)
    net = AdHocNetwork(MinimStrategy(), validate=True)
    for cfg in sample_configs(n, rng):
        net.join(cfg)
    v = int(rng.choice(net.node_ids()))
    net.graph.set_range(v, net.graph.range_of(v) * factor)
    return net, v


class TestEquivalence:
    @given(st.integers(0, 2_000), st.floats(1.2, 4.0))
    @settings(max_examples=20)
    def test_matches_oracle(self, seed, factor):
        net, v = boosted_network(seed, factor)
        oracle = plan_power_increase(net.graph, net.assignment, v)
        stats = run_distributed_power_increase(net.graph, net.assignment, v)
        assert stats.changes == oracle.changes

    def test_rounds(self):
        net, v = boosted_network(3, 3.0)
        stats = run_distributed_power_increase(net.graph, net.assignment, v)
        assert stats.rounds in (1, 2)
        # At least a request and a reply per out-neighbor.
        assert stats.messages >= 2 * net.graph.out_degree(v)

    def test_assignment_untouched(self):
        net, v = boosted_network(4, 2.5)
        before = net.assignment.copy()
        run_distributed_power_increase(net.graph, net.assignment, v)
        assert net.assignment == before
