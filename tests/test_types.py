"""Tests for repro.types."""

import pytest

from repro.types import NO_COLOR, validate_color


class TestValidateColor:
    def test_accepts_positive_int(self):
        assert validate_color(1) == 1
        assert validate_color(999) == 999

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            validate_color(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            validate_color(-3)

    def test_rejects_bool(self):
        with pytest.raises(ValueError, match="int"):
            validate_color(True)

    def test_rejects_float(self):
        with pytest.raises(ValueError, match="int"):
            validate_color(2.0)

    def test_no_color_sentinel_is_not_a_valid_color(self):
        with pytest.raises(ValueError):
            validate_color(NO_COLOR)
