"""Tests for the markdown report generator."""

from repro.analysis.report import PanelReport, render_report
from repro.analysis.series import ExperimentSeries
from repro.analysis.shape_checks import ShapeCheck


def series(name="fig10-join"):
    return ExperimentSeries(
        experiment=name,
        x_label="N",
        x_values=[10.0, 20.0],
        metrics={"recodings": {"Minim": [11.0, 22.0], "CP": [14.0, 30.0]}},
        runs=3,
    )


class TestPanelReport:
    def test_markdown_contains_table_and_claim(self):
        panel = PanelReport(
            panel="Fig 10(b)",
            metric="recodings",
            series=series(),
            paper_claim="Minim below CP.",
            checks=[ShapeCheck("Minim <= CP", True)],
        )
        md = panel.to_markdown()
        assert "### Fig 10(b)" in md
        assert "**Paper:** Minim below CP." in md
        assert "| N | Minim | CP |" in md
        assert "- [x] Minim <= CP" in md

    def test_failed_check_includes_detail(self):
        panel = PanelReport(
            panel="P",
            metric="recodings",
            series=series(),
            paper_claim="c",
            checks=[ShapeCheck("claim", False, detail="boom")],
        )
        assert "- [ ] claim — boom" in panel.to_markdown()


class TestRenderReport:
    def test_groups_by_experiment(self):
        panels = [
            PanelReport("A", "recodings", series("exp-one"), "claim a"),
            PanelReport("B", "recodings", series("exp-one"), "claim b"),
            PanelReport("C", "recodings", series("exp-two"), "claim c"),
        ]
        doc = render_report("Title", "Intro text.", panels)
        assert doc.startswith("# Title")
        assert doc.count("## exp-one") == 1
        assert doc.count("## exp-two") == 1
        assert doc.index("### A") < doc.index("### B") < doc.index("### C")
        assert doc.endswith("\n")
