"""Tests for analysis: stats, series, shape checks."""

import numpy as np
import pytest

from repro.analysis.series import ExperimentSeries
from repro.analysis.shape_checks import (
    ShapeCheck,
    check_all,
    check_join_shapes,
    check_move_shapes,
    check_power_shapes,
)
from repro.analysis.stats import mean_and_ci, summarize


class TestStats:
    def test_mean_and_ci_basics(self):
        s = mean_and_ci([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.ci_low < 2.0 < s.ci_high
        assert s.n == 3

    def test_single_observation(self):
        s = mean_and_ci([5.0])
        assert s.mean == s.ci_low == s.ci_high == 5.0
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_ci([])

    def test_summarize_shapes(self):
        data = np.arange(12, dtype=float).reshape(3, 4)
        mean, sem = summarize(data)
        assert mean.shape == (4,) and sem.shape == (4,)
        assert np.allclose(mean, data.mean(axis=0))

    def test_summarize_single_run(self):
        data = np.ones((1, 3))
        _, sem = summarize(data)
        assert (sem == 0).all()


def fake_series(minim, cp, bbb, metric="recodings"):
    return ExperimentSeries(
        experiment="test",
        x_label="N",
        x_values=[1.0, 2.0],
        metrics={
            metric: {"Minim": minim, "CP": cp, "BBB": bbb},
            "max_color": {"Minim": [3, 4], "CP": [3, 5], "BBB": [3, 4]},
        },
        runs=1,
    )


class TestShapeChecks:
    def test_join_all_pass(self):
        s = fake_series([10, 20], [12, 25], [50, 90])
        checks = check_join_shapes(s)
        assert all(c.passed for c in checks)

    def test_join_detects_minim_regression(self):
        s = fake_series([30, 20], [12, 25], [50, 90])
        checks = check_join_shapes(s)
        failed = [c for c in checks if not c.passed]
        assert failed and "Minim <= CP" in failed[0].claim
        assert "N=1" in failed[0].detail

    def test_power_checks(self):
        s = ExperimentSeries(
            experiment="p",
            x_label="rf",
            x_values=[2.0],
            metrics={
                "delta_recodings": {"Minim": [5], "CP": [20], "BBB": [100]},
                "delta_max_color": {"Minim": [8], "CP": [5], "BBB": [4]},
            },
            runs=1,
        )
        assert all(c.passed for c in check_power_shapes(s))

    def test_move_checks(self):
        s = ExperimentSeries(
            experiment="m",
            x_label="round",
            x_values=[1.0, 2.0],
            metrics={
                "delta_recodings": {"Minim": [5, 10], "CP": [20, 45], "BBB": [100, 220]},
                "delta_max_color": {"Minim": [2, 3], "CP": [1, 0], "BBB": [0, -1]},
            },
            runs=1,
        )
        assert all(c.passed for c in check_move_shapes(s))

    def test_check_all_dispatch(self):
        s = fake_series([10, 20], [12, 25], [50, 90])
        assert check_all("join", s)
        with pytest.raises(ValueError):
            check_all("bogus", s)

    def test_shapecheck_str(self):
        assert "PASS" in str(ShapeCheck("c", True))
        assert "FAIL" in str(ShapeCheck("c", False, detail="boom"))


class TestSeriesAccessors:
    def test_value_at(self):
        s = fake_series([10, 20], [12, 25], [50, 90])
        assert s.value_at("recodings", "CP", 2.0) == 25
        with pytest.raises(ValueError):
            s.value_at("recodings", "CP", 99.0)

    def test_strategies_order(self):
        s = fake_series([10, 20], [12, 25], [50, 90])
        assert s.strategies() == ["Minim", "CP", "BBB"]
