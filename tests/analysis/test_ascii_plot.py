"""Tests for the ASCII plotter."""

import pytest

from repro.analysis.ascii_plot import ascii_plot, plot_series
from repro.analysis.series import ExperimentSeries


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot({"a": [1, 2, 3]}, [0, 1, 2], title="T", x_label="n")
        assert "T" in out
        assert "o=a" in out
        assert out.count("\n") >= 18

    def test_markers_distinct(self):
        out = ascii_plot({"a": [1, 2], "b": [2, 1]}, [0, 1])
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_flat_curve_no_crash(self):
        out = ascii_plot({"a": [5, 5, 5]}, [0, 1, 2])
        assert "o" in out

    def test_single_point(self):
        out = ascii_plot({"a": [3]}, [7])
        assert "o" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({}, [1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [1, 2]}, [1])

    def test_plot_series(self):
        s = ExperimentSeries(
            experiment="e",
            x_label="N",
            x_values=[1.0, 2.0],
            metrics={"m": {"Minim": [1, 2], "CP": [2, 4]}},
            runs=1,
        )
        out = plot_series(s, "m")
        assert "[e] m" in out
        assert "o=Minim" in out and "x=CP" in out
