"""Store-driven figure rendering (optional matplotlib)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.plot import HAVE_MATPLOTLIB, panels_to_figure
from repro.errors import ConfigurationError
from repro.sim.registry import get_scenario
from repro.sim.results import JsonDirBackend
from repro.sim.sweep import run_sweep


@pytest.fixture()
def store(tmp_path):
    backend = JsonDirBackend(tmp_path)
    spec = replace(get_scenario("paper-join"), n=8, strategies=("Minim",), sweep_values=(6.0, 8.0))
    run_sweep(spec, runs=2, seed=3, store=backend)
    return backend


class TestPanelsToFigure:
    def test_empty_store_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no stored series"):
            panels_to_figure(tmp_path)

    def test_missing_experiment_rejected(self, store):
        with pytest.raises(ConfigurationError, match="no stored series"):
            panels_to_figure(store.root, ["nope"])

    @pytest.mark.skipif(HAVE_MATPLOTLIB, reason="matplotlib installed")
    def test_absent_matplotlib_raises_configuration_error(self, store):
        # the optional dependency is missing: the entry point must skip
        # cleanly with a ConfigurationError naming it, not ImportError
        with pytest.raises(ConfigurationError, match="matplotlib"):
            panels_to_figure(store.root)

    @pytest.mark.skipif(not HAVE_MATPLOTLIB, reason="matplotlib not installed")
    def test_renders_stored_series_without_recompute(self, store, tmp_path):
        out = tmp_path / "fig" / "panels.png"
        fig = panels_to_figure(store.root, out=out)
        assert out.exists() and out.stat().st_size > 0
        assert len(fig.axes) == 3  # one series x three metrics

    @pytest.mark.skipif(not HAVE_MATPLOTLIB, reason="matplotlib not installed")
    def test_unknown_metric_rejected(self, store):
        with pytest.raises(ConfigurationError, match="no metric"):
            panels_to_figure(store.root, metrics=["nope"])
