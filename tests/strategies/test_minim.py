"""Unit tests for the Minim strategy algorithms."""

import pytest

from repro.coloring.assignment import CodeAssignment
from repro.sim.network import AdHocNetwork
from repro.strategies.minim import (
    MinimStrategy,
    minimal_join_bound,
    minimal_move_bound,
    plan_local_matching_recode,
    plan_power_increase,
)
from repro.topology.node import NodeConfig
from repro.topology.static import StaticDigraph


def star_join(colors_of_members):
    """Node 0 joins hearing members 1..k with the given colors."""
    g = StaticDigraph(nodes=[0] + list(range(1, len(colors_of_members) + 1)))
    a = CodeAssignment()
    for i, c in enumerate(colors_of_members, start=1):
        g.add_edge(i, 0)
        a.assign(i, c)
    return g, a


class TestRecodeOnJoin:
    def test_isolated_join_gets_color_1(self):
        g = StaticDigraph(nodes=[0])
        plan = plan_local_matching_recode(g, CodeAssignment(), 0)
        assert plan.changes == {0: (None, 1)}

    def test_no_duplicates_only_n_recodes(self):
        g, a = star_join([1, 2, 3])
        plan = plan_local_matching_recode(g, a, 0)
        assert set(plan.changes) == {0}
        assert plan.changes[0] == (None, 4)  # 1..3 taken by members

    def test_duplicates_recode_k_minus_1(self):
        g, a = star_join([1, 1, 1, 2])
        plan = plan_local_matching_recode(g, a, 0)
        # class sizes: {1: 3, 2: 1} -> 2 member recodes + n.
        assert len(plan.changes) == 3 == minimal_join_bound(g, a, 0)

    def test_lowest_id_keeps_color_on_ties(self):
        g, a = star_join([5, 5])
        plan = plan_local_matching_recode(g, a, 0)
        assert 1 not in plan.changes  # lower id keeps old color
        assert 2 in plan.changes

    def test_recoded_member_reuses_low_colors(self):
        g, a = star_join([2, 2])
        plan = plan_local_matching_recode(g, a, 0)
        # Palette is {1, 2}: member 2 takes 1, n takes a fresh 3.
        assert plan.new_colors[1] == 2
        assert plan.new_colors[2] == 1
        assert plan.new_colors[0] == 3

    def test_external_constraint_respected(self):
        # Member 1 hears from external node 9 colored 1, so member 1
        # cannot take color 1 even though it is free within V1.
        g, a = star_join([2, 2])
        g.add_edge(9, 1)
        a.assign(9, 1)
        plan = plan_local_matching_recode(g, a, 0)
        new = dict(a.items()) | {u: c for u, (_o, c) in plan.changes.items()}
        assert new[1] != 1 or a[1] == 1

    def test_weight_ablation_loses_retention(self):
        # With old-color weight 1, ties no longer favour keeping colors;
        # the matching may reshuffle members freely.  Minimality of the
        # *bound* is then not guaranteed; recode count can only grow.
        g, a = star_join([1, 2, 3, 1])
        base = plan_local_matching_recode(g, a, 0)
        ablated = plan_local_matching_recode(g, a, 0, old_color_weight=1)
        assert len(ablated.changes) >= len(base.changes)

    def test_scipy_backend_agrees(self):
        g, a = star_join([1, 1, 2, 3, 3])
        hung = plan_local_matching_recode(g, a, 0, backend="hungarian")
        scip = plan_local_matching_recode(g, a, 0, backend="scipy")
        # Total recode counts agree (both maximum-weight); the exact
        # matching may differ only within equal-weight ties, which the
        # composed weights make unique — so outcomes are identical.
        assert hung.new_colors == scip.new_colors

    def test_invalid_weights_rejected(self):
        g, a = star_join([1])
        with pytest.raises(ValueError):
            plan_local_matching_recode(g, a, 0, old_color_weight=0)


class TestRecodeOnPowIncrease:
    def test_no_conflict_no_change(self, small_network):
        net = small_network
        v = net.node_ids()[0]
        result = net.set_range(v, net.graph.range_of(v) * 1.01)
        if result.changes:
            # if it did recode, its old color must have been in conflict
            assert set(result.changes) == {v}

    def test_conflict_recodes_only_n_to_lowest(self):
        net = AdHocNetwork(MinimStrategy(), validate=True)
        net.graph.add_node(NodeConfig(1, 0.0, 0.0, tx_range=5.0))
        net.graph.add_node(NodeConfig(2, 20.0, 0.0, tx_range=30.0))
        net.assignment.assign(1, 1)
        net.assignment.assign(2, 1)
        result = net.set_range(1, 25.0)  # now 1 -> 2 edge; CA1 conflict
        assert result.changes == {1: (1, 2)}

    def test_plan_reports_messages(self):
        g = StaticDigraph(edges=[(1, 2), (2, 1)])
        a = CodeAssignment({1: 1, 2: 2})
        plan = plan_power_increase(g, a, 1)
        assert plan.changes == {}
        assert plan.messages == 2  # one request+reply to its out-neighbor


class TestRecodeOnMoveBounds:
    def test_noop_move_recodes_nothing(self, small_network):
        net = small_network
        v = net.node_ids()[0]
        x, y = net.graph.position_of(v)
        result = net.move(v, x, y)
        assert result.changes == {}

    def test_move_bound_includes_n_when_externally_blocked(self):
        # n (color 1) moves next to receiver r hearing external w with
        # color 1; members none.  n must recode: bound == 1.
        g = StaticDigraph(nodes=[0, 5, 9])
        a = CodeAssignment({0: 1, 5: 2, 9: 1})
        g.add_edge(0, 5)  # n transmits into 5
        g.add_edge(9, 5)  # so does external 9 (color 1): CA2 blocks 1
        assert minimal_move_bound(g, a, 0) == 1
        plan = plan_local_matching_recode(g, a, 0)
        assert len(plan.changes) == 1 and 0 in plan.changes

    def test_move_bound_zero_when_old_color_fine(self):
        g = StaticDigraph(nodes=[0, 5])
        a = CodeAssignment({0: 1, 5: 2})
        g.add_edge(0, 5)
        assert minimal_move_bound(g, a, 0) == 0
        plan = plan_local_matching_recode(g, a, 0)
        assert plan.changes == {}


class TestStrategyFacade:
    def test_leave_never_recodes(self, small_network):
        net = small_network
        before = net.assignment.copy()
        v = net.node_ids()[-1]
        result = net.leave(v)
        assert result.changes == {}
        before.unassign(v)
        assert net.assignment == before

    def test_name(self):
        assert MinimStrategy().name == "Minim"
