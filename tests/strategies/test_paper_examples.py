"""Exact reproductions of the paper's worked examples (Figs 4, 6, 7, 9).

Fig 4's topology is reconstructed from the constraints the paper states
(old/new color triples, the bipartite graph of Fig 4(b), and both
captions); the others are built to satisfy the paper's stated traces.
"""

import pytest

from repro.coloring.assignment import CodeAssignment
from repro.coloring.verify import is_valid
from repro.sim.network import AdHocNetwork
from repro.strategies.cp import CPStrategy, plan_cp_join
from repro.strategies.minim import (
    MinimStrategy,
    minimal_join_bound,
    plan_local_matching_recode,
)
from repro.topology.node import NodeConfig
from repro.topology.static import StaticDigraph


@pytest.fixture
def fig4():
    """Fig 4(a): node 8 joins; in-neighbors {1,2,3,6,7} with old colors
    1:2, 2:3, 3:1, 4:3, 5:3, 6:1, 7:2."""
    graph = StaticDigraph(
        nodes=[1, 2, 3, 4, 5, 6, 7],
        edges=[(1, 2), (3, 4), (5, 6), (7, 4)],
    )
    colors = CodeAssignment({1: 2, 2: 3, 3: 1, 4: 3, 5: 3, 6: 1, 7: 2})
    assert is_valid_static(graph, colors)
    # Node 8 joins: hears 1, 2, 3, 6, 7; reaches 2.
    graph.add_node(8)
    for u in (1, 2, 3, 6, 7):
        graph.add_edge(u, 8)
    graph.add_edge(8, 2)
    return graph, colors


def is_valid_static(graph, assignment) -> bool:
    from repro.coloring.verify import find_violations

    return not find_violations(graph, assignment)  # type: ignore[arg-type]


class TestFig4Join:
    def test_minim_recodes_exactly_as_figure(self, fig4):
        graph, colors = fig4
        plan = plan_local_matching_recode(graph, colors, 8)
        # Fig 4: Minim's new colors (old, new): 6: 1->4, 7: 2->5, 8: ->6.
        assert plan.changes == {6: (1, 4), 7: (2, 5), 8: (None, 6)}
        assert plan.max_color_seen == 3  # bipartite palette of Fig 4(b)
        assert len(plan.changes) == 3  # "causes only 3 recodings"
        assert len(plan.changes) == minimal_join_bound(graph, colors, 8)

    def test_minim_result_valid_with_max_color_6(self, fig4):
        graph, colors = fig4
        plan = plan_local_matching_recode(graph, colors, 8)
        colors.apply({u: c for u, (_o, c) in plan.changes.items()})
        assert is_valid_static(graph, colors)
        assert colors.max_color() == 6

    def test_cp_recodes_exactly_as_figure(self, fig4):
        graph, colors = fig4
        plan = plan_cp_join(graph, colors, 8)
        # Fig 4 CP column: 1: 2->6, 3: 1->5, 6: 1->4, 7 keeps 2, 8 -> 1.
        assert plan.changes == {1: (2, 6), 3: (1, 5), 6: (1, 4), 8: (None, 1)}
        assert len(plan.changes) == 4  # "causes 4 of them"
        assert plan.new_colors[7] == 2  # re-selected but unchanged

    def test_cp_result_valid_with_max_color_6(self, fig4):
        graph, colors = fig4
        plan = plan_cp_join(graph, colors, 8)
        colors.apply({u: c for u, (_o, c) in plan.changes.items()})
        assert is_valid_static(graph, colors)
        # "Both end up using the same maximum color index after the join
        # event (6)."
        assert colors.max_color() == 6


@pytest.fixture
def fig6_network():
    """Fig 6 analogue: node 5 raises power; constraints become (1, 2, 3).

    Node 5 (color 3) hears 1 and 2; nodes 6, 7 (both color 3) sit in
    range of 5's raised power.  Built geometrically so the power event
    drives real topology recomputation.
    """

    def build(strategy):
        net = AdHocNetwork(strategy, validate=True)
        net.graph.add_node(NodeConfig(5, 50.0, 50.0, tx_range=5.0))
        net.assignment.assign(5, 3)
        for cfg, color in [
            (NodeConfig(1, 50.0, 70.0, tx_range=25.0), 1),
            (NodeConfig(2, 50.0, 30.0, tx_range=25.0), 2),
            (NodeConfig(6, 70.0, 50.0, tx_range=15.0), 3),
            (NodeConfig(7, 30.0, 50.0, tx_range=15.0), 3),
        ]:
            net.graph.add_node(cfg)
            net.assignment.assign(cfg.node_id, color)
        assert is_valid(net.graph, net.assignment)
        return net

    return build


class TestFig6PowerIncrease:
    def test_minim_one_recode_max_4(self, fig6_network):
        net = fig6_network(MinimStrategy())
        result = net.set_range(5, 30.0)
        # "RecodeOnPowIncrease causes only 1 new recoding" to the lowest
        # available color (4); max color index ends at 4.
        assert result.changes == {5: (3, 4)}
        assert net.max_color() == 4

    def test_cp_two_recodes_max_5(self, fig6_network):
        # The Fig 6 CP trace follows the conservative 2-hop-vicinity
        # reading of the selection rule (see strategies/cp/selection.py).
        net = fig6_network(CPStrategy(vicinity_colors=True))
        result = net.set_range(5, 30.0)
        # "CP causes 2 nodes to be assigned different new colors" and
        # "ends up with ... 5": 6 recodes 3->4, then 5 recodes 3->5;
        # node 7 re-selects its old color.
        assert result.changes == {6: (3, 4), 5: (3, 5)}
        assert net.max_color() == 5


class TestFig7PowerDecrease:
    @pytest.mark.parametrize(
        "strategy", [MinimStrategy(), CPStrategy()], ids=["Minim", "CP"]
    )
    def test_no_recoding_needed(self, fig6_network, strategy):
        net = fig6_network(strategy)
        result = net.set_range(5, 2.0)
        assert result.changes == {}
        assert result.event_kind == "power_decrease"
        assert net.is_valid()


@pytest.fixture
def fig9_network():
    """Fig 9 analogue: node 2 (color 3) moves next to nodes colored
    1, 2, 3, forcing exactly one recode (2: 3 -> 4) under both
    strategies."""

    def build(strategy):
        net = AdHocNetwork(strategy, validate=True)
        # Destination cluster at (100, 0): mutually in range.
        for cfg, color in [
            (NodeConfig(4, 100.0, 10.0, tx_range=25.0), 1),
            (NodeConfig(5, 100.0, -10.0, tx_range=25.0), 2),
            (NodeConfig(6, 110.0, 0.0, tx_range=25.0), 3),
            # The mover starts far away next to node 7.
            (NodeConfig(2, 0.0, 0.0, tx_range=15.0), 3),
            (NodeConfig(7, 0.0, 10.0, tx_range=15.0), 1),
        ]:
            net.graph.add_node(cfg)
            net.assignment.assign(cfg.node_id, color)
        assert is_valid(net.graph, net.assignment)
        return net

    return build


class TestFig9Move:
    def test_minim_single_recode_max_4(self, fig9_network):
        net = fig9_network(MinimStrategy())
        result = net.move(2, 100.0, 0.0)
        # "Both RecodeOnMove and the CP strategies cause 1 new recoding
        # and end up with 4 as the maximum color index."
        assert result.changes == {2: (3, 4)}
        assert net.max_color() == 4

    def test_cp_single_recode_max_4(self, fig9_network):
        net = fig9_network(CPStrategy())
        result = net.move(2, 100.0, 0.0)
        assert result.changes == {2: (3, 4)}
        assert net.max_color() == 4

    def test_members_keep_their_colors(self, fig9_network):
        net = fig9_network(MinimStrategy())
        net.move(2, 100.0, 0.0)
        assert net.assignment[4] == 1
        assert net.assignment[5] == 2
        assert net.assignment[6] == 3
