"""Property-based tests of the paper's minimality theorems.

Theorem 4.1.8: ``RecodeOnJoin`` achieves the Lemma 4.1.1 bound.
Theorem 4.2.3: ``RecodeOnPowIncrease`` recodes at most ``n`` itself.
Theorem 4.4.4: ``RecodeOnMove`` achieves the move bound.
Theorems 4.3.x: leaves and power decreases never recode.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.coloring.verify import is_valid
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import (
    MinimStrategy,
    minimal_join_bound,
    minimal_move_bound,
)
from repro.topology.node import NodeConfig

seeds = st.integers(0, 10_000)
sizes = st.integers(2, 28)


def joined_network(seed: int, n: int) -> AdHocNetwork:
    rng = np.random.default_rng(seed)
    net = AdHocNetwork(MinimStrategy(), validate=True)
    for cfg in sample_configs(n, rng, min_range=15.0, max_range=45.0):
        net.join(cfg)
    return net


class TestJoinMinimality:
    @given(seeds, sizes)
    def test_every_join_hits_the_bound(self, seed, n):
        rng = np.random.default_rng(seed)
        net = AdHocNetwork(MinimStrategy(), validate=True)
        for cfg in sample_configs(n, rng, min_range=15.0, max_range=45.0):
            net.graph.add_node(cfg)
            bound = minimal_join_bound(net.graph, net.assignment, cfg.node_id)
            net.graph.remove_node(cfg.node_id)
            result = net.join(cfg)
            assert result.recode_count == bound

    @given(seeds)
    def test_non_neighbors_never_recoded(self, seed):
        net = joined_network(seed, 12)
        cfg = NodeConfig(999, 50.0, 50.0, tx_range=25.0)
        net.graph.add_node(cfg)
        from repro.topology.neighborhoods import join_partition

        v1 = join_partition(net.graph, 999).v1
        net.graph.remove_node(999)
        result = net.join(cfg)
        assert set(result.changes) <= set(v1)


class TestPowerMinimality:
    @given(seeds, st.floats(1.1, 4.0))
    def test_increase_recodes_at_most_n(self, seed, factor):
        net = joined_network(seed, 12)
        rng = np.random.default_rng(seed + 1)
        v = int(rng.choice(net.node_ids()))
        result = net.set_range(v, net.graph.range_of(v) * factor)
        assert set(result.changes) <= {v}
        assert result.event_kind == "power_increase"

    @given(seeds)
    def test_decrease_never_recodes(self, seed):
        net = joined_network(seed, 10)
        rng = np.random.default_rng(seed + 2)
        v = int(rng.choice(net.node_ids()))
        result = net.set_range(v, net.graph.range_of(v) * 0.5)
        assert result.changes == {}
        assert net.is_valid()


class TestMoveMinimality:
    @given(seeds)
    def test_move_hits_the_move_bound(self, seed):
        net = joined_network(seed, 12)
        rng = np.random.default_rng(seed + 3)
        v = int(rng.choice(net.node_ids()))
        x, y = float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
        net.graph.move_node(v, x, y)
        bound = minimal_move_bound(net.graph, net.assignment, v)
        old_pos = None
        # revert, then apply through the controller
        # (position unknown pre-move; recompute via configs)
        net.graph.move_node(v, x, y)  # idempotent: already there
        result = net.strategy.on_move(net.graph, net.assignment, v)
        assert len(result.changes) == bound
        for node, (_old, new) in result.changes.items():
            net.assignment.assign(node, new)
        assert is_valid(net.graph, net.assignment)

    @given(seeds)
    def test_leave_never_recodes(self, seed):
        net = joined_network(seed, 8)
        v = net.node_ids()[0]
        result = net.leave(v)
        assert result.changes == {}
        assert net.is_valid()
