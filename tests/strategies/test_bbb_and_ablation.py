"""Tests for the BBB global baseline and the greedy-sequential ablation."""

import numpy as np
import pytest

from repro.coloring.bbb import bbb_coloring
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.ablation import GreedySequentialStrategy
from repro.strategies.bbb_global import BBBGlobalStrategy
from repro.strategies.minim import MinimStrategy, minimal_join_bound


class TestBBBGlobal:
    def test_assignment_always_matches_fresh_coloring(self):
        rng = np.random.default_rng(0)
        net = AdHocNetwork(BBBGlobalStrategy(), validate=True)
        for cfg in sample_configs(15, rng):
            net.join(cfg)
            assert net.assignment == bbb_coloring(net.graph)

    def test_recolors_on_leave_too(self):
        rng = np.random.default_rng(1)
        net = AdHocNetwork(BBBGlobalStrategy(), validate=True)
        for cfg in sample_configs(12, rng):
            net.join(cfg)
        v = net.node_ids()[0]
        net.leave(v)
        assert net.assignment == bbb_coloring(net.graph)
        assert v not in net.assignment

    def test_recode_counting_is_diff_based(self):
        rng = np.random.default_rng(2)
        net = AdHocNetwork(BBBGlobalStrategy())
        total = 0
        prev = net.assignment.copy()
        for cfg in sample_configs(10, rng):
            result = net.join(cfg)
            diff = prev.diff(net.assignment)
            assert result.recode_count == len(diff)
            total += result.recode_count
            prev = net.assignment.copy()
        assert total == net.metrics.total_recodings

    def test_power_events_recolor(self):
        rng = np.random.default_rng(3)
        net = AdHocNetwork(BBBGlobalStrategy(), validate=True)
        configs = sample_configs(10, rng)
        for cfg in configs:
            net.join(cfg)
        v = configs[0].node_id
        net.set_range(v, configs[0].tx_range * 2)
        assert net.assignment == bbb_coloring(net.graph)
        net.set_range(v, configs[0].tx_range * 0.5)
        assert net.assignment == bbb_coloring(net.graph)


class TestGreedySequentialAblation:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_over_event_mix(self, seed):
        rng = np.random.default_rng(seed)
        net = AdHocNetwork(GreedySequentialStrategy(), validate=True)
        configs = sample_configs(15, rng)
        for cfg in configs:
            net.join(cfg)
        for cfg in configs[:5]:
            net.move(cfg.node_id, float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
        for cfg in configs[5:8]:
            net.set_range(cfg.node_id, cfg.tx_range * 1.5)
        assert net.is_valid()

    def test_join_is_still_minimal(self):
        # Keep-or-lowest in ascending order keeps the first holder of
        # each duplicated class, so it also achieves the join bound.
        rng = np.random.default_rng(9)
        configs = sample_configs(18, rng)
        net = AdHocNetwork(GreedySequentialStrategy(), validate=True)
        for cfg in configs[:-1]:
            net.join(cfg)
        last = configs[-1]
        net.graph.add_node(last)
        bound = minimal_join_bound(net.graph, net.assignment, last.node_id)
        net.graph.remove_node(last.node_id)
        assert net.join(last).recode_count == bound

    def test_greedy_palette_no_better_than_minim_on_average(self):
        # The ablation's point: matching reuses the palette at least as
        # well.  Compare summed max colors over several seeds.
        greedy_total = 0
        minim_total = 0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            configs = sample_configs(25, rng)
            g_net = AdHocNetwork(GreedySequentialStrategy())
            m_net = AdHocNetwork(MinimStrategy())
            for cfg in configs:
                g_net.join(cfg)
                m_net.join(cfg)
            greedy_total += g_net.max_color()
            minim_total += m_net.max_color()
        assert minim_total <= greedy_total
