"""Brute-force verification of Theorem 4.1.9 (optimality among minimal).

On small instances we enumerate *every* correct recoding that (a) only
recolors ``V1 = 1n ∪ 2n ∪ {n}``, (b) achieves the minimal recoding
bound, and check that no such adversary ends with a smaller maximum
color index than ``RecodeOnJoin``.
"""

import itertools

import numpy as np
import pytest

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import forbidden_colors
from repro.coloring.verify import find_violations
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import (
    minimal_join_bound,
    plan_local_matching_recode,
)
from repro.strategies.minim.strategy import MinimStrategy
from repro.sim.network import AdHocNetwork
from repro.topology.neighborhoods import join_partition
from repro.topology.static import StaticDigraph


def brute_force_best_minimal(graph, assignment, node) -> int:
    """Min possible max-color over all minimal local recodings."""
    part = join_partition(graph, node)
    v1 = sorted(part.v1)
    others_max = max(
        (assignment[v] for v in graph.node_ids() if v not in part.v1), default=0
    )
    bound = minimal_join_bound(graph, assignment, node)
    # Candidate palette: everything up to a safe ceiling.
    ceiling = max(
        [others_max]
        + [assignment[u] for u in part.in_neighbors]
        + [len(v1) + others_max]
    ) + len(v1)
    best = None
    constraints = {
        u: forbidden_colors(graph, assignment, u, exclude=part.v1) for u in v1
    }
    olds = {u: assignment.get(u) for u in v1}
    for combo in itertools.product(range(1, ceiling + 1), repeat=len(v1)):
        if len(set(combo)) != len(combo):
            continue  # V1 must be pairwise distinct
        recodes = sum(1 for u, c in zip(v1, combo) if olds[u] != c)
        if recodes != bound:
            continue
        if any(c in constraints[u] for u, c in zip(v1, combo)):
            continue
        candidate = CodeAssignment(
            {v: assignment[v] for v in graph.node_ids() if v not in part.v1}
        )
        for u, c in zip(v1, combo):
            candidate.assign(u, c)
        if find_violations(graph, candidate):
            continue
        max_color = candidate.max_color()
        if best is None or max_color < best:
            best = max_color
    assert best is not None, "no minimal recoding exists?!"
    return best


def apply_plan(assignment, plan) -> CodeAssignment:
    out = assignment.copy()
    for u, (_old, c) in plan.changes.items():
        out.assign(u, c)
    return out


class TestOptimalityAmongMinimalStatic:
    @pytest.mark.parametrize(
        "member_colors, external",
        [
            ([1, 1], {}),
            ([1, 2, 2], {}),
            ([3, 3, 3], {}),
            ([1, 2], {1: {2}}),  # member 1 externally blocked from color 2
            ([2, 2, 1], {2: {1}}),
            ([1, 1, 2, 2], {}),
        ],
    )
    def test_star_instances(self, member_colors, external):
        g = StaticDigraph()
        a = CodeAssignment()
        ext_id = 100
        for i, c in enumerate(member_colors, start=1):
            g.add_node(i)
            a.assign(i, c)
            for blocked in external.get(i, ()):  # external node forcing a constraint
                g.add_node(ext_id)
                g.add_edge(ext_id, i)
                g.add_edge(i, ext_id)
                a.assign(ext_id, blocked)
                ext_id += 1
        assert not find_violations(g, a)  # pre-join assignment valid
        g.add_node(0)
        for i in range(1, len(member_colors) + 1):
            g.add_edge(i, 0)
        plan = plan_local_matching_recode(g, a, 0)
        ours = apply_plan(a, plan).max_color()
        best = brute_force_best_minimal(g, a, 0)
        assert ours == best

    @pytest.mark.parametrize("seed", range(8))
    def test_random_geometric_joins(self, seed):
        rng = np.random.default_rng(seed)
        net = AdHocNetwork(MinimStrategy(), validate=True)
        for cfg in sample_configs(6, rng, min_range=30.0, max_range=60.0):
            net.join(cfg)
        joiner = sample_configs(1, rng, min_range=30.0, max_range=60.0, id_start=50)[0]
        net.graph.add_node(joiner)
        part = join_partition(net.graph, joiner.node_id)
        if len(part.v1) > 5:
            pytest.skip("brute force too large")
        plan = plan_local_matching_recode(net.graph, net.assignment, joiner.node_id)
        ours = apply_plan(net.assignment, plan).max_color()
        best = brute_force_best_minimal(net.graph, net.assignment, joiner.node_id)
        assert ours == best
