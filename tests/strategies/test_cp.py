"""Tests for the CP baseline strategy."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.coloring.assignment import CodeAssignment
from repro.sim.network import AdHocNetwork
from repro.strategies.cp import CPStrategy, plan_cp_join, reselect_colors
from repro.strategies.cp.join import duplicated_members
from repro.strategies.minim import minimal_join_bound
from repro.sim.random_networks import sample_configs
from repro.topology.static import StaticDigraph


class TestDuplicatedMembers:
    def test_no_duplicates(self):
        a = CodeAssignment({1: 1, 2: 2, 3: 3})
        assert duplicated_members(a, frozenset({1, 2, 3})) == set()

    def test_all_pairs_detected(self):
        a = CodeAssignment({1: 1, 2: 1, 3: 2, 4: 2, 5: 3})
        assert duplicated_members(a, frozenset({1, 2, 3, 4, 5})) == {1, 2, 3, 4}


class TestReselectColors:
    def test_descending_order_default(self):
        # 1 and 2 conflict (common receiver 9); both reselect.
        g = StaticDigraph(edges=[(1, 9), (2, 9)])
        a = CodeAssignment({1: 5, 2: 5, 9: 2})
        out = reselect_colors(g, a, {1, 2})
        # Highest first: 2 picks 1 (9's color 2 taken... 9 conflicts via
        # CA1), then 1 avoids 2's pick.
        assert out[2] == 1
        assert out[1] == 3  # 1's conflicts: 9 (color 2), 2 (now 1)

    def test_lowest_first_option(self):
        g = StaticDigraph(edges=[(1, 9), (2, 9)])
        a = CodeAssignment({1: 5, 2: 5, 9: 2})
        out = reselect_colors(g, a, {1, 2}, highest_first=False)
        assert out[1] == 1 and out[2] == 3

    def test_uncolored_peers_not_constraining(self):
        g = StaticDigraph(edges=[(1, 9), (2, 9)])
        a = CodeAssignment({1: 1, 2: 1, 9: 3})
        out = reselect_colors(g, a, {1, 2})
        # 2 goes first and can take 1 (peer 1 is uncolored then).
        assert out[2] == 1

    def test_vicinity_variant_superset_constraints(self):
        # Node 7 is 2 hops from 1 but NOT a conflict neighbor; the
        # vicinity variant avoids its color anyway.
        g = StaticDigraph(edges=[(1, 9), (9, 7)])
        a = CodeAssignment({1: 1, 9: 2, 7: 3})
        conflict = reselect_colors(g, a, {1})
        vicinity = reselect_colors(g, a, {1}, vicinity_colors=True)
        assert conflict[1] == 1  # only 9 constrains (color 2)
        assert vicinity[1] == 1  # 2 and 3 taken, 1 free in both


class TestCPJoin:
    def test_recodes_at_least_minim_bound(self):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            configs = sample_configs(15, rng)
            net = AdHocNetwork(CPStrategy(), validate=True)
            for cfg in configs[:-1]:
                net.join(cfg)
            last = configs[-1]
            net.graph.add_node(last)
            bound = minimal_join_bound(net.graph, net.assignment, last.node_id)
            net.graph.remove_node(last.node_id)
            result = net.join(last)
            assert result.recode_count >= bound

    def test_join_validity_over_sequence(self):
        rng = np.random.default_rng(7)
        net = AdHocNetwork(CPStrategy(), validate=True)
        for cfg in sample_configs(25, rng):
            net.join(cfg)
        assert net.is_valid()

    def test_reselect_landing_on_old_color_not_counted(self):
        # Members 1, 2 share color; highest (2) re-picks first and gets
        # color 1 (lowest), member 1 then picks 2 == its old color in a
        # world where nothing else constrains... construct: colors 2, 2.
        g = StaticDigraph(nodes=[0, 1, 2])
        for i in (1, 2):
            g.add_edge(i, 0)
        a = CodeAssignment({1: 2, 2: 2})
        plan = plan_cp_join(g, a, 0)
        # 2 picks 1; 1 picks 2 (unchanged, not a recode); 0 picks 3.
        assert plan.new_colors[1] == 2
        assert 1 not in plan.changes
        assert plan.changes[2] == (2, 1)
        assert plan.changes[0] == (None, 3)


class TestCPPowerAndMove:
    def test_power_increase_recodes_same_colored_new_conflicts(self):
        from repro.topology.node import NodeConfig

        net = AdHocNetwork(CPStrategy(), validate=True)
        net.graph.add_node(NodeConfig(1, 0.0, 0.0, tx_range=5.0))
        net.graph.add_node(NodeConfig(2, 20.0, 0.0, tx_range=30.0))
        net.assignment.assign(1, 1)
        net.assignment.assign(2, 1)
        result = net.set_range(1, 25.0)
        # Both 1 and 2 re-select: 2 (highest) keeps 1, 1 must move.
        assert set(result.changes) == {1}
        assert net.is_valid()

    def test_move_always_reselects_mover(self, small_network):
        rng = np.random.default_rng(1)
        net = AdHocNetwork(CPStrategy(), validate=True)
        for cfg in sample_configs(12, rng):
            net.join(cfg)
        v = net.node_ids()[0]
        result = net.move(v, 50.0, 50.0)
        assert net.is_valid()
        # mover either keeps its color (not counted) or is in changes

    def test_leave_no_recode(self):
        rng = np.random.default_rng(2)
        net = AdHocNetwork(CPStrategy(), validate=True)
        for cfg in sample_configs(10, rng):
            net.join(cfg)
        assert net.leave(net.node_ids()[0]).changes == {}


class TestVicinityVariantSafety:
    @given(st.integers(0, 300))
    def test_vicinity_cp_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        net = AdHocNetwork(CPStrategy(vicinity_colors=True), validate=True)
        for cfg in sample_configs(12, rng):
            net.join(cfg)
        assert net.is_valid()
