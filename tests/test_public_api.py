"""Release-quality checks on the public API surface.

Every name exported through ``__all__`` must resolve, and every public
module, class and function must carry a docstring — the deliverable is
a library, not a script pile.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.cdma",
    "repro.coloring",
    "repro.distributed",
    "repro.events",
    "repro.geometry",
    "repro.gossip",
    "repro.matching",
    "repro.sim",
    "repro.strategies",
    "repro.strategies.cp",
    "repro.strategies.minim",
    "repro.topology",
]


def iter_all_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            yield importlib.import_module(info.name)


ALL_MODULES = list(iter_all_modules())


class TestExports:
    @pytest.mark.parametrize("pkg_name", PACKAGES)
    def test_dunder_all_resolves(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name!r}"

    def test_top_level_exports_cover_the_core_objects(self):
        for name in (
            "AdHocNetwork",
            "MinimStrategy",
            "CPStrategy",
            "BBBGlobalStrategy",
            "NodeConfig",
            "CodeAssignment",
            "run_join_experiment",
        ):
            assert name in repro.__all__

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2 and all(p.isdigit() for p in parts[:2])


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip()

    @staticmethod
    def _documented(cls, method_name) -> bool:
        """A method counts as documented if any class in the MRO documents
        it — interface contracts live on the ABC / protocol base."""
        for base in cls.__mro__:
            meth = vars(base).get(method_name)
            if meth is not None and getattr(meth, "__doc__", None):
                if meth.__doc__.strip():
                    return True
        return False

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_items_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
                if inspect.isclass(obj):
                    for mname, meth in vars(obj).items():
                        if mname.startswith("_") or not inspect.isfunction(meth):
                            continue
                        if not self._documented(obj, mname):
                            undocumented.append(f"{name}.{mname}")
        assert not undocumented, f"{module.__name__}: undocumented {undocumented}"
