"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.ConnectivityError,
            errors.ColoringConflictError,
            errors.MatchingError,
            errors.InvalidEventError,
            errors.ProtocolError,
            errors.CodebookError,
            errors.DuplicateNodeError,
            errors.UnknownNodeError,
            errors.UncoloredNodeError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_unknown_node_is_also_key_error(self):
        # So dict-style call sites can catch KeyError uniformly.
        assert issubclass(errors.UnknownNodeError, KeyError)
        assert issubclass(errors.UncoloredNodeError, KeyError)

    def test_unknown_node_message(self):
        err = errors.UnknownNodeError(17)
        assert "17" in str(err)
        assert err.node_id == 17

    def test_duplicate_node_message(self):
        err = errors.DuplicateNodeError(3)
        assert "3" in str(err)

    def test_uncolored_node_message(self):
        assert "9" in str(errors.UncoloredNodeError(9))
