"""Tests for event ADTs, logs and parallel-join batching."""

import pytest

from repro.events.base import JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.events.sequence import EventLog, plan_parallel_join_batches
from repro.sim.network import AdHocNetwork
from repro.strategies.minim import MinimStrategy
from repro.topology.builder import build_digraph
from repro.topology.node import NodeConfig


class TestEventTypes:
    def test_kinds(self):
        cfg = NodeConfig(1, 0.0, 0.0, tx_range=1.0)
        assert JoinEvent(cfg).kind == "join"
        assert JoinEvent(cfg).node_id == 1
        assert LeaveEvent(1).kind == "leave"
        assert MoveEvent(1, 2.0, 3.0).kind == "move"
        assert PowerChangeEvent(1, 5.0).kind == "power"

    def test_frozen(self):
        ev = LeaveEvent(1)
        with pytest.raises(AttributeError):
            ev.node_id = 2  # type: ignore[misc]


class TestEventLog:
    def test_counts(self):
        log = EventLog([LeaveEvent(1), LeaveEvent(2), MoveEvent(1, 0.0, 0.0)])
        log.append(PowerChangeEvent(1, 2.0))
        assert len(log) == 4
        assert log.counts_by_kind() == {"leave": 2, "move": 1, "power": 1}
        assert log[0] == LeaveEvent(1)
        assert list(log)[-1] == PowerChangeEvent(1, 2.0)


def chain_graph():
    """A long line so hop distances are meaningful."""
    return build_digraph(
        NodeConfig(i, 10.0 * i, 0.0, tx_range=12.0) for i in range(20)
    )


class TestParallelJoinBatches:
    def test_far_apart_joins_share_batch(self):
        g = chain_graph()
        joins = [
            JoinEvent(NodeConfig(100, 5.0, 5.0, tx_range=12.0)),
            JoinEvent(NodeConfig(101, 185.0, 5.0, tx_range=12.0)),
        ]
        batches = plan_parallel_join_batches(g, joins)
        assert len(batches) == 1
        assert {e.node_id for e in batches[0]} == {100, 101}

    def test_close_joins_split(self):
        g = chain_graph()
        joins = [
            JoinEvent(NodeConfig(100, 5.0, 5.0, tx_range=12.0)),
            JoinEvent(NodeConfig(101, 15.0, 5.0, tx_range=12.0)),
        ]
        batches = plan_parallel_join_batches(g, joins)
        assert len(batches) == 2

    def test_disconnected_joiners_can_share(self):
        g = chain_graph()
        joins = [
            JoinEvent(NodeConfig(100, 5.0, 5.0, tx_range=12.0)),
            JoinEvent(NodeConfig(101, 900.0, 900.0, tx_range=12.0)),
        ]
        assert len(plan_parallel_join_batches(g, joins)) == 1

    def test_invalid_separation(self):
        with pytest.raises(ValueError):
            plan_parallel_join_batches(chain_graph(), [], min_separation=0)

    def test_input_graph_not_mutated(self):
        g = chain_graph()
        before = len(g)
        plan_parallel_join_batches(
            g, [JoinEvent(NodeConfig(100, 5.0, 5.0, tx_range=12.0))]
        )
        assert len(g) == before

    def test_batched_joins_commute(self):
        """Theorem 4.1.10: joins >= 5 hops apart give order-independent
        results."""
        g = chain_graph()
        joins = [
            JoinEvent(NodeConfig(100, 5.0, 5.0, tx_range=12.0)),
            JoinEvent(NodeConfig(101, 185.0, 5.0, tx_range=12.0)),
        ]
        batches = plan_parallel_join_batches(g, joins)
        assert len(batches) == 1

        def run(order):
            net = AdHocNetwork(MinimStrategy(), validate=True)
            for i in range(20):
                net.join(NodeConfig(i, 10.0 * i, 0.0, tx_range=12.0))
            for ev in order:
                net.apply(ev)
            return net.assignment.as_dict()

        assert run(batches[0]) == run(list(reversed(batches[0])))
