"""Tests for the concurrent join batch executor (Theorem 4.1.10)."""

import numpy as np
import pytest

from repro.coloring.verify import is_valid
from repro.errors import InvalidEventError
from repro.events.base import JoinEvent
from repro.events.parallel import execute_join_batch
from repro.events.sequence import plan_parallel_join_batches
from repro.sim.network import AdHocNetwork
from repro.strategies.minim import MinimStrategy
from repro.topology.node import NodeConfig


def chain_network(length: int = 20) -> AdHocNetwork:
    net = AdHocNetwork(MinimStrategy(), validate=True)
    for i in range(length):
        net.join(NodeConfig(i, 10.0 * i, 0.0, tx_range=12.0))
    return net


FAR_JOINS = [
    JoinEvent(NodeConfig(100, 5.0, 5.0, tx_range=12.0)),
    JoinEvent(NodeConfig(101, 185.0, 5.0, tx_range=12.0)),
]
CLOSE_JOINS = [
    JoinEvent(NodeConfig(100, 5.0, 5.0, tx_range=12.0)),
    JoinEvent(NodeConfig(101, 15.0, 5.0, tx_range=12.0)),
]


class TestBatchExecution:
    def test_batch_matches_sequential(self):
        batch_net = chain_network()
        seq_net = chain_network()
        outcome = execute_join_batch(batch_net.graph, batch_net.assignment, FAR_JOINS)
        for ev in FAR_JOINS:
            seq_net.apply(ev)
        assert batch_net.assignment == seq_net.assignment
        assert is_valid(batch_net.graph, batch_net.assignment)
        assert outcome.recode_count == sum(r.recode_count for r in outcome.results)

    def test_overlapping_batch_rejected(self):
        net = chain_network()
        with pytest.raises(InvalidEventError, match="not independent"):
            execute_join_batch(net.graph, net.assignment, CLOSE_JOINS)

    def test_planner_output_always_executes(self):
        rng = np.random.default_rng(0)
        net = chain_network()
        joins = [
            JoinEvent(
                NodeConfig(
                    200 + i,
                    float(rng.uniform(0, 190)),
                    float(rng.uniform(0, 30)),
                    tx_range=12.0,
                )
            )
            for i in range(6)
        ]
        batches = plan_parallel_join_batches(net.graph, joins)
        for batch in batches:
            execute_join_batch(net.graph, net.assignment, batch)
        assert is_valid(net.graph, net.assignment)
        assert all(200 + i in net.graph for i in range(6))

    def test_empty_batch(self):
        net = chain_network(3)
        outcome = execute_join_batch(net.graph, net.assignment, [])
        assert outcome.recode_count == 0
        assert outcome.results == []
