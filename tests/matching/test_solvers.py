"""Tests for the matching solvers: Hungarian, Hopcroft–Karp, SciPy oracle."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matching import (
    WeightedBipartiteGraph,
    hopcroft_karp_matching,
    hungarian_matching,
    max_weight_matching,
)
from repro.matching.hungarian import solve_max_weight_dense
from repro.matching.scipy_backend import scipy_matching


def graph_from_matrix(w: np.ndarray) -> WeightedBipartiteGraph:
    n, m = w.shape
    g = WeightedBipartiteGraph(left=list(range(n)), right=[f"c{j}" for j in range(m)])
    for i in range(n):
        for j in range(m):
            if w[i, j] > 0:
                g.add_edge(i, f"c{j}", float(w[i, j]))
    return g


def random_weight_matrix(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n, m = int(rng.integers(1, 12)), int(rng.integers(1, 12))
    w = rng.integers(1, 10, (n, m)).astype(float)
    w[rng.random((n, m)) < 0.5] = 0.0
    return w


class TestHungarianBasics:
    def test_empty_graph(self):
        g = WeightedBipartiteGraph()
        assert hungarian_matching(g).pairs == {}

    def test_no_edges(self):
        g = WeightedBipartiteGraph(left=[1], right=["a"])
        assert hungarian_matching(g).pairs == {}

    def test_prefers_heavy_edge(self):
        g = graph_from_matrix(np.array([[3.0, 0.0], [1.0, 0.0]]))
        r = hungarian_matching(g)
        assert r.pairs == {0: "c0"}
        assert r.total_weight == 3.0

    def test_perfect_matching(self):
        w = np.array([[2.0, 1.0], [1.0, 2.0]])
        r = hungarian_matching(graph_from_matrix(w))
        assert r.pairs == {0: "c0", 1: "c1"}
        assert r.total_weight == 4.0

    def test_unmatched_left_allowed(self):
        # Two lefts compete for one right; heavier wins, other unmatched.
        w = np.array([[5.0], [2.0]])
        r = hungarian_matching(graph_from_matrix(w))
        assert r.pairs == {0: "c0"}

    def test_weight3_vs_two_weight1(self):
        # The RecodeOnJoin structure: one weight-3 edge beats... no,
        # loses to two weight-1+weight-3... here: u0-c0 w3 only, u1-c0
        # w1, u1-c1 w1: best is u0-c0 + u1-c1 = 4.
        w = np.array([[3.0, 0.0], [1.0, 1.0]])
        r = hungarian_matching(graph_from_matrix(w))
        assert r.total_weight == 4.0
        assert r.pairs == {0: "c0", 1: "c1"}

    def test_dense_solver_rectangular(self):
        pairs = solve_max_weight_dense(np.array([[1.0, 5.0, 2.0]]))
        assert pairs == [(0, 1)]


class TestHungarianAgainstScipy:
    @pytest.mark.parametrize("seed", range(40))
    def test_total_weight_matches(self, seed):
        w = random_weight_matrix(seed)
        g = graph_from_matrix(w)
        ours = hungarian_matching(g)
        oracle = scipy_matching(g)
        ours.validate_against(g)
        oracle.validate_against(g)
        assert ours.total_weight == pytest.approx(oracle.total_weight)

    @given(st.integers(0, 10_000))
    def test_property_random(self, seed):
        w = random_weight_matrix(seed)
        g = graph_from_matrix(w)
        ours = hungarian_matching(g)
        ours.validate_against(g)
        assert ours.total_weight == pytest.approx(scipy_matching(g).total_weight)


class TestBackendDispatch:
    def test_hungarian_default(self):
        g = graph_from_matrix(np.array([[1.0]]))
        assert max_weight_matching(g).pairs == {0: "c0"}

    def test_scipy_backend(self):
        g = graph_from_matrix(np.array([[1.0]]))
        assert max_weight_matching(g, backend="scipy").pairs == {0: "c0"}

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            max_weight_matching(WeightedBipartiteGraph(), backend="nope")


class TestHopcroftKarp:
    def test_max_cardinality_simple(self):
        # 0-c0, 1-c0: cardinality 1. Adding 1-c1 makes it 2.
        w = np.array([[1.0, 0.0], [1.0, 1.0]])
        r = hopcroft_karp_matching(graph_from_matrix(w))
        assert r.cardinality == 2

    def test_augmenting_path_needed(self):
        # Classic: 0-{c0}, 1-{c0,c1}, 2-{c1}: perfect requires shifting.
        w = np.array([[1.0, 0.0, 0.0], [1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
        r = hopcroft_karp_matching(graph_from_matrix(w))
        assert r.cardinality == 3

    @pytest.mark.parametrize("seed", range(25))
    def test_cardinality_matches_networkx(self, seed):
        import networkx as nx

        w = random_weight_matrix(seed)
        g = graph_from_matrix(w)
        r = hopcroft_karp_matching(g)
        r_pairs = set(r.pairs.items())
        # networkx oracle
        b = nx.Graph()
        lefts = [("L", i) for i in range(w.shape[0])]
        b.add_nodes_from(lefts, bipartite=0)
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                if w[i, j] > 0:
                    b.add_edge(("L", i), ("R", j))
        oracle = nx.bipartite.maximum_matching(b, top_nodes=lefts)
        assert r.cardinality == len(oracle) // 2
        # result is a valid matching
        assert len(set(r.pairs.values())) == len(r.pairs)
        for l, rr in r_pairs:
            assert g.has_edge(l, rr)

    @pytest.mark.parametrize("seed", range(25))
    def test_hungarian_cardinality_never_below_for_uniform_weights(self, seed):
        # With all weights 1, max weight == max cardinality.
        w = (random_weight_matrix(seed) > 0).astype(float)
        g = graph_from_matrix(w)
        assert (
            hungarian_matching(g).cardinality == hopcroft_karp_matching(g).cardinality
        )
