"""Tests for the bipartite graph model."""

import pytest

from repro.errors import MatchingError
from repro.matching.bipartite import MatchingResult, WeightedBipartiteGraph


@pytest.fixture
def graph():
    g = WeightedBipartiteGraph(left=["a", "b"], right=[1, 2, 3])
    g.add_edge("a", 1, 3.0)
    g.add_edge("b", 1, 1.0)
    g.add_edge("b", 2, 1.0)
    return g


class TestConstruction:
    def test_duplicate_left_rejected(self):
        with pytest.raises(MatchingError):
            WeightedBipartiteGraph(left=["a", "a"], right=[1])

    def test_duplicate_right_rejected(self):
        with pytest.raises(MatchingError):
            WeightedBipartiteGraph(left=["a"], right=[1, 1])

    def test_add_vertices(self):
        g = WeightedBipartiteGraph()
        g.add_left("x")
        g.add_right(9)
        g.add_edge("x", 9, 2.0)
        assert g.has_edge("x", 9)
        with pytest.raises(MatchingError):
            g.add_left("x")
        with pytest.raises(MatchingError):
            g.add_right(9)


class TestEdges:
    def test_weight_lookup(self, graph):
        assert graph.weight("a", 1) == 3.0
        assert graph.weight("a", 2) is None

    def test_nonpositive_weight_rejected(self, graph):
        with pytest.raises(MatchingError):
            graph.add_edge("a", 2, 0.0)
        with pytest.raises(MatchingError):
            graph.add_edge("a", 2, -1.0)

    def test_unknown_endpoints_rejected(self, graph):
        with pytest.raises(MatchingError):
            graph.add_edge("zz", 1, 1.0)
        with pytest.raises(MatchingError):
            graph.add_edge("a", 99, 1.0)

    def test_weight_matrix(self, graph):
        m = graph.weight_matrix()
        assert m.shape == (2, 3)
        assert m[0, 0] == 3.0 and m[1, 0] == 1.0 and m[1, 1] == 1.0
        assert m[0, 1] == 0.0  # forbidden marked 0

    def test_edge_count(self, graph):
        assert graph.edge_count() == 3
        assert len(list(graph.edges())) == 3


class TestMatchingResult:
    def test_validate_ok(self, graph):
        r = MatchingResult(pairs={"a": 1, "b": 2}, total_weight=4.0)
        r.validate_against(graph)

    def test_validate_rejects_non_edge(self, graph):
        r = MatchingResult(pairs={"a": 2}, total_weight=1.0)
        with pytest.raises(MatchingError, match="not an edge"):
            r.validate_against(graph)

    def test_validate_rejects_shared_right(self, graph):
        r = MatchingResult(pairs={"a": 1, "b": 1}, total_weight=4.0)
        with pytest.raises(MatchingError, match="twice"):
            r.validate_against(graph)

    def test_validate_rejects_wrong_weight(self, graph):
        r = MatchingResult(pairs={"a": 1}, total_weight=99.0)
        with pytest.raises(MatchingError, match="inconsistent"):
            r.validate_against(graph)

    def test_cardinality(self):
        assert MatchingResult(pairs={"a": 1, "b": 2}, total_weight=0.0).cardinality == 2
