"""Tests for NodeConfig."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.node import NodeConfig


class TestValidation:
    def test_valid(self):
        cfg = NodeConfig(1, 3.0, 4.0, tx_range=5.0)
        assert cfg.position == (3.0, 4.0)

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(1, 0.0, 0.0, tx_range=0.0)
        with pytest.raises(ConfigurationError):
            NodeConfig(1, 0.0, 0.0, tx_range=-2.0)

    def test_rejects_nan_coordinates(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(1, float("nan"), 0.0, tx_range=1.0)

    def test_rejects_inf_range(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(1, 0.0, 0.0, tx_range=float("inf"))

    def test_rejects_non_int_id(self):
        with pytest.raises(ConfigurationError):
            NodeConfig("a", 0.0, 0.0, tx_range=1.0)  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            NodeConfig(True, 0.0, 0.0, tx_range=1.0)

    def test_frozen(self):
        cfg = NodeConfig(1, 0.0, 0.0, tx_range=1.0)
        with pytest.raises(AttributeError):
            cfg.x = 5.0  # type: ignore[misc]


class TestDerivedOps:
    def test_moved_to(self):
        cfg = NodeConfig(1, 0.0, 0.0, tx_range=1.0)
        moved = cfg.moved_to(7.0, 8.0)
        assert moved.position == (7.0, 8.0)
        assert moved.node_id == 1 and moved.tx_range == 1.0
        assert cfg.position == (0.0, 0.0)  # original untouched

    def test_with_range(self):
        cfg = NodeConfig(1, 0.0, 0.0, tx_range=1.0)
        assert cfg.with_range(9.0).tx_range == 9.0

    def test_with_range_validates(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(1, 0.0, 0.0, tx_range=1.0).with_range(-1.0)

    def test_distance_to(self):
        a = NodeConfig(1, 0.0, 0.0, tx_range=1.0)
        b = NodeConfig(2, 3.0, 4.0, tx_range=1.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_reaches_inclusive_boundary(self):
        a = NodeConfig(1, 0.0, 0.0, tx_range=5.0)
        b = NodeConfig(2, 3.0, 4.0, tx_range=1.0)
        assert a.reaches(b)  # d == r exactly
        assert not b.reaches(a)

    def test_reaches_excludes_self(self):
        a = NodeConfig(1, 0.0, 0.0, tx_range=5.0)
        assert not a.reaches(a)
