"""Tests for propagation models."""

import numpy as np

from repro.geometry.obstacles import RectObstacle
from repro.topology.builder import build_digraph
from repro.topology.node import NodeConfig
from repro.topology.propagation import (
    FreeSpacePropagation,
    ObstructedPropagation,
    PropagationModel,
)


class TestFreeSpace:
    def test_coverage_inclusive(self):
        prop = FreeSpacePropagation()
        targets = np.array([[3.0, 4.0], [6.0, 8.0]])
        mask = prop.coverage(np.zeros(2), 5.0, targets)
        assert mask.tolist() == [True, False]

    def test_covered_by(self):
        prop = FreeSpacePropagation()
        srcs = np.array([[3.0, 4.0], [6.0, 8.0]])
        ranges = np.array([5.0, 5.0])
        mask = prop.covered_by(np.zeros(2), srcs, ranges)
        assert mask.tolist() == [True, False]

    def test_empty_targets(self):
        prop = FreeSpacePropagation()
        assert prop.coverage(np.zeros(2), 5.0, np.zeros((0, 2))).shape == (0,)
        assert prop.covered_by(np.zeros(2), np.zeros((0, 2)), np.zeros(0)).shape == (0,)

    def test_protocol_conformance(self):
        assert isinstance(FreeSpacePropagation(), PropagationModel)
        assert isinstance(ObstructedPropagation(), PropagationModel)


class TestObstructed:
    wall = RectObstacle(4.0, -10.0, 6.0, 10.0)

    def test_wall_blocks_in_range_target(self):
        prop = ObstructedPropagation(obstacles=(self.wall,))
        targets = np.array([[10.0, 0.0], [0.0, 3.0]])
        mask = prop.coverage(np.zeros(2), 20.0, targets)
        assert mask.tolist() == [False, True]

    def test_covered_by_symmetric_blocking(self):
        prop = ObstructedPropagation(obstacles=(self.wall,))
        srcs = np.array([[10.0, 0.0]])
        assert not prop.covered_by(np.zeros(2), srcs, np.array([20.0]))[0]

    def test_no_obstacles_equals_free_space(self):
        rng = np.random.default_rng(0)
        targets = rng.uniform(0, 100, (50, 2))
        src = np.array([50.0, 50.0])
        free = FreeSpacePropagation().coverage(src, 30.0, targets)
        obs = ObstructedPropagation().coverage(src, 30.0, targets)
        assert (free == obs).all()

    def test_digraph_with_obstruction(self):
        prop = ObstructedPropagation(obstacles=(self.wall,))
        g = build_digraph(
            [
                NodeConfig(1, 0.0, 0.0, tx_range=20.0),
                NodeConfig(2, 10.0, 0.0, tx_range=20.0),
                NodeConfig(3, 0.0, 5.0, tx_range=20.0),
            ],
            propagation=prop,
        )
        # 1 and 2 are separated by the wall; 1 and 3 are not.
        assert not g.has_edge(1, 2) and not g.has_edge(2, 1)
        assert g.has_edge(1, 3) and g.has_edge(3, 1)
