"""Tests for the dynamic AdHocDigraph."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DuplicateNodeError, UnknownNodeError
from repro.topology.builder import build_digraph, bulk_adjacency
from repro.topology.digraph import AdHocDigraph
from repro.topology.node import NodeConfig


def cfg(i, x, y, r=12.0):
    return NodeConfig(i, float(x), float(y), tx_range=float(r))


class TestBasicOps:
    def test_empty(self):
        g = AdHocDigraph()
        assert len(g) == 0
        assert g.node_ids() == []
        assert g.edge_count() == 0

    def test_add_and_query(self, line_graph):
        g = line_graph
        assert len(g) == 5
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert not g.has_edge(1, 3)
        assert g.out_neighbors(2) == [1, 3]
        assert g.in_neighbors(3) == [2, 4]
        assert g.undirected_neighbors(3) == [2, 4]

    def test_duplicate_join_rejected(self, line_graph):
        with pytest.raises(DuplicateNodeError):
            line_graph.add_node(cfg(3, 0, 0))

    def test_unknown_node_raises(self, line_graph):
        with pytest.raises(UnknownNodeError):
            line_graph.out_neighbors(99)
        with pytest.raises(UnknownNodeError):
            line_graph.config(99)

    def test_config_roundtrip(self, line_graph):
        c = line_graph.config(2)
        assert c == NodeConfig(2, 20.0, 0.0, tx_range=12.0)
        assert line_graph.position_of(2) == (20.0, 0.0)
        assert line_graph.range_of(2) == 12.0

    def test_asymmetric_edges(self):
        g = build_digraph([cfg(1, 0, 0, r=100), cfg(2, 50, 0, r=10)])
        assert g.has_edge(1, 2) and not g.has_edge(2, 1)
        assert g.out_degree(1) == 1 and g.in_degree(1) == 0
        assert g.out_degree(2) == 0 and g.in_degree(2) == 1

    def test_edges_iteration(self, line_graph):
        edges = set(line_graph.edges())
        assert (1, 2) in edges and (2, 1) in edges
        assert len(edges) == line_graph.edge_count() == 8


class TestMutation:
    def test_remove_node(self, line_graph):
        line_graph.remove_node(3)
        assert 3 not in line_graph
        assert line_graph.node_ids() == [1, 2, 4, 5]
        assert line_graph.out_neighbors(2) == [1]
        assert line_graph.in_neighbors(4) == [5]

    def test_remove_returns_config(self, line_graph):
        c = line_graph.remove_node(5)
        assert c.node_id == 5 and c.position == (50.0, 0.0)

    def test_remove_then_rejoin(self, line_graph):
        c = line_graph.remove_node(1)
        line_graph.add_node(c)
        assert line_graph.has_edge(1, 2)

    def test_move_updates_both_directions(self, line_graph):
        line_graph.move_node(1, 25.0, 0.0)  # now between 2 and 3
        assert line_graph.out_neighbors(1) == [2, 3]
        assert line_graph.in_neighbors(1) == [2, 3]

    def test_set_range_only_affects_out_edges(self, line_graph):
        line_graph.set_range(1, 100.0)
        assert line_graph.out_neighbors(1) == [2, 3, 4, 5]
        assert line_graph.in_neighbors(1) == [2]  # others unchanged

    def test_set_range_rejects_nonpositive(self, line_graph):
        with pytest.raises(ConfigurationError):
            line_graph.set_range(1, 0.0)

    def test_capacity_growth(self):
        g = AdHocDigraph()
        for i in range(100):
            g.add_node(cfg(i, i * 0.5, 0, r=2.0))
        assert len(g) == 100
        assert g.has_edge(10, 11)

    def test_copy_independent(self, line_graph):
        g2 = line_graph.copy()
        g2.remove_node(1)
        assert 1 in line_graph and 1 not in g2


class TestAgainstBulkOracle:
    @given(st.integers(0, 200))
    def test_random_event_sequences_match_bulk_adjacency(self, seed):
        rng = np.random.default_rng(seed)
        g = AdHocDigraph()
        alive = []
        next_id = 0
        for _ in range(30):
            op = rng.integers(0, 4)
            if op == 0 or not alive:
                c = cfg(next_id, rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(5, 40))
                g.add_node(c)
                alive.append(next_id)
                next_id += 1
            elif op == 1 and len(alive) > 1:
                v = alive.pop(int(rng.integers(0, len(alive))))
                g.remove_node(v)
            elif op == 2:
                v = alive[int(rng.integers(0, len(alive)))]
                g.move_node(v, float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            else:
                v = alive[int(rng.integers(0, len(alive)))]
                g.set_range(v, float(rng.uniform(5, 40)))
        ids, pos, ranges = g.positions_and_ranges()
        _, adj = g.adjacency()
        assert (adj == bulk_adjacency(pos, ranges)).all()
        assert ids == sorted(alive)


class TestHopDistances:
    def test_line_distances(self, line_graph):
        d = line_graph.undirected_hop_distances(1)
        assert d == {1: 0, 2: 1, 3: 2, 4: 3, 5: 4}

    def test_disconnected_absent(self):
        g = build_digraph([cfg(1, 0, 0, r=5), cfg(2, 50, 0, r=5)])
        assert g.undirected_hop_distances(1) == {1: 0}

    def test_asymmetric_edges_count_undirected(self):
        g = build_digraph([cfg(1, 0, 0, r=100), cfg(2, 50, 0, r=10)])
        assert g.undirected_hop_distances(2) == {2: 0, 1: 1}


class TestNetworkxExport:
    def test_roundtrip(self, line_graph):
        nxg = line_graph.to_networkx()
        assert set(nxg.nodes) == {1, 2, 3, 4, 5}
        assert set(nxg.edges) == set(line_graph.edges())
        assert nxg.nodes[1]["tx_range"] == 12.0
