"""Four-way conflict-core equivalence: dict, dense, array and sparse.

The acceptance bar for every core rewrite (the array core's flat
adjacency/C2 blocks, the sparse core's CSR rows and witness dicts): on
randomized event traces all cores must produce adjacency, conflict
sets AND snapshots *byte-identical* to the dict core's, with the dense
path as an independent witness.  The slot-indexed query surface
(``v1_slots``, ``conflict_masks``) must agree with the id-level
queries it replaces, and the sparse core's round batching
(:meth:`AdHocDigraph.apply_round`) must land on exactly the state
sequential application produces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.base import JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.geometry.grid_index import SlotGridIndex
from repro.geometry.obstacles import RectObstacle
from repro.topology.conflicts import conflict_matrix
from repro.topology.digraph import AdHocDigraph, default_core
from repro.topology.node import NodeConfig
from repro.topology.propagation import ObstructedPropagation


def _random_trace(graphs, seed, steps, check, area=100.0, first_id=1, alive=None):
    rng = np.random.default_rng(seed)
    alive = list(alive) if alive is not None else []
    next_id = first_id
    for _ in range(steps):
        op = int(rng.integers(0, 5))
        if op in (0, 1) or not alive:
            cfg = NodeConfig(
                next_id,
                float(rng.uniform(0, area)),
                float(rng.uniform(0, area)),
                float(rng.uniform(5, 40)),
            )
            for g in graphs:
                g.add_node(cfg)
            alive.append(next_id)
            next_id += 1
        elif op == 2 and len(alive) > 1:
            v = alive.pop(int(rng.integers(0, len(alive))))
            for g in graphs:
                g.remove_node(v)
        elif op == 3:
            v = alive[int(rng.integers(0, len(alive)))]
            x, y = float(rng.uniform(0, area)), float(rng.uniform(0, area))
            for g in graphs:
                g.move_node(v, x, y)
        else:
            v = alive[int(rng.integers(0, len(alive)))]
            r = float(rng.uniform(5, 40)) * (6.0 if rng.random() < 0.1 else 1.0)
            for g in graphs:
                g.set_range(v, r)
        check(graphs, alive)


def _assert_cores_agree(graphs, alive):
    array = graphs[0]
    ids_a, adj_a = array.adjacency()
    oracle = conflict_matrix(adj_a)
    assert (array.conflict_adjacency()[1] == oracle).all()
    for other in graphs[1:]:
        ids_o, adj_o = other.adjacency()
        assert ids_a == ids_o
        assert (adj_a == adj_o).all()
        for v in alive:
            assert array.conflict_neighbor_ids(v) == other.conflict_neighbor_ids(v)


def _assert_snapshots_identical(graphs, alive):
    _assert_cores_agree(graphs, alive)
    # every non-dense core's snapshot must agree byte-for-byte (the
    # dense hatch legitimately differs: it never records a grid cell)
    reference = None
    for g in graphs:
        if g.core == "dense":
            continue
        if reference is None:
            reference = g.snapshot()
        else:
            assert g.snapshot() == reference


class TestRandomizedArrayEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_free_space_traces_identical(self, seed):
        graphs = [
            AdHocDigraph(array_core=True),
            AdHocDigraph(array_core=False),
            AdHocDigraph(dense_conflicts=True),
            AdHocDigraph(sparse_core=True),
        ]
        assert [g.core for g in graphs] == ["array", "dict", "dense", "sparse"]
        _random_trace(graphs, seed, steps=70, check=_assert_snapshots_identical)

    @pytest.mark.parametrize("seed", range(2))
    def test_obstructed_propagation_identical(self, seed):
        prop = ObstructedPropagation((RectObstacle(30.0, 30.0, 60.0, 40.0),))
        graphs = [
            AdHocDigraph(prop, array_core=True),
            AdHocDigraph(prop, array_core=False),
            AdHocDigraph(prop, sparse_core=True),
        ]
        _random_trace(graphs, seed, steps=45, check=_assert_snapshots_identical)

    @pytest.mark.parametrize("seed", range(2))
    def test_sparse_area_engages_grid_candidates(self, seed):
        # a huge area with short ranges spreads nodes over many cells,
        # pushing the array core past its selectivity gate so the
        # candidate-gather path itself is equivalence-checked
        rng = np.random.default_rng(seed)
        graphs = [
            AdHocDigraph(array_core=True),
            AdHocDigraph(array_core=False),
            AdHocDigraph(sparse_core=True),
        ]
        for node_id in range(1, 400):
            cfg = NodeConfig(
                node_id,
                float(rng.uniform(0, 2000)),
                float(rng.uniform(0, 2000)),
                float(rng.uniform(20, 40)),
            )
            for g in graphs:
                g.add_node(cfg)
        array = graphs[0]
        assert isinstance(array.grid_index, SlotGridIndex)
        assert array.grid_index.cell_count > 32  # gate open: gathers engage
        _random_trace(
            graphs,
            seed,
            steps=30,
            check=_assert_snapshots_identical,
            area=2000.0,
            first_id=400,
            alive=range(1, 400),
        )

    def test_copy_preserves_array_core(self):
        g = AdHocDigraph(array_core=True)
        rng = np.random.default_rng(3)
        for i in range(1, 30):
            g.add_node(
                NodeConfig(i, float(rng.uniform(0, 100)), float(rng.uniform(0, 100)), 25.0)
            )
        clone = g.copy()
        assert clone.core == "array"
        clone.remove_node(2)
        clone.move_node(7, 0.0, 0.0)
        assert g.snapshot() != clone.snapshot()  # copies diverge independently
        for graph in (g, clone):
            _, adj = graph.adjacency()
            assert (graph.conflict_adjacency()[1] == conflict_matrix(adj)).all()


class TestSlotQuerySurface:
    @pytest.fixture()
    def graph(self):
        g = AdHocDigraph(array_core=True)
        rng = np.random.default_rng(11)
        for i in range(1, 40):
            g.add_node(
                NodeConfig(
                    i,
                    float(rng.uniform(0, 100)),
                    float(rng.uniform(0, 100)),
                    float(rng.uniform(10, 35)),
                )
            )
        return g

    def test_slot_ids_and_slot_of_are_inverse(self, graph):
        ids = graph.slot_ids()
        assert not ids.flags.writeable
        for slot, node_id in enumerate(ids.tolist()):
            assert graph.slot_of(node_id) == slot

    def test_out_in_slots_match_id_queries(self, graph):
        ids = graph.slot_ids()
        for node_id in graph.node_ids():
            s = graph.slot_of(node_id)
            assert sorted(ids[graph.out_slots(s)].tolist()) == graph.out_neighbors(node_id)
            assert sorted(ids[graph.in_slots(s)].tolist()) == graph.in_neighbors(node_id)

    def test_v1_slots_is_closed_in_neighborhood(self, graph):
        for node_id in graph.node_ids():
            s = graph.slot_of(node_id)
            expected = sorted(set(graph.in_slots(s).tolist()) | {s})
            assert graph.v1_slots(s).tolist() == expected

    def test_conflict_masks_match_conflict_neighbor_ids(self, graph):
        ids = graph.slot_ids()
        slots = np.arange(len(ids), dtype=np.intp)
        rows = graph.conflict_masks(slots)
        assert rows.shape == (len(ids), len(ids))
        assert not rows.diagonal().any()
        for s in slots.tolist():
            got = set(ids[rows[s]].tolist())
            assert got == graph.conflict_neighbor_ids(int(ids[s]))


class TestSparseCoreEquivalence:
    def test_copy_preserves_sparse_core(self):
        g = AdHocDigraph(sparse_core=True)
        rng = np.random.default_rng(7)
        for i in range(1, 30):
            g.add_node(
                NodeConfig(i, float(rng.uniform(0, 100)), float(rng.uniform(0, 100)), 25.0)
            )
        clone = g.copy()
        assert clone.core == "sparse"
        clone.remove_node(4)
        clone.move_node(9, 0.0, 0.0)
        assert g.snapshot() != clone.snapshot()  # copies diverge independently
        witness = AdHocDigraph(array_core=True)
        for node_id, x, y, r in clone.snapshot()["nodes"]:
            witness.add_node(NodeConfig(node_id, x, y, r))
        _assert_cores_agree([witness, clone], clone.node_ids())

    @pytest.mark.parametrize(
        ("src", "dst"),
        [("array", "sparse"), ("sparse", "array"), ("sparse", "dict"), ("dict", "sparse")],
    )
    def test_cross_core_snapshot_restore(self, src, dst):
        kwargs = {
            "array": dict(array_core=True),
            "dict": dict(array_core=False),
            "sparse": dict(sparse_core=True),
        }
        origin = AdHocDigraph(**kwargs[src])
        _random_trace([origin], seed=13, steps=50, check=lambda *_: None)
        snap = origin.snapshot()
        restored = AdHocDigraph.restore(snap, **kwargs[dst])
        assert restored.core == dst
        assert restored.snapshot() == snap  # round-trip is byte-identical
        # and the restored graph *continues* identically under churn
        _random_trace(
            [origin, restored],
            seed=17,
            steps=25,
            check=_assert_snapshots_identical,
            first_id=1000,
            alive=origin.node_ids(),
        )

    def test_auto_promotion_matches_pinned_cores(self, monkeypatch):
        import repro.topology.digraph as digraph_mod

        monkeypatch.delenv("REPRO_SPARSE", raising=False)
        monkeypatch.setattr(digraph_mod, "_SPARSE_AUTO_MIN", 10)
        graphs = [
            AdHocDigraph(),  # default knobs: auto-promotion armed
            AdHocDigraph(array_core=True),
            AdHocDigraph(array_core=False),
        ]
        assert graphs[0].core == "array"
        _random_trace(graphs, seed=5, steps=80, check=_assert_snapshots_identical)
        assert graphs[0].core == "sparse"  # crossed the threshold mid-trace
        assert graphs[1].core == "array"  # an explicit pin never promotes


class TestSparseRoundBatching:
    @pytest.mark.parametrize("seed", range(3))
    def test_apply_round_matches_sequential(self, seed):
        rng = np.random.default_rng(seed)
        batched = AdHocDigraph(sparse_core=True)
        sequential = AdHocDigraph(sparse_core=True)
        witness = AdHocDigraph(array_core=True)
        alive: list[int] = []
        next_id = 1
        for _ in range(8):
            round_events = []
            for _ in range(int(rng.integers(5, 15))):
                op = int(rng.integers(0, 6))
                if op in (0, 1) or not alive:
                    cfg = NodeConfig(
                        next_id,
                        float(rng.uniform(0, 100)),
                        float(rng.uniform(0, 100)),
                        float(rng.uniform(5, 40)),
                    )
                    round_events.append(JoinEvent(cfg))
                    alive.append(next_id)
                    next_id += 1
                elif op == 2 and len(alive) > 1:
                    v = alive.pop(int(rng.integers(0, len(alive))))
                    round_events.append(LeaveEvent(v))
                elif op in (3, 4):
                    v = alive[int(rng.integers(0, len(alive)))]
                    x, y = float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
                    round_events.append(MoveEvent(v, x, y))
                else:
                    v = alive[int(rng.integers(0, len(alive)))]
                    round_events.append(PowerChangeEvent(v, float(rng.uniform(5, 40))))
            got = batched.apply_round(round_events)
            want = [sequential.apply_event(ev) for ev in round_events]
            for ev in round_events:
                witness.apply_event(ev)
            assert got == want  # per-event deltas, byte-for-byte
            assert batched.snapshot() == sequential.snapshot() == witness.snapshot()

    def test_non_sparse_cores_fall_back_to_sequential(self):
        g = AdHocDigraph(array_core=True)
        events = [
            JoinEvent(NodeConfig(1, 10.0, 10.0, 30.0)),
            JoinEvent(NodeConfig(2, 20.0, 10.0, 30.0)),
            MoveEvent(1, 15.0, 12.0),
        ]
        deltas = g.apply_round(events)
        assert [d.kind for d in deltas] == ["join", "join", "move"]
        assert [d.version for d in deltas] == [1, 2, 3]


class TestSparseScalarEquivalence:
    """The vectorized sparse kernels against the PR 7 scalar oracle.

    ``sparse_scalar=True`` pins the per-event scalar kernels the
    batched row-rebuild / bulk-join paths replaced; the vectorized core
    must stay byte-identical to it on randomized churn, including under
    a propagation model with no native block kernel (the
    ``block_masks`` fallback loop).
    """

    @pytest.mark.parametrize("seed", range(3))
    def test_free_space_traces_identical(self, seed):
        graphs = [
            AdHocDigraph(sparse_core=True),
            AdHocDigraph(sparse_core=True, sparse_scalar=True),
            AdHocDigraph(array_core=True),
        ]
        assert graphs[1].sparse_scalar and not graphs[0].sparse_scalar
        _random_trace(graphs, seed, steps=60, check=_assert_snapshots_identical)

    def test_obstructed_propagation_identical(self):
        prop = ObstructedPropagation((RectObstacle(30.0, 30.0, 60.0, 40.0),))
        graphs = [
            AdHocDigraph(prop, sparse_core=True),
            AdHocDigraph(prop, sparse_core=True, sparse_scalar=True),
        ]
        _random_trace(graphs, seed=9, steps=40, check=_assert_snapshots_identical)

    def test_scalar_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_SCALAR", "1")
        assert AdHocDigraph(sparse_core=True).sparse_scalar
        monkeypatch.setenv("REPRO_SPARSE_SCALAR", "0")
        assert not AdHocDigraph(sparse_core=True).sparse_scalar


class TestBulkJoin:
    def _configs(self, n, seed, area=300.0):
        rng = np.random.default_rng(seed)
        return [
            NodeConfig(
                i + 1,
                float(rng.uniform(0, area)),
                float(rng.uniform(0, area)),
                float(rng.uniform(5, 40)),
            )
            for i in range(n)
        ]

    @pytest.mark.parametrize("seed", range(3))
    def test_bulk_join_matches_sequential(self, seed):
        configs = self._configs(120, seed)
        bulk = AdHocDigraph(sparse_core=True)
        sequential = AdHocDigraph(sparse_core=True, sparse_scalar=True)
        deltas = bulk.bulk_join(configs)
        for cfg in configs:
            sequential.add_node(cfg)
        assert [(d.kind, d.node_id, d.version) for d in deltas] == [
            ("join", cfg.node_id, v + 1) for v, cfg in enumerate(configs)
        ]
        assert bulk.snapshot() == sequential.snapshot()

    def test_apply_round_routes_all_join_rounds(self):
        configs = self._configs(40, seed=4)
        routed = AdHocDigraph(sparse_core=True)
        sequential = AdHocDigraph(sparse_core=True)
        got = routed.apply_round([JoinEvent(cfg) for cfg in configs])
        want = [sequential.apply_event(JoinEvent(cfg)) for cfg in configs]
        assert got == want
        assert routed.snapshot() == sequential.snapshot()

    def test_duplicate_join_fails_before_any_mutation(self):
        from repro.errors import DuplicateNodeError

        g = AdHocDigraph(sparse_core=True)
        configs = self._configs(10, seed=2)
        snap = None
        g.bulk_join(configs)
        snap = g.snapshot()
        dupe = [NodeConfig(100, 1.0, 1.0, 10.0), configs[3]]
        with pytest.raises(DuplicateNodeError):
            g.bulk_join(dupe)
        assert g.snapshot() == snap  # pre-validation left no half-commit

    def test_non_sparse_core_falls_back_to_sequential(self):
        configs = self._configs(12, seed=6)
        g = AdHocDigraph(array_core=True)
        deltas = g.bulk_join(configs)
        assert [d.version for d in deltas] == list(range(1, 13))
        witness = AdHocDigraph(array_core=True)
        for cfg in configs:
            witness.add_node(cfg)
        assert g.snapshot() == witness.snapshot()


class TestConflictSlotLists:
    @pytest.fixture()
    def graph(self):
        g = AdHocDigraph(sparse_core=True)
        rng = np.random.default_rng(21)
        for i in range(1, 80):
            g.add_node(
                NodeConfig(
                    i,
                    float(rng.uniform(0, 200)),
                    float(rng.uniform(0, 200)),
                    float(rng.uniform(10, 45)),
                )
            )
        return g

    def test_matches_per_slot_query(self, graph):
        slots = np.arange(len(graph.slot_ids()), dtype=np.intp)
        rows = graph.conflict_slot_lists(slots)
        assert len(rows) == len(slots)
        for s, row in zip(slots.tolist(), rows):
            np.testing.assert_array_equal(row, graph.conflict_slots(int(s)))

    def test_rows_are_frozen_and_cached(self, graph):
        slots = np.asarray([0, 3, 0, 7], dtype=np.intp)
        first = graph.conflict_slot_lists(slots)
        assert not first[0].flags.writeable
        assert first[0] is first[2]  # duplicate request, one derivation
        again = graph.conflict_slot_lists(slots)
        assert all(a is b for a, b in zip(first, again))  # version cache hit

    def test_mutation_invalidates_cache(self, graph):
        slots = np.asarray([0, 1, 2], dtype=np.intp)
        stale = graph.conflict_slot_lists(slots)
        graph.move_node(3, 0.0, 0.0)
        fresh = graph.conflict_slot_lists(slots)
        for s, row in zip(slots.tolist(), fresh):
            np.testing.assert_array_equal(row, graph.conflict_slots(int(s)))
        assert not any(a is b for a, b in zip(stale, fresh))

    def test_empty_and_non_sparse_fallback(self, graph):
        assert graph.conflict_slot_lists(np.asarray([], dtype=np.intp)) == []
        dense = AdHocDigraph(array_core=True)
        dense.add_node(NodeConfig(1, 10.0, 10.0, 30.0))
        dense.add_node(NodeConfig(2, 20.0, 10.0, 30.0))
        (row,) = dense.conflict_slot_lists(np.asarray([0], dtype=np.intp))
        np.testing.assert_array_equal(row, dense.conflict_slots(0))


class TestArrayCoreDefaults:
    def test_env_flag_flips_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPARSE", raising=False)
        monkeypatch.setenv("REPRO_ARRAY", "0")
        assert AdHocDigraph().core == "dict"
        monkeypatch.setenv("REPRO_ARRAY", "1")
        assert AdHocDigraph().core == "array"
        monkeypatch.delenv("REPRO_ARRAY")
        assert AdHocDigraph().core == "array"  # array is the default core

    def test_dense_wins_over_array(self):
        assert AdHocDigraph(dense_conflicts=True, array_core=True).core == "dense"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY", "1")
        assert AdHocDigraph(array_core=False).core == "dict"

    def test_sparse_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARRAY", raising=False)
        monkeypatch.setenv("REPRO_SPARSE", "1")
        assert AdHocDigraph().core == "sparse"
        assert default_core() == "sparse"
        # explicit core pins beat the env knob
        assert AdHocDigraph(array_core=True).core == "array"
        assert AdHocDigraph(array_core=False).core == "dict"
        assert AdHocDigraph(sparse_core=False).core == "array"

    def test_dense_wins_over_sparse(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE", "1")
        monkeypatch.setenv("REPRO_DENSE", "1")
        assert AdHocDigraph().core == "dense"
        assert default_core() == "dense"
        assert AdHocDigraph(dense_conflicts=True, sparse_core=True).core == "dense"

    def test_default_core_accounts_for_population(self, monkeypatch):
        import repro.topology.digraph as digraph_mod

        for knob in ("REPRO_SPARSE", "REPRO_ARRAY", "REPRO_DENSE"):
            monkeypatch.delenv(knob, raising=False)
        threshold = digraph_mod._SPARSE_AUTO_MIN
        assert default_core() == "array"
        assert default_core(threshold - 1) == "array"
        assert default_core(threshold) == "sparse"
        monkeypatch.setenv("REPRO_SPARSE", "0")  # pin disables auto-promotion
        assert default_core(threshold) == "array"
