"""Tests for the CA1 ∪ CA2 conflict graph."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.conflicts import (
    are_conflicting,
    conflict_degree,
    conflict_matrix,
    conflict_neighbors,
)
from repro.topology.static import StaticDigraph
from tests.conftest import make_random_graph


def brute_force_conflicts(adj: np.ndarray) -> np.ndarray:
    """CA1/CA2 by direct definition, nested loops."""
    n = adj.shape[0]
    out = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if adj[i, j] or adj[j, i]:
                out[i, j] = True  # CA1
                continue
            for k in range(n):
                if adj[i, k] and adj[j, k]:
                    out[i, j] = True  # CA2
                    break
    return out


class TestConflictMatrix:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            conflict_matrix(np.zeros((2, 3), dtype=bool))

    def test_empty(self):
        assert conflict_matrix(np.zeros((0, 0), dtype=bool)).shape == (0, 0)

    def test_simple_hidden_conflict(self):
        # 0 -> 2 <- 1: CA2 makes 0 and 1 conflict.
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 2] = adj[1, 2] = True
        c = conflict_matrix(adj)
        assert c[0, 1] and c[1, 0]
        assert c[0, 2] and c[1, 2]  # CA1 via edges
        assert not c.diagonal().any()

    @given(st.integers(0, 500))
    def test_matches_brute_force_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 14))
        adj = rng.random((n, n)) < 0.3
        np.fill_diagonal(adj, False)
        assert (conflict_matrix(adj) == brute_force_conflicts(adj)).all()

    @given(st.integers(0, 100))
    def test_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        adj = rng.random((10, 10)) < 0.4
        np.fill_diagonal(adj, False)
        c = conflict_matrix(adj)
        assert (c == c.T).all()

    def test_no_uint8_overflow_on_dense_graphs(self):
        # 300 common out-neighbors would overflow a uint8 accumulator.
        n = 302
        adj = np.ones((n, n), dtype=bool)
        np.fill_diagonal(adj, False)
        c = conflict_matrix(adj)
        assert c[0, 1]


class TestConflictNeighbors:
    def test_matches_matrix_on_geometric_graphs(self):
        g = make_random_graph(seed=5, n=25)
        ids, adj = g.adjacency()
        c = conflict_matrix(adj)
        for i, v in enumerate(ids):
            expected = {ids[j] for j in np.flatnonzero(c[i])}
            assert conflict_neighbors(g, v) == expected
            assert g.conflict_neighbor_ids(v) == expected

    def test_static_graph_fast_path_matches_matrix(self):
        g = StaticDigraph(edges=[(1, 2), (3, 2), (2, 4), (5, 4), (5, 1)])
        ids, adj = g.adjacency()
        c = conflict_matrix(adj)
        for i, v in enumerate(ids):
            expected = {ids[j] for j in np.flatnonzero(c[i])}
            assert conflict_neighbors(g, v) == expected

    def test_are_conflicting_consistency(self):
        g = make_random_graph(seed=6, n=15)
        for u in g.node_ids():
            nbrs = conflict_neighbors(g, u)
            for v in g.node_ids():
                if v != u:
                    assert are_conflicting(g, u, v) == (v in nbrs)

    def test_self_never_conflicts(self):
        g = make_random_graph(seed=7, n=10)
        for u in g.node_ids():
            assert not are_conflicting(g, u, u)
            assert u not in conflict_neighbors(g, u)


class TestConflictDegree:
    def test_matches_neighbors(self):
        g = make_random_graph(seed=8, n=20)
        degs = conflict_degree(g)
        for v in g.node_ids():
            assert degs[v] == len(conflict_neighbors(g, v))
