"""Property-based slot-table invariants under randomized churn.

``AdHocDigraph._vacate_slot`` is the shared swap-delete tail of every
removal: it renumbers the last slot into the freed one across *all*
per-slot tables (positions, ranges, id maps, dense blocks, sparse rows
and witness dicts, grid membership).  These tests hammer it with
seeded random add/remove/move/set-range sequences and assert the full
set of structural invariants after every step, for every conflict
core — the class of bug a swap-delete rewrite can introduce (a stale
slot reference, an uncleared trailing row, an asymmetric witness
count) surfaces here rather than as a downstream equivalence drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.digraph import AdHocDigraph
from repro.topology.node import NodeConfig

CORES = {
    "dict": dict(array_core=False),
    "dense": dict(dense_conflicts=True),
    "array": dict(array_core=True),
    "sparse": dict(sparse_core=True),
}


def _check_slot_tables(g: AdHocDigraph) -> None:
    """The id↔slot maps agree and every per-slot table is aligned."""
    n = len(g.node_ids())
    ids = list(g._ids)
    assert len(ids) == n == len(g._index)
    assert g._ida[:n].tolist() == ids
    for node_id, slot in g._index.items():
        assert ids[slot] == node_id
    for node_id in ids:
        cfg = g.config(node_id)
        slot = g._index[node_id]
        assert (g._pos[slot] == (cfg.x, cfg.y)).all()
        assert g._range[slot] == cfg.tx_range


def _check_adjacency_oracle(g: AdHocDigraph) -> None:
    """Edges match the geometric definition: u→v iff dist ≤ range(u)."""
    ids, adj = g.adjacency()
    if not ids:
        return
    perm = np.asarray([g._index[v] for v in ids], dtype=np.intp)
    pos = g._pos[perm]
    rng = g._range[perm]
    d2 = ((pos[:, None, :] - pos[None, :, :]) ** 2).sum(axis=2)
    want = d2 <= (rng[:, None] ** 2)
    np.fill_diagonal(want, False)
    assert (adj == want).all()


def _check_trailing_slots_clear(g: AdHocDigraph) -> None:
    """Swap-delete must zero the freed trailing rows, not just hide them."""
    n = len(g.node_ids())
    if g._adj is not None:
        assert not g._adj[n:].any()
        assert not g._adj[:, n:].any()
    if g._c2 is not None:
        assert not g._c2[n:].any()
        assert not g._c2[:, n:].any()


def _check_sparse_rows(g: AdHocDigraph) -> None:
    """CSR rows are sorted/unique/in-range, mirrored, and the witness
    dicts hold exactly the positive |out(u) ∩ out(v)| counts."""
    n = len(g.node_ids())
    assert len(g._outr) == len(g._inr) == len(g._c2s) == n
    outs = []
    for u in range(n):
        for row in (g._outr[u], g._inr[u]):
            entries = row.view()
            assert (np.diff(entries) > 0).all()  # strictly ascending = unique
            if entries.size:
                assert 0 <= int(entries[0]) and int(entries[-1]) < n
                assert u not in entries.tolist()  # no self-loops
        outs.append(set(g._outr[u].view().tolist()))
        for v in g._outr[u].view().tolist():
            assert u in g._inr[v].view().tolist()  # out/in mirror
        for v in g._inr[u].view().tolist():
            assert u in g._outr[v].view().tolist()
    for u in range(n):
        for v, count in g._c2s[u].items():
            assert v != u and count > 0  # zero entries must be deleted
            assert g._c2s[v][u] == count  # symmetric mirror
    for u in range(n):  # completeness: every overlapping pair is witnessed
        for v in range(u + 1, n):
            assert g._c2s[u].get(v, 0) == len(outs[u] & outs[v])


def _check_all(g: AdHocDigraph) -> None:
    _check_slot_tables(g)
    _check_adjacency_oracle(g)
    _check_trailing_slots_clear(g)
    if g.core == "sparse":
        _check_sparse_rows(g)


class TestSlotInvariantsUnderChurn:
    @pytest.mark.parametrize("core", sorted(CORES))
    @pytest.mark.parametrize("seed", range(3))
    def test_random_churn_preserves_invariants(self, core, seed):
        g = AdHocDigraph(**CORES[core])
        rng = np.random.default_rng(seed)
        alive: list[int] = []
        next_id = 1
        for _ in range(90):
            op = int(rng.integers(0, 6))
            if op in (0, 1) or not alive:
                g.add_node(
                    NodeConfig(
                        next_id,
                        float(rng.uniform(0, 120)),
                        float(rng.uniform(0, 120)),
                        float(rng.uniform(5, 45)),
                    )
                )
                alive.append(next_id)
                next_id += 1
            elif op in (2, 3):
                v = alive.pop(int(rng.integers(0, len(alive))))
                g.remove_node(v)
            elif op == 4:
                v = alive[int(rng.integers(0, len(alive)))]
                g.move_node(v, float(rng.uniform(0, 120)), float(rng.uniform(0, 120)))
            else:
                v = alive[int(rng.integers(0, len(alive)))]
                g.set_range(v, float(rng.uniform(5, 45)))
            _check_all(g)
        assert sorted(g.node_ids()) == sorted(alive)

    @pytest.mark.parametrize("core", sorted(CORES))
    def test_remove_last_slot_and_drain_to_empty(self, core):
        # the i == last branch (no swap), then drain through repeated
        # swap-deletes of slot 0, then rebuild on the emptied tables
        g = AdHocDigraph(**CORES[core])
        for i in range(1, 13):
            g.add_node(NodeConfig(i, float(3 * i), float(2 * i), 20.0))
        g.remove_node(12)  # departing node *is* the last slot
        _check_all(g)
        while g.node_ids():
            g.remove_node(g._ids[0])  # always vacate slot 0
            _check_all(g)
        for i in range(20, 26):
            g.add_node(NodeConfig(i, float(i), float(i), 15.0))
        _check_all(g)
