"""Tests for the explicit-edge StaticDigraph."""

import pytest

from repro.errors import DuplicateNodeError, UnknownNodeError
from repro.topology.static import DigraphLike, StaticDigraph


@pytest.fixture
def fig1_graph():
    """The digraph of the paper's Fig 1(b): 4 nodes + joiner 5."""
    return StaticDigraph(
        nodes=[1, 2, 3, 4, 5],
        edges=[(1, 2), (2, 1), (2, 3), (3, 2), (3, 4), (4, 3), (4, 2), (5, 4)],
    )


class TestConstruction:
    def test_nodes_and_edges(self, fig1_graph):
        assert fig1_graph.node_ids() == [1, 2, 3, 4, 5]
        assert fig1_graph.has_edge(5, 4) and not fig1_graph.has_edge(4, 5)
        assert fig1_graph.edge_count() == 8

    def test_edge_creates_nodes(self):
        g = StaticDigraph(edges=[(7, 9)])
        assert g.node_ids() == [7, 9]

    def test_duplicate_node_rejected(self):
        g = StaticDigraph(nodes=[1])
        with pytest.raises(DuplicateNodeError):
            g.add_node(1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            StaticDigraph(edges=[(1, 1)])

    def test_satisfies_protocol(self, fig1_graph):
        assert isinstance(fig1_graph, DigraphLike)


class TestQueries:
    def test_neighbors(self, fig1_graph):
        assert fig1_graph.out_neighbors(4) == [2, 3]
        assert fig1_graph.in_neighbors(4) == [3, 5]

    def test_unknown_raises(self, fig1_graph):
        with pytest.raises(UnknownNodeError):
            fig1_graph.in_neighbors(42)
        with pytest.raises(UnknownNodeError):
            fig1_graph.has_edge(1, 42)

    def test_adjacency_matches_edges(self, fig1_graph):
        ids, adj = fig1_graph.adjacency()
        for i, u in enumerate(ids):
            for j, v in enumerate(ids):
                assert adj[i, j] == fig1_graph.has_edge(u, v)

    def test_hop_distances(self, fig1_graph):
        d = fig1_graph.undirected_hop_distances(5)
        assert d == {5: 0, 4: 1, 2: 2, 3: 2, 1: 3}

    def test_conflict_neighbors_fig1(self, fig1_graph):
        # Fig 1(c): constraints include 1-2, 2-3, 3-4, 2-4 (edges) and
        # common-receiver pairs.
        assert 2 in fig1_graph.conflict_neighbor_ids(1)
        # 1 and 3 both transmit into 2 -> hidden conflict.
        assert 3 in fig1_graph.conflict_neighbor_ids(1)
        # 5 and 3 both transmit into 4.
        assert 3 in fig1_graph.conflict_neighbor_ids(5)
        assert 4 in fig1_graph.conflict_neighbor_ids(5)
        # 1 is not in conflict with 5 (no edge, no common receiver).
        assert 1 not in fig1_graph.conflict_neighbor_ids(5)


class TestMutation:
    def test_remove_edge(self, fig1_graph):
        fig1_graph.remove_edge(5, 4)
        assert not fig1_graph.has_edge(5, 4)

    def test_remove_node(self, fig1_graph):
        fig1_graph.remove_node(2)
        assert 2 not in fig1_graph
        assert fig1_graph.out_neighbors(1) == []
        assert fig1_graph.in_neighbors(3) == [4]

    def test_remove_unknown_raises(self, fig1_graph):
        with pytest.raises(UnknownNodeError):
            fig1_graph.remove_node(42)

    def test_copy_independent(self, fig1_graph):
        g2 = fig1_graph.copy()
        g2.remove_node(1)
        assert 1 in fig1_graph and 1 not in g2
