"""Tests for connectivity predicates."""

from repro.topology.builder import build_digraph
from repro.topology.connectivity import (
    has_minimal_connectivity,
    weakly_connected_components,
)
from repro.topology.node import NodeConfig


def cfg(i, x, r=12.0):
    return NodeConfig(i, float(x), 0.0, tx_range=float(r))


class TestMinimalConnectivity:
    def test_line_interior_ok(self, line_graph):
        assert all(has_minimal_connectivity(line_graph, v) for v in line_graph.node_ids())

    def test_isolated_node_fails(self):
        g = build_digraph([cfg(1, 0), cfg(2, 500)])
        assert not has_minimal_connectivity(g, 1)
        assert not has_minimal_connectivity(g, 2)

    def test_out_only_fails(self):
        # 1 reaches 2 but nobody reaches 1.
        g = build_digraph([cfg(1, 0, r=100), cfg(2, 50, r=10)])
        assert not has_minimal_connectivity(g, 1)  # no in-neighbor
        assert not has_minimal_connectivity(g, 2)  # no out-neighbor

    def test_asymmetric_triangle_ok(self):
        # 1 -> 2 -> 3 -> 1: everyone has one in and one out.
        g = build_digraph([cfg(1, 0, r=11), cfg(2, 10, r=11), cfg(3, 20, r=25)])
        g.set_range(3, 25.0)
        assert has_minimal_connectivity(g, 2)


class TestComponents:
    def test_single_component(self, line_graph):
        comps = weakly_connected_components(line_graph)
        assert comps == [{1, 2, 3, 4, 5}]

    def test_two_components_sorted_by_size(self):
        g = build_digraph(
            [cfg(1, 0), cfg(2, 10), cfg(3, 20), cfg(10, 500), cfg(11, 510)]
        )
        comps = weakly_connected_components(g)
        assert comps == [{1, 2, 3}, {10, 11}]

    def test_empty(self):
        g = build_digraph([])
        assert weakly_connected_components(g) == []

    def test_asymmetric_edge_connects(self):
        g = build_digraph([cfg(1, 0, r=100), cfg(2, 50, r=10)])
        assert weakly_connected_components(g) == [{1, 2}]
