"""Tests for the 1n/2n/3n/4n partition and k-hop sets."""

import pytest

from repro.topology.neighborhoods import join_partition, k_hop_neighbors, vicinity
from repro.topology.static import StaticDigraph
from tests.conftest import make_random_graph


@pytest.fixture
def star():
    """n=0 with in-only {1}, bidirectional {2}, out-only {3}, none {4}."""
    return StaticDigraph(
        nodes=[0, 1, 2, 3, 4],
        edges=[(1, 0), (2, 0), (0, 2), (0, 3)],
    )


class TestJoinPartition:
    def test_fig2_sets(self, star):
        p = join_partition(star, 0)
        assert p.one == {1}
        assert p.two == {2}
        assert p.three == {3}
        assert p.four == {4}

    def test_v1(self, star):
        p = join_partition(star, 0)
        assert p.v1 == {0, 1, 2}
        assert p.in_neighbors == {1, 2}
        assert p.out_neighbors == {2, 3}

    def test_partition_is_exhaustive_and_disjoint(self):
        g = make_random_graph(seed=11, n=25)
        for n in g.node_ids()[:5]:
            p = join_partition(g, n)
            sets = [p.one, p.two, p.three, p.four]
            union = set().union(*sets)
            assert union == set(g.node_ids()) - {n}
            assert sum(len(s) for s in sets) == len(union)

    def test_partition_semantics_match_edges(self):
        g = make_random_graph(seed=12, n=20)
        n = g.node_ids()[0]
        p = join_partition(g, n)
        for u in p.one:
            assert g.has_edge(u, n) and not g.has_edge(n, u)
        for u in p.two:
            assert g.has_edge(u, n) and g.has_edge(n, u)
        for u in p.three:
            assert g.has_edge(n, u) and not g.has_edge(u, n)
        for u in p.four:
            assert not g.has_edge(n, u) and not g.has_edge(u, n)


class TestKHop:
    def test_line(self, line_graph):
        assert k_hop_neighbors(line_graph, 1, 1) == {2}
        assert k_hop_neighbors(line_graph, 1, 2) == {2, 3}
        assert k_hop_neighbors(line_graph, 3, 2) == {1, 2, 4, 5}

    def test_zero_hops_empty(self, line_graph):
        assert k_hop_neighbors(line_graph, 1, 0) == set()

    def test_negative_rejected(self, line_graph):
        with pytest.raises(ValueError):
            k_hop_neighbors(line_graph, 1, -1)

    def test_vicinity_includes_self(self, line_graph):
        assert vicinity(line_graph, 1, 1) == {1, 2}

    def test_conflict_neighbors_within_two_hops(self):
        # The CP safety argument: conflicts are always within 2 hops.
        g = make_random_graph(seed=13, n=25)
        for u in g.node_ids():
            two_hop = k_hop_neighbors(g, u, 2)
            assert g.conflict_neighbor_ids(u) <= two_hop
