"""Versioned delta snapshots and copy-on-write forks of the digraph.

The O(changes) checkpoint contract: a delta cut between two versions,
serialized through JSON and applied to a graph sitting at the base
version, lands on byte-identical state — on every conflict core, under
chained composition, and through shrink/grow churn.  Forks share state
copy-on-write, so mutations on either side never leak across.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.events.base import JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.random_networks import sample_configs
from repro.topology.digraph import AdHocDigraph

CORES = ("array", "grid", "dense", "sparse")


def make_graph(core: str) -> AdHocDigraph:
    if core == "sparse":
        return AdHocDigraph(sparse_core=True)
    return AdHocDigraph(dense_conflicts=core == "dense", array_core=core == "array")


def canonical(graph: AdHocDigraph) -> str:
    return json.dumps(graph.snapshot(), sort_keys=True)


def churn_round(graph, rng, live, next_id, *, leaves=2, joins=2, moves=5):
    """One mixed shrink/grow/move round; returns the updated id pool."""
    for _ in range(leaves):
        nid = int(rng.choice(live))
        live.remove(nid)
        graph.apply_event(LeaveEvent(nid))
    for cfg in sample_configs(joins, rng):
        cfg = replace(cfg, node_id=next_id)
        next_id += 1
        graph.apply_event(JoinEvent(cfg))
        live.append(cfg.node_id)
    for i, nid in enumerate(rng.choice(live, size=moves, replace=False).tolist()):
        if i == 0:
            graph.apply_event(PowerChangeEvent(int(nid), float(rng.uniform(15, 35))))
        else:
            graph.apply_event(
                MoveEvent(int(nid), float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            )
    return next_id


class TestDeltaRoundTrips:
    @pytest.mark.parametrize("core", CORES)
    def test_single_delta_is_byte_identical(self, core):
        rng = np.random.default_rng(5)
        g = make_graph(core)
        for cfg in sample_configs(30, rng):
            g.apply_event(JoinEvent(cfg))
        shadow = g.copy()
        base = g.version
        churn_round(g, rng, [c for c in g.node_ids()], max(g.node_ids()) + 1)
        blob = json.dumps(g.delta_snapshot(base), separators=(",", ":"))
        shadow.apply_delta(json.loads(blob))
        assert canonical(shadow) == canonical(g)

    @pytest.mark.parametrize("core", CORES)
    def test_chained_deltas_compose(self, core):
        # the checkpoint-chain lifecycle: every round's delta is cut
        # against the previous round's version and applied in order
        rng = np.random.default_rng(17)
        g = make_graph(core)
        cfgs = sample_configs(40, rng)
        for cfg in cfgs:
            g.apply_event(JoinEvent(cfg))
        shadow = g.copy()
        live = [c.node_id for c in cfgs]
        next_id = max(live) + 1
        base = g.version
        for step in range(6):
            next_id = churn_round(g, rng, live, next_id)
            blob = json.dumps(g.delta_snapshot(base), separators=(",", ":"))
            shadow.apply_delta(json.loads(blob))
            base = g.version
            assert canonical(shadow) == canonical(g), f"diverged at round {step}"
            for nid in live[:10]:
                assert set(shadow.conflict_neighbor_ids(nid)) == set(
                    g.conflict_neighbor_ids(nid)
                )

    @pytest.mark.parametrize("core", ("array", "sparse"))
    def test_live_slot_grid_is_maintained_incrementally(self, core):
        # above _GRID_LAZY_MIN the slot grid is live, so apply_delta
        # takes the in-place O(dirty) path instead of the full rebuild;
        # conflict queries after chained churn must still agree with a
        # from-scratch restore of the same snapshot
        rng = np.random.default_rng(23)
        cfgs = sample_configs(300, rng, area=(160.0, 160.0))
        g = make_graph(core)
        for cfg in cfgs:
            g.apply_event(JoinEvent(cfg))
        shadow = g.copy()
        live = [c.node_id for c in cfgs]
        next_id = max(live) + 1
        base = g.version
        for _ in range(3):
            next_id = churn_round(g, rng, live, next_id, leaves=6, joins=4, moves=10)
            shadow.apply_delta(g.delta_snapshot(base))
            base = g.version
        assert canonical(shadow) == canonical(g)
        fresh = AdHocDigraph.restore(json.loads(canonical(g)))
        for nid in live[:25]:
            assert set(shadow.conflict_neighbor_ids(nid)) == set(
                fresh.conflict_neighbor_ids(nid)
            )

    def test_empty_delta_advances_the_version_only(self):
        g = make_graph("array")
        for cfg in sample_configs(6, np.random.default_rng(1)):
            g.apply_event(JoinEvent(cfg))
        before = canonical(g)
        g.apply_delta(
            {
                "schema": 1,
                "kind": "digraph-delta",
                "base_version": g.version,
                "version": g.version + 3,
                "n": len(g.node_ids()),
                "cell": None,
                "slots": [],
            }
        )
        assert g.version == int(json.loads(before)["version"]) + 3
        after = json.loads(canonical(g))
        after["version"] = json.loads(before)["version"]
        assert json.dumps(after, sort_keys=True) == before


class TestDeltaValidation:
    def test_stale_base_rejected_naming_both_versions(self):
        rng = np.random.default_rng(3)
        g = make_graph("array")
        for cfg in sample_configs(10, rng):
            g.apply_event(JoinEvent(cfg))
        stale = g.copy()
        base = g.version
        g.apply_event(MoveEvent(int(g.node_ids()[0]), 5.0, 5.0))
        delta = g.delta_snapshot(base)
        stale.apply_event(MoveEvent(int(stale.node_ids()[1]), 9.0, 9.0))
        with pytest.raises(ConfigurationError) as err:
            stale.apply_delta(delta)
        assert str(base) in str(err.value)
        assert str(stale.version) in str(err.value)

    def test_non_delta_dict_rejected(self):
        g = make_graph("array")
        with pytest.raises(ConfigurationError, match="delta_snapshot"):
            g.apply_delta(g.snapshot())


class TestCopyOnWriteFork:
    @pytest.mark.parametrize("core", CORES)
    def test_child_mutations_never_leak_into_the_parent(self, core):
        rng = np.random.default_rng(9)
        g = make_graph(core)
        for cfg in sample_configs(20, rng):
            g.apply_event(JoinEvent(cfg))
        before = canonical(g)
        child = g.fork()
        child.apply_event(MoveEvent(int(child.node_ids()[0]), 1.0, 1.0))
        child.apply_event(LeaveEvent(int(child.node_ids()[-1])))
        assert canonical(g) == before

    @pytest.mark.parametrize("core", CORES)
    def test_parent_mutations_never_leak_into_the_child(self, core):
        rng = np.random.default_rng(9)
        g = make_graph(core)
        for cfg in sample_configs(20, rng):
            g.apply_event(JoinEvent(cfg))
        child = g.fork()
        frozen = canonical(child)
        g.apply_event(MoveEvent(int(g.node_ids()[0]), 2.0, 2.0))
        g.apply_event(PowerChangeEvent(int(g.node_ids()[1]), 30.0))
        assert canonical(child) == frozen

    def test_fork_then_diverge_then_delta_each_side(self):
        # both sides of a fork stay valid delta producers: deltas cut
        # on parent and child apply cleanly to pre-fork copies
        rng = np.random.default_rng(31)
        g = make_graph("sparse")
        for cfg in sample_configs(25, rng):
            g.apply_event(JoinEvent(cfg))
        base_copy = g.copy()
        base_v = g.version
        child = g.fork()
        g.apply_event(MoveEvent(int(g.node_ids()[0]), 3.0, 3.0))
        child.apply_event(MoveEvent(int(child.node_ids()[1]), 7.0, 7.0))
        for side in (g, child):
            follower = base_copy.copy()
            follower.apply_delta(json.loads(json.dumps(side.delta_snapshot(base_v))))
            assert canonical(follower) == canonical(side)
