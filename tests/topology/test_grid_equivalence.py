"""Grid/incremental conflict maintenance vs the dense escape hatch.

The acceptance bar for the fast path: on randomized event traces, the
grid-backed incremental digraph must produce *identical* adjacency and
conflict sets to the ``REPRO_DENSE`` path (which re-derives the
canonical dense conflict matrix per event), and both must agree with
the pure :func:`conflict_matrix` oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.obstacles import RectObstacle
from repro.topology.conflicts import conflict_matrix
from repro.topology.digraph import AdHocDigraph
from repro.topology.node import NodeConfig
from repro.topology.propagation import ObstructedPropagation


def _random_trace(graphs: list[AdHocDigraph], seed: int, steps: int, check) -> None:
    """Drive identical random events through ``graphs``; ``check`` after each."""
    rng = np.random.default_rng(seed)
    alive: list[int] = []
    next_id = 1
    for _ in range(steps):
        op = int(rng.integers(0, 5))
        if op in (0, 1) or not alive:  # join (weighted up to keep graphs non-trivial)
            cfg = NodeConfig(
                next_id,
                float(rng.uniform(0, 100)),
                float(rng.uniform(0, 100)),
                float(rng.uniform(5, 40)),
            )
            for g in graphs:
                g.add_node(cfg)
            alive.append(next_id)
            next_id += 1
        elif op == 2 and len(alive) > 1:  # leave
            v = alive.pop(int(rng.integers(0, len(alive))))
            for g in graphs:
                g.remove_node(v)
        elif op == 3:  # move
            v = alive[int(rng.integers(0, len(alive)))]
            x, y = float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
            for g in graphs:
                g.move_node(v, x, y)
        else:  # power change; occasionally a large raise (exercises regrid)
            v = alive[int(rng.integers(0, len(alive)))]
            r = float(rng.uniform(5, 40)) * (6.0 if rng.random() < 0.1 else 1.0)
            for g in graphs:
                g.set_range(v, r)
        check(graphs, alive)


def _assert_equivalent(graphs: list[AdHocDigraph], alive: list[int]) -> None:
    fast, dense = graphs
    ids_f, adj_f = fast.adjacency()
    ids_d, adj_d = dense.adjacency()
    assert ids_f == ids_d
    assert (adj_f == adj_d).all()
    oracle = conflict_matrix(adj_f)
    assert (fast.conflict_adjacency()[1] == oracle).all()
    assert (dense.conflict_adjacency()[1] == oracle).all()
    for v in alive:
        assert fast.conflict_neighbor_ids(v) == dense.conflict_neighbor_ids(v)
        assert fast.in_neighbors(v) == dense.in_neighbors(v)
        assert fast.out_neighbors(v) == dense.out_neighbors(v)


class TestRandomizedTraceEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_free_space_conflict_sets_identical(self, seed):
        graphs = [AdHocDigraph(dense_conflicts=False), AdHocDigraph(dense_conflicts=True)]
        assert not graphs[0].dense_conflicts and graphs[1].dense_conflicts
        _random_trace(graphs, seed, steps=60, check=_assert_equivalent)

    @pytest.mark.parametrize("seed", range(2))
    def test_obstructed_propagation_equivalent(self, seed):
        obstacles = (RectObstacle(30.0, 30.0, 60.0, 40.0),)
        prop = ObstructedPropagation(obstacles)
        graphs = [
            AdHocDigraph(prop, dense_conflicts=False),
            AdHocDigraph(prop, dense_conflicts=True),
        ]
        _random_trace(graphs, seed, steps=40, check=_assert_equivalent)

    def test_grid_engages_on_fast_path(self):
        g = AdHocDigraph(dense_conflicts=False)
        g.add_node(NodeConfig(1, 10.0, 10.0, 25.0))
        assert g.grid_index is not None
        # The array core keys the grid by storage slot, the dict core by
        # node id; either way the sole node must be indexed.
        assert len(g.grid_index) == 1
        d = AdHocDigraph(dense_conflicts=True)
        d.add_node(NodeConfig(1, 10.0, 10.0, 25.0))
        assert d.grid_index is None

    def test_regrid_on_large_power_raise(self):
        g = AdHocDigraph(dense_conflicts=False)
        for i in range(1, 10):
            g.add_node(NodeConfig(i, 10.0 * i, 5.0, 4.0))
        small_cell = g.grid_index.cell_size
        g.set_range(3, 80.0)  # > regrid factor x cell size
        assert g.grid_index.cell_size > small_cell
        assert g.out_neighbors(3) == [1, 2, 4, 5, 6, 7, 8, 9]
        ids, adj = g.adjacency()
        assert (g.conflict_adjacency()[1] == conflict_matrix(adj)).all()

    def test_copy_preserves_fast_path_state(self):
        g = AdHocDigraph(dense_conflicts=False)
        rng = np.random.default_rng(0)
        for i in range(1, 25):
            g.add_node(
                NodeConfig(i, float(rng.uniform(0, 100)), float(rng.uniform(0, 100)), 25.0)
            )
        g2 = g.copy()
        g2.remove_node(1)
        g2.move_node(5, 0.0, 0.0)
        assert 1 in g and g.conflict_neighbor_ids(1) is not None
        for graph in (g, g2):
            ids, adj = graph.adjacency()
            assert (graph.conflict_adjacency()[1] == conflict_matrix(adj)).all()


class TestDenseEnvDefault:
    def test_repro_dense_env_flips_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE", "1")
        assert AdHocDigraph().dense_conflicts
        monkeypatch.setenv("REPRO_DENSE", "0")
        assert not AdHocDigraph().dense_conflicts
        monkeypatch.delenv("REPRO_DENSE")
        assert not AdHocDigraph().dense_conflicts

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE", "1")
        assert not AdHocDigraph(dense_conflicts=False).dense_conflicts
