"""Tests for bulk digraph construction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.obstacles import RectObstacle
from repro.topology.builder import build_digraph, bulk_adjacency
from repro.topology.node import NodeConfig
from repro.topology.propagation import ObstructedPropagation


class TestBuildDigraph:
    def test_duplicate_ids_rejected(self):
        cfgs = [NodeConfig(1, 0, 0, tx_range=1), NodeConfig(1, 5, 5, tx_range=1)]
        with pytest.raises(ConfigurationError, match="duplicate"):
            build_digraph(cfgs)

    def test_empty(self):
        assert len(build_digraph([])) == 0

    def test_accepts_generator(self):
        g = build_digraph(NodeConfig(i, i * 5.0, 0.0, tx_range=6.0) for i in range(4))
        assert len(g) == 4 and g.has_edge(0, 1)


class TestBulkAdjacency:
    def test_matches_incremental_free_space(self):
        rng = np.random.default_rng(0)
        cfgs = [
            NodeConfig(i, *rng.uniform(0, 100, 2), tx_range=float(rng.uniform(10, 40)))
            for i in range(30)
        ]
        g = build_digraph(cfgs)
        ids, pos, ranges = g.positions_and_ranges()
        _, adj = g.adjacency()
        assert (bulk_adjacency(pos, ranges) == adj).all()

    def test_matches_incremental_obstructed(self):
        prop = ObstructedPropagation(obstacles=(RectObstacle(40, 0, 60, 100),))
        rng = np.random.default_rng(1)
        cfgs = [
            NodeConfig(i, *rng.uniform(0, 100, 2), tx_range=float(rng.uniform(10, 60)))
            for i in range(20)
        ]
        g = build_digraph(cfgs, propagation=prop)
        ids, pos, ranges = g.positions_and_ranges()
        _, adj = g.adjacency()
        assert (bulk_adjacency(pos, ranges, propagation=prop) == adj).all()

    def test_empty(self):
        assert bulk_adjacency(np.zeros((0, 2)), np.zeros(0)).shape == (0, 0)

    def test_no_self_loops(self):
        pos = np.zeros((3, 2))
        adj = bulk_adjacency(pos, np.ones(3))
        assert not adj.diagonal().any()
        assert adj.sum() == 6  # everyone covers everyone else
