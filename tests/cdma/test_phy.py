"""Tests for packet-slot reception: valid TOCA assignment <=> no garbling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cdma.phy import simulate_slot
from repro.coloring.assignment import CodeAssignment
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import MinimStrategy
from repro.topology.static import StaticDigraph


def minim_network(seed: int, n: int = 20) -> AdHocNetwork:
    rng = np.random.default_rng(seed)
    net = AdHocNetwork(MinimStrategy())
    for cfg in sample_configs(n, rng):
        net.join(cfg)
    return net


class TestValidAssignmentDecodes:
    @given(st.integers(0, 500))
    def test_silent_receivers_decode_everything(self, seed):
        net = minim_network(seed, n=15)
        rng = np.random.default_rng(seed)
        transmitters = [v for v in net.node_ids() if rng.random() < 0.4]
        payloads = {
            tx: rng.integers(0, 2, 6).tolist() for tx in transmitters
        }
        reports = simulate_slot(net.graph, net.assignment, payloads)
        for r in reports:
            if r.receiver not in payloads:  # silent receiver
                assert r.success, (r.transmitter, r.receiver, r.reason)

    def test_all_transmit_primary_collisions_only(self):
        net = minim_network(1, n=12)
        payloads = {v: [1, 0, 1] for v in net.node_ids()}
        reports = simulate_slot(net.graph, net.assignment, payloads)
        assert reports  # dense enough to have edges
        assert all(r.reason == "primary_collision" for r in reports)


class TestInvalidAssignmentGarbles:
    def test_hidden_collision_detected(self):
        # 1 -> 3 <- 2 with equal colors: receiver 3 cannot separate them.
        g = StaticDigraph(edges=[(1, 3), (2, 3)])
        a = CodeAssignment({1: 1, 2: 1, 3: 2})
        reports = simulate_slot(g, a, {1: [1, 0], 2: [0, 1]})
        at3 = [r for r in reports if r.receiver == 3]
        assert len(at3) == 2
        assert all(r.reason == "hidden_collision" and not r.success for r in at3)

    def test_hidden_collision_even_with_identical_payloads(self):
        # Equal payloads superpose to a decodable-looking wave, but the
        # streams are still inseparable -> flagged as hidden collision.
        g = StaticDigraph(edges=[(1, 3), (2, 3)])
        a = CodeAssignment({1: 1, 2: 1, 3: 2})
        reports = simulate_slot(g, a, {1: [1, 0], 2: [1, 0]})
        at3 = [r for r in reports if r.receiver == 3]
        assert all(not r.success for r in at3)

    def test_distinct_codes_same_receiver_fine(self):
        g = StaticDigraph(edges=[(1, 3), (2, 3)])
        a = CodeAssignment({1: 1, 2: 2, 3: 3})
        reports = simulate_slot(g, a, {1: [1, 0], 2: [0, 1]})
        assert all(r.success for r in reports if r.receiver == 3)


class TestApi:
    def test_empty_transmitters(self):
        g = StaticDigraph(nodes=[1])
        assert simulate_slot(g, CodeAssignment({1: 1}), {}) == []

    def test_unequal_payload_lengths_rejected(self):
        g = StaticDigraph(edges=[(1, 2)])
        a = CodeAssignment({1: 1, 2: 2})
        with pytest.raises(ValueError):
            simulate_slot(g, a, {1: [1], 2: [1, 0]})

    def test_noise_requires_rng(self):
        from repro.cdma.channel import received_signal
        from repro.errors import CodebookError

        with pytest.raises(CodebookError):
            received_signal({1: np.zeros(4)}, {1}, noise_std=0.5)

    def test_mild_noise_still_decodes(self):
        g = StaticDigraph(edges=[(1, 2)])
        a = CodeAssignment({1: 1, 2: 2})
        from repro.cdma.codebook import Codebook

        reports = simulate_slot(
            g,
            a,
            {1: [1, 0, 1, 1]},
            codebook=Codebook(8),  # spreading gain 8
            noise_std=0.1,
            rng=np.random.default_rng(0),
        )
        assert all(r.success for r in reports)

    def test_reports_deterministic_order(self):
        net = minim_network(2, n=10)
        payloads = {v: [1, 1] for v in net.node_ids()[:4]}
        a = simulate_slot(net.graph, net.assignment, payloads)
        b = simulate_slot(net.graph, net.assignment, payloads)
        assert a == b
