"""Tests for the CDMA physical layer: Walsh codes, spreading, codebook."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cdma.codebook import Codebook
from repro.cdma.spreading import bits_to_symbols, despread, spread, symbols_to_bits
from repro.cdma.walsh import hadamard_matrix, next_power_of_two, walsh_codes
from repro.errors import CodebookError


class TestWalsh:
    @pytest.mark.parametrize("order", [1, 2, 4, 8, 16, 64])
    def test_orthogonality(self, order):
        h = hadamard_matrix(order)
        gram = h.astype(np.int64) @ h.astype(np.int64).T
        assert (gram == order * np.eye(order, dtype=np.int64)).all()

    def test_entries_pm1(self):
        h = hadamard_matrix(8)
        assert set(np.unique(h)) == {-1, 1}

    @pytest.mark.parametrize("bad", [0, 3, 6, 12, -4])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(CodebookError):
            hadamard_matrix(bad)

    def test_walsh_codes_default_length(self):
        codes = walsh_codes(5)
        assert codes.shape == (5, 8)

    def test_walsh_codes_explicit_length_too_small(self):
        with pytest.raises(CodebookError):
            walsh_codes(5, length=4)

    @given(st.integers(1, 300))
    def test_next_power_of_two(self, n):
        p = next_power_of_two(n)
        assert p >= n and (p & (p - 1)) == 0
        assert p // 2 < n


class TestSpreading:
    def test_bits_symbols_roundtrip(self):
        bits = np.array([0, 1, 1, 0])
        assert (symbols_to_bits(bits_to_symbols(bits)) == bits).all()

    def test_bad_bits_rejected(self):
        with pytest.raises(CodebookError):
            bits_to_symbols(np.array([0, 2]))

    def test_spread_despread_roundtrip(self):
        code = walsh_codes(4)[2]
        bits = np.array([1, 0, 0, 1, 1])
        corr = despread(spread(bits, code), code)
        assert (symbols_to_bits(corr) == bits).all()
        assert np.allclose(np.abs(corr), 1.0)

    def test_orthogonal_interferer_invisible(self):
        codes = walsh_codes(4)
        bits_a = np.array([1, 0, 1])
        bits_b = np.array([0, 0, 1])
        mixed = spread(bits_a, codes[1]) + spread(bits_b, codes[2])
        assert (symbols_to_bits(despread(mixed, codes[1])) == bits_a).all()
        assert (symbols_to_bits(despread(mixed, codes[2])) == bits_b).all()

    def test_same_code_interferer_garbles(self):
        code = walsh_codes(4)[1]
        mixed = spread(np.array([1, 0]), code) + spread(np.array([0, 1]), code)
        corr = despread(mixed, code)
        assert np.allclose(corr, 0.0)  # opposite symbols cancel exactly

    def test_length_mismatch_rejected(self):
        code = walsh_codes(4)[0]
        with pytest.raises(CodebookError):
            despread(np.zeros(5), code)

    @given(st.integers(0, 1000))
    def test_random_multiuser_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        n_users = int(rng.integers(1, 8))
        codes = walsh_codes(8)
        payloads = rng.integers(0, 2, (n_users, 6))
        mixed = sum(spread(payloads[u], codes[u]) for u in range(n_users))
        for u in range(n_users):
            got = symbols_to_bits(despread(mixed, codes[u]))
            assert (got == payloads[u]).all()


class TestCodebook:
    def test_capacity_and_chip_length(self):
        cb = Codebook(5)
        assert cb.capacity == 5
        assert cb.chip_length == 8

    def test_color_out_of_range(self):
        cb = Codebook(4)
        with pytest.raises(CodebookError):
            cb.code_for(0)
        with pytest.raises(CodebookError):
            cb.code_for(5)

    def test_for_max_color(self):
        assert Codebook.for_max_color(9).capacity == 9
        assert Codebook.for_max_color(0).capacity == 1

    def test_distinct_colors_orthogonal(self):
        cb = Codebook(8)
        for a in range(1, 9):
            for b in range(1, 9):
                if a != b:
                    assert cb.are_orthogonal(a, b)
                else:
                    assert not cb.are_orthogonal(a, b)

    def test_invalid_capacity(self):
        with pytest.raises(CodebookError):
            Codebook(0)
