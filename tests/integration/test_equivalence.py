"""Cross-cutting equivalence properties.

* RecodeOnMove vs leave-then-join (Theorem 4.4.1): identical topology,
  and the move never recodes more than the leave+join pair.
* Oracle vs distributed executions on full join sequences.
* Minim/CP/BBB all converge to valid assignments on the same workload.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import run_distributed_join
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import MinimStrategy
from repro.topology.node import NodeConfig


def build(seed: int, n: int) -> AdHocNetwork:
    rng = np.random.default_rng(seed)
    net = AdHocNetwork(MinimStrategy(), validate=True)
    for cfg in sample_configs(n, rng):
        net.join(cfg)
    return net


class TestMoveVsLeaveJoin:
    @given(st.integers(0, 3_000))
    @settings(max_examples=15)
    def test_same_topology_and_no_more_recodes(self, seed):
        rng = np.random.default_rng(seed)
        n = 14
        mover_net = build(seed, n)
        lj_net = build(seed, n)
        v = int(rng.choice(mover_net.node_ids()))
        x, y = float(rng.uniform(0, 100)), float(rng.uniform(0, 100))
        tx_range = mover_net.graph.range_of(v)

        move_result = mover_net.move(v, x, y)
        lj_net.leave(v)
        lj_result = lj_net.join(NodeConfig(v, x, y, tx_range=tx_range))

        ids_a, adj_a = mover_net.graph.adjacency()
        ids_b, adj_b = lj_net.graph.adjacency()
        assert ids_a == ids_b and (adj_a == adj_b).all()
        # The join must recode n (fresh assignment); the move keeps n's
        # color when possible, so it can only do better.
        assert move_result.recode_count <= lj_result.recode_count
        assert mover_net.is_valid() and lj_net.is_valid()

    def test_move_to_same_place_is_free_but_leavejoin_is_not(self):
        net_a = build(5, 10)
        net_b = build(5, 10)
        v = net_a.node_ids()[0]
        x, y = net_a.graph.position_of(v)
        r = net_a.graph.range_of(v)
        assert net_a.move(v, x, y).recode_count == 0
        net_b.leave(v)
        assert net_b.join(NodeConfig(v, x, y, tx_range=r)).recode_count >= 1


class TestOracleVsDistributedSequences:
    @pytest.mark.parametrize("seed", range(4))
    def test_full_join_sequence_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        configs = sample_configs(15, rng)
        oracle_net = AdHocNetwork(MinimStrategy(), validate=True)
        dist_net = AdHocNetwork(MinimStrategy(), validate=True)
        for cfg in configs:
            oracle_net.join(cfg)
            # Distributed: insert, run protocol, apply changes manually.
            dist_net.graph.add_node(cfg)
            stats = run_distributed_join(dist_net.graph, dist_net.assignment, cfg.node_id)
            for node, (_old, new) in stats.changes.items():
                dist_net.assignment.assign(node, new)
        assert oracle_net.assignment == dist_net.assignment


class TestCrossStrategyConsistency:
    def test_all_strategies_color_the_same_topology(self):
        rng = np.random.default_rng(9)
        configs = sample_configs(20, rng)
        finals = {}
        for name in ("Minim", "CP", "BBB"):
            from repro.sim.experiments import make_strategy

            net = AdHocNetwork(make_strategy(name), validate=True)
            for cfg in configs:
                net.join(cfg)
            finals[name] = net
        topologies = {
            name: tuple(sorted(net.graph.edges())) for name, net in finals.items()
        }
        assert len(set(topologies.values())) == 1  # same topology evolution
        for net in finals.values():
            assert net.is_valid()

    def test_minim_palette_not_larger_than_cp(self):
        # Aggregate over several seeds (per-seed this can flip by a color
        # or two; summed it should hold clearly).
        minim_total = cp_total = 0
        for seed in range(6):
            rng = np.random.default_rng(seed)
            configs = sample_configs(30, rng)
            from repro.sim.experiments import make_strategy

            nets = {}
            for name in ("Minim", "CP"):
                net = AdHocNetwork(make_strategy(name))
                for cfg in configs:
                    net.join(cfg)
                nets[name] = net
            minim_total += nets["Minim"].max_color()
            cp_total += nets["CP"].max_color()
        assert minim_total <= cp_total
