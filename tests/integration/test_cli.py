"""Tests for the CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_fig10_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.command == "fig10"
        assert args.n_values == [40, 60, 80, 100, 120]

    def test_common_flags_after_subcommand(self):
        args = build_parser().parse_args(["fig11", "--runs", "3", "--seed", "9"])
        assert args.runs == 3 and args.seed == 9

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["fig10", "--runs", "1"],
            ["fig11", "--runs", "1"],
            ["fig12", "--runs", "1"],
            ["all", "--runs", "1"],
            ["scenario", "dense-urban", "--runs", "1"],
            ["scenario", "--list"],
            ["bench", "--runs", "1"],
        ],
    )
    def test_every_subcommand_parses_with_runs_1(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestMain:
    def test_fig11_prints_tables_and_checks(self, capsys):
        rc = main(["fig11", "--runs", "1", "--n", "15", "--raisefactors", "1", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "delta_max_color" in out
        assert "delta_recodings" in out
        assert "PASS" in out or "FAIL" in out

    def test_fig12_runs(self, capsys):
        rc = main(
            [
                "fig12",
                "--runs",
                "1",
                "--n",
                "10",
                "--rounds",
                "2",
                "--maxdisps",
                "0",
                "20",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig12-move-disp" in out
        assert "fig12-move-rounds" in out

    def test_fig10_writes_markdown(self, tmp_path, capsys):
        rc = main(
            [
                "fig10",
                "--runs",
                "1",
                "--n-values",
                "8",
                "12",
                "--skip-range-sweep",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        written = list(tmp_path.glob("*.md"))
        assert len(written) == 1
        text = written[0].read_text()
        assert "max_color" in text and "| N |" in text


class TestScenarioCommand:
    def test_list_prints_catalog(self, capsys):
        rc = main(["scenario", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("poisson-cluster", "hotspot-churn", "dense-urban"):
            assert name in out

    def test_missing_name_lists_and_fails(self, capsys):
        rc = main(["scenario"])
        assert rc == 2
        assert "registered scenarios" in capsys.readouterr().out

    def test_unknown_name_prints_clean_error(self, capsys):
        rc = main(["scenario", "no-such-scenario", "--runs", "1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown scenario" in err and "dense-urban" in err

    def test_scenario_runs_tiny_sweep(self, capsys):
        rc = main(["scenario", "sparse-long-range", "--runs", "1", "--strategies", "Minim"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scenario-sparse-long-range" in out
        assert "max_color" in out

    def test_scenario_writes_markdown(self, tmp_path, capsys):
        rc = main(
            [
                "scenario",
                "sparse-long-range",
                "--runs",
                "1",
                "--strategies",
                "Minim",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "scenario-sparse-long-range.md").exists()


class TestBenchCommand:
    def test_bench_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_eventloop.json"
        # --large-n 0 skips the N=10⁴ scale trace: this test covers the
        # harness plumbing, not the ~minutes large-join measurement
        # (CI's smoke-bench job runs it through the default CLI
        # invocation, and the sparse-core job smokes it at N=20000).
        rc = main(
            [
                "bench",
                "--runs",
                "1",
                "--n",
                "24",
                "--large-n",
                "0",
                "--profile",
                "--out",
                str(out_path),
            ]
        )
        printed = capsys.readouterr().out
        assert rc == 0
        profile_path = tmp_path / "BENCH_eventloop_profile.txt"
        assert profile_path.exists()  # --profile: top-25 rows beside the JSON
        profile_text = profile_path.read_text()
        # sorted by cumulative time and showing real harness frames —
        # which exact function tops the list depends on n, so pin the
        # module rather than one row
        assert "Ordered by: cumulative time" in profile_text
        assert "repro/sim/bench.py" in profile_text
        assert "fig10-join" in printed and "speedup" in printed
        assert "multi-strategy-replay" in printed
        entries = json.loads(out_path.read_text())
        assert {e["mode"] for e in entries} == {
            "array",
            "grid",
            "dense",
            "sparse",
            "per-strategy",
            "shared",
            "cold",
            "warm",
            "warm-rounds",
            "timeline",
            "fixed",
            "adaptive",
        }
        for e in entries:
            assert {"scenario", "n", "wall_seconds", "events_per_sec"} <= set(e)
        array = [e for e in entries if e["mode"] == "array"]
        assert len(array) == 2 and all(e["speedup_vs_dict"] > 0 for e in array)
        assert not any(e["scenario"] == "large-join" for e in entries)
        shared = [e for e in entries if e["mode"] == "shared"]
        assert len(shared) == 1 and shared[0]["speedup_vs_per_strategy"] > 0
        warm = [e for e in entries if e["mode"] == "warm"]
        assert len(warm) == 1 and warm[0]["speedup_vs_cold"] > 0
        timeline = [e for e in entries if e["mode"] == "timeline"]
        assert len(timeline) == 1 and timeline[0]["timeline_prefix_sharing"] > 0
        adaptive = [e for e in entries if e["mode"] == "adaptive"]
        assert len(adaptive) == 1 and adaptive[0]["run_savings_vs_fixed"] >= 1.0

    def test_bench_rejects_small_large_n(self, capsys):
        rc = main(["bench", "--runs", "1", "--n", "24", "--large-n", "100"])
        assert rc == 2
        assert "large-n" in capsys.readouterr().err

    def test_large_n_only_requires_a_large_n(self, capsys):
        rc = main(["bench", "--runs", "1", "--large-n", "0", "--large-n-only"])
        assert rc == 2
        assert "large-n-only" in capsys.readouterr().err


class TestWorkerAndStoreCommands:
    def _seed_store(self, path, executor="serial"):
        rc = main(
            [
                "scenario",
                "sparse-long-range",
                "--runs",
                "1",
                "--strategies",
                "Minim",
                "--results",
                str(path),
                "--executor",
                executor,
            ]
        )
        assert rc == 0

    def test_worker_once_on_empty_store_exits_clean(self, tmp_path, capsys):
        rc = main(["worker", "--results", str(tmp_path / "store.sqlite"), "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "computed 0 task group(s)" in out

    def test_sqlite_results_flag_and_store_ls(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        self._seed_store(db, executor="worker")
        rc = main(["store", "ls", str(db)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sqlite store" in out
        assert "scenario-sparse-long-range" in out

    def test_store_compact_and_migrate(self, tmp_path, capsys):
        src = tmp_path / "json-store"
        self._seed_store(src)
        rc = main(["store", "migrate", str(src), str(tmp_path / "copy.sqlite")])
        assert rc == 0
        assert "migrated 3 point(s)" in capsys.readouterr().out
        rc = main(["store", "compact", str(src)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "compacted 3 point file(s)" in out
        assert (src / "store.sqlite").exists()
        assert not (src / "points").exists()

    def test_store_migrate_requires_dest(self, tmp_path, capsys):
        rc = main(["store", "migrate", str(tmp_path / "x")])
        assert rc == 2
        assert "DEST" in capsys.readouterr().err
