"""Tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_fig10_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.command == "fig10"
        assert args.n_values == [40, 60, 80, 100, 120]

    def test_common_flags_after_subcommand(self):
        args = build_parser().parse_args(["fig11", "--runs", "3", "--seed", "9"])
        assert args.runs == 3 and args.seed == 9

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_fig11_prints_tables_and_checks(self, capsys):
        rc = main(["fig11", "--runs", "1", "--n", "15", "--raisefactors", "1", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "delta_max_color" in out
        assert "delta_recodings" in out
        assert "PASS" in out or "FAIL" in out

    def test_fig12_runs(self, capsys):
        rc = main(
            [
                "fig12",
                "--runs",
                "1",
                "--n",
                "10",
                "--rounds",
                "2",
                "--maxdisps",
                "0",
                "20",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig12-move-disp" in out
        assert "fig12-move-rounds" in out

    def test_fig10_writes_markdown(self, tmp_path, capsys):
        rc = main(
            [
                "fig10",
                "--runs",
                "1",
                "--n-values",
                "8",
                "12",
                "--skip-range-sweep",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        written = list(tmp_path.glob("*.md"))
        assert len(written) == 1
        text = written[0].read_text()
        assert "max_color" in text and "| N |" in text
