"""Stress and non-free-space integration tests.

The paper notes (section 2) the model generalizes to non-free-space
propagation; all strategies must stay CA1/CA2-valid when obstacles
suppress in-range edges.  Also stress digraph slot reuse: long
join/leave churn with id recycling.
"""

import numpy as np
import pytest

from repro.geometry.obstacles import RectObstacle
from repro.sim.experiments import make_strategy
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import MinimStrategy
from repro.topology.node import NodeConfig
from repro.topology.propagation import ObstructedPropagation


class TestObstructedPropagation:
    @pytest.mark.parametrize("name", ["Minim", "CP", "BBB"])
    def test_strategies_valid_behind_walls(self, name):
        walls = (
            RectObstacle(45.0, 0.0, 55.0, 60.0),
            RectObstacle(20.0, 80.0, 80.0, 85.0),
        )
        prop = ObstructedPropagation(obstacles=walls)
        rng = np.random.default_rng(3)
        net = AdHocNetwork(make_strategy(name), propagation=prop, validate=True)
        configs = sample_configs(25, rng)
        for cfg in configs:
            net.join(cfg)
        for cfg in configs[:8]:
            net.move(cfg.node_id, float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
        assert net.is_valid()

    def test_wall_reduces_conflicts(self):
        rng = np.random.default_rng(4)
        configs = sample_configs(30, rng)
        free = AdHocNetwork(MinimStrategy())
        walled = AdHocNetwork(
            MinimStrategy(),
            propagation=ObstructedPropagation(
                obstacles=(RectObstacle(48.0, 0.0, 52.0, 100.0),)
            ),
        )
        for cfg in configs:
            free.join(cfg)
            walled.join(cfg)
        assert walled.graph.edge_count() < free.graph.edge_count()
        assert walled.max_color() <= free.max_color()


class TestIdRecyclingChurn:
    def test_leave_rejoin_same_ids_many_times(self):
        rng = np.random.default_rng(5)
        net = AdHocNetwork(MinimStrategy(), validate=True)
        configs = sample_configs(12, rng)
        for cfg in configs:
            net.join(cfg)
        for round_no in range(6):
            victims = configs[round_no % 3 :: 3]
            for cfg in victims:
                net.leave(cfg.node_id)
            for cfg in victims:
                net.join(
                    NodeConfig(
                        cfg.node_id,
                        float(rng.uniform(0, 100)),
                        float(rng.uniform(0, 100)),
                        tx_range=cfg.tx_range,
                    )
                )
        assert net.is_valid()
        assert sorted(net.node_ids()) == sorted(c.node_id for c in configs)

    def test_network_can_empty_and_refill(self):
        rng = np.random.default_rng(6)
        net = AdHocNetwork(MinimStrategy(), validate=True)
        configs = sample_configs(8, rng)
        for cfg in configs:
            net.join(cfg)
        for cfg in configs:
            net.leave(cfg.node_id)
        assert len(net.graph) == 0
        assert net.max_color() == 0
        for cfg in configs:
            net.join(cfg)
        assert net.is_valid()


class TestExternalConstraintEdgeCases:
    def test_join_where_fresh_colors_are_forced_beyond_constraints(self):
        # Members' colors 1..k plus an external constraint color far
        # above: max_seen follows the constraint, and the palette offers
        # room so nobody is pushed past it unnecessarily.
        from repro.coloring.assignment import CodeAssignment
        from repro.strategies.minim import plan_local_matching_recode
        from repro.topology.static import StaticDigraph

        g = StaticDigraph()
        a = CodeAssignment()
        # external node 50 colored 9 constrains member 1
        g.add_edge(50, 1)
        g.add_edge(1, 50)
        a.assign(50, 9)
        a.assign(1, 1)
        g.add_node(2)
        a.assign(2, 1)
        g.add_node(0)
        g.add_edge(1, 0)
        g.add_edge(2, 0)
        plan = plan_local_matching_recode(g, a, 0)
        assert plan.max_color_seen == 9
        # duplicated class {1, 2}: one keeps color 1; the other plus n
        # slot into the 2..9 palette instead of minting 10+.
        new = dict(a.items()) | {u: c for u, (_o, c) in plan.changes.items()}
        assert max(new[u] for u in (0, 1, 2)) <= 9
