"""The central safety property: every strategy keeps CA1/CA2 valid
through arbitrary event sequences (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.network import AdHocNetwork
from repro.sim.experiments import make_strategy
from repro.topology.node import NodeConfig

STRATEGIES = ["Minim", "CP", "BBB", "GreedySeq", "Minim/w1"]


def run_random_events(strategy_name: str, seed: int, n_events: int = 40) -> AdHocNetwork:
    rng = np.random.default_rng(seed)
    net = AdHocNetwork(make_strategy(strategy_name), validate=True)
    next_id = 0
    alive: list[int] = []
    for _ in range(n_events):
        op = int(rng.integers(0, 10))
        if op <= 3 or len(alive) < 2:  # join (40%)
            cfg = NodeConfig(
                next_id,
                float(rng.uniform(0, 100)),
                float(rng.uniform(0, 100)),
                tx_range=float(rng.uniform(10, 40)),
            )
            net.join(cfg)
            alive.append(next_id)
            next_id += 1
        elif op == 4:  # leave (10%)
            v = alive.pop(int(rng.integers(0, len(alive))))
            net.leave(v)
        elif op <= 7:  # move (30%)
            v = alive[int(rng.integers(0, len(alive)))]
            net.move(v, float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
        else:  # power change (20%)
            v = alive[int(rng.integers(0, len(alive)))]
            net.set_range(v, float(net.graph.range_of(v) * rng.uniform(0.5, 2.5)))
    return net


@pytest.mark.parametrize("strategy_name", STRATEGIES)
class TestSafetyUnderRandomEvents:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8)
    def test_always_valid(self, strategy_name, seed):
        # validate=True asserts CA1/CA2 after *every* event; reaching the
        # end means the whole trajectory was collision-free.
        net = run_random_events(strategy_name, seed)
        assert net.is_valid()
        assert set(net.assignment.nodes()) == set(net.node_ids())


class TestLongRunStability:
    @pytest.mark.parametrize("strategy_name", ["Minim", "CP"])
    def test_hundred_event_trajectory(self, strategy_name):
        net = run_random_events(strategy_name, seed=123, n_events=120)
        assert net.is_valid()
        # codes stay positive and dense-ish (no runaway palette)
        assert net.max_color() < 3 * max(len(net.graph), 1) + 10

    def test_metrics_recodings_match_event_records(self):
        net = run_random_events("Minim", seed=77, n_events=60)
        assert net.metrics.total_recodings == sum(
            r.recodings for r in net.metrics.records
        )
