"""The documentation's CLI examples stay real.

``docs/check_examples.py`` executes every fenced ``minim-cdma`` example
in CI (smoke mode).  The tier-1 suite pins the cheap half: extraction
finds the examples, skip markers are honored, the smoke rewrite works,
and — crucially — every extracted command still *parses* against the
live argument parser, so a renamed flag breaks here in seconds instead
of in the slow CI job.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser

ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_examples", ROOT / "docs" / "check_examples.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module  # dataclasses resolve through sys.modules
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def checker():
    return _load_checker()


@pytest.fixture(scope="module")
def examples(checker):
    return [ex for path in checker.doc_files() for ex in checker.extract_examples(path)]


class TestExtraction:
    def test_doc_files_exist(self, checker):
        files = checker.doc_files()
        assert (ROOT / "README.md") in files
        names = {f.name for f in files}
        assert "benchmarks.md" in names and "event-loop.md" in names

    def test_readme_examples_found(self, examples):
        readme = [ex for ex in examples if ex.source.name == "README.md"]
        assert len(readme) >= 8
        assert any("fig10" in ex.command for ex in readme)
        assert any(ex.command.startswith("minim-cdma bench") for ex in readme)

    def test_skip_marker_honored(self, examples):
        # the install lines, worker daemon session and pytest calls are
        # all under skip markers or non-sh fences
        for ex in examples:
            assert ex.command.startswith("minim-cdma")
            assert "worker" not in ex.command.split()
            assert "&" not in ex.command

    def test_continuation_lines_joined(self, examples):
        churn = [ex for ex in examples if "uniform-churn" in ex.command]
        assert churn and "--results" in churn[0].command  # spanned a backslash

    def test_smoke_rewrite_forces_runs_1(self, examples):
        for ex in examples:
            argv = ex.smoke_argv
            if "--runs" in argv:
                assert argv[argv.index("--runs") + 1] == "1"


class TestCommandsParse:
    def test_every_example_parses_against_the_live_cli(self, examples):
        parser = build_parser()
        for ex in examples:
            args = ex.smoke_argv[3:]  # drop `python -m repro`
            try:
                parser.parse_args(args)
            except SystemExit as exc:  # pragma: no cover - failure path
                pytest.fail(f"{ex.source.name}:{ex.line} no longer parses: {ex.command} ({exc})")
