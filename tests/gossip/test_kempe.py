"""Tests for Kempe-swap compaction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.assignment import CodeAssignment
from repro.coloring.verify import is_valid
from repro.gossip import gossip_compaction, kempe_compaction
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.sim.workloads import power_raise_workload
from repro.strategies.minim import MinimStrategy
from repro.topology.static import StaticDigraph


def churned_network(seed: int, n: int = 25) -> AdHocNetwork:
    rng = np.random.default_rng(seed)
    configs = sample_configs(n, rng)
    net = AdHocNetwork(MinimStrategy())
    for cfg in configs:
        net.join(cfg)
    for ev in power_raise_workload(configs, 2.0, rng):
        net.apply(ev)
    return net


class TestKempeInvariants:
    @given(st.integers(0, 400))
    @settings(max_examples=15)
    def test_validity_preserved(self, seed):
        net = churned_network(seed, n=14)
        res = kempe_compaction(net.graph, net.assignment)
        assert is_valid(net.graph, res.assignment)

    @given(st.integers(0, 400))
    @settings(max_examples=15)
    def test_never_worse_than_descent_only(self, seed):
        net = churned_network(seed, n=14)
        plain = gossip_compaction(net.graph, net.assignment)
        kempe = kempe_compaction(net.graph, net.assignment)
        assert kempe.assignment.max_color() <= plain.assignment.max_color()

    @given(st.integers(0, 200))
    @settings(max_examples=10)
    def test_series_non_increasing(self, seed):
        net = churned_network(seed, n=12)
        res = kempe_compaction(net.graph, net.assignment)
        assert res.max_color_series == sorted(res.max_color_series, reverse=True)

    def test_recolors_reflect_net_change_only(self):
        net = churned_network(3)
        res = kempe_compaction(net.graph, net.assignment)
        for v, (old, new) in res.recolors.items():
            assert net.assignment[v] == old
            assert res.assignment[v] == new
            assert old != new

    def test_input_not_mutated(self):
        net = churned_network(4)
        before = net.assignment.copy()
        kempe_compaction(net.graph, net.assignment)
        assert net.assignment == before


class TestKempeUnlocksDescents:
    def test_swap_breaks_descent_deadlock(self):
        # Triangle 1-2-3 (pairwise conflicts) plus pendant 4 conflicting
        # only with 3.  Colors: 1->1, 2->2, 3->3, 4 stuck at 4 because...
        # give 4 conflicts with holders of 1, 2, 3 except via a swap.
        g = StaticDigraph()
        for u, v in [(1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1)]:
            g.add_edge(u, v)
        # 4 conflicts with 1, 2 and 3 through direct edges:
        for u in (1, 2, 3):
            g.add_edge(4, u)
            g.add_edge(u, 4)
        # 5 conflicts only with 4 and holds color 1... then 4 could never
        # descend; instead craft: 4 at color 4, and node 3 could hold 4's
        # slot. Plain descent: nobody moves (all at their lowest).
        a = CodeAssignment({1: 1, 2: 2, 3: 3, 4: 4})
        assert is_valid(g, a)
        plain = gossip_compaction(g, a)
        assert plain.assignment.max_color() == 4  # descent-only is stuck
        kempe = kempe_compaction(g, a)
        # K4 needs 4 colors; Kempe cannot do better either — equality.
        assert kempe.assignment.max_color() == 4

    def test_swap_reduces_when_possible(self):
        # Directed path with in-degree <= 1 everywhere (so no CA2 pairs
        # at all): 10 -> 20, 30 -> 10, 40 -> 30.  The conflict graph is
        # the path 20 - 10 - 30 - 40.  Colors 10:3, 20:1, 30:2, 40:1
        # leave *every* node at its lowest feasible color, so descent
        # gossip is deadlocked at max = 3.  A Kempe swap 10 <-> 20 puts
        # 10 at 1; 20 inherits 3 and (conflicting only with 10) descends
        # straight to 2.  Final max = 2.
        g = StaticDigraph()
        for x, y in [(10, 20), (30, 10), (40, 30)]:
            g.add_edge(x, y)
        a = CodeAssignment({10: 3, 20: 1, 30: 2, 40: 1})
        assert is_valid(g, a)
        plain = gossip_compaction(g, a)
        assert plain.assignment.max_color() == 3
        assert plain.recolors == {}  # descent-only is deadlocked
        kempe = kempe_compaction(g, a)
        assert kempe.assignment.max_color() == 2
        assert is_valid(g, kempe.assignment)
        assert kempe.recolors[10] == (3, 1)
        assert kempe.recolors[20] == (1, 2)
