"""Tests for gossip compaction (paper section 6 future work)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import forbidden_colors, lowest_available_color
from repro.coloring.verify import is_valid
from repro.gossip import gossip_compaction
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.sim.workloads import power_raise_workload
from repro.strategies.minim import MinimStrategy
from repro.topology.static import StaticDigraph


def loaded_network(seed: int, n: int = 30) -> AdHocNetwork:
    """Joins followed by power raises — leaves compactable slack."""
    rng = np.random.default_rng(seed)
    configs = sample_configs(n, rng)
    net = AdHocNetwork(MinimStrategy())
    for cfg in configs:
        net.join(cfg)
    for ev in power_raise_workload(configs, 2.5, rng):
        net.apply(ev)
    return net


class TestInvariants:
    @given(st.integers(0, 300))
    def test_validity_preserved(self, seed):
        net = loaded_network(seed, n=15)
        res = gossip_compaction(net.graph, net.assignment)
        assert is_valid(net.graph, res.assignment)

    @given(st.integers(0, 300))
    def test_max_color_non_increasing_series(self, seed):
        net = loaded_network(seed, n=15)
        res = gossip_compaction(net.graph, net.assignment)
        series = res.max_color_series
        assert series == sorted(series, reverse=True)
        assert res.assignment.max_color() <= net.max_color()

    @given(st.integers(0, 200))
    def test_quiescent_fixpoint(self, seed):
        # After convergence, no node can unilaterally descend.
        net = loaded_network(seed, n=12)
        res = gossip_compaction(net.graph, net.assignment)
        a = res.assignment
        for v in net.node_ids():
            lowest = lowest_available_color(forbidden_colors(net.graph, a, v))
            assert lowest >= a[v] or lowest == a[v]

    def test_input_not_mutated(self):
        net = loaded_network(7)
        before = net.assignment.copy()
        gossip_compaction(net.graph, net.assignment)
        assert net.assignment == before


class TestBehaviour:
    def test_compacts_an_artificially_inflated_coloring(self):
        g = StaticDigraph(edges=[(1, 2), (2, 1)])
        a = CodeAssignment({1: 5, 2: 9})
        res = gossip_compaction(g, a)
        assert res.assignment.max_color() == 2
        assert res.recolors[1] == (5, 1)
        assert res.recolors[2] == (9, 2)

    def test_already_compact_noop(self):
        g = StaticDigraph(edges=[(1, 2), (2, 1)])
        a = CodeAssignment({1: 1, 2: 2})
        res = gossip_compaction(g, a)
        assert res.recolors == {}
        assert res.rounds == 1

    def test_random_order_still_converges(self):
        net = loaded_network(3)
        res = gossip_compaction(net.graph, net.assignment, rng=np.random.default_rng(0))
        assert is_valid(net.graph, res.assignment)
        assert res.assignment.max_color() <= net.max_color()

    def test_max_rounds_cap(self):
        net = loaded_network(5)
        res = gossip_compaction(net.graph, net.assignment, max_rounds=1)
        assert res.rounds == 1

    def test_invalid_max_rounds(self):
        net = loaded_network(5)
        with pytest.raises(ValueError):
            gossip_compaction(net.graph, net.assignment, max_rounds=0)

    def test_messages_accounted(self):
        net = loaded_network(6)
        res = gossip_compaction(net.graph, net.assignment)
        assert res.messages > 0
