"""Tests for the coloring heuristics: first-fit, DSATUR, smallest-last, BBB."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coloring.bbb import bbb_coloring
from repro.coloring.bounds import clique_lower_bound, receiver_clique_bound
from repro.coloring.dsatur import dsatur_coloring
from repro.coloring.greedy import first_fit_coloring
from repro.coloring.smallest_last import smallest_last_coloring, smallest_last_order
from repro.coloring.verify import is_valid
from repro.topology.conflicts import conflict_matrix
from tests.conftest import make_random_graph

HEURISTICS = [first_fit_coloring, dsatur_coloring, smallest_last_coloring, bbb_coloring]


@pytest.mark.parametrize("heuristic", HEURISTICS, ids=lambda h: h.__name__)
class TestAllHeuristics:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_proper_colorings(self, heuristic, seed):
        g = make_random_graph(seed=seed, n=30)
        a = heuristic(g)
        assert set(a.nodes()) == set(g.node_ids())
        assert is_valid(g, a)

    def test_empty_graph(self, heuristic):
        g = make_random_graph(seed=0, n=0)
        assert heuristic(g).max_color() == 0

    def test_single_node(self, heuristic):
        g = make_random_graph(seed=0, n=1)
        assert heuristic(g).max_color() == 1

    def test_at_least_clique_bound(self, heuristic):
        g = make_random_graph(seed=9, n=25)
        assert heuristic(g).max_color() >= clique_lower_bound(g)

    def test_deterministic(self, heuristic):
        g = make_random_graph(seed=4, n=20)
        assert heuristic(g) == heuristic(g)


class TestRelativeQuality:
    @pytest.mark.parametrize("seed", range(6))
    def test_bbb_no_worse_than_first_fit(self, seed):
        g = make_random_graph(seed=seed, n=40)
        assert bbb_coloring(g).max_color() <= first_fit_coloring(g).max_color()

    @pytest.mark.parametrize("seed", range(6))
    def test_bbb_is_min_of_dsatur_and_smallest_last(self, seed):
        g = make_random_graph(seed=seed, n=35)
        best = min(
            dsatur_coloring(g).max_color(), smallest_last_coloring(g).max_color()
        )
        assert bbb_coloring(g).max_color() == best


class TestFirstFitOrder:
    def test_custom_order_respected(self):
        g = make_random_graph(seed=3, n=10)
        order = sorted(g.node_ids(), reverse=True)
        a = first_fit_coloring(g, order=order)
        assert is_valid(g, a)
        assert a[order[0]] == 1  # first in order always gets color 1

    def test_partial_order_rejected(self):
        g = make_random_graph(seed=3, n=5)
        with pytest.raises(ValueError):
            first_fit_coloring(g, order=g.node_ids()[:-1])


class TestSmallestLastOrder:
    def test_is_permutation(self):
        g = make_random_graph(seed=5, n=20)
        ids, adj = g.adjacency()
        order = smallest_last_order(conflict_matrix(adj))
        assert sorted(order) == list(range(len(ids)))

    @given(st.integers(0, 50))
    def test_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 12))
        adj = rng.random((n, n)) < 0.3
        np.fill_diagonal(adj, False)
        c = conflict_matrix(adj)
        order = smallest_last_order(c)
        assert sorted(order) == list(range(n))


class TestBounds:
    def test_receiver_bound_on_star(self, line_graph):
        # Node 2 hears from 1 and 3 -> clique {2, 1, 3} of size 3.
        assert receiver_clique_bound(line_graph) >= 3

    def test_clique_bound_at_least_receiver_bound(self):
        g = make_random_graph(seed=6, n=25)
        assert clique_lower_bound(g) >= receiver_clique_bound(g)

    def test_empty(self):
        g = make_random_graph(seed=0, n=0)
        assert clique_lower_bound(g) == 0
        assert receiver_clique_bound(g) == 0
