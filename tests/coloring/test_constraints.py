"""Tests for constraint queries."""

from hypothesis import given
from hypothesis import strategies as st

from repro.coloring.constraints import (
    constraining_nodes,
    forbidden_colors,
    lowest_available_color,
)
from repro.topology.conflicts import conflict_neighbors


class TestLowestAvailable:
    def test_empty(self):
        assert lowest_available_color([]) == 1

    def test_gap(self):
        assert lowest_available_color({1, 2, 4, 5}) == 3

    def test_contiguous(self):
        assert lowest_available_color({1, 2, 3}) == 4

    @given(st.sets(st.integers(1, 50), max_size=30))
    def test_result_not_forbidden_and_minimal(self, forbidden):
        c = lowest_available_color(forbidden)
        assert c not in forbidden
        assert all(k in forbidden for k in range(1, c))


class TestForbiddenColors:
    def test_matches_conflict_neighbor_colors(self, small_network):
        g, a = small_network.graph, small_network.assignment
        for v in g.node_ids():
            expected = {a[u] for u in conflict_neighbors(g, v)}
            assert forbidden_colors(g, a, v) == expected

    def test_exclude_removes_constraints(self, small_network):
        g, a = small_network.graph, small_network.assignment
        v = g.node_ids()[0]
        nbrs = conflict_neighbors(g, v)
        if not nbrs:
            return
        excluded = {next(iter(nbrs))}
        full = forbidden_colors(g, a, v)
        reduced = forbidden_colors(g, a, v, exclude=excluded)
        assert reduced <= full
        rest = {a[u] for u in nbrs - excluded}
        assert reduced == rest

    def test_unassigned_neighbors_ignored(self, small_network):
        g = small_network.graph
        a = small_network.assignment.copy()
        v = g.node_ids()[0]
        nbrs = conflict_neighbors(g, v)
        if not nbrs:
            return
        dropped = next(iter(nbrs))
        a.unassign(dropped)
        assert forbidden_colors(g, a, v) == {
            a[u] for u in nbrs if u != dropped
        }

    def test_own_color_never_forbidden_in_valid_assignment(self, small_network):
        g, a = small_network.graph, small_network.assignment
        for v in g.node_ids():
            assert a[v] not in forbidden_colors(g, a, v)


class TestConstrainingNodes:
    def test_equals_conflict_neighbors_minus_exclude(self, small_network):
        g = small_network.graph
        v = g.node_ids()[0]
        nbrs = conflict_neighbors(g, v)
        assert constraining_nodes(g, v) == nbrs
        if nbrs:
            one = {next(iter(nbrs))}
            assert constraining_nodes(g, v, exclude=one) == nbrs - one
