"""Tests for the CA1/CA2 violation finder."""

import pytest

from repro.coloring.assignment import CodeAssignment
from repro.coloring.verify import Violation, assert_valid, find_violations, is_valid
from repro.errors import ColoringConflictError, UncoloredNodeError
from repro.topology.builder import build_digraph
from repro.topology.node import NodeConfig


def cfg(i, x, r=12.0):
    return NodeConfig(i, float(x), 0.0, tx_range=float(r))


class TestCA1:
    def test_edge_same_color_flagged(self, line_graph):
        a = CodeAssignment({1: 1, 2: 1, 3: 2, 4: 3, 5: 4})
        vs = find_violations(line_graph, a)
        assert any(v.kind == "CA1" and set(v.nodes) == {1, 2} for v in vs)

    def test_edge_distinct_colors_ok(self, line_graph):
        a = CodeAssignment({1: 1, 2: 2, 3: 1, 4: 2, 5: 1})
        # Line with range 12: only adjacent nodes share edges, but
        # CA2 applies: 1 and 3 both reach 2 -> conflict.
        vs = find_violations(line_graph, a)
        assert all(v.kind == "CA2" for v in vs)


class TestCA2:
    def test_hidden_collision_flagged(self, line_graph):
        a = CodeAssignment({1: 1, 2: 2, 3: 1, 4: 3, 5: 4})
        vs = find_violations(line_graph, a)
        assert any(
            v.kind == "CA2" and v.nodes == (1, 3) and v.receiver == 2 for v in vs
        )

    def test_valid_line_coloring(self, line_graph):
        a = CodeAssignment({1: 1, 2: 2, 3: 3, 4: 1, 5: 2})
        assert is_valid(line_graph, a)

    def test_duplicate_pairs_reported_once_per_receiver(self):
        # 1 and 2 both reach 3 and both reach 4 -> two violations (one
        # per receiver), each pair reported once.
        g = build_digraph(
            [cfg(1, 0, r=30), cfg(2, 20, r=30), cfg(3, 10, r=5), cfg(4, 15, r=5)]
        )
        a = CodeAssignment({1: 1, 2: 1, 3: 2, 4: 3})
        vs = [v for v in find_violations(g, a) if v.kind == "CA2"]
        receivers = {v.receiver for v in vs}
        assert receivers == {3, 4}
        assert all(v.nodes == (1, 2) for v in vs)


class TestApi:
    def test_uncolored_node_raises(self, line_graph):
        with pytest.raises(UncoloredNodeError):
            find_violations(line_graph, CodeAssignment({1: 1}))

    def test_empty_graph_valid(self):
        g = build_digraph([])
        assert is_valid(g, CodeAssignment())

    def test_assert_valid_raises_with_summary(self, line_graph):
        a = CodeAssignment({1: 1, 2: 1, 3: 1, 4: 1, 5: 1})
        with pytest.raises(ColoringConflictError, match="CA1"):
            assert_valid(line_graph, a)

    def test_assert_valid_passes(self, small_network):
        assert_valid(small_network.graph, small_network.assignment)

    def test_violation_str(self):
        assert "CA1" in str(Violation("CA1", (1, 2)))
        assert "reach 3" in str(Violation("CA2", (1, 2), receiver=3))

    def test_deterministic_order(self, line_graph):
        a = CodeAssignment({1: 1, 2: 1, 3: 1, 4: 1, 5: 1})
        assert find_violations(line_graph, a) == find_violations(line_graph, a)
