"""ArrayCodeAssignment: the contiguous color container of the array core.

Observable equivalence with the dict-backed :class:`CodeAssignment` is
the contract — same mapping surface, same validation, cross-class
equality and diffs — plus the array-specific invariants: O(1)
``max_color`` via the incremental histogram/top tracker, id-indexed
capacity growth, and rejection of negative ids (which would alias from
the end of the array).
"""

from __future__ import annotations

import pytest

from repro.coloring.assignment import ArrayCodeAssignment, CodeAssignment
from repro.errors import UncoloredNodeError


def _mirror(codes):
    """The same mapping in both containers."""
    return ArrayCodeAssignment(codes), CodeAssignment(codes)


class TestObservableEquivalence:
    @pytest.mark.parametrize(
        "codes",
        [{}, {0: 1}, {1: 2, 2: 1}, {5: 3, 9: 3, 200: 7}],
    )
    def test_mapping_surface_matches_dict_container(self, codes):
        arr, ref = _mirror(codes)
        assert len(arr) == len(ref)
        assert list(arr) == list(ref)
        assert arr.items() == ref.items()
        assert arr.nodes() == ref.nodes()
        assert arr.as_dict() == ref.as_dict()
        assert arr.max_color() == ref.max_color()
        assert arr.used_colors() == ref.used_colors()
        assert arr.color_classes() == ref.color_classes()

    def test_cross_class_equality_both_directions(self):
        arr, ref = _mirror({1: 2, 3: 4})
        assert arr == ref and ref == arr
        assert arr == {1: 2, 3: 4}
        ref.assign(3, 5)
        assert arr != ref and ref != arr

    def test_cross_class_diff(self):
        arr = ArrayCodeAssignment({1: 1, 2: 2, 3: 3})
        new = CodeAssignment({1: 1, 2: 5, 4: 1})
        assert arr.diff(new) == {2: (2, 5), 3: (3, None), 4: (None, 1)}
        assert new.diff(arr) == {2: (5, 2), 3: (None, 3), 4: (1, None)}

    def test_getitem_and_membership(self):
        arr = ArrayCodeAssignment({4: 9})
        assert arr[4] == 9 and 4 in arr
        assert 3 not in arr and 10_000 not in arr
        assert arr.get(3) is None and arr.get(3, 7) == 7
        with pytest.raises(UncoloredNodeError):
            arr[3]

    def test_repr_names_the_class(self):
        assert repr(ArrayCodeAssignment({1: 3})) == "ArrayCodeAssignment({1: 3})"


class TestValidationAndGrowth:
    def test_color_validation_matches_reference(self):
        arr = ArrayCodeAssignment()
        for bad in (0, -1):
            with pytest.raises(ValueError):
                arr.assign(1, bad)

    def test_negative_ids_rejected(self):
        # a negative id would silently alias from the end of the array
        with pytest.raises(ValueError, match="non-negative"):
            ArrayCodeAssignment().assign(-1, 3)

    def test_id_and_color_capacity_grow_on_demand(self):
        arr = ArrayCodeAssignment()
        arr.assign(5_000, 3)  # id far past the initial capacity
        arr.assign(1, 2_000)  # color far past the initial histogram
        assert arr[5_000] == 3 and arr.max_color() == 2_000
        assert len(arr) == 2

    def test_node_id_zero_is_a_valid_key(self):
        # color 0 is the NO_COLOR sentinel; id 0 must still work
        arr = ArrayCodeAssignment({0: 7})
        assert arr[0] == 7 and 0 in arr and arr.nodes() == [0]
        assert arr.unassign(0) == 7 and 0 not in arr


class TestIncrementalMaxColor:
    def test_top_follows_reassignments_down(self):
        arr = ArrayCodeAssignment({1: 5, 2: 3})
        assert arr.max_color() == 5
        arr.assign(1, 2)  # the sole holder of 5 drops to 2
        assert arr.max_color() == 3
        arr.assign(2, 1)
        assert arr.max_color() == 2

    def test_top_survives_when_color_still_held(self):
        arr = ArrayCodeAssignment({1: 5, 2: 5})
        arr.assign(1, 1)
        assert arr.max_color() == 5  # node 2 still holds it

    def test_unassign_settles_top(self):
        arr = ArrayCodeAssignment({1: 9, 2: 4})
        assert arr.unassign(1) == 9
        assert arr.max_color() == 4
        arr.unassign(2)
        assert arr.max_color() == 0 and len(arr) == 0

    def test_unassign_missing_raises(self):
        with pytest.raises(UncoloredNodeError):
            ArrayCodeAssignment().unassign(1)
        with pytest.raises(UncoloredNodeError):
            ArrayCodeAssignment({1: 1}).unassign(2)

    def test_randomized_parity_with_reference(self):
        import numpy as np

        rng = np.random.default_rng(7)
        arr, ref = ArrayCodeAssignment(), CodeAssignment()
        for _ in range(400):
            node = int(rng.integers(0, 40))
            if rng.random() < 0.25 and node in ref:
                assert arr.unassign(node) == ref.unassign(node)
            else:
                color = int(rng.integers(1, 12))
                arr.assign(node, color)
                ref.assign(node, color)
            assert arr.max_color() == ref.max_color()
            assert arr == ref


class TestCopy:
    def test_copy_is_class_preserving_and_independent(self):
        arr = ArrayCodeAssignment({1: 3, 2: 3})
        clone = arr.copy()
        assert isinstance(clone, ArrayCodeAssignment)
        clone.assign(1, 9)
        clone.unassign(2)
        assert arr == {1: 3, 2: 3}
        assert clone == {1: 9}
        assert arr.max_color() == 3 and clone.max_color() == 9
