"""Additional tests for clique bounds and ordering helpers."""

import numpy as np

from repro.coloring.bounds import clique_nodes, greedy_clique
from repro.coloring.smallest_last import smallest_last_node_order
from repro.topology.conflicts import conflict_matrix
from tests.conftest import make_random_graph


class TestGreedyClique:
    def test_result_is_a_clique(self):
        g = make_random_graph(seed=21, n=25)
        _ids, adj = g.adjacency()
        conflicts = conflict_matrix(adj)
        clique = greedy_clique(conflicts, 0)
        for i in clique:
            for j in clique:
                if i != j:
                    assert conflicts[i, j]

    def test_isolated_seed_gives_singleton(self):
        conflicts = np.zeros((3, 3), dtype=bool)
        assert greedy_clique(conflicts, 1) == [1]


class TestCliqueNodes:
    def test_returns_pairwise_conflicting_node_ids(self):
        g = make_random_graph(seed=22, n=20)
        clique = clique_nodes(g)
        assert len(clique) >= 2
        from repro.topology.conflicts import are_conflicting

        for u in clique:
            for v in clique:
                if u != v:
                    assert are_conflicting(g, u, v)

    def test_empty_graph(self):
        g = make_random_graph(seed=0, n=0)
        assert clique_nodes(g) == []


class TestSmallestLastNodeOrder:
    def test_is_permutation_of_ids(self):
        g = make_random_graph(seed=23, n=15)
        order = smallest_last_node_order(g)
        assert sorted(order) == g.node_ids()
