"""Tests for CodeAssignment."""

import pytest

from repro.coloring.assignment import CodeAssignment
from repro.errors import UncoloredNodeError


class TestMappingBehaviour:
    def test_construct_from_dict(self):
        a = CodeAssignment({1: 2, 2: 1})
        assert a[1] == 2 and a[2] == 1
        assert len(a) == 2

    def test_missing_raises_uncolored(self):
        a = CodeAssignment()
        with pytest.raises(UncoloredNodeError):
            a[5]

    def test_get_default(self):
        assert CodeAssignment().get(5) is None
        assert CodeAssignment({5: 3}).get(5) == 3

    def test_iteration_sorted(self):
        a = CodeAssignment({3: 1, 1: 2, 2: 3})
        assert list(a) == [1, 2, 3]
        assert a.items() == [(1, 2), (2, 3), (3, 1)]
        assert a.nodes() == [1, 2, 3]

    def test_equality_with_dict(self):
        assert CodeAssignment({1: 1}) == {1: 1}
        assert CodeAssignment({1: 1}) == CodeAssignment({1: 1})
        assert CodeAssignment({1: 1}) != CodeAssignment({1: 2})

    def test_repr_sorted(self):
        assert repr(CodeAssignment({2: 5, 1: 3})) == "CodeAssignment({1: 3, 2: 5})"


class TestMutation:
    def test_assign_validates(self):
        a = CodeAssignment()
        with pytest.raises(ValueError):
            a.assign(1, 0)
        with pytest.raises(ValueError):
            a.assign(1, -1)

    def test_unassign_returns_old(self):
        a = CodeAssignment({1: 7})
        assert a.unassign(1) == 7
        assert 1 not in a

    def test_unassign_missing_raises(self):
        with pytest.raises(UncoloredNodeError):
            CodeAssignment().unassign(1)

    def test_apply(self):
        a = CodeAssignment({1: 1})
        a.apply({1: 2, 2: 3})
        assert a == {1: 2, 2: 3}


class TestQueries:
    def test_max_color_empty(self):
        assert CodeAssignment().max_color() == 0

    def test_max_color(self):
        assert CodeAssignment({1: 3, 2: 7, 3: 1}).max_color() == 7

    def test_color_classes(self):
        a = CodeAssignment({1: 1, 2: 1, 3: 2})
        assert a.color_classes() == {1: {1, 2}, 2: {3}}

    def test_used_colors(self):
        assert CodeAssignment({1: 5, 2: 5, 3: 2}).used_colors() == {2, 5}

    def test_colors_of(self):
        a = CodeAssignment({1: 4, 2: 6})
        assert a.colors_of([2, 1]) == [6, 4]

    def test_copy_independent(self):
        a = CodeAssignment({1: 1})
        b = a.copy()
        b.assign(1, 2)
        assert a[1] == 1


class TestDiff:
    def test_counts_changes_additions_removals(self):
        old = CodeAssignment({1: 1, 2: 2, 3: 3})
        new = CodeAssignment({1: 1, 2: 5, 4: 1})
        d = old.diff(new)
        assert d == {2: (2, 5), 3: (3, None), 4: (None, 1)}

    def test_empty_diff(self):
        a = CodeAssignment({1: 1})
        assert a.diff(a.copy()) == {}
