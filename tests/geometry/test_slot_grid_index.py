"""The array-native slot grid (`SlotGridIndex`).

Membership parity with :class:`UniformGridIndex` (shared cell
geometry), slot lifecycle under swap-delete renaming, and the
``cutoff`` / bounding-box short-circuits of :meth:`candidate_slots` —
which may only ever widen the candidate superset, never shrink it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnknownNodeError
from repro.geometry.grid_index import SlotGridIndex, UniformGridIndex


def _scatter(rng, n, span=100.0):
    return [(float(rng.uniform(0, span)), float(rng.uniform(0, span))) for _ in range(n)]


class TestLifecycle:
    def test_insert_contains_len(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.insert(1, 55.0, 5.0)
        assert len(g) == 2 and 0 in g and 1 in g and 2 not in g

    def test_reinsert_moves(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.insert(0, 95.0, 95.0)
        assert len(g) == 1
        assert g.candidate_slots(95.0, 95.0, 1.0).tolist() == [0]

    def test_remove_and_unknown_raises(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.remove(0)
        assert len(g) == 0 and 0 not in g
        with pytest.raises(UnknownNodeError):
            g.remove(0)
        with pytest.raises(UnknownNodeError):
            g.move(0, 1.0, 1.0)

    def test_rename_follows_swap_delete(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.insert(1, 55.0, 55.0)
        g.remove(0)
        g.rename(1, 0)  # the digraph renumbers the last slot into the hole
        assert 0 in g and 1 not in g
        assert g.candidate_slots(55.0, 55.0, 1.0).tolist() == [0]

    def test_rename_onto_live_slot_rejected(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.insert(1, 55.0, 55.0)
        with pytest.raises(ConfigurationError):
            g.rename(0, 1)

    def test_negative_slot_and_bad_cell_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotGridIndex(0.0)
        g = SlotGridIndex(10.0)
        with pytest.raises(ConfigurationError):
            g.insert(-1, 0.0, 0.0)

    def test_slot_capacity_grows_on_demand(self):
        g = SlotGridIndex(10.0)
        g.insert(500, 5.0, 5.0)  # far beyond the initial record capacity
        assert 500 in g and len(g) == 1

    def test_copy_is_independent(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        clone = g.copy()
        clone.remove(0)
        clone.insert(7, 90.0, 90.0)
        assert 0 in g and 7 not in g
        assert 0 not in clone and 7 in clone


class TestCandidateQueries:
    def test_negative_radius_rejected(self):
        g = SlotGridIndex(10.0)
        with pytest.raises(ConfigurationError):
            g.candidate_slots(0.0, 0.0, -1.0)

    def test_empty_grid_returns_empty_array(self):
        g = SlotGridIndex(10.0)
        out = g.candidate_slots(0.0, 0.0, 50.0)
        assert out.size == 0 and out.dtype == np.intp

    @pytest.mark.parametrize("cell", [3.0, 11.0, 40.0])
    def test_candidates_are_a_superset_of_the_disc(self, cell):
        rng = np.random.default_rng(1)
        pts = _scatter(rng, 120)
        g = SlotGridIndex(cell)
        for slot, (x, y) in enumerate(pts):
            g.insert(slot, x, y)
        arr = np.asarray(pts)
        for qx, qy, r in [(50.0, 50.0, 12.0), (0.0, 0.0, 30.0), (99.0, 10.0, 5.0)]:
            cand = g.candidate_slots(qx, qy, r)
            d2 = ((arr - (qx, qy)) ** 2).sum(axis=1)
            inside = set(np.flatnonzero(d2 <= r * r).tolist())
            assert inside <= set(cand.tolist())

    @pytest.mark.parametrize("cell", [3.0, 11.0])
    def test_membership_matches_uniform_grid(self, cell):
        rng = np.random.default_rng(2)
        pts = _scatter(rng, 80)
        slot_grid, id_grid = SlotGridIndex(cell), UniformGridIndex(cell)
        for slot, (x, y) in enumerate(pts):
            slot_grid.insert(slot, x, y)
            id_grid.insert(slot, x, y)
        for qx, qy, r in [(20.0, 80.0, 9.0), (60.0, 30.0, 25.0)]:
            a = sorted(slot_grid.candidate_slots(qx, qy, r).tolist())
            b = sorted(id_grid.candidates_in_box(qx, qy, r))
            assert a == b  # shared cell geometry, identical supersets

    def test_result_is_never_a_bucket_view(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        out = g.candidate_slots(5.0, 5.0, 1.0)
        out[0] = 999  # mutating the result must not corrupt the grid
        assert g.candidate_slots(5.0, 5.0, 1.0).tolist() == [0]


class TestCutoff:
    def test_cutoff_reached_returns_none(self):
        g = SlotGridIndex(10.0)
        for slot in range(10):
            g.insert(slot, float(slot), 0.0)
        assert g.candidate_slots(5.0, 0.0, 50.0, cutoff=3) is None

    def test_cutoff_not_reached_returns_candidates(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.insert(1, 95.0, 95.0)  # far away: outside the query box
        out = g.candidate_slots(5.0, 5.0, 1.0, cutoff=2)
        assert out is not None and out.tolist() == [0]

    def test_bbox_short_circuit_only_fires_at_cutoff(self):
        # the ring covers every occupied cell, so with a reachable
        # cutoff the gather is skipped outright (None), while without a
        # cutoff the full membership comes back
        g = SlotGridIndex(10.0)
        for slot in range(6):
            g.insert(slot, 10.0 * slot, 10.0 * slot)
        assert g.candidate_slots(25.0, 25.0, 100.0, cutoff=6) is None
        full = g.candidate_slots(25.0, 25.0, 100.0)
        assert sorted(full.tolist()) == list(range(6))

    def test_bbox_stays_conservative_after_removals(self):
        # the bbox is grow-only: after clearing a far corner the
        # short-circuit may stop firing, but results stay exact
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.insert(1, 995.0, 995.0)
        g.remove(1)
        out = g.candidate_slots(5.0, 5.0, 20.0, cutoff=1)
        assert out is None or out.tolist() == [0]

    def test_cell_count_tracks_occupancy(self):
        g = SlotGridIndex(10.0)
        assert g.cell_count == 0
        g.insert(0, 5.0, 5.0)
        g.insert(1, 6.0, 6.0)  # same cell
        g.insert(2, 55.0, 55.0)
        assert g.cell_count == 2
        g.remove(2)
        assert g.cell_count == 1


class TestIterCandidateBlocks:
    """The streaming per-cell counterpart of ``candidate_slots``."""

    def test_negative_radius_rejected(self):
        g = SlotGridIndex(10.0)
        with pytest.raises(ConfigurationError):
            list(g.iter_candidate_blocks(0.0, 0.0, -1.0))

    def test_empty_grid_yields_nothing(self):
        g = SlotGridIndex(10.0)
        assert list(g.iter_candidate_blocks(0.0, 0.0, 50.0)) == []

    @pytest.mark.parametrize("cell", [3.0, 11.0, 40.0])
    def test_block_union_matches_candidate_slots(self, cell):
        rng = np.random.default_rng(5)
        pts = _scatter(rng, 150)
        g = SlotGridIndex(cell)
        for slot, (x, y) in enumerate(pts):
            g.insert(slot, x, y)
        for qx, qy, r in [(50.0, 50.0, 12.0), (0.0, 0.0, 30.0), (99.0, 10.0, 5.0)]:
            blocks = list(g.iter_candidate_blocks(qx, qy, r))
            union = sorted(np.concatenate(blocks).tolist()) if blocks else []
            assert len(union) == len(set(union))  # cells never overlap
            assert union == sorted(g.candidate_slots(qx, qy, r).tolist())

    def test_huge_query_takes_the_occupied_cell_scan(self):
        # a query box wider than the occupancy flips to iterating the
        # occupied cells; membership must not change
        g = SlotGridIndex(1.0)
        for slot in range(8):
            g.insert(slot, float(10 * slot), 0.0)
        blocks = list(g.iter_candidate_blocks(35.0, 0.0, 1e6))
        union = sorted(np.concatenate(blocks).tolist())
        assert union == sorted(g.candidate_slots(35.0, 0.0, 1e6).tolist())

    def test_blocks_are_read_only_bucket_views(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.insert(1, 6.0, 6.0)
        (block,) = g.iter_candidate_blocks(5.0, 5.0, 1.0)
        assert not block.flags.writeable  # live views: callers must copy
        with pytest.raises(ValueError):
            block[0] = 99


class TestBoundaryAndBailout:
    """Exact cell-edge radii, queries outside the grown bbox, and the
    3n/4 full-scan bailout the sparse core's candidate gathers rely on.
    """

    def test_radius_exactly_on_cell_edge_keeps_boundary_points(self):
        xs = [10.0, 20.0, 30.0]
        g = SlotGridIndex(10.0)
        for slot, x in enumerate(xs):
            g.insert(slot, x, 0.0)  # every point on a cell corner
        for r in xs:  # radius lands exactly on cell edges too
            cand = set(g.candidate_slots(0.0, 0.0, r).tolist())
            blocks = list(g.iter_candidate_blocks(0.0, 0.0, r))
            union = set(np.concatenate(blocks).tolist()) if blocks else set()
            assert union == cand
            inside = {s for s, x in enumerate(xs) if x <= r}
            assert inside <= union  # d == r members survive the window

    def test_query_bbox_entirely_outside_grown_bbox(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        g.insert(1, -45.0, 32.0)
        for qx, qy in [(1e6, 1e6), (-1e6, 40.0), (50.0, -1e6)]:
            assert g.candidate_slots(qx, qy, 25.0).size == 0
            assert list(g.iter_candidate_blocks(qx, qy, 25.0)) == []
            # the integer cell-window spelling agrees
            cx, cy = int(qx // 10.0), int(qy // 10.0)
            out = g.candidate_slots_cell(cx, cy, 25.0)
            assert out is not None and out.size == 0

    def test_three_quarter_full_scan_bailout(self):
        # the sparse core hands the grid cutoff = 3n/4: a gather that
        # reaches it must bail to None (callers scan every slot instead)
        n = 16
        g = SlotGridIndex(10.0)
        for slot in range(n):
            g.insert(slot, float(slot % 4), float(slot // 4))  # one dense corner
        cutoff = max(1, (3 * n) // 4)
        assert g.candidate_slots(2.0, 2.0, 50.0, cutoff=cutoff) is None
        # an unreachable cutoff gathers the identical full membership
        full = g.candidate_slots(2.0, 2.0, 50.0, cutoff=n + 1)
        assert full is not None and sorted(full.tolist()) == list(range(n))

    @pytest.mark.parametrize("seed", range(3))
    def test_block_union_equals_brute_force_on_random_placements(self, seed):
        rng = np.random.default_rng(seed)
        cell = float(rng.uniform(2.0, 15.0))
        g = SlotGridIndex(cell)
        pts = rng.uniform(-50.0, 150.0, size=(200, 2))
        for slot, (x, y) in enumerate(pts.tolist()):
            g.insert(slot, x, y)
        for _ in range(20):
            qx = float(rng.uniform(-60.0, 160.0))
            qy = float(rng.uniform(-60.0, 160.0))
            r = float(rng.choice([cell, 2.0 * cell, rng.uniform(0.0, 60.0)]))
            blocks = list(g.iter_candidate_blocks(qx, qy, r))
            union = sorted(np.concatenate(blocks).tolist()) if blocks else []
            assert len(union) == len(set(union))  # cells never overlap
            assert union == sorted(g.candidate_slots(qx, qy, r).tolist())
            d2 = ((pts - (qx, qy)) ** 2).sum(axis=1)
            inside = set(np.flatnonzero(d2 <= r * r).tolist())
            assert inside <= set(union)  # brute-force disc is covered


class TestCellWindowQueries:
    """``cell_of`` + ``candidate_slots_cell`` — the bulk-join surface."""

    def test_cell_of_matches_insert_position(self):
        g = SlotGridIndex(10.0)
        g.insert(3, 25.0, -7.0)
        assert g.cell_of(3) == (2, -1)
        with pytest.raises(UnknownNodeError):
            g.cell_of(99)

    @pytest.mark.parametrize("seed", range(3))
    def test_cell_window_covers_every_member_window(self, seed):
        rng = np.random.default_rng(seed + 50)
        cell = float(rng.uniform(3.0, 12.0))
        g = SlotGridIndex(cell)
        pts = [(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))) for _ in range(120)]
        for slot, (x, y) in enumerate(pts):
            g.insert(slot, x, y)
        radius = float(rng.uniform(0.0, 30.0))
        for slot, (x, y) in list(enumerate(pts))[::17]:
            cx, cy = g.cell_of(slot)
            cell_cand = set(g.candidate_slots_cell(cx, cy, radius).tolist())
            point_cand = set(g.candidate_slots(x, y, radius).tolist())
            assert point_cand <= cell_cand  # covers each member's window

    def test_cell_window_negative_radius_and_cutoff(self):
        g = SlotGridIndex(10.0)
        g.insert(0, 5.0, 5.0)
        with pytest.raises(ConfigurationError):
            g.candidate_slots_cell(0, 0, -1.0)
        assert g.candidate_slots_cell(0, 0, 100.0, cutoff=1) is None
