"""Tests for repro.geometry.point."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry.point import (
    as_position_array,
    displace,
    random_directions,
    random_positions,
)


class TestAsPositionArray:
    def test_from_list_of_tuples(self):
        arr = as_position_array([(1.0, 2.0), (3.0, 4.0)])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_from_ndarray_passthrough_values(self):
        src = np.array([[0.0, 1.0]])
        assert (as_position_array(src) == src).all()

    def test_empty(self):
        assert as_position_array([]).shape == (0, 2)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError, match="expected"):
            as_position_array([(1.0, 2.0, 3.0)])

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="finite"):
            as_position_array([(np.nan, 0.0)])

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError, match="finite"):
            as_position_array([(np.inf, 0.0)])


class TestRandomPositions:
    def test_within_area(self):
        pos = random_positions(500, np.random.default_rng(0), width=50, height=20)
        assert pos.shape == (500, 2)
        assert (pos[:, 0] >= 0).all() and (pos[:, 0] <= 50).all()
        assert (pos[:, 1] >= 0).all() and (pos[:, 1] <= 20).all()

    def test_deterministic_per_seed(self):
        a = random_positions(10, np.random.default_rng(7))
        b = random_positions(10, np.random.default_rng(7))
        assert (a == b).all()

    def test_zero_nodes(self):
        assert random_positions(0, np.random.default_rng(0)).shape == (0, 2)

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            random_positions(-1, np.random.default_rng(0))

    def test_rejects_nonpositive_area(self):
        with pytest.raises(ConfigurationError):
            random_positions(3, np.random.default_rng(0), width=0)


class TestRandomDirections:
    def test_unit_norm(self):
        d = random_directions(200, np.random.default_rng(1))
        norms = np.sqrt((d**2).sum(axis=1))
        assert np.allclose(norms, 1.0)

    def test_covers_all_quadrants(self):
        d = random_directions(400, np.random.default_rng(2))
        assert (d[:, 0] > 0).any() and (d[:, 0] < 0).any()
        assert (d[:, 1] > 0).any() and (d[:, 1] < 0).any()


class TestDisplace:
    def test_scalar_magnitude(self):
        pos = np.array([[0.0, 0.0], [1.0, 1.0]])
        dirs = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = displace(pos, dirs, 2.0)
        assert np.allclose(out, [[2.0, 0.0], [1.0, 3.0]])

    def test_vector_magnitudes(self):
        pos = np.zeros((2, 2))
        dirs = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = displace(pos, dirs, np.array([1.0, 5.0]))
        assert np.allclose(out, [[1.0, 0.0], [0.0, 5.0]])

    def test_does_not_mutate_input(self):
        pos = np.zeros((1, 2))
        displace(pos, np.array([[1.0, 0.0]]), 1.0)
        assert (pos == 0).all()

    def test_clipping(self):
        pos = np.array([[99.0, 1.0]])
        out = displace(pos, np.array([[1.0, -1.0]]), 10.0, clip_to=(100.0, 100.0))
        assert np.allclose(out, [[100.0, 0.0]])

    @given(st.floats(0, 10), st.floats(0, 2 * np.pi))
    def test_displacement_distance_matches_magnitude(self, mag, theta):
        pos = np.array([[50.0, 50.0]])
        d = np.array([[np.cos(theta), np.sin(theta)]])
        out = displace(pos, d, mag)
        assert np.isclose(np.linalg.norm(out - pos), mag, atol=1e-9)
