"""Tests for obstacles and line-of-sight."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.obstacles import RectObstacle, los_mask, segment_intersects_rect


@pytest.fixture
def wall():
    return RectObstacle(4.0, -10.0, 6.0, 10.0)


class TestRectObstacle:
    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            RectObstacle(1.0, 0.0, 1.0, 5.0)

    def test_contains(self, wall):
        assert wall.contains(5.0, 0.0)
        assert not wall.contains(3.9, 0.0)


class TestSegmentIntersection:
    def test_crossing_segment(self, wall):
        assert segment_intersects_rect(np.array([0, 0.0]), np.array([10, 0.0]), wall)

    def test_parallel_miss(self, wall):
        assert not segment_intersects_rect(
            np.array([0, 20.0]), np.array([10, 20.0]), wall
        )

    def test_segment_stops_short(self, wall):
        assert not segment_intersects_rect(np.array([0, 0.0]), np.array([3, 0.0]), wall)

    def test_endpoint_inside(self, wall):
        assert segment_intersects_rect(np.array([5, 0.0]), np.array([20, 0.0]), wall)

    def test_fully_inside(self, wall):
        assert segment_intersects_rect(
            np.array([4.5, 1.0]), np.array([5.5, -1.0]), wall
        )

    def test_diagonal_grazes_corner(self, wall):
        # Passes exactly through the corner (4, 10): closed rectangles
        # treat that as an intersection.
        assert segment_intersects_rect(np.array([0, 6.0]), np.array([8, 14.0]), wall)

    def test_vertical_segment(self, wall):
        assert segment_intersects_rect(np.array([5, -20.0]), np.array([5, 20.0]), wall)
        assert not segment_intersects_rect(np.array([2, -20.0]), np.array([2, 20.0]), wall)


class TestLosMask:
    def test_no_obstacles_all_visible(self):
        targets = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert los_mask(np.zeros(2), targets, ()).all()

    def test_wall_blocks_some(self, wall):
        targets = np.array([[10.0, 0.0], [0.0, 5.0], [-3.0, 0.0]])
        mask = los_mask(np.zeros(2), targets, (wall,))
        assert mask.tolist() == [False, True, True]

    def test_symmetry(self, wall):
        a = np.array([0.0, 0.0])
        b = np.array([10.0, 3.0])
        ab = los_mask(a, b.reshape(1, 2), (wall,))[0]
        ba = los_mask(b, a.reshape(1, 2), (wall,))[0]
        assert ab == ba

    def test_multiple_obstacles_any_blocks(self):
        r1 = RectObstacle(2, -1, 3, 1)
        r2 = RectObstacle(20, -1, 21, 1)
        targets = np.array([[10.0, 0.0], [30.0, 0.0]])
        mask = los_mask(np.zeros(2), targets, (r1, r2))
        assert mask.tolist() == [False, False]
