"""Tests for repro.geometry.distance."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.distance import distances_from, pairwise_distances, within_disc

finite_coords = st.floats(-1000, 1000)


def positions(n_min=1, n_max=12):
    return arrays(
        np.float64,
        st.tuples(st.integers(n_min, n_max), st.just(2)),
        elements=finite_coords,
    )


class TestPairwiseDistances:
    def test_small_example(self):
        pos = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distances(pos)
        assert np.allclose(d, [[0.0, 5.0], [5.0, 0.0]])

    @given(positions())
    def test_symmetric_zero_diagonal(self, pos):
        d = pairwise_distances(pos)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    @given(positions(n_min=3, n_max=8))
    def test_triangle_inequality(self, pos):
        d = pairwise_distances(pos)
        n = len(pos)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-7

    @given(positions())
    def test_matches_brute_force(self, pos):
        d = pairwise_distances(pos)
        for i in range(len(pos)):
            for j in range(len(pos)):
                expected = np.hypot(*(pos[i] - pos[j]))
                assert np.isclose(d[i, j], expected)


class TestDistancesFrom:
    @given(positions(), st.tuples(finite_coords, finite_coords))
    def test_matches_pairwise(self, pos, point):
        d = distances_from(pos, np.array(point))
        for i in range(len(pos)):
            assert np.isclose(d[i], np.hypot(pos[i, 0] - point[0], pos[i, 1] - point[1]))


class TestWithinDisc:
    def test_boundary_is_inclusive(self):
        # The paper's edge rule is d_ij <= r_i.
        pos = np.array([[3.0, 4.0]])
        assert within_disc(pos, np.zeros(2), 5.0)[0]
        assert not within_disc(pos, np.zeros(2), 4.999999)[0]

    @given(positions(), st.floats(0, 100))
    def test_matches_distance_comparison(self, pos, radius):
        mask = within_disc(pos, np.zeros(2), radius)
        d = distances_from(pos, np.zeros(2))
        # Compare with a small tolerance band to dodge sqrt rounding at
        # the exact boundary.
        assert ((d <= radius) == mask)[np.abs(d - radius) > 1e-9].all()
