"""Tests for the uniform-grid spatial index."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, UnknownNodeError
from repro.geometry.grid_index import UniformGridIndex


def brute_force_disc(points: dict, x: float, y: float, r: float) -> set:
    return {
        i for i, (px, py) in points.items() if (px - x) ** 2 + (py - y) ** 2 <= r * r
    }


class TestBasics:
    def test_insert_query(self):
        idx = UniformGridIndex(10.0)
        idx.insert(1, 5.0, 5.0)
        idx.insert(2, 50.0, 50.0)
        assert set(idx.query_disc(0.0, 0.0, 10.0)) == {1}
        assert len(idx) == 2
        assert 1 in idx and 3 not in idx

    def test_insert_existing_moves(self):
        idx = UniformGridIndex(10.0)
        idx.insert(1, 0.0, 0.0)
        idx.insert(1, 90.0, 90.0)
        assert len(idx) == 1
        assert idx.query_disc(90.0, 90.0, 1.0) == [1]

    def test_remove(self):
        idx = UniformGridIndex(10.0)
        idx.insert(1, 0.0, 0.0)
        idx.remove(1)
        assert len(idx) == 0
        assert idx.query_disc(0.0, 0.0, 100.0) == []

    def test_remove_unknown_raises(self):
        with pytest.raises(UnknownNodeError):
            UniformGridIndex(1.0).remove(9)

    def test_move_unknown_raises(self):
        with pytest.raises(UnknownNodeError):
            UniformGridIndex(1.0).move(9, 0.0, 0.0)

    def test_move_across_cells(self):
        idx = UniformGridIndex(10.0)
        idx.insert(1, 1.0, 1.0)
        idx.move(1, 95.0, 95.0)
        assert idx.query_disc(1.0, 1.0, 5.0) == []
        assert idx.query_disc(95.0, 95.0, 5.0) == [1]
        assert idx.position_of(1) == (95.0, 95.0)

    def test_negative_coordinates_supported(self):
        idx = UniformGridIndex(10.0)
        idx.insert(1, -25.0, -3.0)
        assert idx.query_disc(-25.0, -3.0, 0.5) == [1]

    def test_bad_cell_size(self):
        with pytest.raises(ConfigurationError):
            UniformGridIndex(0.0)

    def test_negative_radius_rejected(self):
        idx = UniformGridIndex(1.0)
        with pytest.raises(ConfigurationError):
            idx.query_disc(0.0, 0.0, -1.0)

    def test_iteration(self):
        idx = UniformGridIndex(5.0)
        for i in range(4):
            idx.insert(i, float(i), 0.0)
        assert sorted(idx) == [0, 1, 2, 3]


class TestAgainstBruteForce:
    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=0,
            max_size=40,
        ),
        st.floats(-100, 100),
        st.floats(-100, 100),
        st.floats(0, 150),
        st.floats(0.5, 40),
    )
    def test_query_matches_brute_force(self, pts, qx, qy, radius, cell):
        idx = UniformGridIndex(cell)
        points = {}
        for i, (x, y) in enumerate(pts):
            idx.insert(i, x, y)
            points[i] = (x, y)
        got = set(idx.query_disc(qx, qy, radius))
        want = brute_force_disc(points, qx, qy, radius)
        assert got == want

    @given(st.integers(0, 30), st.floats(1, 20))
    def test_count_equals_query_length(self, n, cell):
        rng = np.random.default_rng(n)
        idx = UniformGridIndex(cell)
        for i in range(n):
            x, y = rng.uniform(0, 100, 2)
            idx.insert(i, float(x), float(y))
        assert idx.query_disc_count(50.0, 50.0, 30.0) == len(
            idx.query_disc(50.0, 50.0, 30.0)
        )

    @given(st.integers(0, 40), st.floats(0.5, 30), st.floats(0, 80))
    def test_candidates_are_a_superset_of_the_disc(self, n, cell, radius):
        rng = np.random.default_rng(n + 1)
        idx = UniformGridIndex(cell)
        for i in range(n):
            x, y = rng.uniform(0, 100, 2)
            idx.insert(i, float(x), float(y))
        candidates = set(idx.candidates_in_box(50.0, 50.0, radius))
        assert candidates >= set(idx.query_disc(50.0, 50.0, radius))


class TestCandidatesAndCopy:
    def test_candidates_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformGridIndex(1.0).candidates_in_box(0.0, 0.0, -2.0)

    def test_huge_query_falls_back_to_occupied_cells(self):
        # Tiny cells + huge radius: the bounding box spans far more cells
        # than are occupied, so the occupancy scan must kick in and still
        # return every item.
        idx = UniformGridIndex(0.25)
        for i in range(12):
            idx.insert(i, float(i), float(i))
        assert sorted(idx.candidates_in_box(5.0, 5.0, 5000.0)) == list(range(12))

    def test_copy_is_independent(self):
        idx = UniformGridIndex(10.0)
        idx.insert(1, 5.0, 5.0)
        idx.insert(2, 50.0, 50.0)
        dup = idx.copy()
        dup.remove(1)
        dup.move(2, 5.0, 5.0)
        assert 1 in idx and idx.position_of(2) == (50.0, 50.0)
        assert 1 not in dup and dup.position_of(2) == (5.0, 5.0)
        assert dup.cell_size == idx.cell_size
