"""JSONL tracer: round-trip, span chaining, enable/close lifecycle."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs import metrics
from repro.obs.tracing import ENV_TRACE, ENV_TRACE_PID, trace_files


@pytest.fixture
def trace_path(tmp_path):
    """Enable tracing into a temp file; always close afterwards."""
    path = tmp_path / "trace.jsonl"
    obs.enable(path)
    yield path
    obs.close()


def test_disabled_span_and_event_write_nothing(tmp_path):
    assert not obs.enabled()
    with obs.span("noop"):
        obs.event("nothing")
    obs.flush_metrics()
    assert list(tmp_path.iterdir()) == []


def test_round_trip_span_event_metrics(trace_path):
    with obs.span("outer", cat="test", k=1):
        with obs.span("inner"):
            pass
        obs.event("ping", cat="test", owner="w1")
    metrics.inc("c", 3)
    obs.flush_metrics()
    obs.close()

    records = obs.load_trace(trace_path)
    kinds = [r["type"] for r in records]
    assert kinds.count("meta") == 1
    spans = {r["name"]: r for r in records if r["type"] == "span"}
    assert set(spans) == {"outer", "inner"}
    # children close before parents; ids chain inner -> outer
    assert spans["inner"]["parent"] == spans["outer"]["id"]
    assert spans["outer"]["parent"] is None
    assert spans["outer"]["args"] == {"k": 1}
    assert spans["outer"]["dur"] >= spans["inner"]["dur"] >= 0
    (ev,) = [r for r in records if r["type"] == "event"]
    assert ev["name"] == "ping" and ev["args"]["owner"] == "w1"
    snaps = [r for r in records if r["type"] == "metrics"]
    assert snaps and snaps[-1]["data"]["counters"]["c"] == 3


def test_every_line_is_valid_json(trace_path):
    with obs.span("s"):
        obs.event("e")
    obs.close()
    for line in trace_path.read_text().splitlines():
        json.loads(line)


def test_torn_tail_line_is_skipped(trace_path):
    with obs.span("s"):
        pass
    obs.close()
    with open(trace_path, "a") as fh:
        fh.write('{"type": "span", "name": "torn')  # killed mid-write
    records = obs.load_trace(trace_path)
    assert [r["name"] for r in records if r["type"] == "span"] == ["s"]


def test_enable_exports_env_and_close_cleans_up(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.enable(path)
    try:
        assert os.environ[ENV_TRACE] == str(path)
        assert os.environ[ENV_TRACE_PID] == str(os.getpid())
        assert obs.enabled()
        assert metrics.ENABLED
    finally:
        obs.close()
    assert ENV_TRACE not in os.environ
    assert ENV_TRACE_PID not in os.environ
    assert not obs.enabled()
    assert not metrics.ENABLED
    obs.close()  # idempotent


def test_close_clears_registry(tmp_path):
    obs.enable(tmp_path / "t.jsonl")
    try:
        metrics.inc("leftover", 5)
    finally:
        obs.close()
    assert "leftover" not in metrics.REGISTRY.counters


def test_enable_close_cycles_append_segments(tmp_path):
    path = tmp_path / "t.jsonl"
    for _ in range(2):
        obs.enable(path)
        try:
            with obs.span("s"):
                pass
        finally:
            obs.close()
    records = obs.load_trace(path)
    assert sum(1 for r in records if r["type"] == "meta") == 2
    assert sum(1 for r in records if r["type"] == "span") == 2


def test_trace_files_lists_sidecars(tmp_path):
    base = tmp_path / "t.jsonl"
    base.write_text("")
    (tmp_path / "t.jsonl.123").write_text("")
    (tmp_path / "t.jsonl.99").write_text("")
    files = trace_files(base)
    assert files[0] == base and len(files) == 3


def test_span_records_epoch_ts(trace_path):
    import time

    before = time.time()
    with obs.span("s"):
        pass
    obs.close()
    (span,) = [r for r in obs.load_trace(trace_path) if r["type"] == "span"]
    assert before - 1 <= span["ts"] <= time.time() + 1
