"""Registry correctness: counters, gauges, histograms, merging."""

from __future__ import annotations

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, merge_snapshots


def test_counters_accumulate():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a", 4)
    reg.inc("b", 0.5)
    assert reg.counters == {"a": 5, "b": 0.5}


def test_gauges_keep_last():
    reg = MetricsRegistry()
    reg.set_gauge("g", 1.0)
    reg.set_gauge("g", 3.0)
    assert reg.gauges == {"g": 3.0}


def test_histograms_stream_aggregates():
    reg = MetricsRegistry()
    for v in (4.0, 1.0, 7.0):
        reg.observe("h", v)
    h = reg.histograms["h"]
    assert h == {"count": 3, "total": 12.0, "min": 1.0, "max": 7.0}


def test_snapshot_is_a_copy():
    reg = MetricsRegistry()
    reg.inc("a")
    snap = reg.snapshot()
    reg.inc("a")
    assert snap["counters"]["a"] == 1
    assert reg.counters["a"] == 2


def test_clear_resets_everything():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.set_gauge("g", 1.0)
    reg.observe("h", 1.0)
    reg.clear()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_merge_snapshots_sums_counters_and_extremizes_histograms():
    a = MetricsRegistry()
    a.inc("c", 2)
    a.set_gauge("g", 1.0)
    a.observe("h", 5.0)
    b = MetricsRegistry()
    b.inc("c", 3)
    b.set_gauge("g", 9.0)
    b.observe("h", 1.0)
    b.observe("h", 11.0)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"]["c"] == 5
    assert merged["gauges"]["g"] == 9.0  # last writer wins
    assert merged["histograms"]["h"] == {"count": 3, "total": 17.0, "min": 1.0, "max": 11.0}


def test_merge_snapshots_tolerates_empty_and_partial():
    assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "histograms": {}}
    merged = merge_snapshots([{"counters": {"x": 1}}, {}])
    assert merged["counters"] == {"x": 1}


def test_module_helpers_are_noops_while_disabled():
    assert metrics.ENABLED is False
    before = metrics.REGISTRY.snapshot()
    metrics.inc("core.memo.hit", 100)
    metrics.set_gauge("g", 1.0)
    metrics.observe("h", 1.0)
    assert metrics.REGISTRY.snapshot() == before
