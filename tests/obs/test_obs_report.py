"""Report aggregation, completeness checking, Chrome export."""

from __future__ import annotations

import json

from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.report import check_trace, render_report, summarize


def _span(name, sid, *, parent=None, ts=100.0, dur=1.0, pid=1, args=None):
    return {
        "type": "span",
        "id": sid,
        "parent": parent,
        "name": name,
        "cat": "",
        "ts": ts,
        "dur": dur,
        "args": args or {},
        "pid": pid,
    }


def _sweep_records():
    return [
        {"type": "meta", "pid": 1, "wall": 100.0, "argv": ["x"]},
        _span("sweep.execute", "1:1", ts=100.0, dur=3.0, args={"pending": 2}),
        _span("task.compute", "1:2", parent="1:1", ts=100.5, dur=1.0),
        _span("task.compute", "1:3", parent="1:1", ts=101.5, dur=1.0),
        {"type": "event", "name": "queue.claim", "cat": "queue", "ts": 100.4,
         "parent": "1:1", "args": {"key": "k", "owner": "w1"}, "pid": 1},
        {"type": "metrics", "ts": 103.0, "pid": 1,
         "data": {"counters": {"core.memo.hit": 8, "core.memo.miss": 2,
                               "timeline.rounds.saved": 3, "timeline.rounds.replayed": 1},
                  "gauges": {}, "histograms": {"core.grid.candidate_window":
                                               {"count": 4, "total": 40.0, "min": 5.0, "max": 20.0}}}},
    ]


def test_summarize_self_time_subtracts_children():
    data = summarize(_sweep_records())
    execute = data["spans"]["sweep.execute"]
    assert execute["total"] == 3.0
    assert execute["self"] == 1.0  # 3.0 minus two 1.0s children
    assert data["spans"]["task.compute"]["count"] == 2
    assert data["events"] == {"queue.claim": 1}
    assert data["metrics"]["counters"]["core.memo.hit"] == 8


def test_summarize_keeps_last_metrics_snapshot_per_pid():
    records = _sweep_records()
    records.append({"type": "metrics", "ts": 104.0, "pid": 1,
                    "data": {"counters": {"core.memo.hit": 10}, "gauges": {}, "histograms": {}}})
    data = summarize(records)
    assert data["metrics"]["counters"]["core.memo.hit"] == 10


def test_summarize_merges_metrics_across_pids():
    records = _sweep_records()
    records.append({"type": "metrics", "ts": 104.0, "pid": 2,
                    "data": {"counters": {"core.memo.hit": 5}, "gauges": {}, "histograms": {}}})
    data = summarize(records)
    assert data["metrics"]["counters"]["core.memo.hit"] == 13


def test_render_report_sections():
    out = render_report(_sweep_records())
    assert "top spans by self-time" in out
    assert "conflict memo" in out and "80.0%" in out
    assert "checkpoint replay savings" in out and "75.0%" in out
    assert "queue.claim" in out
    assert "(w1)" in out  # owner attribution in the worker timeline
    assert "core.grid.candidate_window" in out


def test_check_trace_accepts_complete_sweep():
    assert check_trace(_sweep_records()) == []


def test_check_trace_flags_missing_task_spans():
    records = [r for r in _sweep_records() if r.get("name") != "task.compute"]
    (problem,) = check_trace(records)
    assert "incomplete" in problem and "2 task group(s)" in problem


def test_check_trace_allows_at_least_once_recompute():
    records = _sweep_records()
    records.append(_span("task.compute", "1:9", ts=102.5, dur=0.5))
    assert check_trace(records) == []


def test_check_trace_flags_non_sweep_trace():
    (problem,) = check_trace([_span("task.compute", "1:1")])
    assert "no sweep.execute" in problem


def test_chrome_trace_shapes(tmp_path):
    doc = chrome_trace(_sweep_records())
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == 3
    # timestamps are rebased microseconds
    assert min(e["ts"] for e in events if "ts" in e) == 0
    task = next(e for e in xs if e["name"] == "task.compute")
    assert task["dur"] == 1_000_000
    assert any(e["ph"] == "i" for e in events)
    assert any(e["ph"] == "C" for e in events)
    assert any(e["ph"] == "M" for e in events)

    out = tmp_path / "chrome.json"
    write_chrome_trace(_sweep_records(), out)
    assert json.loads(out.read_text())["traceEvents"]
