"""Observability against the real pipeline: identity, fan-out, overhead."""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro import obs
from repro.obs.report import check_trace
from repro.sim.registry import get_scenario
from repro.sim.sweep import run_sweep

#: A sweep small enough to run twice per test but big enough to plan
#: several task groups.
_SPEC = replace(
    get_scenario("paper-join"),
    n=16,
    strategies=("Minim",),
    sweep_values=(6.0, 8.0, 10.0),
)


def test_results_identical_with_tracing_on_and_off(tmp_path):
    baseline = run_sweep(_SPEC, runs=1, seed=42)
    obs.enable(tmp_path / "trace.jsonl")
    try:
        traced = run_sweep(_SPEC, runs=1, seed=42)
    finally:
        obs.close()
    assert traced.to_dict() == baseline.to_dict()


def test_traced_sweep_has_phase_and_task_spans(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs.enable(path)
    try:
        run_sweep(_SPEC, runs=1, seed=42)
    finally:
        obs.close()
    records = obs.load_trace(path)
    names = [r["name"] for r in records if r["type"] == "span"]
    for phase in ("sweep.plan", "sweep.claim", "sweep.execute", "sweep.collect"):
        assert names.count(phase) == 1
    execute = next(
        r for r in records if r["type"] == "span" and r["name"] == "sweep.execute"
    )
    assert names.count("task.compute") == execute["args"]["pending"] > 0
    assert check_trace(records) == []
    snaps = [r for r in records if r["type"] == "metrics"]
    assert snaps, "close() must flush a final metrics snapshot"
    assert any(
        k.startswith("core.") for snap in snaps for k in snap["data"]["counters"]
    ), "conflict-core counters must reach the trace"


def test_process_executor_fanout_merges_cleanly(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs.enable(path)
    try:
        traced = run_sweep(_SPEC, runs=1, seed=42, processes=2)
    finally:
        obs.close()
    assert traced.to_dict() == run_sweep(_SPEC, runs=1, seed=42).to_dict()
    records = obs.load_trace(path)
    assert check_trace(records) == []
    task_pids = {r["pid"] for r in records if r["type"] == "span" and r["name"] == "task.compute"}
    assert task_pids and os.getpid() not in task_pids, "pool children own the task spans"
    # every child pid wrote its own sidecar segment with its own metrics flush
    meta_pids = {r["pid"] for r in records if r["type"] == "meta"}
    assert task_pids <= meta_pids
    metric_pids = {r["pid"] for r in records if r["type"] == "metrics"}
    assert task_pids <= metric_pids


def test_worker_executor_emits_queue_events_and_heartbeats(tmp_path):
    from repro.sim.results import open_backend

    path = tmp_path / "trace.jsonl"
    backend = open_backend(tmp_path / "store", "json")
    obs.enable(path)
    try:
        run_sweep(_SPEC, runs=1, seed=42, store=backend, executor="worker")
    finally:
        obs.close()
    records = obs.load_trace(path)
    events = {r["name"] for r in records if r["type"] == "event"}
    assert {"queue.claim", "queue.lease_renew", "worker.heartbeat"} <= events
    assert backend.heartbeats(), "the drain must stamp at least one heartbeat"
    assert check_trace(records) == []


def test_obs_overhead_bench_entries():
    from repro.sim.bench import run_obs_overhead_bench

    entries = run_obs_overhead_bench(n=40, runs=1, inner=1, seed=7)
    assert [e["mode"] for e in entries] == ["off", "on"]
    for e in entries:
        assert e["scenario"] == "obs-overhead"
        assert e["events_per_sec"] > 0
        assert e["peak_mem_mb"] > 0
    assert entries[1]["trace_on_vs_off"] > 0
    assert not obs.enabled(), "the bench must leave tracing off"


def test_obs_overhead_bench_refuses_an_enabled_tracer(tmp_path):
    from repro.errors import ConfigurationError
    from repro.sim.bench import run_obs_overhead_bench

    obs.enable(tmp_path / "t.jsonl")
    try:
        with pytest.raises(ConfigurationError):
            run_obs_overhead_bench(n=10, runs=1, inner=1)
    finally:
        obs.close()


def test_report_command_round_trip(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "trace.jsonl"
    obs.enable(path)
    try:
        run_sweep(_SPEC, runs=1, seed=42)
    finally:
        obs.close()
    chrome = tmp_path / "chrome.json"
    assert main(["report", str(path), "--check", "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "top spans by self-time" in out
    assert "task.compute" in out
    assert "trace check: ok" in out
    assert chrome.exists()


def test_report_command_missing_file(tmp_path, capsys):
    from repro.cli import main

    assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
    assert "no trace file" in capsys.readouterr().err


def test_cli_trace_flag_writes_and_closes(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "trace.jsonl"
    code = main(
        ["scenario", "paper-join", "--runs", "1", "--seed", "3", "--trace", str(path)]
    )
    assert code == 0
    assert not obs.enabled(), "main() must close tracing before returning"
    records = obs.load_trace(path)
    assert check_trace(records) == []
