"""Hopcroft–Karp maximum-cardinality bipartite matching.

O(E sqrt(V)); used to cross-check that the weighted solver does not
sacrifice cardinality on the paper's join instances (every recoded node
should receive *some* color within the existing palette when possible)
and by the gossip compaction ablation.
"""

from __future__ import annotations

from collections import deque

from repro.matching.bipartite import MatchingResult, WeightedBipartiteGraph

__all__ = ["hopcroft_karp_matching", "hopcroft_karp_indices"]

_INF = float("inf")


def hopcroft_karp_indices(adjacency: list[list[int]], n_right: int) -> list[int]:
    """Maximum matching of an index-based bipartite adjacency structure.

    Parameters
    ----------
    adjacency:
        ``adjacency[i]`` lists right indices adjacent to left index ``i``.
    n_right:
        Number of right vertices.

    Returns
    -------
    ``match_left`` with ``match_left[i]`` = matched right index or -1.
    """
    n_left = len(adjacency)
    match_left = [-1] * n_left
    match_right = [-1] * n_right
    dist = [0.0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for i in range(n_left):
            if match_left[i] == -1:
                dist[i] = 0.0
                queue.append(i)
            else:
                dist[i] = _INF
        found = False
        while queue:
            i = queue.popleft()
            for j in adjacency[i]:
                k = match_right[j]
                if k == -1:
                    found = True
                elif dist[k] == _INF:
                    dist[k] = dist[i] + 1
                    queue.append(k)
        return found

    def dfs(i: int) -> bool:
        for j in adjacency[i]:
            k = match_right[j]
            if k == -1 or (dist[k] == dist[i] + 1 and dfs(k)):
                match_left[i] = j
                match_right[j] = i
                return True
        dist[i] = _INF
        return False

    while bfs():
        for i in range(n_left):
            if match_left[i] == -1:
                dfs(i)
    return match_left


def hopcroft_karp_matching(graph: WeightedBipartiteGraph) -> MatchingResult:
    """Maximum-cardinality matching of ``graph`` (weights ignored).

    ``total_weight`` in the result still sums the matched edges' weights
    so callers can compare against the weighted solver.
    """
    right_index = {r: j for j, r in enumerate(graph.right)}
    adjacency: list[list[int]] = []
    for l in graph.left:
        adjacency.append(
            sorted(right_index[r] for r in graph.right if graph.has_edge(l, r))
        )
    match_left = hopcroft_karp_indices(adjacency, len(graph.right))
    pairs = {}
    total = 0.0
    for i, j in enumerate(match_left):
        if j >= 0:
            l, r = graph.left[i], graph.right[j]
            pairs[l] = r
            total += graph.weight(l, r) or 0.0
    return MatchingResult(pairs=pairs, total_weight=total)
