"""SciPy ``linear_sum_assignment`` matching backend.

Optional backend used as an independent oracle in tests and the
microbenchmarks.  SciPy is a test-extra dependency; importing this module
without SciPy installed raises ``ImportError`` at call time, not at
package import.
"""

from __future__ import annotations

import numpy as np

from repro.matching.bipartite import MatchingResult, WeightedBipartiteGraph

__all__ = ["scipy_matching"]


def scipy_matching(graph: WeightedBipartiteGraph) -> MatchingResult:
    """Maximum-weight matching via ``scipy.optimize.linear_sum_assignment``.

    Pads the weight matrix with zero-weight dummy columns so left
    vertices may stay unmatched, then drops dummy/zero assignments —
    mirroring the padding argument in :mod:`repro.matching.hungarian`.
    """
    from scipy.optimize import linear_sum_assignment

    w = graph.weight_matrix()
    n, m = w.shape
    if n == 0 or m == 0 or not (w > 0).any():
        return MatchingResult(pairs={}, total_weight=0.0)
    padded = np.zeros((n, m + n), dtype=np.float64)
    padded[:, :m] = w
    rows, cols = linear_sum_assignment(padded, maximize=True)
    pairs = {}
    total = 0.0
    for i, j in zip(rows, cols):
        if j < m and w[i, j] > 0:
            pairs[graph.left[int(i)]] = graph.right[int(j)]
            total += float(w[i, j])
    return MatchingResult(pairs=pairs, total_weight=total)
