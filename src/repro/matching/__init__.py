"""Matching substrate: weighted bipartite matching.

``RecodeOnJoin`` / ``RecodeOnMove`` reduce recoding to a maximum-weight
matching on a bipartite graph between nodes and colors (paper Fig 3,
step 5, treating the matching algorithm "as a black box").  This package
is that black box, implemented from scratch:

* :class:`~repro.matching.bipartite.WeightedBipartiteGraph` — the graph
  model (positive edge weights; absent edges are forbidden).
* :func:`~repro.matching.hungarian.hungarian_matching` — maximum-weight
  (not necessarily perfect) matching via shortest augmenting paths with
  potentials, O(n^2 m).
* :func:`~repro.matching.hopcroft_karp.hopcroft_karp_matching` —
  maximum-cardinality matching (used by tests and ablations).
* :mod:`~repro.matching.scipy_backend` — optional SciPy
  ``linear_sum_assignment`` backend, used as an independent oracle.
"""

from repro.matching.bipartite import MatchingResult, WeightedBipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp_matching
from repro.matching.hungarian import hungarian_matching

__all__ = [
    "MatchingResult",
    "WeightedBipartiteGraph",
    "hopcroft_karp_matching",
    "hungarian_matching",
    "max_weight_matching",
]


def max_weight_matching(
    graph: WeightedBipartiteGraph,
    backend: str = "hungarian",
) -> MatchingResult:
    """Maximum-weight matching of ``graph`` with the chosen backend.

    Parameters
    ----------
    backend:
        ``"hungarian"`` (default, no dependencies) or ``"scipy"``.
    """
    if backend == "hungarian":
        return hungarian_matching(graph)
    if backend == "scipy":
        from repro.matching.scipy_backend import scipy_matching

        return scipy_matching(graph)
    raise ValueError(f"unknown matching backend {backend!r}")
