"""Weighted bipartite graph model for the matching layer."""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from typing import TypeVar

import numpy as np

from repro.errors import MatchingError

__all__ = ["WeightedBipartiteGraph", "MatchingResult"]

L = TypeVar("L", bound=Hashable)
R = TypeVar("R", bound=Hashable)


@dataclass
class WeightedBipartiteGraph:
    """Bipartite graph with strictly positive edge weights.

    Left vertices are matching *subjects* (nodes to recode), right
    vertices are *resources* (colors).  Absent edges are forbidden pairs.
    Vertex order is preserved; it determines deterministic tie-breaking
    in the solvers.
    """

    left: list = field(default_factory=list)
    right: list = field(default_factory=list)
    _weights: dict[tuple, float] = field(default_factory=dict)
    _left_index: dict = field(default_factory=dict)
    _right_index: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._left_index = {v: i for i, v in enumerate(self.left)}
        self._right_index = {v: i for i, v in enumerate(self.right)}
        if len(self._left_index) != len(self.left):
            raise MatchingError("duplicate left vertices")
        if len(self._right_index) != len(self.right):
            raise MatchingError("duplicate right vertices")

    # ------------------------------------------------------------------
    def add_left(self, vertex) -> None:
        """Append a left vertex."""
        if vertex in self._left_index:
            raise MatchingError(f"duplicate left vertex {vertex!r}")
        self._left_index[vertex] = len(self.left)
        self.left.append(vertex)

    def add_right(self, vertex) -> None:
        """Append a right vertex."""
        if vertex in self._right_index:
            raise MatchingError(f"duplicate right vertex {vertex!r}")
        self._right_index[vertex] = len(self.right)
        self.right.append(vertex)

    def add_edge(self, left, right, weight: float) -> None:
        """Add edge ``left -- right`` with a strictly positive weight."""
        if weight <= 0:
            raise MatchingError(f"edge weight must be positive, got {weight}")
        if left not in self._left_index:
            raise MatchingError(f"unknown left vertex {left!r}")
        if right not in self._right_index:
            raise MatchingError(f"unknown right vertex {right!r}")
        self._weights[(left, right)] = float(weight)

    def weight(self, left, right) -> float | None:
        """Weight of the edge, or ``None`` if absent."""
        return self._weights.get((left, right))

    def has_edge(self, left, right) -> bool:
        """Whether the (allowed) edge exists."""
        return (left, right) in self._weights

    def edges(self) -> Iterable[tuple]:
        """All ``(left, right, weight)`` triples (insertion order)."""
        return [(l, r, w) for (l, r), w in self._weights.items()]

    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._weights)

    def weight_matrix(self) -> np.ndarray:
        """Dense ``(|left|, |right|)`` weight matrix; 0 marks forbidden."""
        mat = np.zeros((len(self.left), len(self.right)), dtype=np.float64)
        for (l, r), w in self._weights.items():
            mat[self._left_index[l], self._right_index[r]] = w
        return mat


@dataclass(frozen=True)
class MatchingResult:
    """Outcome of a matching computation.

    Attributes
    ----------
    pairs:
        ``left -> right`` for every matched left vertex.
    total_weight:
        Sum of the matched edge weights.
    """

    pairs: dict
    total_weight: float

    @property
    def cardinality(self) -> int:
        """Number of matched pairs."""
        return len(self.pairs)

    def validate_against(self, graph: WeightedBipartiteGraph) -> None:
        """Raise :class:`MatchingError` unless this is a matching of ``graph``.

        Checks edge existence, left-uniqueness (implied by dict) and
        right-uniqueness, and that ``total_weight`` is consistent.
        """
        used_right = set()
        weight = 0.0
        for l, r in self.pairs.items():
            w = graph.weight(l, r)
            if w is None:
                raise MatchingError(f"matched pair ({l!r}, {r!r}) is not an edge")
            if r in used_right:
                raise MatchingError(f"right vertex {r!r} matched twice")
            used_right.add(r)
            weight += w
        if abs(weight - self.total_weight) > 1e-9:
            raise MatchingError(
                f"total_weight {self.total_weight} inconsistent with edges ({weight})"
            )
