"""Maximum-weight bipartite matching via shortest augmenting paths.

This is a from-scratch Jonker–Volgenant-style implementation of the
Hungarian method on a dense cost matrix with dual potentials, O(n^2 m)
for ``n`` left and ``m`` right vertices.

Unmatched vertices are allowed: the cost matrix is padded with ``n``
zero-weight dummy columns so every left vertex can always be "assigned",
and dummy / forbidden assignments are dropped from the result.  Because
all real edge weights are strictly positive, the optimal padded solution
restricted to real edges is exactly the maximum-weight matching.
"""

from __future__ import annotations

import numpy as np

from repro.matching.bipartite import MatchingResult, WeightedBipartiteGraph

__all__ = ["hungarian_matching", "solve_max_weight_dense"]

_INF = np.inf


def solve_max_weight_dense(weights: np.ndarray) -> list[tuple[int, int]]:
    """Maximum-weight matching of a dense weight matrix.

    Parameters
    ----------
    weights:
        ``(n, m)`` array; entries ``<= 0`` mark forbidden pairs, positive
        entries are edge weights.

    Returns
    -------
    list of ``(row, col)`` matched index pairs (rows ascending).
    """
    w = np.asarray(weights, dtype=np.float64)
    n, m = w.shape
    if n == 0 or m == 0 or not (w > 0).any():
        return []

    # Min-cost square-free formulation: cost = -weight for allowed pairs,
    # 0 for forbidden pairs and for the n dummy columns.  Minimizing cost
    # over row-perfect assignments maximizes matched weight; dummy and
    # forbidden picks cost 0 i.e. "leave unmatched".
    cost = np.zeros((n, m + n), dtype=np.float64)
    cost[:, :m] = np.where(w > 0, -w, 0.0)

    m_tot = m + n
    # 1-based JV arrays: p[j] = row matched to column j (0 = none).
    u = np.zeros(n + 1, dtype=np.float64)
    v = np.zeros(m_tot + 1, dtype=np.float64)
    p = np.zeros(m_tot + 1, dtype=np.int64)
    way = np.zeros(m_tot + 1, dtype=np.int64)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(m_tot + 1, _INF, dtype=np.float64)
        used = np.zeros(m_tot + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            # Vectorized relaxation over unused columns.
            free = ~used[1:]
            cols = np.flatnonzero(free) + 1
            cur = cost[i0 - 1, cols - 1] - u[i0] - v[cols]
            better = cur < minv[cols]
            upd = cols[better]
            minv[upd] = cur[better]
            way[upd] = j0
            j1 = cols[np.argmin(minv[cols])]
            delta = minv[j1]
            # Update potentials.
            used_cols = np.flatnonzero(used)
            u[p[used_cols]] += delta
            v[used_cols] -= delta
            minv[cols] -= delta
            j0 = int(j1)
            if p[j0] == 0:
                break
        # Unwind the augmenting path.
        while j0 != 0:
            j1 = int(way[j0])
            p[j0] = p[j1]
            j0 = j1

    pairs: list[tuple[int, int]] = []
    for j in range(1, m + 1):  # dummy columns j > m are ignored
        i = int(p[j])
        if i != 0 and w[i - 1, j - 1] > 0:
            pairs.append((i - 1, j - 1))
    pairs.sort()
    return pairs


def hungarian_matching(graph: WeightedBipartiteGraph) -> MatchingResult:
    """Maximum-weight matching of ``graph`` (see module docstring)."""
    w = graph.weight_matrix()
    pairs_idx = solve_max_weight_dense(w)
    pairs = {graph.left[i]: graph.right[j] for i, j in pairs_idx}
    total = float(sum(w[i, j] for i, j in pairs_idx))
    return MatchingResult(pairs=pairs, total_weight=total)
