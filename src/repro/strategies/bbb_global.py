"""The BBB global baseline: recolor the whole network at every event.

Paper section 5: "(1) a strategy that uses a centralized coloring
heuristic: the BBB algorithm of [7], to recolor the entire network at
every event."  The number of recodings is the diff against the previous
assignment, so this strategy achieves near-optimal color counts at the
price of wholesale recoding — the paper's Fig 10(b) shows it off the
chart versus the distributed strategies.
"""

from __future__ import annotations

from collections.abc import Set

from repro.coloring.assignment import CodeAssignment
from repro.coloring.bbb import bbb_coloring
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["BBBGlobalStrategy"]


class BBBGlobalStrategy(RecodingStrategy):
    """Centralized recolor-everything baseline."""

    name = "BBB"

    def _recolor(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        event_kind: str,
        node_id: NodeId,
    ) -> RecodeResult:
        new = bbb_coloring(graph)  # type: ignore[arg-type]
        changes: dict[NodeId, tuple[Color | None, Color]] = {}
        for v, c in new.items():
            old = assignment.get(v)
            if old != c:
                changes[v] = (old, c)
        # A central coordinator collects the whole topology and pushes
        # every node's (possibly unchanged) color back out.
        messages = 2 * len(graph.node_ids())
        return RecodeResult(event_kind, node_id, changes, messages=messages)

    def on_join(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId
    ) -> RecodeResult:
        return self._recolor(graph, assignment, "join", node_id)

    def on_leave(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        old_color: Color,
    ) -> RecodeResult:
        return self._recolor(graph, assignment, "leave", node_id)

    def on_move(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId
    ) -> RecodeResult:
        return self._recolor(graph, assignment, "move", node_id)

    def on_power_change(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        *,
        increased: bool,
        old_conflict_neighbors: Set[NodeId],
    ) -> RecodeResult:
        kind = "power_increase" if increased else "power_decrease"
        return self._recolor(graph, assignment, kind, node_id)
