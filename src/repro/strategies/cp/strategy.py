"""The CP strategy facade."""

from __future__ import annotations

from collections.abc import Set

from repro.coloring.assignment import CodeAssignment
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.strategies.cp.join import plan_cp_join
from repro.strategies.cp.move import plan_cp_move
from repro.strategies.cp.power import plan_cp_power_increase
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["CPStrategy"]


class CPStrategy(RecodingStrategy):
    """The Chlamtac–Pinter recoding baseline [3].

    Parameters
    ----------
    highest_first:
        Identifier ordering of reselection ("increasing or decreasing
        order of their identities"); the paper's examples use
        highest-first, the default.
    vicinity_colors:
        When True, selecting nodes avoid every color within 2 undirected
        hops (the conservative reading) instead of only true conflict
        constraints.  See :mod:`repro.strategies.cp.selection`.
    """

    name = "CP"

    def __init__(self, *, highest_first: bool = True, vicinity_colors: bool = False) -> None:
        self._highest_first = highest_first
        self._vicinity_colors = vicinity_colors

    def on_join(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
    ) -> RecodeResult:
        plan = plan_cp_join(
            graph,
            assignment,
            node_id,
            highest_first=self._highest_first,
            vicinity_colors=self._vicinity_colors,
        )
        return RecodeResult("join", node_id, plan.changes, messages=plan.messages)

    def on_leave(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        old_color: Color,
    ) -> RecodeResult:
        # "When a node leaves the network, its neighbors update their
        # lists ... No recoding is required in this case."
        return RecodeResult("leave", node_id, {}, messages=0)

    def on_move(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
    ) -> RecodeResult:
        plan = plan_cp_move(
            graph,
            assignment,
            node_id,
            highest_first=self._highest_first,
            vicinity_colors=self._vicinity_colors,
        )
        return RecodeResult("move", node_id, plan.changes, messages=plan.messages)

    def on_power_change(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        *,
        increased: bool,
        old_conflict_neighbors: Set[NodeId],
    ) -> RecodeResult:
        if not increased:
            return RecodeResult("power_decrease", node_id, {}, messages=0)
        plan = plan_cp_power_increase(
            graph,
            assignment,
            node_id,
            old_conflict_neighbors,
            highest_first=self._highest_first,
            vicinity_colors=self._vicinity_colors,
        )
        return RecodeResult("power_increase", node_id, plan.changes, messages=plan.messages)
