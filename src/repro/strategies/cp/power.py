"""CP power-increase recoding (the paper's extension, section 4.2).

"When a node n increases its power range, all nodes up to two hops away
from n that now have a new constraint (due to either CA1 or CA2) with n
and the same old color as n (and thus have a conflict with n), consider
themselves for recoding.  These nodes, along with n, do so in a
distributed fashion in increasing or decreasing order of their
identities."
"""

from __future__ import annotations

from collections.abc import Set

from repro.coloring.assignment import CodeAssignment
from repro.strategies.cp.join import CPPlan
from repro.strategies.cp.selection import reselect_colors
from repro.topology.conflicts import conflict_neighbors
from repro.topology.static import DigraphLike
from repro.types import NodeId

__all__ = ["plan_cp_power_increase"]


def plan_cp_power_increase(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
    old_conflict_neighbors: Set[NodeId],
    *,
    highest_first: bool = True,
    vicinity_colors: bool = False,
) -> CPPlan:
    """Plan the CP recode after ``node`` increased its range.

    ``graph`` must already reflect the enlarged range;
    ``old_conflict_neighbors`` is the node's conflict set before it.
    """
    own = assignment[node]
    new_conflicts = conflict_neighbors(graph, node) - set(old_conflict_neighbors)
    # .get: an uncolored conflict neighbor (joined later in the same
    # round-commit round) has no color to duplicate yet
    duplicates = {w for w in new_conflicts if assignment.get(w) == own}
    reselect = duplicates | {node}
    new_colors = reselect_colors(
        graph,
        assignment,
        reselect,
        highest_first=highest_first,
        vicinity_colors=vicinity_colors,
    )
    changes = {
        u: (assignment.get(u), c) for u, c in new_colors.items() if assignment.get(u) != c
    }
    degree = len(set(graph.in_neighbors(node)) | set(graph.out_neighbors(node)))
    announce = sum(
        len(set(graph.in_neighbors(u)) | set(graph.out_neighbors(u))) for u in changes
    )
    return CPPlan(
        node=node,
        reselect=frozenset(reselect),
        new_colors=new_colors,
        changes=changes,
        messages=2 * degree + announce,
    )
