"""The CP (Chlamtac–Pinter [3]) baseline strategy family."""

from repro.strategies.cp.join import plan_cp_join
from repro.strategies.cp.move import plan_cp_move
from repro.strategies.cp.power import plan_cp_power_increase
from repro.strategies.cp.selection import reselect_colors
from repro.strategies.cp.strategy import CPStrategy

__all__ = [
    "CPStrategy",
    "plan_cp_join",
    "plan_cp_move",
    "plan_cp_power_increase",
    "reselect_colors",
]
