"""CP join recoding (paper section 3).

"The new node and its 1-hop neighbors exchange information ...  All
pairs of nodes 1 hop away from the new node which have the same colors
violate CA2 and have to select new colors."  CP originates in the
symmetric-link model of [3], so "1 hop away" is the undirected
neighborhood: *all* members of duplicated color classes among the
joiner's in- and out-neighbors re-select (unlike Minim, which recodes
all but one holder per genuinely conflicting class) — along with ``n``
itself.  Selection follows the identifier-ordered
lowest-available-color rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coloring.assignment import CodeAssignment
from repro.strategies.cp.selection import reselect_colors
from repro.topology.neighborhoods import join_partition
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["CPPlan", "plan_cp_join", "duplicated_members"]


@dataclass(frozen=True)
class CPPlan:
    """Outcome of a CP recoding: the reselect set and resulting changes."""

    node: NodeId
    reselect: frozenset[NodeId]
    new_colors: dict[NodeId, Color]
    changes: dict[NodeId, tuple[Color | None, Color]]
    messages: int


def duplicated_members(
    assignment: CodeAssignment,
    members: frozenset[NodeId],
) -> set[NodeId]:
    """Members of ``members`` whose color is shared with another member.

    Members with no assigned code place no constraints and cannot
    duplicate — the same mid-protocol tolerance as
    :func:`repro.coloring.constraints.forbidden_colors` (under
    round-commit replay a member may have joined later in the same
    round and not yet selected its color).
    """
    classes: dict[Color, list[NodeId]] = {}
    for u in members:
        color = assignment.get(u)
        if color is not None:
            classes.setdefault(color, []).append(u)
    return {u for nodes in classes.values() if len(nodes) > 1 for u in nodes}


def plan_cp_join(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
    *,
    highest_first: bool = True,
    vicinity_colors: bool = False,
) -> CPPlan:
    """Plan the CP recode for joined ``node`` (already in ``graph``)."""
    part = join_partition(graph, node)
    members = part.in_neighbors | part.out_neighbors
    reselect = duplicated_members(assignment, members) | {node}
    new_colors = reselect_colors(
        graph,
        assignment,
        reselect,
        highest_first=highest_first,
        vicinity_colors=vicinity_colors,
    )
    changes = {
        u: (assignment.get(u), c) for u, c in new_colors.items() if assignment.get(u) != c
    }
    # Analytic message count: the joining node exchanges color/constraint
    # state with each 1-hop neighbor (request + reply), then every node
    # that actually changed color announces it to its 2-hop vicinity
    # proxies (one message per undirected neighbor).
    degree = len(set(graph.in_neighbors(node)) | set(graph.out_neighbors(node)))
    announce = sum(
        len(set(graph.in_neighbors(u)) | set(graph.out_neighbors(u))) for u in changes
    )
    return CPPlan(
        node=node,
        reselect=frozenset(reselect),
        new_colors=new_colors,
        changes=changes,
        messages=2 * degree + announce,
    )
