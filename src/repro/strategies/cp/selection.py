"""CP's identifier-ordered color reselection.

Paper section 3: nodes needing new colors each wait until they are "the
highest ... -identity node in its vicinity (defined by itself and nodes
up to 2 hops away from it) that has not yet been assigned a color", then
select "the lowest available color".

Two unassigned nodes outside each other's 2-hop vicinities share no
constraints, so the distributed execution is equivalent to processing
the reselect set sequentially in descending identifier order — which is
what this oracle implementation does.  (The message-driven version lives
in :mod:`repro.distributed.cp_protocol` and is tested equivalent.)

What counts as "taken" for a selecting node is governed by
``vicinity_colors``:

* ``False`` (default) — the colors of the node's *conflict neighbors*
  (CA1 ∪ CA2), i.e. the constraint lists the CP nodes maintain ("respect
  for constraints ensures that no conflicts arise", section 3).  This is
  the variant whose color usage reproduces the paper's Fig 11
  comparison.
* ``True`` — the conservative reading: every color held within 2
  undirected hops.  Strictly safe but wasteful; kept for the robustness
  ablation.

Both variants are safe: conflict neighbors are always within 2
undirected hops.
"""

from __future__ import annotations

from collections.abc import Set

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import lowest_available_color
from repro.topology.conflicts import conflict_neighbors
from repro.topology.neighborhoods import k_hop_neighbors
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["reselect_colors"]


def reselect_colors(
    graph: DigraphLike,
    assignment: CodeAssignment,
    reselect: Set[NodeId],
    *,
    highest_first: bool = True,
    vicinity_colors: bool = False,
) -> dict[NodeId, Color]:
    """New colors for every node in ``reselect`` under the CP rule.

    All ``reselect`` nodes start uncolored (their old colors place no
    constraints); other nodes keep their current colors.  Each reselect
    node, in descending (default) identifier order, takes the lowest
    color not *taken* around it (see module docstring for the two
    takenness variants).

    A node may land back on its old color — the caller decides whether
    that counts as a recoding (it does not, per the section 5 metric).
    """
    working: dict[NodeId, Color] = {
        v: c for v, c in assignment.items() if v not in reselect
    }
    order = sorted(reselect, reverse=highest_first)
    out: dict[NodeId, Color] = {}
    for u in order:
        if vicinity_colors:
            around = k_hop_neighbors(graph, u, 2)
        else:
            around = conflict_neighbors(graph, u)
        taken = {working[v] for v in around if v in working}
        color = lowest_available_color(taken)
        working[u] = color
        out[u] = color
    return out
