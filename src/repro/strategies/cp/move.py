"""CP move recoding: a leave followed by a join (paper sections 3, 4.4).

"The CP strategy for handling recoding on node movement is to treat it
as a pair of consecutive events where the moving node n leaves and joins
the network."  The leave recodes nobody; the join then runs with ``n``
uncolored, so ``n`` always re-selects — the reason CP pays at least one
(potential) recode per move while ``RecodeOnMove`` usually pays none.
"""

from __future__ import annotations

from repro.coloring.assignment import CodeAssignment
from repro.strategies.cp.join import CPPlan, plan_cp_join
from repro.topology.static import DigraphLike
from repro.types import NodeId

__all__ = ["plan_cp_move"]


def plan_cp_move(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
    *,
    highest_first: bool = True,
    vicinity_colors: bool = False,
) -> CPPlan:
    """Plan the CP recode for moved ``node`` (already relocated).

    ``assignment`` still holds the mover's pre-move color; the leave
    phase discards it (the join phase sees ``node`` uncolored), and the
    mover's re-selected color counts as a recoding only if it differs
    from the pre-move color.
    """
    as_left = assignment.copy()
    as_left.unassign(node)
    plan = plan_cp_join(
        graph,
        as_left,
        node,
        highest_first=highest_first,
        vicinity_colors=vicinity_colors,
    )
    # Recompute the change set against the true (pre-move) colors.
    changes = {
        u: (assignment.get(u), c)
        for u, c in plan.new_colors.items()
        if assignment.get(u) != c
    }
    return CPPlan(
        node=node,
        reselect=plan.reselect,
        new_colors=plan.new_colors,
        changes=changes,
        messages=plan.messages,
    )
