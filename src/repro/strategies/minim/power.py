"""``RecodeOnPowIncrease`` — paper Fig 5.

A power increase only adds out-edges at ``n``, so every new CA1/CA2
constraint involves ``n`` itself (section 4.2).  The minimal recoding is
therefore: recode nothing if ``n``'s color still satisfies its
constraints, otherwise recode exactly ``n`` to the lowest available
color.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import forbidden_colors, lowest_available_color
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["PowerRecodePlan", "plan_power_increase"]


@dataclass(frozen=True)
class PowerRecodePlan:
    """Outcome of a power-increase recode.

    ``changes`` is empty or ``{n: (old, new)}``.  ``messages`` counts the
    constraint collection (one request + reply per out-neighbor) plus the
    announcement of the new color to the conflict neighborhood when a
    recode happens.
    """

    node: NodeId
    changes: dict[NodeId, tuple[Color | None, Color]]
    messages: int


def plan_power_increase(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
) -> PowerRecodePlan:
    """Plan the minimal recode after ``node`` increased its range.

    ``graph`` must already reflect the enlarged range.
    """
    forbidden = forbidden_colors(graph, assignment, node)
    current = assignment[node]
    collection = 2 * len(graph.out_neighbors(node))
    if current not in forbidden:
        return PowerRecodePlan(node=node, changes={}, messages=collection)
    new = lowest_available_color(forbidden)
    return PowerRecodePlan(
        node=node,
        changes={node: (current, new)},
        messages=collection + 1,
    )
