"""The ``Minim`` strategy facade (paper section 4).

Dispatches each event type to its minimal recoding algorithm:

* join → ``RecodeOnJoin`` (matching, Fig 3),
* move → ``RecodeOnMove`` (same construction at the new position, Fig 8),
* power increase → ``RecodeOnPowIncrease`` (Fig 5),
* power decrease / leave → ``RecodeDecreasePowOrLeave`` (no recoding).
"""

from __future__ import annotations

from collections.abc import Set

from repro.coloring.assignment import CodeAssignment
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.strategies.minim.join import plan_local_matching_recode
from repro.strategies.minim.power import plan_power_increase
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["MinimStrategy"]


class MinimStrategy(RecodingStrategy):
    """The paper's minimal recoding strategy family.

    Parameters
    ----------
    old_color_weight, fresh_color_weight:
        Matching edge weights (paper: 3 and 1).  Exposed for the weight
        ablation bench; production uses the defaults.
    matching_backend:
        ``"hungarian"`` (default) or ``"scipy"``.
    """

    name = "Minim"

    def __init__(
        self,
        *,
        old_color_weight: int = 3,
        fresh_color_weight: int = 1,
        matching_backend: str = "hungarian",
    ) -> None:
        self._w_old = old_color_weight
        self._w_fresh = fresh_color_weight
        self._backend = matching_backend

    def on_join(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
    ) -> RecodeResult:
        plan = plan_local_matching_recode(
            graph,
            assignment,
            node_id,
            old_color_weight=self._w_old,
            fresh_color_weight=self._w_fresh,
            backend=self._backend,
        )
        return RecodeResult("join", node_id, plan.changes, messages=plan.messages)

    def on_leave(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        old_color: Color,
    ) -> RecodeResult:
        # RecodeDecreasePowOrLeave: a leave removes constraints only.
        return RecodeResult("leave", node_id, {}, messages=0)

    def on_move(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
    ) -> RecodeResult:
        plan = plan_local_matching_recode(
            graph,
            assignment,
            node_id,
            old_color_weight=self._w_old,
            fresh_color_weight=self._w_fresh,
            backend=self._backend,
        )
        return RecodeResult("move", node_id, plan.changes, messages=plan.messages)

    def on_power_change(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        *,
        increased: bool,
        old_conflict_neighbors: Set[NodeId],
    ) -> RecodeResult:
        if not increased:
            # RecodeDecreasePowOrLeave: a decrease removes constraints only.
            return RecodeResult("power_decrease", node_id, {}, messages=0)
        plan = plan_power_increase(graph, assignment, node_id)
        return RecodeResult("power_increase", node_id, plan.changes, messages=plan.messages)
