"""The Minim strategy family (the paper's contribution, section 4)."""

from repro.strategies.minim.join import (
    LocalRecodePlan,
    minimal_join_bound,
    minimal_move_bound,
    plan_local_matching_recode,
)
from repro.strategies.minim.power import plan_power_increase
from repro.strategies.minim.strategy import MinimStrategy

__all__ = [
    "LocalRecodePlan",
    "MinimStrategy",
    "minimal_join_bound",
    "minimal_move_bound",
    "plan_local_matching_recode",
    "plan_power_increase",
]
