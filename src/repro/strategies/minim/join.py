"""``RecodeOnJoin`` / ``RecodeOnMove`` — matching-based local recoding.

Paper Fig 3 / Fig 8.  When node ``n`` joins (or arrives at a new
position), all of ``V1 = 1n ∪ 2n ∪ {n}`` must end up pairwise distinct:
every member of ``1n ∪ 2n`` transmits into ``n`` (CA2 at receiver ``n``)
and each has an edge with ``n`` (CA1).  The algorithm:

1. collect, for each ``u ∈ V1``, the colors forbidden by conflict
   neighbors *outside* ``V1`` (their colors cannot change);
2. let ``max`` be the largest color seen among those constraints and the
   old colors in ``1n ∪ 2n``; set ``V2 = {1..max}``;
3. build the bipartite graph ``V1 × V2`` with an edge ``(u, k)`` when
   ``k`` is not forbidden for ``u`` — weight 3 if ``k`` is ``u``'s old
   color, else weight 1;
4. take a maximum-weight matching; matched nodes adopt their matched
   color, unmatched nodes take fresh colors ``max+1, max+2, …``.

Lemma 4.1.6 guarantees each ``u ∈ 1n ∪ 2n`` keeps its old-color edge, so
the maximum-weight matching preserves one holder per duplicated color
class — recoding exactly ``Σ(K_i − 1)`` members (Theorem 4.1.8,
minimality) while reusing the smallest possible palette (Theorem 4.1.9,
optimality among minimal one-hop strategies).

Tie-breaking.  The paper's matching is any maximum-weight one; for
deterministic, reproducible runs we refine ties lexicographically:
(1) maximum paper weight, (2) maximum cardinality (fewer fresh colors),
(3) lower matched colors, (4) lower-id nodes keep their colors.  Each
level is encoded at a separate magnitude in the integer edge weights, so
the refinement only ever selects *among* maximum-weight matchings and
all paper theorems continue to hold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import forbidden_colors
from repro.matching import WeightedBipartiteGraph, max_weight_matching
from repro.topology.neighborhoods import join_partition
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = [
    "LocalRecodePlan",
    "minimal_join_bound",
    "minimal_move_bound",
    "plan_local_matching_recode",
]


@dataclass(frozen=True)
class LocalRecodePlan:
    """The outcome of the matching construction.

    Attributes
    ----------
    node:
        The joining / moving node ``n``.
    v1:
        The recoding candidate set ``1n ∪ 2n ∪ {n}``.
    max_color_seen:
        ``max`` of step 3 (size of the color palette ``V2``).
    new_colors:
        Complete new coloring of ``V1`` (including unchanged members).
    changes:
        ``{u: (old, new)}`` restricted to actual changes.
    messages:
        Analytic message count: one request + one reply per in-neighbor
        for constraint collection (steps 1-2), plus one dissemination
        message per recoded neighbor (step 6).
    """

    node: NodeId
    v1: frozenset[NodeId]
    max_color_seen: int
    new_colors: dict[NodeId, Color]
    changes: dict[NodeId, tuple[Color | None, Color]]
    messages: int


def solve_v1_assignment(
    v1_list: list[NodeId],
    old_colors: dict[NodeId, Color | None],
    constraints: dict[NodeId, set[Color]],
    *,
    old_color_weight: int = 3,
    fresh_color_weight: int = 1,
    backend: str = "hungarian",
) -> tuple[dict[NodeId, Color], int]:
    """Steps 3-5 of Fig 3 on already-collected local data.

    This is the computation node ``n`` performs once constraint
    collection finishes; the distributed runtime calls it directly on
    message payloads, the oracle strategy via
    :func:`plan_local_matching_recode`.

    Returns ``(new_colors, max_color_seen)`` where ``new_colors`` covers
    every ``V1`` member.
    """
    if old_color_weight < 1 or fresh_color_weight < 1:
        raise ValueError("weights must be positive integers")
    # Step 3: the palette upper bound.
    max_seen = 0
    for u in v1_list:
        old = old_colors.get(u)
        if old is not None:
            max_seen = max(max_seen, old)
        forb = constraints[u]
        if forb:
            max_seen = max(max_seen, max(forb))

    # Step 4: weighted bipartite graph with lexicographic tie-breaking
    # (see module docstring).  All weights are positive integers.
    n_left = len(v1_list)
    m_right = max_seen
    k3 = n_left * n_left + 1  # low-color preference unit
    k2 = n_left * m_right * k3 + n_left * n_left + 1  # cardinality unit
    k1 = (n_left + 1) * k2  # paper-weight unit
    bip = WeightedBipartiteGraph(left=list(v1_list), right=list(range(1, m_right + 1)))
    for pos, u in enumerate(v1_list):
        old = old_colors.get(u)
        forbidden = constraints[u]
        for k in range(1, m_right + 1):
            if k in forbidden:
                continue
            w = old_color_weight if k == old else fresh_color_weight
            bip.add_edge(u, k, w * k1 + k2 + (m_right - k) * k3 + (n_left - pos))

    # Step 5: maximum-weight matching; unmatched take fresh colors in
    # v1_list order (members ascending by id, then n).
    matching = max_weight_matching(bip, backend=backend)
    new_colors: dict[NodeId, Color] = {}
    next_fresh = max_seen + 1
    for u in v1_list:
        matched = matching.pairs.get(u)
        if matched is None:
            new_colors[u] = next_fresh
            next_fresh += 1
        else:
            new_colors[u] = matched
    return new_colors, max_seen


def plan_local_matching_recode(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
    *,
    old_color_weight: int = 3,
    fresh_color_weight: int = 1,
    backend: str = "hungarian",
) -> LocalRecodePlan:
    """Plan the matching-based recode for a joined or moved ``node``.

    ``graph`` must already reflect the new topology.  For a join the
    node has no color in ``assignment``; for a move it keeps its old
    color, which (per Fig 8) competes for retention through a weight-3
    edge exactly like every other ``V1`` member.

    ``old_color_weight``/``fresh_color_weight`` parameterize the paper's
    3/1 weights (the weight ablation lowers ``old_color_weight`` to 1).
    """
    part = join_partition(graph, node)
    members = sorted(part.in_neighbors)
    v1_list = members + [node]  # n last: fresh colors end at n (Fig 4)
    v1_set = frozenset(v1_list)

    # Steps 1-2: constraints from conflict neighbors outside V1, on the
    # *new* topology.  Old colors of V1 members do not constrain each
    # other (they are all being re-decided together).
    constraints: dict[NodeId, set[Color]] = {
        u: forbidden_colors(graph, assignment, u, exclude=v1_set) for u in v1_list
    }
    old_colors: dict[NodeId, Color | None] = {u: assignment.get(u) for u in v1_list}

    new_colors, max_seen = solve_v1_assignment(
        v1_list,
        old_colors,
        constraints,
        old_color_weight=old_color_weight,
        fresh_color_weight=fresh_color_weight,
        backend=backend,
    )

    changes = {
        u: (assignment.get(u), c) for u, c in new_colors.items() if assignment.get(u) != c
    }
    messages = 2 * len(members) + sum(1 for u in changes if u != node)
    return LocalRecodePlan(
        node=node,
        v1=v1_set,
        max_color_seen=max_seen,
        new_colors=new_colors,
        changes=changes,
        messages=messages,
    )


def minimal_join_bound(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
) -> int:
    """Lemma 4.1.1 bound: ``Σ(K_i − 1)`` member recodes plus 1 for ``n``.

    ``{K_i}`` are the multiplicities of the old colors in ``1n ∪ 2n``.
    Call with the joined topology but before applying any changes.
    """
    part = join_partition(graph, node)
    classes: dict[Color, int] = {}
    for u in part.in_neighbors:
        c = assignment[u]
        classes[c] = classes.get(c, 0) + 1
    member_recodes = sum(k - 1 for k in classes.values())
    return member_recodes + 1


def minimal_move_bound(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
) -> int:
    """The move analogue of Lemma 4.1.1 (Theorem 4.4.4).

    With the mover ``n`` holding an old color, ``V1``'s duplicated color
    classes force ``Σ(K_i − 1)`` recodes; additionally ``n`` itself must
    recode when its old color is *externally* forbidden at the new
    position even though no ``V1`` member shares it (members' old colors
    are never externally forbidden, by the Lemma 4.1.6 argument).
    Call with the moved topology, before applying changes.
    """
    part = join_partition(graph, node)
    v1_set = frozenset(part.v1)
    classes: dict[Color, int] = {}
    for u in sorted(v1_set):
        classes[assignment[u]] = classes.get(assignment[u], 0) + 1
    base = sum(k - 1 for k in classes.values())
    own = assignment[node]
    if classes[own] == 1 and own in forbidden_colors(graph, assignment, node, exclude=v1_set):
        base += 1
    return base
