"""Strategy interface and recode-result value type."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Set
from dataclasses import dataclass, field

from repro.coloring.assignment import CodeAssignment
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["RecodeResult", "RecodingStrategy"]


@dataclass(frozen=True)
class RecodeResult:
    """Outcome of handling one network event.

    Attributes
    ----------
    event_kind:
        ``"join" | "leave" | "move" | "power_increase" | "power_decrease"``.
    node:
        The initiating node (the one that joined / left / moved / changed
        power).
    changes:
        ``{node: (old_color, new_color)}`` for every node whose code
        changed, including first assignments (``old_color is None``).
        Entries always satisfy ``old != new``.
    messages:
        Number of protocol messages the recoding required (oracle-mode
        strategies report an analytic estimate; the distributed runtime
        reports exact counts).
    """

    event_kind: str
    node: NodeId
    changes: dict[NodeId, tuple[Color | None, Color]] = field(default_factory=dict)
    messages: int = 0

    @property
    def recode_count(self) -> int:
        """Number of recodings this event caused (the paper's metric).

        A node counts when it ends with "a new color different from its
        old one"; a joining node's first assignment counts (Fig 4 counts
        node 8).
        """
        return len(self.changes)

    @property
    def recoded_nodes(self) -> list[NodeId]:
        """Ids of recoded nodes, ascending."""
        return sorted(self.changes)

    def new_color_of(self, node: NodeId) -> Color | None:
        """The node's new color if this event recoded it, else ``None``."""
        entry = self.changes.get(node)
        return entry[1] if entry else None


class RecodingStrategy(ABC):
    """One recoding algorithm per event type (paper section 2).

    Contract: the topology mutation has *already been applied* to
    ``graph`` when a handler runs (the joining node is inserted, the
    mover relocated, the range updated, the leaver removed).  Handlers
    return the color changes needed to restore CA1/CA2; they must not
    mutate ``assignment``.
    """

    #: Human-readable name used in metrics and experiment tables.
    name: str = "strategy"

    @abstractmethod
    def on_join(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
    ) -> RecodeResult:
        """Recode after ``node_id`` joined (already inserted, uncolored)."""

    @abstractmethod
    def on_leave(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        old_color: Color,
    ) -> RecodeResult:
        """Recode after ``node_id`` left (already removed and uncolored)."""

    @abstractmethod
    def on_move(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
    ) -> RecodeResult:
        """Recode after ``node_id`` moved (already relocated, still colored)."""

    @abstractmethod
    def on_power_change(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        *,
        increased: bool,
        old_conflict_neighbors: Set[NodeId],
    ) -> RecodeResult:
        """Recode after ``node_id`` changed its range (already applied).

        ``old_conflict_neighbors`` is the node's conflict set *before*
        the change — the CP power extension recodes exactly the nodes
        that gained a constraint with ``node_id``.
        """
