"""Recoding strategies.

Three families, matching the paper's evaluation:

* :class:`~repro.strategies.minim.MinimStrategy` — the paper's
  contribution: provably minimal recoding for every event type.
* :class:`~repro.strategies.cp.CPStrategy` — the Chlamtac–Pinter
  baseline [3] as described in paper sections 3-4.
* :class:`~repro.strategies.bbb_global.BBBGlobalStrategy` — recolor the
  whole network with the centralized BBB heuristic at every event.

All strategies implement :class:`~repro.strategies.base.RecodingStrategy`
and return :class:`~repro.strategies.base.RecodeResult` objects; they
never mutate the assignment themselves (the network facade applies the
returned changes).
"""

from repro.errors import ConfigurationError
from repro.strategies.ablation import GreedySequentialStrategy
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.strategies.bbb_global import BBBGlobalStrategy
from repro.strategies.cp import CPStrategy
from repro.strategies.minim import MinimStrategy

__all__ = [
    "BBBGlobalStrategy",
    "CPStrategy",
    "DEFAULT_STRATEGIES",
    "GreedySequentialStrategy",
    "MinimStrategy",
    "RecodeResult",
    "RecodingStrategy",
    "make_strategy",
]

#: The paper's three contenders, in its plotting order.
DEFAULT_STRATEGIES: tuple[str, ...] = ("Minim", "CP", "BBB")


def make_strategy(name: str) -> RecodingStrategy:
    """Instantiate a strategy by its experiment-table name.

    Recognized: ``Minim``, ``CP``, ``BBB``, ``GreedySeq`` and the
    weight-ablation variant ``Minim/w1`` (old-color weight 1).
    """
    if name == "Minim":
        return MinimStrategy()
    if name == "CP":
        return CPStrategy()
    if name == "BBB":
        return BBBGlobalStrategy()
    if name == "GreedySeq":
        return GreedySequentialStrategy()
    if name == "Minim/w1":
        return MinimStrategy(old_color_weight=1)
    raise ConfigurationError(f"unknown strategy name {name!r}")
