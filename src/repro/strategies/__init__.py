"""Recoding strategies.

Three families, matching the paper's evaluation:

* :class:`~repro.strategies.minim.MinimStrategy` — the paper's
  contribution: provably minimal recoding for every event type.
* :class:`~repro.strategies.cp.CPStrategy` — the Chlamtac–Pinter
  baseline [3] as described in paper sections 3-4.
* :class:`~repro.strategies.bbb_global.BBBGlobalStrategy` — recolor the
  whole network with the centralized BBB heuristic at every event.

All strategies implement :class:`~repro.strategies.base.RecodingStrategy`
and return :class:`~repro.strategies.base.RecodeResult` objects; they
never mutate the assignment themselves (the network facade applies the
returned changes).
"""

from repro.strategies.ablation import GreedySequentialStrategy
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.strategies.bbb_global import BBBGlobalStrategy
from repro.strategies.cp import CPStrategy
from repro.strategies.minim import MinimStrategy

__all__ = [
    "BBBGlobalStrategy",
    "CPStrategy",
    "GreedySequentialStrategy",
    "MinimStrategy",
    "RecodeResult",
    "RecodingStrategy",
]
