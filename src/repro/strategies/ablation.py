"""Ablation strategy: greedy sequential reassignment instead of matching.

``GreedySequentialStrategy`` handles joins and moves by walking ``V1``
in ascending id order (the initiating node last): each node keeps its
old color when still consistent with fixed outsiders and already
processed peers, otherwise takes the lowest available color.  It is
still *minimal* (the first holder of each duplicated class keeps its
color) but forgoes the matching's optimal palette reuse — the ablation
bench compares the resulting max color index against Minim's.
"""

from __future__ import annotations

from collections.abc import Set

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import forbidden_colors, lowest_available_color
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.strategies.minim.power import plan_power_increase
from repro.topology.neighborhoods import join_partition
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["GreedySequentialStrategy"]


class GreedySequentialStrategy(RecodingStrategy):
    """Keep-or-lowest-available sequential recoding of ``V1``."""

    name = "GreedySeq"

    def _plan_local(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        event_kind: str,
    ) -> RecodeResult:
        part = join_partition(graph, node_id)
        v1 = frozenset(part.v1)
        order = sorted(part.in_neighbors) + [node_id]
        processed: dict[NodeId, Color] = {}
        changes: dict[NodeId, tuple[Color | None, Color]] = {}
        for u in order:
            fixed = forbidden_colors(graph, assignment, u, exclude=v1)
            taken = fixed | set(processed.values())
            old = assignment.get(u)
            if old is not None and old not in taken:
                processed[u] = old
                continue
            new = lowest_available_color(taken)
            processed[u] = new
            changes[u] = (old, new)
        messages = 2 * len(part.in_neighbors) + sum(1 for u in changes if u != node_id)
        return RecodeResult(event_kind, node_id, changes, messages=messages)

    def on_join(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId
    ) -> RecodeResult:
        return self._plan_local(graph, assignment, node_id, "join")

    def on_leave(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        old_color: Color,
    ) -> RecodeResult:
        return RecodeResult("leave", node_id, {}, messages=0)

    def on_move(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId
    ) -> RecodeResult:
        return self._plan_local(graph, assignment, node_id, "move")

    def on_power_change(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        *,
        increased: bool,
        old_conflict_neighbors: Set[NodeId],
    ) -> RecodeResult:
        if not increased:
            return RecodeResult("power_decrease", node_id, {}, messages=0)
        plan = plan_power_increase(graph, assignment, node_id)
        return RecodeResult("power_increase", node_id, plan.changes, messages=plan.messages)
