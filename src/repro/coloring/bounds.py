"""Lower bounds on the number of codes needed.

Used by tests and EXPERIMENTS.md to contextualize heuristic quality: no
valid assignment can use fewer colors than the largest clique of the
conflict graph.
"""

from __future__ import annotations

import numpy as np

from repro.topology.conflicts import conflict_adjacency
from repro.topology.digraph import AdHocDigraph
from repro.types import NodeId

__all__ = ["clique_lower_bound", "greedy_clique", "receiver_clique_bound"]


def receiver_clique_bound(graph: AdHocDigraph) -> int:
    """``max_v (indegree(v) + 1)`` — a structural clique bound.

    The in-neighbors of any receiver ``v`` pairwise conflict (CA2) and
    each conflicts with ``v`` itself (CA1), so ``{v} ∪ in(v)`` is a
    clique in the conflict graph.
    """
    ids = graph.node_ids()
    if not ids:
        return 0
    return max(graph.in_degree(v) for v in ids) + 1


def greedy_clique(conflicts: np.ndarray, seed: int) -> list[int]:
    """Greedily grow a clique in ``conflicts`` starting from index ``seed``.

    At each step, adds the candidate adjacent to all clique members with
    the most remaining candidates as neighbors (ties: lowest index).
    """
    n = conflicts.shape[0]
    clique = [seed]
    candidates = set(np.flatnonzero(conflicts[seed]).tolist())
    while candidates:
        best = min(
            candidates,
            key=lambda c: (-int(conflicts[c, list(candidates)].sum()), c),
        )
        clique.append(int(best))
        candidates = {c for c in candidates if c != best and conflicts[best, c]}
    return clique


def clique_lower_bound(graph: AdHocDigraph) -> int:
    """Best clique lower bound found by the structural and greedy methods.

    Seeds the greedy extension from the handful of highest conflict-degree
    vertices; combined with :func:`receiver_clique_bound`.
    """
    ids, conflicts = conflict_adjacency(graph)
    n = len(ids)
    if n == 0:
        return 0
    bound = receiver_clique_bound(graph)
    degrees = conflicts.sum(axis=1)
    seeds = np.argsort(-degrees, kind="stable")[: min(8, n)]
    for seed in seeds:
        bound = max(bound, len(greedy_clique(conflicts, int(seed))))
    return bound


def clique_nodes(graph: AdHocDigraph) -> list[NodeId]:
    """A concrete clique witnessing :func:`clique_lower_bound`'s greedy part."""
    ids, conflicts = conflict_adjacency(graph)
    if not ids:
        return []
    degrees = conflicts.sum(axis=1)
    best: list[int] = []
    seeds = np.argsort(-degrees, kind="stable")[: min(8, len(ids))]
    for seed in seeds:
        clique = greedy_clique(conflicts, int(seed))
        if len(clique) > len(best):
            best = clique
    return sorted(ids[i] for i in best)
