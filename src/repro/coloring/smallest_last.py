"""Smallest-last ordering and coloring.

The smallest-last order repeatedly removes a minimum-degree vertex; the
reverse removal order is a classic greedy-coloring order with a color
count bounded by ``1 + max core number`` (degeneracy).  Included both as
an alternative centralized heuristic and to sanity-check BBB/DSATUR
quality in tests and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.coloring.assignment import CodeAssignment
from repro.coloring.greedy import greedy_color_matrix
from repro.topology.conflicts import conflict_adjacency
from repro.topology.digraph import AdHocDigraph
from repro.types import NodeId

__all__ = ["smallest_last_order", "smallest_last_coloring"]


def smallest_last_order(conflicts: np.ndarray) -> list[int]:
    """Coloring order: reverse of iterated minimum-degree removal.

    Ties break on the lower index for determinism.
    """
    n = conflicts.shape[0]
    degree = conflicts.sum(axis=1).astype(np.int64)
    alive = np.ones(n, dtype=bool)
    removal: list[int] = []
    for _ in range(n):
        alive_idx = np.flatnonzero(alive)
        i = int(alive_idx[np.lexsort((alive_idx, degree[alive_idx]))[0]])
        removal.append(i)
        alive[i] = False
        degree[conflicts[i] & alive] -= 1
    removal.reverse()
    return removal


def smallest_last_coloring(graph: AdHocDigraph) -> CodeAssignment:
    """Greedy coloring of the conflict graph in smallest-last order."""
    ids, conflicts = conflict_adjacency(graph)
    colors = greedy_color_matrix(conflicts, smallest_last_order(conflicts))
    return CodeAssignment({ids[i]: int(colors[i]) for i in range(len(ids))})


def smallest_last_node_order(graph: AdHocDigraph) -> list[NodeId]:
    """Smallest-last order expressed in node ids."""
    ids, conflicts = conflict_adjacency(graph)
    return [ids[i] for i in smallest_last_order(conflicts)]
