"""Constraint queries used by the recoding strategies.

During recoding, a node's *constraints* (paper section 2) are the colors
it cannot take because some conflicting node already holds them.  The
``exclude`` parameter lets strategies ignore nodes that are being
recolored in the same operation (e.g., the ``V1`` set of RecodeOnJoin).
"""

from __future__ import annotations

from collections.abc import Iterable, Set

from repro.coloring.assignment import CodeAssignment
from repro.topology.conflicts import conflict_neighbors
from repro.topology.digraph import AdHocDigraph
from repro.types import Color, NodeId

__all__ = ["forbidden_colors", "lowest_available_color", "constraining_nodes"]


def constraining_nodes(
    graph: AdHocDigraph,
    node: NodeId,
    *,
    exclude: Set[NodeId] = frozenset(),
) -> set[NodeId]:
    """Conflict neighbors of ``node`` outside ``exclude``."""
    return {v for v in conflict_neighbors(graph, node) if v not in exclude}


def forbidden_colors(
    graph: AdHocDigraph,
    assignment: CodeAssignment,
    node: NodeId,
    *,
    exclude: Set[NodeId] = frozenset(),
) -> set[Color]:
    """Colors ``node`` cannot take, given the current assignment.

    These are the colors of its conflict neighbors, ignoring neighbors in
    ``exclude`` (and neighbors with no assigned code, e.g. mid-protocol).
    """
    out: set[Color] = set()
    for v in conflict_neighbors(graph, node):
        if v in exclude:
            continue
        c = assignment.get(v)
        if c is not None:
            out.add(c)
    return out


def lowest_available_color(forbidden: Iterable[Color]) -> Color:
    """The smallest positive integer not in ``forbidden``.

    This is the "lowest available color" selection rule used both by
    ``RecodeOnPowIncrease`` (Fig 5, step 3) and by the CP baseline.
    """
    taken = set(forbidden)
    c = 1
    while c in taken:
        c += 1
    return c
