"""Brélaz's DSATUR coloring (reference [9] of the paper).

DSATUR repeatedly colors the uncolored vertex of maximum *saturation
degree* (number of distinct colors among its neighbors), breaking ties by
higher degree, then lower id — a strong centralized heuristic for the
conflict graph.
"""

from __future__ import annotations

import numpy as np

from repro.coloring.assignment import CodeAssignment
from repro.topology.conflicts import conflict_adjacency
from repro.topology.digraph import AdHocDigraph

__all__ = ["dsatur_coloring", "dsatur_color_matrix"]


def dsatur_color_matrix(conflicts: np.ndarray) -> np.ndarray:
    """DSATUR colors (1-based) for a boolean conflict matrix."""
    n = conflicts.shape[0]
    colors = np.zeros(n, dtype=np.int64)
    if n == 0:
        return colors
    degree = conflicts.sum(axis=1)
    neighbor_colors: list[set[int]] = [set() for _ in range(n)]
    uncolored = set(range(n))
    for _ in range(n):
        # Max saturation, then max degree, then min index.
        best = min(uncolored, key=lambda i: (-len(neighbor_colors[i]), -int(degree[i]), i))
        used = neighbor_colors[best]
        c = 1
        while c in used:
            c += 1
        colors[best] = c
        uncolored.discard(best)
        for j in np.flatnonzero(conflicts[best]):
            neighbor_colors[int(j)].add(c)
    return colors


def dsatur_coloring(graph: AdHocDigraph) -> CodeAssignment:
    """DSATUR coloring of ``graph``'s CA1 ∪ CA2 conflict graph."""
    ids, conflicts = conflict_adjacency(graph)
    colors = dsatur_color_matrix(conflicts)
    return CodeAssignment({ids[i]: int(colors[i]) for i in range(len(ids))})
