"""First-fit greedy coloring of the conflict graph."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.coloring.assignment import CodeAssignment
from repro.topology.conflicts import conflict_adjacency
from repro.topology.digraph import AdHocDigraph
from repro.types import NodeId

__all__ = ["first_fit_coloring", "greedy_color_matrix"]


def greedy_color_matrix(conflicts: np.ndarray, order: Sequence[int]) -> np.ndarray:
    """First-fit colors (1-based) for a conflict matrix in ``order``.

    ``order`` is a permutation of matrix indices; node ``order[0]`` gets
    color 1, later nodes get the smallest color not used by their already
    colored conflict neighbors.
    """
    n = conflicts.shape[0]
    colors = np.zeros(n, dtype=np.int64)
    for i in order:
        neighbor_colors = colors[conflicts[i]]
        used = set(int(c) for c in neighbor_colors[neighbor_colors > 0])
        c = 1
        while c in used:
            c += 1
        colors[i] = c
    return colors


def first_fit_coloring(
    graph: AdHocDigraph,
    order: Sequence[NodeId] | None = None,
) -> CodeAssignment:
    """Greedy first-fit coloring of ``graph``'s conflict graph.

    Parameters
    ----------
    order:
        Node ids in coloring order; defaults to ascending id.
    """
    ids, conflicts = conflict_adjacency(graph)
    index = {v: i for i, v in enumerate(ids)}
    if order is None:
        idx_order = list(range(len(ids)))
    else:
        idx_order = [index[v] for v in order]
        if len(idx_order) != len(ids):
            raise ValueError("order must cover every node exactly once")
    colors = greedy_color_matrix(conflicts, idx_order)
    return CodeAssignment({ids[i]: int(colors[i]) for i in range(len(ids))})
