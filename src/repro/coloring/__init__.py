"""Coloring substrate: code assignments, verification and heuristics.

Codes ("colors") are positive integers.  A valid TOCA assignment is a
proper coloring of the CA1 ∪ CA2 conflict graph
(:mod:`repro.topology.conflicts`).  This package provides the assignment
container, an exact CA1/CA2 violation finder, constraint queries used by
the recoding strategies, and centralized coloring heuristics, including
the BBB baseline used by the paper's evaluation.
"""

from repro.coloring.assignment import ArrayCodeAssignment, CodeAssignment
from repro.coloring.bbb import bbb_coloring
from repro.coloring.bounds import clique_lower_bound, greedy_clique
from repro.coloring.constraints import forbidden_colors, lowest_available_color
from repro.coloring.dsatur import dsatur_coloring
from repro.coloring.greedy import first_fit_coloring
from repro.coloring.smallest_last import smallest_last_coloring, smallest_last_order
from repro.coloring.verify import Violation, assert_valid, find_violations, is_valid

__all__ = [
    "ArrayCodeAssignment",
    "CodeAssignment",
    "Violation",
    "assert_valid",
    "bbb_coloring",
    "clique_lower_bound",
    "dsatur_coloring",
    "find_violations",
    "first_fit_coloring",
    "forbidden_colors",
    "greedy_clique",
    "is_valid",
    "lowest_available_color",
    "smallest_last_coloring",
    "smallest_last_order",
]
