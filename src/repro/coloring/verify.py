"""Exact CA1 / CA2 violation detection.

``find_violations`` is the ground-truth correctness oracle used
throughout the test suite and by :func:`assert_valid` guards in the
simulator.  It is vectorized over the adjacency matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.coloring.assignment import CodeAssignment
from repro.errors import ColoringConflictError, UncoloredNodeError
from repro.topology.digraph import AdHocDigraph
from repro.types import NodeId

__all__ = ["Violation", "find_violations", "is_valid", "assert_valid"]


@dataclass(frozen=True)
class Violation:
    """A single constraint violation.

    ``kind == "CA1"``: ``nodes == (src, dst)`` are an edge with equal
    codes.  ``kind == "CA2"``: ``nodes == (u, v)`` both transmit to
    ``receiver`` with equal codes.
    """

    kind: Literal["CA1", "CA2"]
    nodes: tuple[NodeId, NodeId]
    receiver: NodeId | None = None

    def __str__(self) -> str:
        u, v = self.nodes
        if self.kind == "CA1":
            return f"CA1: edge {u}->{v} with equal codes"
        return f"CA2: {u} and {v} both reach {self.receiver} with equal codes"


def find_violations(graph: AdHocDigraph, assignment: CodeAssignment) -> list[Violation]:
    """All CA1 and CA2 violations of ``assignment`` on ``graph``.

    Every node in the graph must be assigned a code, otherwise
    :class:`UncoloredNodeError` is raised.  Violations are reported once
    per unordered pair, deterministically ordered.
    """
    ids, adj = graph.adjacency()
    n = len(ids)
    if n == 0:
        return []
    colors = np.empty(n, dtype=np.int64)
    for i, v in enumerate(ids):
        c = assignment.get(v)
        if c is None:
            raise UncoloredNodeError(v)
        colors[i] = c

    same = colors[:, None] == colors[None, :]
    violations: list[Violation] = []

    # CA1: any edge whose endpoints share a code.
    ca1 = adj & same
    for i, j in zip(*np.nonzero(ca1)):
        violations.append(Violation("CA1", (ids[int(i)], ids[int(j)])))

    # CA2: per receiver column, duplicated codes among its in-neighbors.
    seen_pairs: set[tuple[NodeId, NodeId, NodeId]] = set()
    for k in range(n):
        senders = np.flatnonzero(adj[:, k])
        if len(senders) < 2:
            continue
        sender_colors = colors[senders]
        order = np.argsort(sender_colors, kind="stable")
        sorted_colors = sender_colors[order]
        dup_mask = sorted_colors[1:] == sorted_colors[:-1]
        if not dup_mask.any():
            continue
        sorted_senders = senders[order]
        for t in np.flatnonzero(dup_mask):
            u = ids[int(sorted_senders[t])]
            v = ids[int(sorted_senders[t + 1])]
            if u > v:
                u, v = v, u
            key = (u, v, ids[k])
            if key not in seen_pairs:
                seen_pairs.add(key)
                violations.append(Violation("CA2", (u, v), receiver=ids[k]))

    violations.sort(key=lambda w: (w.kind, w.nodes, -1 if w.receiver is None else w.receiver))
    return violations


def is_valid(graph: AdHocDigraph, assignment: CodeAssignment) -> bool:
    """Whether ``assignment`` satisfies CA1 and CA2 on ``graph``."""
    return not find_violations(graph, assignment)


def assert_valid(graph: AdHocDigraph, assignment: CodeAssignment) -> None:
    """Raise :class:`ColoringConflictError` listing violations, if any."""
    violations = find_violations(graph, assignment)
    if violations:
        preview = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise ColoringConflictError(f"{len(violations)} violation(s): {preview}{more}")
