"""The network-wide code assignment container."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import UncoloredNodeError
from repro.types import Color, NodeId, validate_color

__all__ = ["CodeAssignment"]


class CodeAssignment:
    """Mutable mapping from node id to assigned code (positive int).

    A thin, validating wrapper over a dict, with the operations the
    recoding machinery needs: max code index, color classes, and diffs
    between assignments (the paper's "number of recodings" metric counts
    entries of the diff).
    """

    __slots__ = ("_codes",)

    def __init__(self, codes: Mapping[NodeId, Color] | None = None) -> None:
        self._codes: dict[NodeId, Color] = {}
        if codes:
            for node, color in codes.items():
                self.assign(node, color)

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, node: NodeId) -> Color:
        try:
            return self._codes[node]
        except KeyError:
            raise UncoloredNodeError(node) from None

    def get(self, node: NodeId, default: Color | None = None) -> Color | None:
        """Code of ``node`` or ``default`` if unassigned."""
        return self._codes.get(node, default)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._codes

    def __len__(self) -> int:
        return len(self._codes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(sorted(self._codes))

    def items(self) -> list[tuple[NodeId, Color]]:
        """``(node, code)`` pairs, ascending by node id."""
        return sorted(self._codes.items())

    def nodes(self) -> list[NodeId]:
        """Assigned node ids, ascending."""
        return sorted(self._codes)

    def as_dict(self) -> dict[NodeId, Color]:
        """A plain-dict copy of the assignment."""
        return dict(self._codes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CodeAssignment):
            return self._codes == other._codes
        if isinstance(other, Mapping):
            return self._codes == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{v}: {c}" for v, c in self.items())
        return f"CodeAssignment({{{body}}})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, node: NodeId, color: Color) -> None:
        """Set ``node``'s code; validates that the code is a positive int."""
        self._codes[node] = validate_color(color)

    def unassign(self, node: NodeId) -> Color:
        """Remove ``node``'s code (e.g., on leave); returns the old code."""
        try:
            return self._codes.pop(node)
        except KeyError:
            raise UncoloredNodeError(node) from None

    def apply(self, changes: Mapping[NodeId, Color]) -> None:
        """Assign every ``node -> code`` in ``changes``."""
        for node, color in changes.items():
            self.assign(node, color)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def max_color(self) -> int:
        """The maximum code index in use; 0 when empty.

        This is the paper's first performance metric ("maximum color
        index assigned in the network").
        """
        return max(self._codes.values(), default=0)

    def colors_of(self, nodes: Iterable[NodeId]) -> list[Color]:
        """Codes of ``nodes`` (all must be assigned), in iteration order."""
        return [self[v] for v in nodes]

    def color_classes(self) -> dict[Color, set[NodeId]]:
        """Map each in-use code to the set of nodes holding it."""
        classes: dict[Color, set[NodeId]] = {}
        for node, color in self._codes.items():
            classes.setdefault(color, set()).add(node)
        return classes

    def used_colors(self) -> set[Color]:
        """The set of codes currently in use."""
        return set(self._codes.values())

    def copy(self) -> "CodeAssignment":
        """An independent copy."""
        fresh = CodeAssignment()
        fresh._codes = dict(self._codes)
        return fresh

    def diff(self, other: "CodeAssignment") -> dict[NodeId, tuple[Color | None, Color | None]]:
        """Changes from ``self`` (old) to ``other`` (new).

        Returns ``{node: (old, new)}`` for every node whose code differs;
        ``None`` stands for "not assigned".  ``len(diff)`` is the number
        of recodings between the two assignments, counting first
        assignments and removals.
        """
        out: dict[NodeId, tuple[Color | None, Color | None]] = {}
        for node in set(self._codes) | set(other._codes):
            old = self._codes.get(node)
            new = other._codes.get(node)
            if old != new:
                out[node] = (old, new)
        return out
