"""The network-wide code assignment container.

Two interchangeable implementations share one observable behavior:

- :class:`CodeAssignment` — a validating dict wrapper, the reference.
- :class:`ArrayCodeAssignment` — a contiguous id-indexed color array
  with a color-class histogram, giving O(1) ``assign`` / ``max_color``
  for the event loop's per-event metric reads.  Used by the array
  conflict core's strategy lanes (``sim/network.py``).

Either class compares equal to the other when the mappings match, and
``diff`` / ``copy`` / serialization round-trips are class-preserving but
content-identical, so the choice of container never leaks into results.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import UncoloredNodeError
from repro.types import Color, NodeId, validate_color

__all__ = ["ArrayCodeAssignment", "CodeAssignment"]


class CodeAssignment:
    """Mutable mapping from node id to assigned code (positive int).

    A thin, validating wrapper over a dict, with the operations the
    recoding machinery needs: max code index, color classes, and diffs
    between assignments (the paper's "number of recodings" metric counts
    entries of the diff).
    """

    __slots__ = ("_codes",)

    def __init__(self, codes: Mapping[NodeId, Color] | None = None) -> None:
        self._codes: dict[NodeId, Color] = {}
        if codes:
            for node, color in codes.items():
                self.assign(node, color)

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, node: NodeId) -> Color:
        try:
            return self._codes[node]
        except KeyError:
            raise UncoloredNodeError(node) from None

    def get(self, node: NodeId, default: Color | None = None) -> Color | None:
        """Code of ``node`` or ``default`` if unassigned."""
        return self._codes.get(node, default)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._codes

    def __len__(self) -> int:
        return len(self._codes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(sorted(self._codes))

    def items(self) -> list[tuple[NodeId, Color]]:
        """``(node, code)`` pairs, ascending by node id."""
        return sorted(self._codes.items())

    def nodes(self) -> list[NodeId]:
        """Assigned node ids, ascending."""
        return sorted(self._codes)

    def as_dict(self) -> dict[NodeId, Color]:
        """A plain-dict copy of the assignment."""
        return dict(self._codes)

    def __eq__(self, other: object) -> bool:
        # Compare through as_dict() so dict- and array-backed
        # assignments with the same content are equal.
        if isinstance(other, CodeAssignment):
            return self.as_dict() == other.as_dict()
        if isinstance(other, Mapping):
            return self.as_dict() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{v}: {c}" for v, c in self.items())
        return f"CodeAssignment({{{body}}})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, node: NodeId, color: Color) -> None:
        """Set ``node``'s code; validates that the code is a positive int."""
        self._codes[node] = validate_color(color)

    def unassign(self, node: NodeId) -> Color:
        """Remove ``node``'s code (e.g., on leave); returns the old code."""
        try:
            return self._codes.pop(node)
        except KeyError:
            raise UncoloredNodeError(node) from None

    def apply(self, changes: Mapping[NodeId, Color]) -> None:
        """Assign every ``node -> code`` in ``changes``."""
        for node, color in changes.items():
            self.assign(node, color)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def max_color(self) -> int:
        """The maximum code index in use; 0 when empty.

        This is the paper's first performance metric ("maximum color
        index assigned in the network").
        """
        return max(self._codes.values(), default=0)

    def colors_of(self, nodes: Iterable[NodeId]) -> list[Color]:
        """Codes of ``nodes`` (all must be assigned), in iteration order."""
        return [self[v] for v in nodes]

    def color_classes(self) -> dict[Color, set[NodeId]]:
        """Map each in-use code to the set of nodes holding it."""
        classes: dict[Color, set[NodeId]] = {}
        for node, color in self._codes.items():
            classes.setdefault(color, set()).add(node)
        return classes

    def used_colors(self) -> set[Color]:
        """The set of codes currently in use."""
        return set(self._codes.values())

    def copy(self) -> "CodeAssignment":
        """An independent copy."""
        fresh = CodeAssignment()
        fresh._codes = dict(self._codes)
        return fresh

    def diff(self, other: "CodeAssignment") -> dict[NodeId, tuple[Color | None, Color | None]]:
        """Changes from ``self`` (old) to ``other`` (new).

        Returns ``{node: (old, new)}`` for every node whose code differs;
        ``None`` stands for "not assigned".  ``len(diff)`` is the number
        of recodings between the two assignments, counting first
        assignments and removals.
        """
        out: dict[NodeId, tuple[Color | None, Color | None]] = {}
        for node in set(self.nodes()) | set(other.nodes()):
            old = self.get(node)
            new = other.get(node)
            if old != new:
                out[node] = (old, new)
        return out


class ArrayCodeAssignment(CodeAssignment):
    """A :class:`CodeAssignment` backed by contiguous numpy arrays.

    Layout invariants:

    - ``_colors`` is an int64 array indexed **by node id** (not storage
      slot), value 0 (= ``NO_COLOR``) meaning unassigned; capacity grows
      by amortized doubling and never shrinks.  Node ids must be
      non-negative — negative ids would alias from the end of the array
      and are rejected.
    - ``_hist[c]`` counts nodes currently holding color ``c``, and
      ``_top`` is the largest in-use color (0 when empty), maintained
      incrementally so :meth:`max_color` — read once per event by every
      strategy lane — is O(1) instead of a Python ``max`` over a dict.

    Observable behavior is identical to the dict implementation; the
    replay pipeline chooses the class to match the digraph core, and
    serialized lane state is a plain dict either way.
    """

    __slots__ = ("_colors", "_hist", "_count", "_top")

    def __init__(self, codes: Mapping[NodeId, Color] | None = None) -> None:
        self._colors = np.zeros(64, dtype=np.int64)
        self._hist = np.zeros(64, dtype=np.int64)
        self._count = 0
        self._top = 0
        if codes:
            for node, color in codes.items():
                self.assign(node, color)

    # -- mapping interface ----------------------------------------------
    def __getitem__(self, node: NodeId) -> Color:
        if 0 <= node < len(self._colors):
            color = int(self._colors[node])
            if color:
                return color
        raise UncoloredNodeError(node)

    def get(self, node: NodeId, default: Color | None = None) -> Color | None:
        """Code of ``node`` or ``default`` if unassigned."""
        if 0 <= node < len(self._colors):
            color = int(self._colors[node])
            if color:
                return color
        return default

    def __contains__(self, node: NodeId) -> bool:
        return 0 <= node < len(self._colors) and bool(self._colors[node])

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.nodes())

    def items(self) -> list[tuple[NodeId, Color]]:
        """``(node, code)`` pairs, ascending by node id."""
        assigned = np.flatnonzero(self._colors)
        return list(zip(assigned.tolist(), self._colors[assigned].tolist()))

    def nodes(self) -> list[NodeId]:
        """Assigned node ids, ascending."""
        return np.flatnonzero(self._colors).tolist()

    def as_dict(self) -> dict[NodeId, Color]:
        """A plain-dict copy of the assignment."""
        return dict(self.items())

    def __repr__(self) -> str:
        body = ", ".join(f"{v}: {c}" for v, c in self.items())
        return f"ArrayCodeAssignment({{{body}}})"

    # -- mutation -------------------------------------------------------
    def assign(self, node: NodeId, color: Color) -> None:
        """Set ``node``'s code; validates that the code is a positive int."""
        color = validate_color(color)
        if node < 0:
            raise ValueError(f"array assignment requires non-negative node ids, got {node}")
        if node >= len(self._colors):
            self._colors = self._grown(self._colors, node + 1)
        if color >= len(self._hist):
            self._hist = self._grown(self._hist, color + 1)
        old = int(self._colors[node])
        if old == color:
            return
        if old:
            self._hist[old] -= 1
        else:
            self._count += 1
        self._colors[node] = color
        self._hist[color] += 1
        if color > self._top:
            self._top = color
        elif old == self._top:
            self._settle_top()

    def unassign(self, node: NodeId) -> Color:
        """Remove ``node``'s code (e.g., on leave); returns the old code."""
        old = int(self._colors[node]) if 0 <= node < len(self._colors) else 0
        if not old:
            raise UncoloredNodeError(node)
        self._colors[node] = 0
        self._hist[old] -= 1
        self._count -= 1
        if old == self._top:
            self._settle_top()
        return old

    # -- queries --------------------------------------------------------
    def max_color(self) -> int:
        """The maximum code index in use; 0 when empty.  O(1)."""
        return self._top

    def color_classes(self) -> dict[Color, set[NodeId]]:
        """Map each in-use code to the set of nodes holding it."""
        classes: dict[Color, set[NodeId]] = {}
        for node, color in self.items():
            classes.setdefault(color, set()).add(node)
        return classes

    def used_colors(self) -> set[Color]:
        """The set of codes currently in use."""
        return set(np.flatnonzero(self._hist).tolist())

    def copy(self) -> "ArrayCodeAssignment":
        """An independent copy."""
        fresh = ArrayCodeAssignment()
        fresh._colors = self._colors.copy()
        fresh._hist = self._hist.copy()
        fresh._count = self._count
        fresh._top = self._top
        return fresh

    # -- internals ------------------------------------------------------
    def _settle_top(self) -> None:
        top = self._top
        while top > 0 and not self._hist[top]:
            top -= 1
        self._top = top

    @staticmethod
    def _grown(arr: np.ndarray, needed: int) -> np.ndarray:
        cap = len(arr)
        while cap < needed:
            cap *= 2
        fresh = np.zeros(cap, dtype=arr.dtype)
        fresh[: len(arr)] = arr
        return fresh
