"""The BBB centralized coloring baseline.

The paper's evaluation compares against "a strategy that uses a
centralized coloring heuristic: the BBB algorithm of [7]" (Battiti,
Bertossi, Bonuccelli, *Assigning codes in wireless networks*, 1999),
recoloring the entire network at every event.

**Substitution note (see DESIGN.md §3).**  The paper gives no pseudo-code
for BBB; its role in the evaluation is a near-optimal centralized
conflict-graph coloring.  We implement it as DSATUR (Brélaz [9], which
this line of work builds on) over the CA1 ∪ CA2 conflict graph, with a
smallest-last fallback pass that keeps whichever coloring uses fewer
colors.  This preserves the two behaviours the evaluation depends on:
the lowest max-color curve among all strategies, and wholesale recoloring
(huge recoding counts) at every event.
"""

from __future__ import annotations

from repro.coloring.assignment import CodeAssignment
from repro.coloring.dsatur import dsatur_color_matrix
from repro.coloring.greedy import greedy_color_matrix
from repro.coloring.smallest_last import smallest_last_order
from repro.topology.conflicts import conflict_adjacency
from repro.topology.digraph import AdHocDigraph

__all__ = ["bbb_coloring"]


def bbb_coloring(graph: AdHocDigraph) -> CodeAssignment:
    """Centralized near-optimal coloring of the conflict graph.

    Runs DSATUR and smallest-last greedy, returning the assignment with
    the smaller maximum color (ties prefer DSATUR).  Deterministic.
    """
    ids, conflicts = conflict_adjacency(graph)
    dsatur = dsatur_color_matrix(conflicts)
    sl = greedy_color_matrix(conflicts, smallest_last_order(conflicts))
    ds_max = int(dsatur.max()) if len(dsatur) else 0
    sl_max = int(sl.max()) if len(sl) else 0
    chosen = dsatur if ds_max <= sl_max else sl
    return CodeAssignment({ids[i]: int(chosen[i]) for i in range(len(ids))})
