"""Shared type aliases and small value types.

The paper models mobiles as graph nodes identified by integers, and CDMA
codes as positive integers (``color`` and ``code`` are used
interchangeably).  We keep both as plain ``int`` for speed and expose the
aliases for documentation value.
"""

from __future__ import annotations

from typing import TypeAlias

#: Identifier of a mobile node. The CP baseline orders nodes by identifier,
#: so identifiers must be totally ordered; we use ints.
NodeId: TypeAlias = int

#: A CDMA code / graph color. Codes are positive integers starting at 1,
#: exactly as in the paper ("each code modeled as a positive integer").
Color: TypeAlias = int

#: A 2-D position. Stored as a ``(x, y)`` float tuple at API boundaries;
#: internally positions live in ``(n, 2)`` NumPy arrays.
Position: TypeAlias = tuple[float, float]

#: Sentinel color meaning "no code assigned".
NO_COLOR: Color = 0


def validate_color(color: int) -> Color:
    """Return ``color`` if it is a valid code (positive int), else raise.

    Raises
    ------
    ValueError
        If ``color`` is not a positive integer.
    """
    if not isinstance(color, (int,)) or isinstance(color, bool):
        raise ValueError(f"color must be an int, got {color!r}")
    if color < 1:
        raise ValueError(f"color must be a positive integer, got {color}")
    return color
