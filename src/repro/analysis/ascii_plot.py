"""Terminal line plots for experiment series.

No plotting dependency is available offline, so the CLI and examples
render series as ASCII charts — good enough to eyeball the figure
shapes the paper reports.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["ascii_plot", "plot_series"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    curves: Mapping[str, Sequence[float]],
    x_values: Sequence[float],
    *,
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
) -> str:
    """Render named curves over shared x values as an ASCII chart.

    Each curve gets a marker; later curves overwrite earlier ones on
    collisions.  Returns the chart as a string (no trailing newline).
    """
    if not curves:
        raise ValueError("need at least one curve")
    n_pts = len(x_values)
    if n_pts < 1 or any(len(c) != n_pts for c in curves.values()):
        raise ValueError("curves and x_values must share a positive length")

    all_vals = [v for c in curves.values() for v in c]
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for ci, (name, ys) in enumerate(curves.items()):
        marker = _MARKERS[ci % len(_MARKERS)]
        for x, y in zip(x_values, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((hi - y) / (hi - lo) * (height - 1))
            grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(curves)
    )
    lines.append(legend)
    for r, row in enumerate(grid):
        y_val = hi - (hi - lo) * r / (height - 1)
        prefix = f"{y_val:>9.1f} |" if r % 4 == 0 or r == height - 1 else f"{'':>9} |"
        lines.append(prefix + "".join(row))
    lines.append(f"{'':>9} +" + "-" * width)
    lines.append(f"{'':>11}{x_lo:<12g}{x_label:^{max(width - 24, 1)}}{x_hi:>12g}")
    return "\n".join(lines)


def plot_series(series, metric: str, **kwargs) -> str:
    """ASCII chart of one :class:`ExperimentSeries` metric."""
    curves = {s: series.series(metric, s) for s in series.strategies()}
    return ascii_plot(
        curves,
        series.x_values,
        title=kwargs.pop("title", f"[{series.experiment}] {metric}"),
        x_label=series.x_label,
        **kwargs,
    )
