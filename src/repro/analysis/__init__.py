"""Analysis: experiment series, statistics, tables and shape checks."""

from repro.analysis.series import ExperimentSeries
from repro.analysis.shape_checks import ShapeCheck, check_all
from repro.analysis.stats import mean_and_ci, summarize

__all__ = [
    "ExperimentSeries",
    "ShapeCheck",
    "check_all",
    "mean_and_ci",
    "summarize",
]
