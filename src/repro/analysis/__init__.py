"""Analysis: experiment series, statistics, tables, plots and checks."""

from repro.analysis.plot import HAVE_MATPLOTLIB, panels_to_figure
from repro.analysis.series import ExperimentSeries
from repro.analysis.shape_checks import ShapeCheck, check_all
from repro.analysis.stats import mean_and_ci, summarize

__all__ = [
    "ExperimentSeries",
    "HAVE_MATPLOTLIB",
    "ShapeCheck",
    "check_all",
    "mean_and_ci",
    "panels_to_figure",
    "summarize",
]
