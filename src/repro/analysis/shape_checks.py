"""Qualitative "shape" claims from the paper, as executable predicates.

The reproduction is not expected to match the paper's absolute numbers
(different random networks, different BBB internals), but the paper's
*conclusions* must hold: who wins each metric, by roughly what factor.
Each figure's claims are encoded as checks over an
:class:`~repro.analysis.series.ExperimentSeries`; benches assert them
and EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import ExperimentSeries

__all__ = [
    "ShapeCheck",
    "check_all",
    "check_join_shapes",
    "check_move_shapes",
    "check_power_shapes",
]


@dataclass(frozen=True)
class ShapeCheck:
    """One claim with its verdict."""

    claim: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.claim}{suffix}"


def _dominates(
    series: ExperimentSeries,
    metric: str,
    smaller: str,
    larger: str,
    *,
    tolerance: float = 0.0,
) -> ShapeCheck:
    """Check ``smaller <= larger + tolerance`` at every sweep point."""
    a = series.series(metric, smaller)
    b = series.series(metric, larger)
    bad = [
        (x, va, vb)
        for x, va, vb in zip(series.x_values, a, b)
        if va > vb + tolerance
    ]
    detail = "; ".join(f"{series.x_label}={x:g}: {va:.1f} > {vb:.1f}" for x, va, vb in bad[:3])
    return ShapeCheck(
        claim=f"{metric}: {smaller} <= {larger} (+{tolerance:g}) across the sweep",
        passed=not bad,
        detail=detail,
    )


def check_join_shapes(
    series: ExperimentSeries, *, color_tolerance: float = 2.0
) -> list[ShapeCheck]:
    """Fig 10 claims: recodings Minim <= CP << BBB; colors BBB <= Minim <= CP."""
    checks = [
        _dominates(series, "recodings", "Minim", "CP"),
        _dominates(series, "recodings", "CP", "BBB"),
        _dominates(series, "max_color", "BBB", "Minim", tolerance=color_tolerance),
        _dominates(series, "max_color", "Minim", "CP", tolerance=color_tolerance),
    ]
    # "BBB performs badly since it recolors the entire network at each
    # event": at the largest sweep point BBB recodes at least 3x CP.
    i = len(series.x_values) - 1
    bbb = series.series("recodings", "BBB")[i]
    cp = series.series("recodings", "CP")[i]
    checks.append(
        ShapeCheck(
            claim="recodings: BBB >= 3x CP at the largest sweep point",
            passed=bbb >= 3.0 * cp,
            detail=f"BBB={bbb:.1f}, CP={cp:.1f}",
        )
    )
    return checks


def check_power_shapes(
    series: ExperimentSeries, *, color_tolerance: float = 1.0
) -> list[ShapeCheck]:
    """Fig 11 claims: Δrecodings Minim << CP << BBB; Δcolors CP <= Minim.

    The paper calls out that CP beats Minim on max color here (section
    5.2) while Minim wins recodings "by a huge margin".
    """
    return [
        _dominates(series, "delta_recodings", "Minim", "CP"),
        _dominates(series, "delta_recodings", "CP", "BBB"),
        _dominates(series, "delta_max_color", "CP", "Minim", tolerance=color_tolerance),
    ]


def check_move_shapes(
    series: ExperimentSeries, *, color_tolerance: float = 6.0
) -> list[ShapeCheck]:
    """Fig 12 claims: Δrecodings Minim << CP << BBB; Δcolors within a few.

    The paper's Fig 12(b): Minim trails CP "by at most a couple of
    colors" while the recoding gap grows linearly with rounds.  The
    default tolerance allows a small-constant color gap (CP's
    rejoin-based moves slowly compact its palette, so its Δ can go
    slightly negative).
    """
    checks = [
        _dominates(series, "delta_recodings", "Minim", "CP"),
        _dominates(series, "delta_recodings", "CP", "BBB"),
        _dominates(series, "delta_max_color", "Minim", "CP", tolerance=color_tolerance),
    ]
    # "the Minim strategy improves vastly upon the CP strategy as rounds
    # progress": at the last point CP pays at least 2x Minim recodings.
    i = len(series.x_values) - 1
    cp = series.series("delta_recodings", "CP")[i]
    minim = series.series("delta_recodings", "Minim")[i]
    checks.append(
        ShapeCheck(
            claim="delta_recodings: CP >= 2x Minim at the last sweep point",
            passed=cp >= 2.0 * max(minim, 1e-9),
            detail=f"CP={cp:.1f}, Minim={minim:.1f}",
        )
    )
    return checks


def check_all(kind: str, series: ExperimentSeries) -> list[ShapeCheck]:
    """Dispatch to the checker for ``kind`` (``join``/``power``/``move``)."""
    if kind == "join":
        return check_join_shapes(series)
    if kind == "power":
        return check_power_shapes(series)
    if kind == "move":
        return check_move_shapes(series)
    raise ValueError(f"unknown shape-check kind {kind!r}")
