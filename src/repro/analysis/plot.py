"""Figure rendering from a results store (optional matplotlib).

:func:`panels_to_figure` turns the assembled series of a results store
— JSON directory or SQLite file alike — into one matplotlib figure of
mean ± stderr panels, with **no recomputation**: everything drawn was
persisted by a previous ``run_sweep(..., store=...)``.  matplotlib is
an optional dependency; when it is absent the entry points raise a
:class:`~repro.errors.ConfigurationError` naming the missing package
(and :data:`HAVE_MATPLOTLIB` lets callers skip cleanly up front).
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["HAVE_MATPLOTLIB", "panels_to_figure"]


def _figure_cls():
    # matplotlib.figure.Figure, not pyplot: building the figure object
    # directly needs no global backend, so library callers in notebooks
    # or GUIs keep whatever backend they selected (and savefig still
    # renders headless via the Agg canvas).
    try:
        from matplotlib.figure import Figure
    except ImportError as exc:  # pragma: no cover - exercised when absent
        raise ConfigurationError(
            "matplotlib is not installed; plotting is optional — "
            "`pip install matplotlib` to render stored series"
        ) from exc
    return Figure


def _have_matplotlib() -> bool:
    # find_spec, not a real import: this module loads with the analysis
    # package on every CLI start, and importing matplotlib (font cache,
    # rcParams) would tax commands that never plot.
    import importlib.util

    return importlib.util.find_spec("matplotlib") is not None


#: Whether the optional matplotlib dependency is importable.
HAVE_MATPLOTLIB: bool = _have_matplotlib()


def panels_to_figure(
    store_dir: Path | str,
    experiments: Sequence[str] | None = None,
    *,
    metrics: Sequence[str] | None = None,
    out: Path | str | None = None,
):
    """Render a store's series as a grid of mean ± stderr panels.

    One row per experiment id (default: every stored series), one
    column per metric (default: each series' own metrics), one line per
    strategy with stderr error bars.  Returns the matplotlib figure;
    with ``out`` it is also written to that path.  Raises
    :class:`~repro.errors.ConfigurationError` when the store holds no
    series, a requested experiment is missing, or matplotlib is absent.
    """
    from repro.sim.results import open_backend

    store = open_backend(store_dir)
    ids = list(experiments) if experiments is not None else store.list_series()
    if not ids:
        raise ConfigurationError(f"no stored series to plot under {store.locator}")
    series_list = [store.load_series(experiment_id) for experiment_id in ids]
    columns = [list(metrics) if metrics is not None else list(s.metrics) for s in series_list]
    ncols = max(len(c) for c in columns)
    if ncols == 0:
        raise ConfigurationError("no metrics selected to plot")

    fig = _figure_cls()(figsize=(4.0 * ncols, 3.0 * len(series_list)))
    axes = fig.subplots(len(series_list), ncols, squeeze=False)
    for row, (series, cols) in enumerate(zip(series_list, columns)):
        for col in range(ncols):
            ax = axes[row][col]
            if col >= len(cols):
                ax.axis("off")
                continue
            metric = cols[col]
            if metric not in series.metrics:
                raise ConfigurationError(
                    f"series {series.experiment!r} has no metric {metric!r} "
                    f"(has: {', '.join(series.metrics)})"
                )
            for strategy in series.metrics[metric]:
                yerr = series.stderr.get(metric, {}).get(strategy)
                ax.errorbar(
                    series.x_values,
                    series.metrics[metric][strategy],
                    yerr=yerr,
                    marker="o",
                    markersize=3,
                    capsize=2,
                    label=strategy,
                )
            ax.set_title(f"{series.experiment}: {metric}", fontsize=9)
            ax.set_xlabel(series.x_label)
            if col == 0:
                ax.set_ylabel(f"mean of {series.runs} runs")
            ax.legend(fontsize=7)
    fig.tight_layout()
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        fig.savefig(out, dpi=150)
    return fig
