"""Small statistics helpers for run aggregation."""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["mean_and_ci", "summarize", "Summary"]


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation and a normal-approximation 95% CI."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float


def mean_and_ci(values: Sequence[float], *, z: float = 1.96) -> Summary:
    """Mean with a z-based confidence interval (default 95%).

    With a single observation the CI degenerates to the point itself.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    mean = float(arr.mean())
    if arr.size == 1:
        return Summary(1, mean, 0.0, mean, mean)
    std = float(arr.std(ddof=1))
    half = z * std / math.sqrt(arr.size)
    return Summary(int(arr.size), mean, std, mean - half, mean + half)


def summarize(per_run: np.ndarray, axis: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """``(mean, standard error)`` of ``per_run`` along ``axis``.

    Standard error is 0 when there is a single run.
    """
    arr = np.asarray(per_run, dtype=np.float64)
    mean = arr.mean(axis=axis)
    n = arr.shape[axis]
    if n <= 1:
        return mean, np.zeros_like(mean)
    sem = arr.std(axis=axis, ddof=1) / math.sqrt(n)
    return mean, sem
