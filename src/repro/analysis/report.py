"""EXPERIMENTS-style markdown report generation.

Turns a collection of :class:`~repro.analysis.series.ExperimentSeries`
plus their shape-check verdicts into the paper-vs-measured markdown that
``EXPERIMENTS.md`` records.  Used by the CLI's ``--out`` mode and by the
maintainer script that refreshes the committed report.  Panels can be
built from live series or loaded back out of a sweep's
:class:`~repro.sim.results.ResultsBackend` — JSON directory or SQLite
file alike (:func:`panels_from_store`), so reports are reproducible
from persisted artifacts alone.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.series import ExperimentSeries
from repro.analysis.shape_checks import ShapeCheck

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.sim.results import ResultsBackend

__all__ = ["PanelReport", "panels_from_store", "render_report"]


@dataclass
class PanelReport:
    """One figure panel: series slice + the paper's claim about it."""

    panel: str  # e.g. "Fig 10(a)"
    metric: str
    series: ExperimentSeries
    paper_claim: str
    checks: Sequence[ShapeCheck] = field(default_factory=tuple)

    def to_markdown(self) -> str:
        """Markdown section: heading, paper claim, table, check list."""
        lines = [
            f"### {self.panel} — `{self.metric}` "
            f"({self.series.runs} runs per point)",
            "",
            f"**Paper:** {self.paper_claim}",
            "",
            self.series.to_markdown(self.metric),
        ]
        if self.checks:
            lines.append("")
            lines.append("Shape checks:")
            for c in self.checks:
                mark = "x" if c.passed else " "
                detail = f" — {c.detail}" if (not c.passed and c.detail) else ""
                lines.append(f"- [{mark}] {c.claim}{detail}")
        return "\n".join(lines)


def panels_from_store(
    store: "ResultsBackend",
    panel_specs: Sequence[tuple[str, str, str, str]],
) -> list[PanelReport]:
    """Build panels from a results store instead of in-memory series.

    ``panel_specs`` entries are ``(experiment_id, panel, metric,
    paper_claim)``; each experiment id must have an assembled series in
    the store (written by a previous ``run_sweep(..., store=...)``).
    Raises :class:`~repro.errors.ConfigurationError` for missing ids.
    """
    series_cache: dict[str, ExperimentSeries] = {}
    panels: list[PanelReport] = []
    for experiment_id, panel, metric, claim in panel_specs:
        if experiment_id not in series_cache:
            series_cache[experiment_id] = store.load_series(experiment_id)
        panels.append(
            PanelReport(
                panel=panel,
                metric=metric,
                series=series_cache[experiment_id],
                paper_claim=claim,
            )
        )
    return panels


def render_report(
    title: str,
    preamble: str,
    panels: Sequence[PanelReport],
) -> str:
    """Full markdown document for a set of panels."""
    parts = [f"# {title}", "", preamble.strip(), ""]
    current_experiment = None
    for p in panels:
        if p.series.experiment != current_experiment:
            current_experiment = p.series.experiment
            parts.append(f"## {current_experiment}")
            parts.append("")
        parts.append(p.to_markdown())
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
