"""EXPERIMENTS-style markdown report generation.

Turns a collection of :class:`~repro.analysis.series.ExperimentSeries`
plus their shape-check verdicts into the paper-vs-measured markdown that
``EXPERIMENTS.md`` records.  Used by the CLI's ``--out`` mode and by the
maintainer script that refreshes the committed report.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.series import ExperimentSeries
from repro.analysis.shape_checks import ShapeCheck

__all__ = ["PanelReport", "render_report"]


@dataclass
class PanelReport:
    """One figure panel: series slice + the paper's claim about it."""

    panel: str  # e.g. "Fig 10(a)"
    metric: str
    series: ExperimentSeries
    paper_claim: str
    checks: Sequence[ShapeCheck] = field(default_factory=tuple)

    def to_markdown(self) -> str:
        """Markdown section: heading, paper claim, table, check list."""
        lines = [
            f"### {self.panel} — `{self.metric}` "
            f"({self.series.runs} runs per point)",
            "",
            f"**Paper:** {self.paper_claim}",
            "",
            self.series.to_markdown(self.metric),
        ]
        if self.checks:
            lines.append("")
            lines.append("Shape checks:")
            for c in self.checks:
                mark = "x" if c.passed else " "
                detail = f" — {c.detail}" if (not c.passed and c.detail) else ""
                lines.append(f"- [{mark}] {c.claim}{detail}")
        return "\n".join(lines)


def render_report(
    title: str,
    preamble: str,
    panels: Sequence[PanelReport],
) -> str:
    """Full markdown document for a set of panels."""
    parts = [f"# {title}", "", preamble.strip(), ""]
    current_experiment = None
    for p in panels:
        if p.series.experiment != current_experiment:
            current_experiment = p.series.experiment
            parts.append(f"## {current_experiment}")
            parts.append("")
        parts.append(p.to_markdown())
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
