"""Experiment series containers and table rendering.

An :class:`ExperimentSeries` holds, for one experiment, the mean value
of each metric for each strategy at each x-value — i.e. exactly one of
the paper's figure panels per (metric) slice.  Rendering produces the
rows the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentSeries"]


@dataclass
class ExperimentSeries:
    """Averaged results of one experiment.

    Attributes
    ----------
    experiment:
        Short id, e.g. ``"fig10-join"``.
    x_label:
        Name of the swept parameter (``"N"``, ``"raisefactor"``, ...).
    x_values:
        The sweep points.
    metrics:
        ``metric -> strategy -> [mean at each x]``.
    runs:
        Number of runs each mean aggregates.
    """

    experiment: str
    x_label: str
    x_values: list[float]
    metrics: dict[str, dict[str, list[float]]]
    runs: int
    notes: str = ""
    stderr: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def strategies(self) -> list[str]:
        """Strategy names present (stable order of first metric)."""
        first = next(iter(self.metrics.values()), {})
        return list(first)

    def series(self, metric: str, strategy: str) -> list[float]:
        """The mean series for one (metric, strategy) pair."""
        return self.metrics[metric][strategy]

    def value_at(self, metric: str, strategy: str, x: float) -> float:
        """Mean of ``metric`` for ``strategy`` at sweep point ``x``."""
        i = self.x_values.index(x)
        return self.metrics[metric][strategy][i]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table(self, metric: str, *, fmt: str = "{:>10.2f}") -> str:
        """ASCII table of one metric: one row per x, one column per strategy."""
        strategies = list(self.metrics[metric])
        header = f"{self.x_label:>10} | " + " ".join(f"{s:>10}" for s in strategies)
        rule = "-" * len(header)
        lines = [f"[{self.experiment}] {metric} (mean of {self.runs} runs)", header, rule]
        for i, x in enumerate(self.x_values):
            row = f"{x:>10g} | " + " ".join(
                fmt.format(self.metrics[metric][s][i]) for s in strategies
            )
            lines.append(row)
        return "\n".join(lines)

    def to_markdown(self, metric: str) -> str:
        """Markdown table of one metric (for EXPERIMENTS.md)."""
        strategies = list(self.metrics[metric])
        lines = [
            "| " + self.x_label + " | " + " | ".join(strategies) + " |",
            "|" + "---|" * (len(strategies) + 1),
        ]
        for i, x in enumerate(self.x_values):
            cells = " | ".join(f"{self.metrics[metric][s][i]:.2f}" for s in strategies)
            lines.append(f"| {x:g} | {cells} |")
        return "\n".join(lines)

    def render_all(self) -> str:
        """All metric tables, blank-line separated."""
        return "\n\n".join(self.table(m) for m in self.metrics)
