"""Experiment series containers and table rendering.

An :class:`ExperimentSeries` holds, for one experiment, the mean value
of each metric for each strategy at each x-value — i.e. exactly one of
the paper's figure panels per (metric) slice.  Rendering produces the
rows the benchmark harness prints.  Series round-trip losslessly
through plain dicts / JSON files, which is how the results store
(:mod:`repro.sim.results`) persists and reloads them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["ExperimentSeries", "write_json_atomic"]


def write_json_atomic(path: Path | str, payload) -> Path:
    """Write ``payload`` as JSON via write-then-rename.

    The single JSON-persistence primitive of the results machinery:
    readers never observe partial files, even if the writer dies
    mid-write.  The temp name is unique per writer, so concurrent
    processes racing the same destination (workers saving an
    at-least-once duplicate) each rename a complete file — last write
    wins, no window where the destination is missing or partial.
    """
    import os
    import uuid

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


@dataclass
class ExperimentSeries:
    """Averaged results of one experiment.

    Attributes
    ----------
    experiment:
        Short id, e.g. ``"fig10-join"``.
    x_label:
        Name of the swept parameter (``"N"``, ``"raisefactor"``, ...).
    x_values:
        The sweep points.
    metrics:
        ``metric -> strategy -> [mean at each x]``.
    runs:
        Number of runs each mean aggregates.
    """

    experiment: str
    x_label: str
    x_values: list[float]
    metrics: dict[str, dict[str, list[float]]]
    runs: int
    notes: str = ""
    stderr: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def strategies(self) -> list[str]:
        """Strategy names present (stable order of first metric)."""
        first = next(iter(self.metrics.values()), {})
        return list(first)

    def series(self, metric: str, strategy: str) -> list[float]:
        """The mean series for one (metric, strategy) pair."""
        return self.metrics[metric][strategy]

    def value_at(self, metric: str, strategy: str, x: float) -> float:
        """Mean of ``metric`` for ``strategy`` at sweep point ``x``."""
        i = self.x_values.index(x)
        return self.metrics[metric][strategy][i]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain JSON-able dict (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSeries":
        """Rebuild a series from :meth:`to_dict` output."""
        return cls(
            experiment=data["experiment"],
            x_label=data["x_label"],
            x_values=[float(x) for x in data["x_values"]],
            metrics=data["metrics"],
            runs=int(data["runs"]),
            notes=data.get("notes", ""),
            stderr=data.get("stderr", {}),
        )

    def save(self, path: Path | str) -> Path:
        """Write the series to ``path`` as JSON (atomically)."""
        return write_json_atomic(path, self.to_dict())

    @classmethod
    def load(cls, path: Path | str) -> "ExperimentSeries":
        """Read a series previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table(self, metric: str, *, fmt: str = "{:>10.2f}") -> str:
        """ASCII table of one metric: one row per x, one column per strategy."""
        strategies = list(self.metrics[metric])
        header = f"{self.x_label:>10} | " + " ".join(f"{s:>10}" for s in strategies)
        rule = "-" * len(header)
        lines = [f"[{self.experiment}] {metric} (mean of {self.runs} runs)", header, rule]
        for i, x in enumerate(self.x_values):
            row = f"{x:>10g} | " + " ".join(
                fmt.format(self.metrics[metric][s][i]) for s in strategies
            )
            lines.append(row)
        return "\n".join(lines)

    def to_markdown(self, metric: str) -> str:
        """Markdown table of one metric (for EXPERIMENTS.md)."""
        strategies = list(self.metrics[metric])
        lines = [
            "| " + self.x_label + " | " + " | ".join(strategies) + " |",
            "|" + "---|" * (len(strategies) + 1),
        ]
        for i, x in enumerate(self.x_values):
            cells = " | ".join(f"{self.metrics[metric][s][i]:.2f}" for s in strategies)
            lines.append(f"| {x:g} | {cells} |")
        return "\n".join(lines)

    def render_all(self) -> str:
        """All metric tables, blank-line separated."""
        return "\n\n".join(self.table(m) for m in self.metrics)
