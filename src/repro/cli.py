"""Command-line interface: regenerate the paper's figures as tables.

Usage (installed as ``minim-cdma`` or via ``python -m repro``)::

    minim-cdma fig10 --runs 10
    minim-cdma fig11 --runs 10 --n 100
    minim-cdma fig12 --runs 10 --rounds 10
    minim-cdma all   --runs 5 --out results/

Each command prints the metric tables corresponding to the figure's
panels and the paper's shape checks; ``--out DIR`` additionally writes
markdown tables.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.series import ExperimentSeries
from repro.analysis.shape_checks import check_all
from repro.sim.experiments import (
    run_join_experiment,
    run_movement_disp_experiment,
    run_movement_rounds_experiment,
    run_power_experiment,
    run_range_sweep_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--runs", type=int, default=None, help="runs per data point (default 5; paper used 100)"
    )
    common.add_argument("--seed", type=int, default=2001, help="master seed")
    common.add_argument(
        "--processes", type=int, default=None, help="process-pool size for run fan-out"
    )
    common.add_argument("--out", type=Path, default=None, help="directory for markdown tables")

    parser = argparse.ArgumentParser(
        prog="minim-cdma",
        description="Reproduce the evaluation of Gupta (2001), 'Minimal CDMA "
        "Recoding Strategies in Power-Controlled Ad-Hoc Wireless Networks'.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p10 = sub.add_parser("fig10", parents=[common], help="node-join experiment (Fig 10 a-f)")
    p10.add_argument("--n-values", type=int, nargs="+", default=[40, 60, 80, 100, 120])
    p10.add_argument("--avg-ranges", type=float, nargs="+", default=[5, 15, 25, 35, 45, 55, 65])
    p10.add_argument("--skip-range-sweep", action="store_true")

    p11 = sub.add_parser("fig11", parents=[common], help="power-increase experiment (Fig 11 a-c)")
    p11.add_argument("--n", type=int, default=100)
    p11.add_argument("--raisefactors", type=float, nargs="+", default=[1, 2, 3, 4, 5, 6])

    p12 = sub.add_parser("fig12", parents=[common], help="movement experiment (Fig 12 a-d)")
    p12.add_argument("--n", type=int, default=40)
    p12.add_argument("--rounds", type=int, default=10)
    p12.add_argument("--maxdisp", type=float, default=40.0)
    p12.add_argument("--maxdisps", type=float, nargs="+", default=[0, 10, 20, 40, 60, 80])

    sub.add_parser("all", parents=[common], help="run every experiment with defaults")
    return parser


def _emit(series: ExperimentSeries, kind: str | None, out: Path | None) -> None:
    print(series.render_all())
    print()
    if kind is not None:
        for check in check_all(kind, series):
            print(check)
        print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{series.experiment}.md"
        blocks = [f"## {series.experiment} ({series.runs} runs)"]
        for metric in series.metrics:
            blocks.append(f"### {metric}\n\n{series.to_markdown(metric)}")
        path.write_text("\n\n".join(blocks) + "\n")
        print(f"wrote {path}")


def _run_fig10(args: argparse.Namespace) -> None:
    common = dict(runs=args.runs, seed=args.seed, processes=args.processes)
    _emit(run_join_experiment(tuple(args.n_values), **common), "join", args.out)
    if not getattr(args, "skip_range_sweep", False):
        _emit(run_range_sweep_experiment(tuple(args.avg_ranges), **common), None, args.out)


def _run_fig11(args: argparse.Namespace) -> None:
    series = run_power_experiment(
        tuple(args.raisefactors),
        n=args.n,
        runs=args.runs,
        seed=args.seed,
        processes=args.processes,
    )
    _emit(series, "power", args.out)


def _run_fig12(args: argparse.Namespace) -> None:
    common = dict(runs=args.runs, seed=args.seed, processes=args.processes)
    _emit(
        run_movement_disp_experiment(tuple(args.maxdisps), n=args.n, **common),
        None,
        args.out,
    )
    _emit(
        run_movement_rounds_experiment(
            args.rounds, maxdisp=args.maxdisp, n=args.n, **common
        ),
        "move",
        args.out,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "fig10":
        _run_fig10(args)
    elif args.command == "fig11":
        _run_fig11(args)
    elif args.command == "fig12":
        _run_fig12(args)
    elif args.command == "all":
        ns = argparse.Namespace(
            runs=args.runs,
            seed=args.seed,
            processes=args.processes,
            out=args.out,
            n_values=[40, 60, 80, 100, 120],
            avg_ranges=[5, 15, 25, 35, 45, 55, 65],
            skip_range_sweep=False,
            n=100,
            raisefactors=[1, 2, 3, 4, 5, 6],
            rounds=10,
            maxdisp=40.0,
            maxdisps=[0, 10, 20, 40, 60, 80],
        )
        _run_fig10(ns)
        _run_fig11(ns)
        ns.n = 40
        _run_fig12(ns)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
