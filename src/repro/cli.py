"""Command-line interface: figures, scenarios, workers, stores, bench.

Usage (installed as ``minim-cdma`` or via ``python -m repro``)::

    minim-cdma fig10 --runs 10
    minim-cdma fig11 --runs 10 --n 100
    minim-cdma fig12 --runs 10 --rounds 10
    minim-cdma all   --runs 5 --out results/ --results results-store/
    minim-cdma scenario --list
    minim-cdma scenario poisson-cluster --runs 5
    minim-cdma scenario uniform-churn --results store.sqlite --executor worker
    minim-cdma scenario uniform-churn --runs 2 --ci-target 0.2 --max-runs 32
    minim-cdma worker --results store.sqlite
    minim-cdma store ls store.sqlite
    minim-cdma store stats store.sqlite
    minim-cdma store watch store.sqlite --interval 2
    minim-cdma store inspect store.sqlite TASKKEY
    minim-cdma store requeue store.sqlite
    minim-cdma store export store.sqlite --csv points.csv
    minim-cdma store export store.sqlite --parquet points.parquet
    minim-cdma store compact results-store/
    minim-cdma store migrate results-store/ store.sqlite
    minim-cdma bench --runs 3 --n 120
    minim-cdma scenario fig10-join --trace trace.jsonl
    minim-cdma report trace.jsonl
    minim-cdma report trace.jsonl --check --chrome trace.chrome.json

``fig10``/``fig11``/``fig12``/``all`` reproduce the paper's evaluation
and ``scenario`` runs a registered workload from the declarative
catalog; all five figure sweeps and every scenario route through the
same unified orchestrator (:func:`repro.sim.sweep.run_sweep`), which
replays each workload single-pass against all strategies.  With
``--results PATH`` completed sweep points are persisted to a results
backend (JSON directory or SQLite file, sniffed from the path —
``--store-backend`` forces one) and re-invocations resume from cache.
``--executor worker`` publishes a sweep's tasks into the shared store
so any number of ``minim-cdma worker`` processes (or hosts sharing the
store) drain them concurrently.  ``--ci-target``/``--ci-abs`` switch a
sweep to adaptive run counts: starting from ``--runs``, each point gets
additional runs until its confidence interval meets the target (capped
by ``--max-runs``).  ``store`` inspects (``ls``), reports live
drain/quarantine state (``stats`` / ``watch``), replays a quarantined
task under the serial executor with full traceback and requeues it on
success (``inspect KEY``), releases quarantined tasks back into the
queue (``requeue``), dumps point-level rows (``export --csv`` /
``export --parquet``, the latter with sweep-level join columns, gated
on pyarrow), folds a JSON directory into one SQLite table (``compact``)
or copies between backends (``migrate``).  ``--trace PATH`` turns on
the observability layer (:mod:`repro.obs`) for any sweep, worker, or
bench invocation: phase/task spans, queue events, and conflict-core /
timeline / store counters stream to a JSONL file (child processes
write ``PATH.<pid>`` sidecars), and ``report TRACE`` summarizes it —
top spans by self-time, cache-hit ratios, checkpoint replay savings,
per-worker timelines — with ``--chrome OUT`` exporting a
chrome://tracing / Perfetto file and ``--check`` failing the exit code
when planned tasks are missing closed spans.  ``bench`` times the topology
event loop (grid fast path vs the ``REPRO_DENSE`` hatch), shared vs
per-strategy multi-strategy replay, checkpoint-timeline prefix sharing
vs per-point round replay, and adaptive vs fixed run budgets, writing
``BENCH_eventloop.json``.  Each experiment command prints metric tables
plus shape checks; ``--out DIR`` additionally writes markdown tables.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.series import ExperimentSeries
from repro.analysis.shape_checks import check_all
from repro.sim.experiments import (
    run_join_experiment,
    run_movement_disp_experiment,
    run_movement_rounds_experiment,
    run_power_experiment,
    run_range_sweep_experiment,
)
from repro.sim.results import ResultsBackend, open_backend

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--runs", type=int, default=None, help="runs per data point (default 5; paper used 100)"
    )
    common.add_argument("--seed", type=int, default=2001, help="master seed")
    common.add_argument(
        "--processes", type=int, default=None, help="process-pool size for run fan-out"
    )
    common.add_argument("--out", type=Path, default=None, help="directory for markdown tables")
    common.add_argument(
        "--results",
        type=Path,
        default=None,
        help="results store (JSON directory or SQLite file; persists sweep "
        "points and re-runs resume from cache)",
    )
    common.add_argument(
        "--store-backend",
        choices=("auto", "json", "sqlite"),
        default="auto",
        help="results-backend kind (default: sniff from the --results path)",
    )
    common.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every point even when the results store already has it",
    )
    common.add_argument(
        "--executor",
        choices=("serial", "process", "worker"),
        default=None,
        help="execution layer (default: process pool when --processes > 1, else "
        "serial; worker publishes tasks into the shared --results store)",
    )
    common.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable baseline forking for paired delta sweeps (results are "
        "identical either way)",
    )
    common.add_argument(
        "--ci-target",
        type=float,
        default=None,
        metavar="REL",
        help="adaptive run counts: add runs per point until the 95%% CI "
        "half-width is within REL * |mean| (--runs becomes the starting "
        "budget)",
    )
    common.add_argument(
        "--ci-abs",
        type=float,
        default=None,
        metavar="ABS",
        help="absolute CI half-width floor for adaptive sweeps (a point also "
        "converges when the half-width is within ABS; keeps near-zero means "
        "from demanding the run cap)",
    )
    common.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="hard cap on runs per point for adaptive sweeps (default 32; "
        "needs --ci-target/--ci-abs)",
    )
    common.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write observability spans/events/metrics to this JSONL file "
        "(summarize with 'minim-cdma report PATH')",
    )

    parser = argparse.ArgumentParser(
        prog="minim-cdma",
        description="Reproduce the evaluation of Gupta (2001), 'Minimal CDMA "
        "Recoding Strategies in Power-Controlled Ad-Hoc Wireless Networks'.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p10 = sub.add_parser("fig10", parents=[common], help="node-join experiment (Fig 10 a-f)")
    p10.add_argument("--n-values", type=int, nargs="+", default=[40, 60, 80, 100, 120])
    p10.add_argument("--avg-ranges", type=float, nargs="+", default=[5, 15, 25, 35, 45, 55, 65])
    p10.add_argument("--skip-range-sweep", action="store_true")

    p11 = sub.add_parser("fig11", parents=[common], help="power-increase experiment (Fig 11 a-c)")
    p11.add_argument("--n", type=int, default=100)
    p11.add_argument("--raisefactors", type=float, nargs="+", default=[1, 2, 3, 4, 5, 6])

    p12 = sub.add_parser("fig12", parents=[common], help="movement experiment (Fig 12 a-d)")
    p12.add_argument("--n", type=int, default=40)
    p12.add_argument("--rounds", type=int, default=10)
    p12.add_argument("--maxdisp", type=float, default=40.0)
    p12.add_argument("--maxdisps", type=float, nargs="+", default=[0, 10, 20, 40, 60, 80])

    sub.add_parser("all", parents=[common], help="run every experiment with defaults")

    ps = sub.add_parser("scenario", parents=[common], help="run a registered scenario sweep")
    ps.add_argument("name", nargs="?", default=None, help="registered scenario name")
    ps.add_argument("--list", action="store_true", help="list the scenario catalog and exit")
    ps.add_argument(
        "--strategies", nargs="+", default=None, help="strategy subset (default: the spec's)"
    )

    pw = sub.add_parser("worker", help="drain sweep tasks from a shared results store")
    pw.add_argument("--results", type=Path, required=True, help="the shared results store")
    pw.add_argument(
        "--store-backend",
        choices=("auto", "json", "sqlite"),
        default="auto",
        help="results-backend kind (default: sniff from the --results path)",
    )
    pw.add_argument(
        "--poll", type=float, default=0.2, help="seconds between queue scans (default 0.2)"
    )
    pw.add_argument(
        "--max-idle",
        type=float,
        default=10.0,
        help="exit after this many seconds without finding work (default 10)",
    )
    pw.add_argument("--once", action="store_true", help="one queue scan, then exit (no idle wait)")
    pw.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        help="park a task after this many broken leases instead of claiming "
        "it (0 or less disables; default 3)",
    )
    pw.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write observability spans/events/metrics to this JSONL file",
    )

    pst = sub.add_parser(
        "store",
        help="inspect / watch / requeue / export / compact / migrate / gc a results store",
    )
    pst.add_argument(
        "action",
        choices=(
            "ls",
            "stats",
            "watch",
            "inspect",
            "requeue",
            "export",
            "compact",
            "migrate",
            "gc",
            "ckpt",
        ),
    )
    pst.add_argument("path", type=Path, help="the store (JSON directory or SQLite file)")
    pst.add_argument(
        "dest",
        nargs="?",
        default=None,
        metavar="DEST|KEY|SUB",
        help="migration target (migrate), quarantined task key (inspect), "
        "or checkpoint subaction 'ls'/'gc' (ckpt; default ls)",
    )
    pst.add_argument(
        "--store-backend",
        choices=("auto", "json", "sqlite"),
        default="auto",
        help="backend kind of PATH (default: sniff)",
    )
    pst.add_argument(
        "--dest-backend",
        choices=("auto", "json", "sqlite"),
        default="auto",
        help="backend kind of DEST (default: sniff)",
    )
    pst.add_argument(
        "--interval", type=float, default=2.0, help="watch: seconds between snapshots (default 2)"
    )
    pst.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="watch: stop after this many snapshots (default: until Ctrl-C)",
    )
    pst.add_argument(
        "--no-workers",
        action="store_true",
        help="stats/watch: skip per-worker throughput (cheaper on huge stores)",
    )
    pst.add_argument(
        "--key",
        action="append",
        default=None,
        metavar="KEY",
        help="requeue: release only this quarantined task (repeatable; "
        "default: all quarantined tasks)",
    )
    pst.add_argument(
        "--csv", type=Path, default=None, help="export: CSV output path ('-' for stdout)"
    )
    pst.add_argument(
        "--parquet",
        type=Path,
        default=None,
        help="export: Parquet output path with sweep-level join columns "
        "(needs pyarrow installed)",
    )

    pb = sub.add_parser(
        "bench",
        help="time the event loop (array vs dict vs dense vs sparse cores, "
        "shared vs per-strategy replay, cold vs warm-start sweeps)",
    )
    pb.add_argument("--runs", type=int, default=3, help="timing repetitions per trace")
    pb.add_argument("--n", type=int, default=120, help="node count for the benchmark traces")
    pb.add_argument(
        "--large-n",
        type=int,
        default=10000,
        help="node count for the large-N array-vs-sparse traces (0 skips them)",
    )
    pb.add_argument(
        "--max-mem",
        type=float,
        default=512.0,
        help="tracemalloc ceiling in MiB for the sparse large-N run (0 disables)",
    )
    pb.add_argument(
        "--large-n-only",
        action="store_true",
        help="run only the large-N bench (the sparse-core CI job's smoke mode)",
    )
    pb.add_argument(
        "--profile",
        action="store_true",
        help="wrap the timed benches in cProfile and write the top-25 "
        "cumulative rows next to the JSON output",
    )
    pb.add_argument(
        "--scenario", default="random-waypoint", help="registered scenario for the second trace"
    )
    pb.add_argument(
        "--lanes", type=int, default=3, help="strategy lanes for the replay comparison"
    )
    pb.add_argument("--seed", type=int, default=2001, help="trace-generation seed")
    pb.add_argument(
        "--out", type=Path, default=None, help="output path (default BENCH_eventloop.json)"
    )
    pb.add_argument(
        "--obs-overhead",
        action="store_true",
        help="also measure tracing overhead (obs-overhead off/on entries "
        "with the on/off throughput ratio)",
    )
    pb.add_argument(
        "--obs-overhead-only",
        action="store_true",
        help="run only the tracing-overhead bench (the obs-trace CI job's mode)",
    )
    pb.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write observability spans/events/metrics to this JSONL file",
    )

    pr = sub.add_parser(
        "report",
        help="summarize a --trace JSONL file (top spans, cache-hit ratios, "
        "replay savings, per-worker timelines)",
    )
    pr.add_argument("trace", type=Path, help="trace file written by --trace")
    pr.add_argument(
        "--top", type=int, default=15, help="span rows to show, by self-time (default 15)"
    )
    pr.add_argument(
        "--check",
        action="store_true",
        help="verify trace completeness (every planned task has a closed "
        "span); exit 1 on problems",
    )
    pr.add_argument(
        "--chrome",
        type=Path,
        default=None,
        metavar="OUT",
        help="also export a Chrome trace-event file for chrome://tracing / Perfetto",
    )
    return parser


def _store_of(args: argparse.Namespace) -> ResultsBackend | None:
    if args.results is None:
        return None
    return open_backend(args.results, getattr(args, "store_backend", "auto"))


def _emit(series: ExperimentSeries, kind: str | None, out: Path | None) -> None:
    print(series.render_all())
    if series.notes:
        print(f"[{series.experiment}] {series.notes}")
    print()
    if kind is not None:
        for check in check_all(kind, series):
            print(check)
        print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{series.experiment}.md"
        blocks = [f"## {series.experiment} ({series.runs} runs)"]
        for metric in series.metrics:
            blocks.append(f"### {metric}\n\n{series.to_markdown(metric)}")
        path.write_text("\n\n".join(blocks) + "\n")
        print(f"wrote {path}")


def _precision_of(args: argparse.Namespace):
    """Build the adaptive-sweep target from ``--ci-target``/``--ci-abs``."""
    rel = getattr(args, "ci_target", None)
    abs_tol = getattr(args, "ci_abs", None)
    max_runs = getattr(args, "max_runs", None)
    if rel is None and abs_tol is None:
        if max_runs is not None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "--max-runs caps an adaptive sweep; set --ci-target and/or "
                "--ci-abs to enable one"
            )
        return None
    from repro.sim.control import PrecisionTarget

    kwargs: dict = {"rel": rel, "abs_tol": abs_tol}
    if max_runs is not None:
        kwargs["max_runs"] = max_runs
    return PrecisionTarget(**kwargs)


def _sweep_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        runs=args.runs,
        seed=args.seed,
        processes=args.processes,
        store=_store_of(args),
        resume=not args.no_resume,
        executor=getattr(args, "executor", None),
        warm_start=False if getattr(args, "no_warm_start", False) else None,
        precision=_precision_of(args),
    )


def _run_fig10(args: argparse.Namespace) -> None:
    common = _sweep_kwargs(args)
    _emit(run_join_experiment(tuple(args.n_values), **common), "join", args.out)
    if not getattr(args, "skip_range_sweep", False):
        _emit(run_range_sweep_experiment(tuple(args.avg_ranges), **common), None, args.out)


def _run_fig11(args: argparse.Namespace) -> None:
    series = run_power_experiment(tuple(args.raisefactors), n=args.n, **_sweep_kwargs(args))
    _emit(series, "power", args.out)


def _run_fig12(args: argparse.Namespace) -> None:
    common = _sweep_kwargs(args)
    _emit(
        run_movement_disp_experiment(tuple(args.maxdisps), n=args.n, **common),
        None,
        args.out,
    )
    _emit(
        run_movement_rounds_experiment(
            args.rounds, maxdisp=args.maxdisp, n=args.n, **common
        ),
        "move",
        args.out,
    )


def _run_scenario_cmd(args: argparse.Namespace) -> int:
    from repro.sim.registry import available_scenarios, get_scenario
    from repro.sim.sweep import run_sweep

    if args.list or args.name is None:
        print("registered scenarios:")
        for name in available_scenarios():
            spec = get_scenario(name)
            sweep = ", ".join(f"{v:g}" for v in spec.sweep_values)
            print(f"  {name:<18} {spec.description}")
            print(f"  {'':<18} sweep {spec.sweep_axis} in [{sweep}]")
        return 0 if args.list else 2
    from repro.errors import ConfigurationError

    try:
        series = run_sweep(args.name, strategies=args.strategies, **_sweep_kwargs(args))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit(series, None, args.out)
    return 0


def _collect_bench_entries(args: argparse.Namespace, max_mem: float | None) -> list[dict]:
    """Run the bench suites selected by ``args``; return their entries."""
    from repro.errors import ConfigurationError
    from repro.sim.bench import (
        run_adaptive_bench,
        run_checkpoint_bench,
        run_event_loop_bench,
        run_large_n_bench,
        run_obs_overhead_bench,
        run_replay_bench,
        run_timeline_bench,
        run_warmstart_bench,
    )

    if args.obs_overhead_only:
        return run_obs_overhead_bench(n=args.n, runs=args.runs, seed=args.seed)
    if args.large_n_only:
        if not args.large_n:
            raise ConfigurationError("--large-n-only needs --large-n > 0")
        return run_large_n_bench(n=args.large_n, runs=1, seed=args.seed, max_mem_mb=max_mem)
    entries = run_event_loop_bench(
        n=args.n, runs=args.runs, scenario=args.scenario, seed=args.seed
    )
    if args.large_n:
        entries.extend(
            run_large_n_bench(n=args.large_n, runs=1, seed=args.seed, max_mem_mb=max_mem)
        )
    entries.extend(run_replay_bench(n=args.n, runs=args.runs, lanes=args.lanes, seed=args.seed))
    entries.extend(run_warmstart_bench(n=args.n, runs=args.runs, lanes=args.lanes, seed=args.seed))
    # pinned n: the timeline bench measures round sharing on the
    # real strategy pipeline; its trace size is its own knob
    entries.extend(run_timeline_bench(runs=args.runs, seed=args.seed))
    # no n: the adaptive bench pins its own small noisy sweep (the
    # controller, not the event loop, is what it measures)
    entries.extend(run_adaptive_bench(runs=args.runs, seed=args.seed))
    # pinned n=10^4, runs=1: the checkpoint bench prices the delta
    # chain at the canonical large-N point; its full-snapshot rival
    # leg is the expensive part, so repetitions stay off by default
    # and `--large-n 0` skips it along with the other scale traces
    if args.large_n:
        entries.extend(run_checkpoint_bench(runs=1, seed=args.seed))
    if args.obs_overhead:
        entries.extend(run_obs_overhead_bench(n=args.n, seed=args.seed))
    return entries


def _write_bench_profile(profiler, json_path: Path) -> Path:
    """Write the top-25 cumulative profile rows next to the bench JSON.

    The rows reproduce the hot-path evidence perf PRs cite: anyone can
    re-derive "X dominates the large-join profile" from
    ``minim-cdma bench --profile`` instead of trusting the PR text.
    """
    import io
    import pstats

    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(25)
    prof_path = json_path.with_name(json_path.stem + "_profile.txt")
    prof_path.write_text(buf.getvalue())
    return prof_path


def _run_bench_cmd(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.sim.bench import write_bench_json

    max_mem = args.max_mem if args.max_mem > 0 else None
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    try:
        if profiler is not None:
            profiler.enable()
        try:
            entries = _collect_bench_entries(args, max_mem)
        finally:
            if profiler is not None:
                profiler.disable()
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_bench_table(entries)
    path = write_bench_json(entries, args.out)
    print(f"wrote {path}")
    if profiler is not None:
        prof_path = _write_bench_profile(profiler, path)
        print(f"wrote {prof_path}")
    return 0


def _print_bench_table(entries: list[dict]) -> None:
    header = (
        f"{'scenario':<22} {'n':>5} {'mode':>12} {'events':>7} {'ev/sec':>10} "
        f"{'peak MiB':>9} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for e in entries:
        speedup = ""
        for field in (
            "speedup_vs_dict",
            "speedup_vs_dense",
            "speedup_vs_pr7",
            "speedup_vs_array",
            "round_batch_speedup",
            "speedup_vs_per_strategy",
            "speedup_vs_cold",
            "timeline_prefix_sharing",
            "run_savings_vs_fixed",
            "trace_on_vs_off",
        ):
            if field in e:
                speedup = f"{e[field]:.2f}x"
                break
        mem = f"{e['peak_mem_mb']:.1f}" if "peak_mem_mb" in e else ""
        print(
            f"{e['scenario']:<22} {e['n']:>5} {e['mode']:>12} {e['events']:>7} "
            f"{e['events_per_sec']:>10.0f} {mem:>9} {speedup:>8}"
        )


def _run_report_cmd(args: argparse.Namespace) -> int:
    from repro.obs.export import write_chrome_trace
    from repro.obs.report import check_trace, render_report
    from repro.obs.tracing import load_trace

    if not args.trace.exists():
        print(f"error: no trace file at {args.trace}", file=sys.stderr)
        return 2
    records = load_trace(args.trace)
    print(render_report(records, top=args.top))
    if args.chrome is not None:
        write_chrome_trace(records, args.chrome)
        print(f"wrote {args.chrome}")
    if args.check:
        problems = check_trace(records)
        if problems:
            for problem in problems:
                print(f"trace check: {problem}", file=sys.stderr)
            return 1
        print("trace check: ok")
    return 0


def _run_worker_cmd(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.sim.executor import run_worker

    backend = open_backend(args.results, args.store_backend)
    print(f"worker draining {backend.kind} store {backend.locator}")
    try:
        computed = run_worker(
            backend,
            poll=args.poll,
            max_idle=args.max_idle,
            once=args.once,
            quarantine_after=args.quarantine_after,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"worker exiting: computed {computed} task group(s)")
    return 0


def _run_store_cmd(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.sim.results import JsonDirBackend, migrate_store

    backend = open_backend(args.path, args.store_backend)
    try:
        if args.action == "ls":
            info = backend.describe()
            print(f"{info['backend']} store {info['locator']}")
            for field in ("points", "manifests", "tasks", "claims", "quarantined"):
                print(f"  {field:<11} {info[field]}")
            print(f"  {'series':<11} {len(info['series'])}")
            for experiment_id in info["series"]:
                print(f"    {experiment_id}")
            return 0
        if args.action in ("stats", "watch"):
            from repro.sim.monitor import StoreMonitor

            monitor = StoreMonitor(backend)
            if args.action == "stats":
                print(monitor.stats(workers=not args.no_workers).render())
                return 0
            monitor.watch(
                interval=args.interval,
                iterations=args.iterations,
                workers=not args.no_workers,
            )
            return 0
        if args.action == "inspect":
            from repro.sim.monitor import inspect_quarantined

            if args.dest is None:
                print("error: inspect needs a quarantined task KEY", file=sys.stderr)
                return 2
            # non-ConfigurationError failures propagate with their full
            # traceback — surfacing the crash is the point of triage
            inspect_quarantined(backend, args.dest)
            return 0
        if args.action == "requeue":
            keys = args.key if args.key else backend.list_quarantined()
            released = 0
            for key in keys:
                if backend.requeue_quarantined(key):
                    print(f"requeued {key}")
                    released += 1
                else:
                    print(f"error: {key} is not quarantined", file=sys.stderr)
            print(f"released {released} task(s) back into {backend.locator}")
            return 0 if released == len(keys) else 2
        if args.action == "export":
            from repro.sim.monitor import export_csv, export_parquet

            if args.csv is None and args.parquet is None:
                print(
                    "error: export needs --csv PATH ('-' for stdout) and/or "
                    "--parquet PATH",
                    file=sys.stderr,
                )
                return 2
            if args.csv is not None:
                if str(args.csv) == "-":
                    export_csv(backend, sys.stdout)
                else:
                    rows = export_csv(backend, args.csv)
                    print(f"wrote {rows} row(s) to {args.csv}")
            if args.parquet is not None:
                rows = export_parquet(backend, args.parquet)
                print(f"wrote {rows} row(s) to {args.parquet}")
            return 0
        if args.action == "gc":
            counts = backend.gc_checkpoints()
            print(
                f"pruned {counts['removed']} checkpoint link(s) from "
                f"{backend.locator} ({counts['kept']} still referenced by manifests)"
            )
            return 0
        if args.action == "ckpt":
            sub_action = args.dest or "ls"
            if sub_action == "gc":
                counts = backend.gc_checkpoints()
                print(
                    f"pruned {counts['removed']} checkpoint link(s) "
                    f"({counts['kept']} kept)"
                )
                return 0
            if sub_action != "ls":
                print(f"error: unknown ckpt subaction {sub_action!r} (ls/gc)", file=sys.stderr)
                return 2
            stats = backend.checkpoint_stats()
            print(
                f"{stats['count']} checkpoint link(s), {stats['bytes']} byte(s) "
                f"({stats['hits']} hit(s), {stats['misses']} miss(es), "
                f"{stats['writes']} write(s), {stats['gc_removed']} gc-removed)"
            )
            for key in backend.list_checkpoints():
                record = backend.load_checkpoint_record(key) or {}
                base = record.get("base") or "<fresh>"
                points = len(record.get("points") or ())
                print(f"  {key}  base={base}  version={record.get('version')}  points={points}")
            return 0
        if args.action == "compact":
            if not isinstance(backend, JsonDirBackend):
                pruned = backend.gc_checkpoints()["removed"]
                backend.compact()
                print(f"vacuumed {backend.locator} ({pruned} checkpoint link(s) pruned)")
                return 0
            points = len(backend.list_points())
            compacted = backend.compact()
            print(
                f"compacted {points} point file(s) from {backend.locator} "
                f"into {compacted.locator}"
            )
            return 0
        # migrate
        if args.dest is None:
            print("error: migrate needs a DEST path", file=sys.stderr)
            return 2
        dest = open_backend(Path(args.dest), args.dest_backend)
        counts = migrate_store(backend, dest)
        print(
            f"migrated {counts['points']} point(s), {counts['manifests']} "
            f"manifest(s), {counts['series']} series from {backend.locator} "
            f"({backend.kind}) to {dest.locator} ({dest.kind})"
        )
        return 0
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.errors import ConfigurationError

    args = build_parser().parse_args(argv)
    if args.command == "report":
        return _run_report_cmd(args)
    tracing = getattr(args, "trace", None) is not None
    if tracing:
        from repro import obs

        obs.enable(args.trace)
    try:
        if args.command == "scenario":
            return _run_scenario_cmd(args)
        if args.command == "bench":
            return _run_bench_cmd(args)
        if args.command == "worker":
            return _run_worker_cmd(args)
        if args.command == "store":
            return _run_store_cmd(args)
        try:
            return _run_figures(args)
        except ConfigurationError as exc:
            # mis-set flags (e.g. --max-runs without --ci-target) and env
            # misconfiguration get the same clean error the scenario
            # command prints, not a traceback
            print(f"error: {exc}", file=sys.stderr)
            return 2
    finally:
        if tracing:
            from repro import obs

            obs.close()
            print(f"wrote trace {args.trace}")


def _run_figures(args: argparse.Namespace) -> int:
    """Dispatch the paper-figure commands (``fig10``/``fig11``/``fig12``/``all``)."""
    if args.command == "fig10":
        _run_fig10(args)
    elif args.command == "fig11":
        _run_fig11(args)
    elif args.command == "fig12":
        _run_fig12(args)
    elif args.command == "all":
        ns = argparse.Namespace(
            runs=args.runs,
            seed=args.seed,
            processes=args.processes,
            out=args.out,
            results=args.results,
            store_backend=args.store_backend,
            no_resume=args.no_resume,
            executor=args.executor,
            no_warm_start=args.no_warm_start,
            ci_target=args.ci_target,
            ci_abs=args.ci_abs,
            max_runs=args.max_runs,
            n_values=[40, 60, 80, 100, 120],
            avg_ranges=[5, 15, 25, 35, 45, 55, 65],
            skip_range_sweep=False,
            n=100,
            raisefactors=[1, 2, 3, 4, 5, 6],
            rounds=10,
            maxdisp=40.0,
            maxdisps=[0, 10, 20, 40, 60, 80],
        )
        _run_fig10(ns)
        _run_fig11(ns)
        ns.n = 40
        _run_fig12(ns)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
