"""minim-cdma: minimal CDMA recoding in power-controlled ad-hoc networks.

A faithful, self-contained reproduction of Indranil Gupta, *Minimal CDMA
Recoding Strategies in Power-Controlled Ad-Hoc Wireless Networks*
(Cornell CS TR, January 2001 / IPPS 2001).

Quickstart
----------
>>> import numpy as np
>>> from repro import AdHocNetwork, MinimStrategy, NodeConfig
>>> net = AdHocNetwork(MinimStrategy())
>>> _ = net.join(NodeConfig(1, 10.0, 10.0, tx_range=25.0))
>>> _ = net.join(NodeConfig(2, 20.0, 15.0, tx_range=25.0))
>>> net.is_valid()
True

Package map
-----------
* :mod:`repro.topology` — the dynamic ad-hoc digraph and conflict graph.
* :mod:`repro.coloring` — code assignments, verification, heuristics.
* :mod:`repro.matching` — weighted bipartite matching (from scratch).
* :mod:`repro.strategies` — Minim (the paper), CP and BBB baselines.
* :mod:`repro.events` — join / leave / move / power-change events.
* :mod:`repro.sim` — random networks, workloads, the paper's experiments.
* :mod:`repro.distributed` — message-driven protocol executions.
* :mod:`repro.cdma` — Walsh-code physical layer.
* :mod:`repro.gossip` — quiet-period code compaction (section 6).
* :mod:`repro.analysis` — series containers, tables, shape checks.
"""

from repro._version import __version__
from repro.coloring import CodeAssignment, bbb_coloring, find_violations, is_valid
from repro.events import JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim import AdHocNetwork, sample_configs
from repro.sim.experiments import (
    run_join_experiment,
    run_movement_disp_experiment,
    run_movement_rounds_experiment,
    run_power_experiment,
    run_range_sweep_experiment,
)
from repro.strategies import (
    BBBGlobalStrategy,
    CPStrategy,
    GreedySequentialStrategy,
    MinimStrategy,
    RecodeResult,
    RecodingStrategy,
)
from repro.topology import AdHocDigraph, NodeConfig, build_digraph

__all__ = [
    "AdHocDigraph",
    "AdHocNetwork",
    "BBBGlobalStrategy",
    "CPStrategy",
    "CodeAssignment",
    "GreedySequentialStrategy",
    "JoinEvent",
    "LeaveEvent",
    "MinimStrategy",
    "MoveEvent",
    "NodeConfig",
    "PowerChangeEvent",
    "RecodeResult",
    "RecodingStrategy",
    "__version__",
    "bbb_coloring",
    "build_digraph",
    "find_violations",
    "is_valid",
    "run_join_experiment",
    "run_movement_disp_experiment",
    "run_movement_rounds_experiment",
    "run_power_experiment",
    "run_range_sweep_experiment",
    "sample_configs",
]
