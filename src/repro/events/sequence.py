"""Event logs and parallel-join planning.

The paper assumes events are sequenced one at a time, then relaxes this
for joins: "The algorithm supports simultaneous additions of new nodes
when any two of them are at least 5 hops apart" (Theorem 4.1.10).
``plan_parallel_join_batches`` greedily partitions a stream of joins into
batches whose members are pairwise at least that far apart once
inserted, so each batch may be recoded concurrently.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.events.base import Event, JoinEvent
from repro.topology.digraph import AdHocDigraph

__all__ = ["EventLog", "plan_parallel_join_batches"]


class EventLog:
    """An append-only record of events with per-kind counts."""

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: list[Event] = list(events)

    def append(self, event: Event) -> None:
        """Record ``event``."""
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        """Record several events in order."""
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, i: int) -> Event:
        return self._events[i]

    def counts_by_kind(self) -> dict[str, int]:
        """Number of recorded events per kind tag."""
        out: dict[str, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


def plan_parallel_join_batches(
    graph: AdHocDigraph,
    joins: Iterable[JoinEvent],
    *,
    min_separation: int = 5,
) -> list[list[JoinEvent]]:
    """Partition ``joins`` into batches safe to recode concurrently.

    Two joins may share a batch when, with all of the batch's nodes
    inserted, every pair of joining nodes is at least ``min_separation``
    undirected hops apart (or disconnected).  Planning is greedy in input
    order, so earlier joins fill earlier batches.

    The input ``graph`` is not modified (planning runs on a scratch
    copy).
    """
    if min_separation < 1:
        raise ValueError(f"min_separation must be >= 1, got {min_separation}")
    pending = list(joins)
    batches: list[list[JoinEvent]] = []
    while pending:
        scratch = graph.copy()
        batch: list[JoinEvent] = []
        leftovers: list[JoinEvent] = []
        for ev in pending:
            scratch.add_node(ev.config)
            dist = scratch.undirected_hop_distances(ev.config.node_id)
            ok = all(
                dist.get(other.config.node_id, min_separation) >= min_separation
                for other in batch
            )
            if ok:
                batch.append(ev)
            else:
                scratch.remove_node(ev.config.node_id)
                leftovers.append(ev)
        batches.append(batch)
        # Members of this batch are now considered part of the network
        # for subsequent batches.
        for ev in batch:
            graph = _with_node(graph, ev)
        pending = leftovers
    return batches


def _with_node(graph: AdHocDigraph, ev: JoinEvent) -> AdHocDigraph:
    g = graph.copy()
    g.add_node(ev.config)
    return g
