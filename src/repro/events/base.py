"""Event value types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.topology.node import NodeConfig
from repro.types import NodeId

__all__ = ["JoinEvent", "LeaveEvent", "MoveEvent", "PowerChangeEvent", "Event"]


@dataclass(frozen=True, slots=True)
class JoinEvent:
    """A new node connects to the network with the given configuration."""

    config: NodeConfig

    @property
    def kind(self) -> str:
        """Event kind tag (``"join"``)."""
        return "join"

    @property
    def node_id(self) -> NodeId:
        """Id of the joining node."""
        return self.config.node_id


@dataclass(frozen=True, slots=True)
class LeaveEvent:
    """A node disconnects from the network."""

    node_id: NodeId

    @property
    def kind(self) -> str:
        """Event kind tag (``"leave"``)."""
        return "leave"


@dataclass(frozen=True, slots=True)
class MoveEvent:
    """A node relocates to ``(x, y)`` in one discrete step."""

    node_id: NodeId
    x: float
    y: float

    @property
    def kind(self) -> str:
        """Event kind tag (``"move"``)."""
        return "move"


@dataclass(frozen=True, slots=True)
class PowerChangeEvent:
    """A node sets its transmission range to ``new_range``.

    Whether this is a power *increase* or *decrease* depends on the
    node's current range and is classified when the event is applied.
    """

    node_id: NodeId
    new_range: float

    @property
    def kind(self) -> str:
        """Event kind tag (``"power"``)."""
        return "power"


Event = Union[JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent]
