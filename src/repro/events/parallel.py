"""Concurrent execution of far-apart joins (Theorem 4.1.10).

"The algorithm supports simultaneous additions of new nodes when any
two of them are at least 5 hops apart."  The batch executor makes that
executable: all joins of a batch are inserted, each ``RecodeOnJoin``
plan is computed against the *pre-batch* assignment (as concurrent
initiators would), and only then are all plans committed together.  A
cross-plan consistency check (overlapping ``V1`` sets) rejects batches
that were not actually safe, independent of the hop heuristic.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.coloring.assignment import CodeAssignment
from repro.errors import InvalidEventError
from repro.events.base import JoinEvent
from repro.strategies.base import RecodeResult
from repro.strategies.minim.join import plan_local_matching_recode
from repro.topology.digraph import AdHocDigraph
from repro.types import Color, NodeId

__all__ = ["BatchJoinOutcome", "execute_join_batch"]


@dataclass(frozen=True)
class BatchJoinOutcome:
    """Result of committing one concurrent join batch."""

    results: list[RecodeResult]
    changes: dict[NodeId, tuple[Color | None, Color]]

    @property
    def recode_count(self) -> int:
        """Total recodings across the batch."""
        return len(self.changes)


def execute_join_batch(
    graph: AdHocDigraph,
    assignment: CodeAssignment,
    batch: Sequence[JoinEvent],
    *,
    old_color_weight: int = 3,
    fresh_color_weight: int = 1,
) -> BatchJoinOutcome:
    """Insert and recode all joins of ``batch`` concurrently.

    Mutates ``graph`` and ``assignment``.  Raises
    :class:`InvalidEventError` if two plans touch a common node (the
    batch was not independent — e.g. the >= 5 hops precondition from
    :func:`repro.events.sequence.plan_parallel_join_batches` was not
    planned first).
    """
    # Phase 1: all joiners appear in the topology.
    for ev in batch:
        graph.add_node(ev.config)

    # Phase 2: every initiator plans against the pre-batch assignment.
    plans = []
    claimed: dict[NodeId, NodeId] = {}
    for ev in batch:
        plan = plan_local_matching_recode(
            graph,
            assignment,
            ev.config.node_id,
            old_color_weight=old_color_weight,
            fresh_color_weight=fresh_color_weight,
        )
        for touched in plan.v1:
            owner = claimed.get(touched)
            if owner is not None:
                raise InvalidEventError(
                    f"concurrent joins {owner} and {ev.config.node_id} both "
                    f"recode node {touched}; batch is not independent"
                )
            claimed[touched] = ev.config.node_id
        plans.append(plan)

    # Phase 3: commit all plans.
    changes: dict[NodeId, tuple[Color | None, Color]] = {}
    results = []
    for ev, plan in zip(batch, plans):
        for node, (old, new) in plan.changes.items():
            assignment.assign(node, new)
            changes[node] = (old, new)
        results.append(
            RecodeResult("join", ev.config.node_id, plan.changes, messages=plan.messages)
        )
    return BatchJoinOutcome(results=results, changes=changes)
