"""Network reconfiguration events (paper section 2).

Nodes can join, leave, move, and raise or lower their transmission
range.  Events are immutable value objects applied through
:class:`repro.sim.network.AdHocNetwork`.
"""

from repro.events.base import (
    Event,
    JoinEvent,
    LeaveEvent,
    MoveEvent,
    PowerChangeEvent,
)
from repro.events.sequence import EventLog, plan_parallel_join_batches

__all__ = [
    "Event",
    "EventLog",
    "JoinEvent",
    "LeaveEvent",
    "MoveEvent",
    "PowerChangeEvent",
    "plan_parallel_join_batches",
]
