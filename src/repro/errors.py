"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid parameters.

    Examples: a non-positive transmission range, a duplicate node
    identifier, an empty parameter sweep.
    """


class UnknownNodeError(ReproError, KeyError):
    """An operation referenced a node identifier not present in the graph."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.node_id = node_id

    def __str__(self) -> str:  # KeyError quotes its payload; we want prose.
        return f"unknown node id {self.node_id!r}"


class DuplicateNodeError(ReproError):
    """A join attempted to reuse an identifier already in the network."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node id {node_id!r} already present in the network")
        self.node_id = node_id


class ConnectivityError(ReproError):
    """The Minimal Connectivity assumption (paper section 2) was violated.

    A node may only take a configuration in which it has at least one
    in-neighbor and at least one out-neighbor.
    """


class ColoringConflictError(ReproError):
    """A code assignment violates CA1 (primary) or CA2 (hidden) somewhere."""


class UncoloredNodeError(ReproError, KeyError):
    """A node present in the topology has no assigned code."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.node_id = node_id

    def __str__(self) -> str:
        return f"node {self.node_id!r} has no assigned code"


class MatchingError(ReproError):
    """The bipartite matching layer was used inconsistently.

    Examples: negative/zero weights where positive ones are required, or a
    malformed bipartite graph.
    """


class InvalidEventError(ReproError):
    """An event cannot be applied to the current network state.

    Examples: a power *increase* event whose new range is smaller than the
    current one when strict direction checking is requested, or a move for
    a node that does not exist.
    """


class ProtocolError(ReproError):
    """A distributed protocol reached an inconsistent local state."""


class CodebookError(ReproError):
    """The CDMA codebook cannot accommodate a requested code index."""
