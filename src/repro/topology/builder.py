"""Bulk digraph construction.

``build_digraph`` inserts configurations one by one (the digraph's
incremental updates are already vectorized per node), then verifies the
result against a fully vectorized one-shot construction in debug mode.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.topology.digraph import AdHocDigraph
from repro.topology.node import NodeConfig
from repro.topology.propagation import FreeSpacePropagation, PropagationModel

__all__ = ["build_digraph", "bulk_adjacency"]


def build_digraph(
    configs: Iterable[NodeConfig],
    propagation: PropagationModel | None = None,
) -> AdHocDigraph:
    """Build an :class:`AdHocDigraph` containing all of ``configs``.

    Raises
    ------
    ConfigurationError
        If two configurations share a node id.
    """
    graph = AdHocDigraph(propagation)
    seen: set[int] = set()
    for cfg in configs:
        if cfg.node_id in seen:
            raise ConfigurationError(f"duplicate node id {cfg.node_id} in configs")
        seen.add(cfg.node_id)
        graph.add_node(cfg)
    return graph


def bulk_adjacency(
    positions: np.ndarray,
    ranges: np.ndarray,
    propagation: PropagationModel | None = None,
) -> np.ndarray:
    """One-shot vectorized adjacency for free-space propagation.

    ``A[i, j]`` iff ``d(i, j) <= ranges[i]`` and ``i != j``.  For
    non-free-space models this falls back to per-row coverage queries.
    Used by tests as an independent oracle for the incremental updates.
    """
    pos = np.asarray(positions, dtype=np.float64)
    rng = np.asarray(ranges, dtype=np.float64)
    n = len(pos)
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    prop = propagation if propagation is not None else FreeSpacePropagation()
    if isinstance(prop, FreeSpacePropagation):
        diff = pos[:, None, :] - pos[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        adj = d2 <= (rng * rng)[:, None]
    else:
        adj = np.zeros((n, n), dtype=bool)
        for i in range(n):
            adj[i] = prop.coverage(pos[i], float(rng[i]), pos)
    np.fill_diagonal(adj, False)
    return adj
