"""Topology substrate: the power-controlled ad-hoc network model.

The paper (section 2) models the network as a dynamic digraph
``G = (V, E)`` whose vertices carry a position and a maximum transmission
range, with an edge ``vi -> vj`` iff ``d(vi, vj) <= r_i``.  This package
implements that model:

* :class:`~repro.topology.node.NodeConfig` — a node's configuration.
* :class:`~repro.topology.digraph.AdHocDigraph` — the dynamic digraph with
  incremental join / leave / move / set-range updates.
* :mod:`~repro.topology.propagation` — free-space and obstructed
  propagation models (the paper's non-free-space generalization).
* :mod:`~repro.topology.conflicts` — the CA1 ∪ CA2 conflict graph.
* :mod:`~repro.topology.neighborhoods` — the ``1n/2n/3n/4n`` partition of
  Fig 2 and k-hop neighborhoods.
* :mod:`~repro.topology.connectivity` — the Minimal Connectivity
  assumption and reachability helpers.
"""

from repro.topology.builder import build_digraph
from repro.topology.conflicts import (
    are_conflicting,
    conflict_adjacency,
    conflict_degree,
    conflict_matrix,
    conflict_neighbors,
)
from repro.topology.connectivity import (
    has_minimal_connectivity,
    undirected_hop_distances,
    weakly_connected_components,
)
from repro.topology.digraph import AdHocDigraph
from repro.topology.neighborhoods import JoinPartition, join_partition, k_hop_neighbors
from repro.topology.node import NodeConfig
from repro.topology.propagation import (
    FreeSpacePropagation,
    ObstructedPropagation,
    PropagationModel,
)

__all__ = [
    "AdHocDigraph",
    "FreeSpacePropagation",
    "JoinPartition",
    "NodeConfig",
    "ObstructedPropagation",
    "PropagationModel",
    "are_conflicting",
    "build_digraph",
    "conflict_adjacency",
    "conflict_degree",
    "conflict_matrix",
    "conflict_neighbors",
    "has_minimal_connectivity",
    "join_partition",
    "k_hop_neighbors",
    "undirected_hop_distances",
    "weakly_connected_components",
]
