"""Explicit-edge digraph with the same query interface as AdHocDigraph.

The paper's worked examples (Figs 1, 4, 6, 7, 9) are given as digraphs,
not coordinate sets.  The recoding strategies only query graph
*structure* (never geometry), so they accept any object satisfying
:class:`DigraphLike`; ``StaticDigraph`` is the explicit-edge
implementation used by those examples and by graph-level tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import DuplicateNodeError, UnknownNodeError
from repro.types import NodeId

__all__ = ["DigraphLike", "StaticDigraph"]


@runtime_checkable
class DigraphLike(Protocol):
    """Structural queries the recoding strategies rely on."""

    def node_ids(self) -> list[NodeId]:
        """All node ids, ascending."""
        ...  # pragma: no cover - protocol

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        ...  # pragma: no cover - protocol

    def in_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Sources of edges into ``node_id`` (sorted)."""
        ...  # pragma: no cover - protocol

    def out_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Targets of edges out of ``node_id`` (sorted)."""
        ...  # pragma: no cover - protocol

    def adjacency(self) -> tuple[list[NodeId], np.ndarray]:
        """``(ids, boolean adjacency)`` with ids ascending."""
        ...  # pragma: no cover - protocol

    def undirected_hop_distances(self, src: NodeId) -> dict[NodeId, int]:
        """BFS hop counts from ``src`` over the undirected support."""
        ...  # pragma: no cover - protocol


class StaticDigraph:
    """A digraph over explicit node ids and directed edges."""

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[tuple[NodeId, NodeId]] = (),
    ) -> None:
        self._succ: dict[NodeId, set[NodeId]] = {}
        self._pred: dict[NodeId, set[NodeId]] = {}
        for v in nodes:
            self.add_node(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId) -> None:
        """Add an isolated node; duplicate ids raise."""
        if node_id in self._succ:
            raise DuplicateNodeError(node_id)
        self._succ[node_id] = set()
        self._pred[node_id] = set()

    def add_edge(self, src: NodeId, dst: NodeId) -> None:
        """Add a directed edge, creating endpoints as needed."""
        if src == dst:
            raise ValueError("self-loops are not allowed")
        for v in (src, dst):
            if v not in self._succ:
                self.add_node(v)
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def remove_edge(self, src: NodeId, dst: NodeId) -> None:
        """Remove a directed edge; missing edges raise ``KeyError``."""
        self._succ[src].remove(dst)
        self._pred[dst].remove(src)

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node and all incident edges."""
        if node_id not in self._succ:
            raise UnknownNodeError(node_id)
        for dst in self._succ.pop(node_id):
            self._pred[dst].discard(node_id)
        for src in self._pred.pop(node_id):
            self._succ[src].discard(node_id)

    # ------------------------------------------------------------------
    # DigraphLike interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._succ

    def node_ids(self) -> list[NodeId]:
        """All node ids, ascending."""
        return sorted(self._succ)

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        """Whether ``src -> dst`` exists."""
        if src not in self._succ:
            raise UnknownNodeError(src)
        if dst not in self._succ:
            raise UnknownNodeError(dst)
        return dst in self._succ[src]

    def in_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Sources of edges into ``node_id`` (sorted)."""
        try:
            return sorted(self._pred[node_id])
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def out_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Targets of edges out of ``node_id`` (sorted)."""
        try:
            return sorted(self._succ[node_id])
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """All directed edges (sorted)."""
        for u in sorted(self._succ):
            for v in sorted(self._succ[u]):
                yield (u, v)

    def edge_count(self) -> int:
        """Number of directed edges."""
        return sum(len(s) for s in self._succ.values())

    def adjacency(self) -> tuple[list[NodeId], np.ndarray]:
        """``(ids, A)`` with ids ascending; ``A`` boolean adjacency."""
        ids = self.node_ids()
        index = {v: i for i, v in enumerate(ids)}
        adj = np.zeros((len(ids), len(ids)), dtype=bool)
        for u, succ in self._succ.items():
            i = index[u]
            for v in succ:
                adj[i, index[v]] = True
        return ids, adj

    def conflict_neighbor_ids(self, node_id: NodeId) -> set[NodeId]:
        """Nodes conflicting with ``node_id`` under CA1 ∪ CA2."""
        if node_id not in self._succ:
            raise UnknownNodeError(node_id)
        out: set[NodeId] = set(self._succ[node_id]) | set(self._pred[node_id])
        for receiver in self._succ[node_id]:
            out |= self._pred[receiver]
        out.discard(node_id)
        return out

    def undirected_hop_distances(self, src: NodeId) -> dict[NodeId, int]:
        """BFS hop counts over the undirected support from ``src``."""
        if src not in self._succ:
            raise UnknownNodeError(src)
        dist = {src: 0}
        frontier = [src]
        hops = 0
        while frontier:
            hops += 1
            nxt: list[NodeId] = []
            for u in frontier:
                for v in self._succ[u] | self._pred[u]:
                    if v not in dist:
                        dist[v] = hops
                        nxt.append(v)
            frontier = nxt
        return dist

    def copy(self) -> "StaticDigraph":
        """Independent copy."""
        g = StaticDigraph()
        g._succ = {v: set(s) for v, s in self._succ.items()}
        g._pred = {v: set(p) for v, p in self._pred.items()}
        return g
