"""Connectivity predicates.

The paper's **Minimal Connectivity** assumption (section 2): a node may
only take a configuration in which some node is within its transmission
range (an out-neighbor exists) and it is within some node's transmission
range (an in-neighbor exists).
"""

from __future__ import annotations

from repro.topology.digraph import AdHocDigraph
from repro.types import NodeId

__all__ = [
    "has_minimal_connectivity",
    "undirected_hop_distances",
    "weakly_connected_components",
]


def has_minimal_connectivity(graph: AdHocDigraph, node_id: NodeId) -> bool:
    """Whether ``node_id`` satisfies the Minimal Connectivity assumption.

    True iff the node has at least one in-neighbor and at least one
    out-neighbor in its current configuration.
    """
    return graph.in_degree(node_id) > 0 and graph.out_degree(node_id) > 0


def undirected_hop_distances(graph: AdHocDigraph, src: NodeId) -> dict[NodeId, int]:
    """Hop distances from ``src`` over the undirected support of the graph.

    Thin alias for :meth:`AdHocDigraph.undirected_hop_distances`, exposed
    here so callers needing only connectivity semantics do not reach into
    the digraph class.
    """
    return graph.undirected_hop_distances(src)


def weakly_connected_components(graph: AdHocDigraph) -> list[set[NodeId]]:
    """Connected components of the undirected support, largest first.

    Ties between equal-sized components break on the smallest member id
    so the output is deterministic.
    """
    remaining = set(graph.node_ids())
    components: list[set[NodeId]] = []
    while remaining:
        seed = min(remaining)
        comp = set(graph.undirected_hop_distances(seed))
        comp.add(seed)
        comp &= remaining
        components.append(comp)
        remaining -= comp
    components.sort(key=lambda c: (-len(c), min(c)))
    return components
