"""Neighborhood structure around a (re)configuring node.

Implements the ``1n / 2n / 3n / 4n`` partition of Fig 2 in the paper:
when node ``n`` is present in the digraph, the remaining nodes split into

* ``1n`` — in-neighbors only (they reach ``n``; ``n`` does not reach them),
* ``2n`` — bidirectional neighbors,
* ``3n`` — out-neighbors only (``n`` reaches them; they do not reach ``n``),
* ``4n`` — no edges with ``n`` in either direction.

The recoding strategies operate on ``V1 = 1n ∪ 2n ∪ {n}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.digraph import AdHocDigraph
from repro.types import NodeId

__all__ = ["JoinPartition", "join_partition", "k_hop_neighbors", "vicinity"]


@dataclass(frozen=True)
class JoinPartition:
    """The Fig-2 partition of the network around a node ``n``."""

    node: NodeId
    one: frozenset[NodeId]
    two: frozenset[NodeId]
    three: frozenset[NodeId]
    four: frozenset[NodeId]

    @property
    def v1(self) -> frozenset[NodeId]:
        """``V1 = 1n ∪ 2n ∪ {n}`` — the recoding candidate set."""
        return self.one | self.two | {self.node}

    @property
    def in_neighbors(self) -> frozenset[NodeId]:
        """All nodes with an edge into ``n`` (``1n ∪ 2n``)."""
        return self.one | self.two

    @property
    def out_neighbors(self) -> frozenset[NodeId]:
        """All nodes ``n`` has an edge to (``2n ∪ 3n``)."""
        return self.two | self.three


def join_partition(graph: AdHocDigraph, node_id: NodeId) -> JoinPartition:
    """Partition all other nodes into ``1n/2n/3n/4n`` relative to ``node_id``.

    ``node_id`` must already be present in ``graph`` (for a join, call
    after inserting the node; for a move, after relocating it).
    """
    into = set(graph.in_neighbors(node_id))
    outof = set(graph.out_neighbors(node_id))
    both = into & outof
    one = into - both
    three = outof - both
    everyone = set(graph.node_ids()) - {node_id}
    four = everyone - into - outof
    return JoinPartition(
        node=node_id,
        one=frozenset(one),
        two=frozenset(both),
        three=frozenset(three),
        four=frozenset(four),
    )


def k_hop_neighbors(graph: AdHocDigraph, node_id: NodeId, k: int) -> set[NodeId]:
    """Nodes within ``k`` undirected hops of ``node_id`` (excluding it).

    The CP baseline constrains color choices by the colors "taken by any
    of its 1 hop and 2 hop neighbors"; this is that set with ``k = 2``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    dist = graph.undirected_hop_distances(node_id)
    return {v for v, d in dist.items() if 0 < d <= k}


def vicinity(graph: AdHocDigraph, node_id: NodeId, k: int = 2) -> set[NodeId]:
    """``{node_id} ∪ k_hop_neighbors`` — the node's k-hop vicinity."""
    out = k_hop_neighbors(graph, node_id, k)
    out.add(node_id)
    return out
