"""Node configuration value type.

A node's *configuration* (paper section 2) is its position ``(x, y)``
plus its maximum transmission power range ``r``.  Configurations are
immutable; reconfiguration events produce new instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.types import NodeId

__all__ = ["NodeConfig"]


@dataclass(frozen=True, slots=True)
class NodeConfig:
    """A mobile node: identifier, 2-D position and transmission range.

    Attributes
    ----------
    node_id:
        Integer identifier.  The CP baseline breaks ties by identifier,
        so ids must be unique network-wide.
    x, y:
        Position coordinates.
    tx_range:
        Maximum transmission power range ``r_i``: every node within this
        (closed) distance hears, or is interfered with by, this node's
        transmissions.
    """

    node_id: NodeId
    x: float
    y: float
    tx_range: float

    def __post_init__(self) -> None:
        if not isinstance(self.node_id, int) or isinstance(self.node_id, bool):
            raise ConfigurationError(f"node_id must be an int, got {self.node_id!r}")
        for name, value in (("x", self.x), ("y", self.y), ("tx_range", self.tx_range)):
            if not math.isfinite(value):
                raise ConfigurationError(f"{name} must be finite, got {value!r}")
        if self.tx_range <= 0:
            raise ConfigurationError(f"tx_range must be positive, got {self.tx_range}")

    @property
    def position(self) -> tuple[float, float]:
        """The node's ``(x, y)`` position."""
        return (self.x, self.y)

    def moved_to(self, x: float, y: float) -> "NodeConfig":
        """A copy of this configuration at a new position."""
        return replace(self, x=float(x), y=float(y))

    def with_range(self, tx_range: float) -> "NodeConfig":
        """A copy of this configuration with a new transmission range."""
        return replace(self, tx_range=float(tx_range))

    def distance_to(self, other: "NodeConfig") -> float:
        """Euclidean distance between this node and ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def reaches(self, other: "NodeConfig") -> bool:
        """Free-space edge rule: ``d(self, other) <= self.tx_range``.

        Self-loops are excluded (a node trivially "reaches" itself but the
        digraph has no self edges).
        """
        if self.node_id == other.node_id:
            return False
        return self.distance_to(other) <= self.tx_range
