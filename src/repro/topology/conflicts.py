"""The CA1 ∪ CA2 conflict graph.

Two nodes *conflict* — must be assigned distinct codes — iff

* **CA1**: there is an edge between them in either direction, or
* **CA2**: they have a common out-neighbor (both transmit into the same
  receiver).

A code assignment satisfies the TOCA constraints exactly when it is a
proper coloring of this (undirected) conflict graph.  The dense
construction is a pure NumPy expression, ``A | Aᵀ | (A·Aᵀ > 0)``.
"""

from __future__ import annotations

import numpy as np

from repro.topology.digraph import AdHocDigraph
from repro.types import NodeId

__all__ = [
    "are_conflicting",
    "conflict_adjacency",
    "conflict_degree",
    "conflict_matrix",
    "conflict_neighbors",
    "conflict_neighbors_of_mask",
]


def conflict_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Dense symmetric conflict matrix from a boolean adjacency matrix.

    ``C[i, j]`` is True iff nodes at indices ``i`` and ``j`` conflict.
    The diagonal is False.

    The common-out-neighbor term uses an integer matmul (``int32``
    accumulator) to avoid bool-matmul pitfalls and uint8 overflow.
    """
    a = np.asarray(adjacency, dtype=bool)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {a.shape}")
    ai = a.astype(np.int32)
    common_out = (ai @ ai.T) > 0
    conflicts = a | a.T | common_out
    np.fill_diagonal(conflicts, False)
    return conflicts


def conflict_adjacency(graph) -> tuple[list[NodeId], np.ndarray]:
    """``(ids, C)`` — the full conflict matrix of ``graph``, ids ascending.

    Delegates to the graph's native ``conflict_adjacency`` when available
    (:class:`AdHocDigraph` assembles it from incrementally maintained
    CA2 counters without a matmul); otherwise derives it densely from
    the exported adjacency matrix.  Whole-network consumers — the BBB
    recolor, coloring heuristics, clique bounds — should call this
    instead of ``conflict_matrix(graph.adjacency()[1])``.
    """
    native = getattr(graph, "conflict_adjacency", None)
    if native is not None:
        return native()
    ids, adj = graph.adjacency()
    return ids, conflict_matrix(adj)


def conflict_neighbors(graph, node_id: NodeId) -> set[NodeId]:
    """All nodes that conflict with ``node_id`` in ``graph``.

    Delegates to the graph's native ``conflict_neighbor_ids`` fast path
    when available (both :class:`AdHocDigraph` and ``StaticDigraph``
    provide one); otherwise falls back to a masked scan of the exported
    adjacency matrix.
    """
    native = getattr(graph, "conflict_neighbor_ids", None)
    if native is not None:
        return native(node_id)
    ids, adj = graph.adjacency()
    idx = {v: k for k, v in enumerate(ids)}
    i = idx.get(node_id)
    if i is None:
        from repro.errors import UnknownNodeError

        raise UnknownNodeError(node_id)
    mask = conflict_neighbors_of_mask(adj, i)
    return {ids[j] for j in np.flatnonzero(mask)}


def conflict_neighbors_of_mask(adjacency: np.ndarray, i: int) -> np.ndarray:
    """Boolean mask of indices conflicting with index ``i``.

    Vectorized: ``A[i] | A[:, i] | any_j(A[:, j] for j in out(i))``.
    """
    a = np.asarray(adjacency, dtype=bool)
    out_targets = a[i]
    if out_targets.any():
        common_out = a[:, out_targets].any(axis=1)
    else:
        common_out = np.zeros(a.shape[0], dtype=bool)
    mask = a[i] | a[:, i] | common_out
    mask[i] = False
    return mask


def are_conflicting(graph: AdHocDigraph, u: NodeId, v: NodeId) -> bool:
    """Whether ``u`` and ``v`` conflict (CA1 or CA2) in ``graph``."""
    if u == v:
        return False
    if graph.has_edge(u, v) or graph.has_edge(v, u):
        return True
    out_u = set(graph.out_neighbors(u))
    if not out_u:
        return False
    return any(w in out_u for w in graph.out_neighbors(v))


def conflict_degree(graph: AdHocDigraph) -> dict[NodeId, int]:
    """Conflict-graph degree of every node (used by coloring heuristics)."""
    ids, adj = graph.adjacency()
    c = conflict_matrix(adj)
    degs = c.sum(axis=1)
    return {ids[i]: int(degs[i]) for i in range(len(ids))}
