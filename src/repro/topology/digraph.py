"""Dynamic ad-hoc digraph with incremental reconfiguration updates.

``AdHocDigraph`` maintains the directed graph induced by node
configurations under a propagation model.  It is the single source of
truth for topology; strategies and simulators query it, never raw arrays.

Implementation notes (per the hpc-parallel guides):

* Positions, ranges and the boolean adjacency matrix live in dense NumPy
  arrays with amortized-doubling capacity so joins are O(N) not O(N^2).
* Removal swap-deletes the last slot into the vacated one, keeping the
  active block contiguous (cache-friendly row/column operations).
* All neighbor queries return id lists sorted ascending for determinism.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import DuplicateNodeError, UnknownNodeError
from repro.topology.node import NodeConfig
from repro.topology.propagation import FreeSpacePropagation, PropagationModel
from repro.types import NodeId

__all__ = ["AdHocDigraph"]

_INITIAL_CAPACITY = 16


class AdHocDigraph:
    """The power-controlled ad-hoc network digraph (paper section 2).

    Edge rule: ``u -> v`` iff the propagation model says ``u``'s
    transmission covers ``v`` (free space: ``d(u, v) <= r_u``).

    Parameters
    ----------
    propagation:
        Propagation model; defaults to the paper's free-space disc.
    """

    def __init__(self, propagation: PropagationModel | None = None) -> None:
        self._prop: PropagationModel = propagation if propagation is not None else FreeSpacePropagation()
        cap = _INITIAL_CAPACITY
        self._pos = np.zeros((cap, 2), dtype=np.float64)
        self._range = np.zeros(cap, dtype=np.float64)
        self._adj = np.zeros((cap, cap), dtype=bool)
        self._ids: list[NodeId] = []  # index -> id, for the active block
        self._index: dict[NodeId, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def propagation(self) -> PropagationModel:
        """The propagation model edges are computed under."""
        return self._prop

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._index

    def node_ids(self) -> list[NodeId]:
        """All node ids, ascending."""
        return sorted(self._index)

    def config(self, node_id: NodeId) -> NodeConfig:
        """The current configuration of ``node_id``."""
        i = self._idx(node_id)
        return NodeConfig(node_id, float(self._pos[i, 0]), float(self._pos[i, 1]), float(self._range[i]))

    def configs(self) -> list[NodeConfig]:
        """All node configurations, ascending by id."""
        return [self.config(v) for v in self.node_ids()]

    def position_of(self, node_id: NodeId) -> tuple[float, float]:
        """The ``(x, y)`` position of ``node_id``."""
        i = self._idx(node_id)
        return (float(self._pos[i, 0]), float(self._pos[i, 1]))

    def range_of(self, node_id: NodeId) -> float:
        """The transmission range of ``node_id``."""
        return float(self._range[self._idx(node_id)])

    # ------------------------------------------------------------------
    # Edge queries
    # ------------------------------------------------------------------
    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        return bool(self._adj[self._idx(src), self._idx(dst)])

    def out_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Nodes within ``node_id``'s transmission range (sorted)."""
        i = self._idx(node_id)
        n = len(self._ids)
        return sorted(self._ids[j] for j in np.flatnonzero(self._adj[i, :n]))

    def in_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Nodes whose transmissions reach ``node_id`` (sorted)."""
        i = self._idx(node_id)
        n = len(self._ids)
        return sorted(self._ids[j] for j in np.flatnonzero(self._adj[:n, i]))

    def undirected_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Union of in- and out-neighbors (sorted)."""
        i = self._idx(node_id)
        n = len(self._ids)
        mask = self._adj[i, :n] | self._adj[:n, i]
        return sorted(self._ids[j] for j in np.flatnonzero(mask))

    def out_degree(self, node_id: NodeId) -> int:
        """Number of out-neighbors."""
        i = self._idx(node_id)
        return int(self._adj[i, : len(self._ids)].sum())

    def in_degree(self, node_id: NodeId) -> int:
        """Number of in-neighbors."""
        i = self._idx(node_id)
        return int(self._adj[: len(self._ids), i].sum())

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate all directed edges as ``(src, dst)`` id pairs."""
        n = len(self._ids)
        rows, cols = np.nonzero(self._adj[:n, :n])
        for r, c in zip(rows.tolist(), cols.tolist()):
            yield (self._ids[r], self._ids[c])

    def edge_count(self) -> int:
        """Total number of directed edges."""
        n = len(self._ids)
        return int(self._adj[:n, :n].sum())

    def adjacency(self) -> tuple[list[NodeId], np.ndarray]:
        """``(ids, A)`` where ``A[i, j]`` == edge ``ids[i] -> ids[j]``.

        ``ids`` is ascending; ``A`` is a copy safe to mutate.  This is the
        entry point for vectorized consumers (conflict-matrix builds,
        whole-network recoloring).
        """
        order = sorted(range(len(self._ids)), key=lambda j: self._ids[j])
        ids = [self._ids[j] for j in order]
        n = len(self._ids)
        block = self._adj[:n, :n]
        perm = np.asarray(order, dtype=np.intp)
        return ids, block[np.ix_(perm, perm)].copy()

    def positions_and_ranges(self) -> tuple[list[NodeId], np.ndarray, np.ndarray]:
        """``(ids, positions, ranges)`` aligned arrays, ids ascending."""
        order = sorted(range(len(self._ids)), key=lambda j: self._ids[j])
        ids = [self._ids[j] for j in order]
        perm = np.asarray(order, dtype=np.intp)
        return ids, self._pos[perm].copy(), self._range[perm].copy()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, cfg: NodeConfig) -> None:
        """Join ``cfg`` to the network, creating its in/out edges."""
        if cfg.node_id in self._index:
            raise DuplicateNodeError(cfg.node_id)
        n = len(self._ids)
        self._ensure_capacity(n + 1)
        self._pos[n] = (cfg.x, cfg.y)
        self._range[n] = cfg.tx_range
        self._ids.append(cfg.node_id)
        self._index[cfg.node_id] = n
        self._recompute_row(n)
        self._recompute_col(n)

    def remove_node(self, node_id: NodeId) -> NodeConfig:
        """Remove ``node_id`` and all incident edges; returns its config."""
        cfg = self.config(node_id)
        i = self._index.pop(node_id)
        last = len(self._ids) - 1
        if i != last:
            # Swap-delete: move the last slot into i.
            self._pos[i] = self._pos[last]
            self._range[i] = self._range[last]
            self._adj[i, : last + 1] = self._adj[last, : last + 1]
            self._adj[: last + 1, i] = self._adj[: last + 1, last]
            self._adj[i, i] = False
            moved = self._ids[last]
            self._ids[i] = moved
            self._index[moved] = i
        self._ids.pop()
        self._adj[last, : last + 1] = False
        self._adj[: last + 1, last] = False
        return cfg

    def move_node(self, node_id: NodeId, x: float, y: float) -> None:
        """Relocate ``node_id``; recomputes its out- and in-edges."""
        i = self._idx(node_id)
        self._pos[i] = (float(x), float(y))
        self._recompute_row(i)
        self._recompute_col(i)

    def set_range(self, node_id: NodeId, tx_range: float) -> None:
        """Change ``node_id``'s transmission range; recomputes out-edges.

        In-edges are unaffected: whether *others* reach this node depends
        only on their ranges.
        """
        if tx_range <= 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"tx_range must be positive, got {tx_range}")
        i = self._idx(node_id)
        self._range[i] = float(tx_range)
        self._recompute_row(i)

    def copy(self) -> "AdHocDigraph":
        """Deep copy (same propagation model object, copied arrays)."""
        g = AdHocDigraph.__new__(AdHocDigraph)
        g._prop = self._prop
        g._pos = self._pos.copy()
        g._range = self._range.copy()
        g._adj = self._adj.copy()
        g._ids = list(self._ids)
        g._index = dict(self._index)
        return g

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------
    def conflict_neighbor_ids(self, node_id: NodeId) -> set[NodeId]:
        """Nodes conflicting with ``node_id`` under CA1 ∪ CA2.

        CA1: an edge in either direction; CA2: a common out-neighbor.
        Computed on the internal arrays without copying the adjacency
        matrix — this is the hot query of every recoding strategy.
        """
        i = self._idx(node_id)
        n = len(self._ids)
        a = self._adj[:n, :n]
        mask = a[i] | a[:, i]
        out = a[i]
        if out.any():
            mask = mask | a[:, out].any(axis=1)
        mask[i] = False
        return {self._ids[j] for j in np.flatnonzero(mask)}

    def undirected_hop_distances(self, src: NodeId) -> dict[NodeId, int]:
        """BFS hop counts from ``src`` over the undirected support.

        Unreachable nodes are absent from the result.  Used for the
        k-hop vicinities of the CP strategy and for the >= 5 hops apart
        condition of parallel joins (Theorem 4.1.10).
        """
        n = len(self._ids)
        i = self._idx(src)
        undirected = self._adj[:n, :n] | self._adj[:n, :n].T
        dist = np.full(n, -1, dtype=np.int64)
        dist[i] = 0
        frontier = np.zeros(n, dtype=bool)
        frontier[i] = True
        hops = 0
        while frontier.any():
            hops += 1
            reached = undirected[frontier].any(axis=0)
            fresh = reached & (dist < 0)
            dist[fresh] = hops
            frontier = fresh
        return {self._ids[j]: int(dist[j]) for j in range(n) if dist[j] >= 0}

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` (test/example interop only)."""
        import networkx as nx

        g = nx.DiGraph()
        for cfg in self.configs():
            g.add_node(cfg.node_id, x=cfg.x, y=cfg.y, tx_range=cfg.tx_range)
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _idx(self, node_id: NodeId) -> int:
        try:
            return self._index[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self._range)
        if needed <= cap:
            return
        new_cap = cap
        while new_cap < needed:
            new_cap *= 2
        pos = np.zeros((new_cap, 2), dtype=np.float64)
        rng = np.zeros(new_cap, dtype=np.float64)
        adj = np.zeros((new_cap, new_cap), dtype=bool)
        n = len(self._ids)
        pos[:n] = self._pos[:n]
        rng[:n] = self._range[:n]
        adj[:n, :n] = self._adj[:n, :n]
        self._pos, self._range, self._adj = pos, rng, adj

    def _recompute_row(self, i: int) -> None:
        """Out-edges of slot ``i``: which targets does it cover?"""
        n = len(self._ids)
        mask = self._prop.coverage(self._pos[i], float(self._range[i]), self._pos[:n])
        mask[i] = False
        self._adj[i, :n] = mask

    def _recompute_col(self, i: int) -> None:
        """In-edges of slot ``i``: which sources cover it?"""
        n = len(self._ids)
        mask = self._prop.covered_by(self._pos[i], self._pos[:n], self._range[:n])
        mask[i] = False
        self._adj[:n, i] = mask
