"""Dynamic ad-hoc digraph with incremental reconfiguration updates.

``AdHocDigraph`` maintains the directed graph induced by node
configurations under a propagation model.  It is the single source of
truth for topology; strategies and simulators query it, never raw arrays.

Implementation notes (per the hpc-parallel guides):

* Positions, ranges and the boolean adjacency matrix live in dense NumPy
  arrays with amortized-doubling capacity so joins are O(N) not O(N^2).
* Removal swap-deletes the last slot into the vacated one, keeping the
  active block contiguous (cache-friendly row/column operations).
* All neighbor queries return id lists sorted ascending for determinism.

Four conflict-maintenance cores exist, selected at construction (or by
the ``REPRO_DENSE`` / ``REPRO_ARRAY`` / ``REPRO_SPARSE`` environment
variables):

* **Array (default).**  The array-native core: a :class:`SlotGridIndex`
  buckets node *slots* (row indices of the flat arrays) per grid cell,
  so a candidate query returns a numpy index array with no id→slot
  translation; each join/move recomputes out- and in-edges from **one**
  candidate fetch and **one** pairwise distance pass
  (:func:`repro.topology.propagation.pairwise_masks`); and the CA1/CA2
  delta update is batched — the CA2 witness counters ``C2[u, v] =
  |out(u) ∩ out(v)|`` are adjusted only for the in-neighbor pairs that
  actually changed, via broadcast index arithmetic.  Disable with
  ``REPRO_ARRAY=0`` (or ``array_core=False``).
* **Sparse (``REPRO_SPARSE=1`` or ``sparse_core=True``).**  The
  large-N core: adjacency lives in CSR-style per-slot rows (sorted
  slot-index arrays with amortized-doubling growth, one out-row and one
  in-row per node) and the CA2 witness counters in per-slot dicts keyed
  by the *touched* columns only, so memory is O(N + E) instead of the
  dense cores' O(N²) blocks and an edge flip updates
  ``deg(u)·deg(v)``-bounded counter entries instead of a full ``(cap,)``
  row.  Candidate gathering streams per-cell slot blocks from the grid
  (:meth:`SlotGridIndex.iter_candidate_blocks`) — no query ever
  materializes an N-wide mask.  An array-core graph constructed with
  every knob at its default **auto-promotes** to sparse when the
  population reaches ``_SPARSE_AUTO_MIN`` nodes; pass
  ``sparse_core=False`` (or ``REPRO_SPARSE=0``) to pin the dense-block
  array core.  The sparse core additionally answers
  :meth:`AdHocDigraph.apply_round` with true multi-event batching.
* **Dict (``REPRO_ARRAY=0``).**  The object-level incremental core: a
  :class:`UniformGridIndex` over node positions keyed by node id, two
  separate coverage/covered queries per event, and clique
  retract/assert CA2 updates.  Kept as the reference the array core is
  pinned byte-identical against
  (``tests/topology/test_array_equivalence.py``).
* **Dense (``REPRO_DENSE=1`` or ``dense_conflicts=True``).**  The
  original behavior: every event rescans all N nodes, and conflict sets
  are re-derived from the canonical dense expression
  ``A | Aᵀ | (A·Aᵀ > 0)`` (:func:`repro.topology.conflicts.conflict_matrix`)
  once per event.  Kept as the obviously-correct escape hatch and as the
  oracle the equivalence tests compare against.

All four cores answer the same object-level API (``out_neighbors``,
``conflict_neighbor_ids``, …) with byte-identical results; the array
core additionally exposes the array-native query surface
(:meth:`AdHocDigraph.slot_of`, :meth:`AdHocDigraph.in_slots`,
:meth:`AdHocDigraph.conflict_masks`) that vectorized consumers — the
bench driver, whole-network recolors — use to skip per-node Python
entirely.

The grid fast path is only engaged when the propagation model declares
``disc_bounded = True`` (coverage is a subset of the transmission disc,
true for the free-space and obstructed models); other models fall back
to full scans while keeping the incremental conflict counters.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from itertools import chain
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DuplicateNodeError, InvalidEventError, UnknownNodeError
from repro.geometry.grid_index import SlotGridIndex, UniformGridIndex
from repro.obs import metrics as _met
from repro.topology.node import NodeConfig
from repro.topology.propagation import (
    FreeSpacePropagation,
    PropagationModel,
    block_masks,
    pairwise_masks,
)
from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover - type-only; events imports topology.node
    from repro.events.base import Event

__all__ = ["AdHocDigraph", "TopologyDelta", "default_core"]

_INITIAL_CAPACITY = 16
#: Memo key of the assembled conflict-adjacency pair (node ids are ints,
#: so a string key can never collide with a per-node conflict-set entry).
_CONFLICT_ADJ_KEY = "conflict_adjacency"
#: Rebuild the spatial grid when a range exceeds this multiple of the
#: cell size, so disc queries keep touching O(1) cells as power grows.
_REGRID_FACTOR = 4.0


def _dense_from_env() -> bool:
    """Whether ``REPRO_DENSE`` requests the dense escape hatch."""
    return os.environ.get("REPRO_DENSE", "") not in ("", "0")


def _array_from_env() -> bool:
    """Whether ``REPRO_ARRAY`` requests the array core (default: yes)."""
    return os.environ.get("REPRO_ARRAY", "1") not in ("", "0")


def _sparse_from_env() -> bool:
    """Whether ``REPRO_SPARSE`` requests the sparse core from the start."""
    return os.environ.get("REPRO_SPARSE", "") not in ("", "0")


def _sparse_auto_allowed() -> bool:
    """Whether auto-promotion to sparse is permitted (``REPRO_SPARSE`` ≠ 0)."""
    return os.environ.get("REPRO_SPARSE", "") != "0"


def _sparse_scalar_from_env() -> bool:
    """Whether ``REPRO_SPARSE_SCALAR`` pins the scalar (PR 7) sparse kernels."""
    return os.environ.get("REPRO_SPARSE_SCALAR", "") not in ("", "0")


try:
    # CPython's Counter backend: C-speed "+1 per occurrence" into an
    # exact dict.  The sparse core's clique asserts only ever *increase*
    # counters, so bulk-counting keys this way preserves the
    # never-store-zero invariant (minus the self-entry, fixed by hand).
    from collections import _count_elements
except ImportError:  # pragma: no cover - non-CPython fallback

    def _count_elements(mapping: dict, iterable) -> None:
        for key in iterable:
            mapping[key] = mapping.get(key, 0) + 1


#: The array core defers building its slot grid until this many nodes
#: are live: below it the selectivity gate falls back to full scans
#: anyway, so per-event grid upkeep would be pure overhead.
_GRID_LAZY_MIN = 256

#: Below this many occupied grid cells a disc query ring (~5×5 cells
#: with the guard) covers most of the population, so candidate gathering
#: cannot beat a vectorized full scan and the array core skips the grid.
_MIN_SELECTIVE_CELLS = 32


def _count_grid_result(cand):
    """Fold one grid candidate query into the metrics registry.

    ``None`` is the grid's 3n/4-cutoff bailout ("not selective — scan
    everyone"); an array is a selective window whose size distribution
    the report surfaces.  Callers guard on ``_met.ENABLED``.
    """
    if cand is None:
        _met.REGISTRY.inc("core.grid.bailout")
    else:
        _met.REGISTRY.inc("core.grid.window")
        _met.REGISTRY.observe("core.grid.candidate_window", int(cand.size))
    return cand

#: Population at which a default-knobbed array-core graph auto-promotes
#: itself to the sparse core: past this size the dense (cap, cap)
#: adjacency/C2 blocks cost O(N²) memory and full-row C2 updates, while
#: the sparse rows stay O(N + E).  Chosen well above every scenario the
#: registry sweeps (≤ a few hundred nodes) and below the large-N bench.
_SPARSE_AUTO_MIN = 4096

_IOTA = np.arange(256, dtype=np.intp)

_EMPTY_SLOTS = np.empty(0, dtype=np.intp)
_EMPTY_SLOTS.flags.writeable = False


def _iota(k: int) -> np.ndarray:
    """A shared ``arange(k)`` view (grown on demand) for diagonal writes."""
    global _IOTA
    if k > len(_IOTA):
        _IOTA = np.arange(2 * k, dtype=np.intp)
    return _IOTA[:k]


def default_core(n: int | None = None) -> str:
    """The conflict core a default-constructed graph would run.

    ``"dense"``, ``"dict"``, ``"array"`` or ``"sparse"``, resolved from
    the ``REPRO_DENSE`` / ``REPRO_ARRAY`` / ``REPRO_SPARSE`` environment
    variables exactly as :class:`AdHocDigraph` resolves them at
    construction.  Pass the expected population ``n`` to account for
    auto-promotion: with every knob at its default the array core hands
    off to sparse once ``n >= _SPARSE_AUTO_MIN``.  Execution provenance
    (sweep manifests, stored point records) stamps this so results
    record which core produced them.
    """
    if _dense_from_env():
        return "dense"
    if _sparse_from_env():
        return "sparse"
    if not _array_from_env():
        return "dict"
    if n is not None and n >= _SPARSE_AUTO_MIN and _sparse_auto_allowed():
        return "sparse"
    return "array"


class _SlotRow:
    """One CSR-style adjacency row: a sorted, growable slot-index array.

    The sparse core keeps one out-row and one in-row per node slot.
    Entries are node slots sorted ascending (so set algebra runs through
    ``np.setdiff1d(..., assume_unique=True)`` and membership through
    ``searchsorted``); the backing array doubles on demand and never
    shrinks, matching the amortized-growth discipline of the digraph's
    flat blocks.
    """

    __slots__ = ("data", "count")

    def __init__(self, capacity: int = 4) -> None:
        self.data = np.empty(capacity, dtype=np.intp)
        self.count = 0

    def __len__(self) -> int:
        return self.count

    def view(self) -> np.ndarray:
        """The live sorted entries (a view — copy anything you keep)."""
        return self.data[: self.count]

    def values(self) -> np.ndarray:
        """A fresh copy of the sorted entries."""
        return self.data[: self.count].copy()

    def contains(self, slot: int) -> bool:
        # ndarray.searchsorted skips the np.searchsorted dispatch layer —
        # this runs hundreds of thousands of times per large-N trace.
        pos = int(self.data[: self.count].searchsorted(slot))
        return pos < self.count and int(self.data[pos]) == slot

    def insert(self, slot: int) -> None:
        """Insert ``slot`` keeping sort order (must not be present)."""
        n = self.count
        if n == len(self.data):
            grown = np.empty(2 * len(self.data), dtype=np.intp)
            grown[:n] = self.data[:n]
            self.data = grown
        pos = self.data[:n].searchsorted(slot)
        self.data[pos + 1 : n + 1] = self.data[pos:n]
        self.data[pos] = slot
        self.count = n + 1

    def remove(self, slot: int) -> None:
        """Remove ``slot`` (must be present)."""
        n = self.count
        pos = self.data[:n].searchsorted(slot)
        self.data[pos : n - 1] = self.data[pos + 1 : n]
        self.count = n - 1

    def replace(self, old_slot: int, new_slot: int) -> None:
        """Swap one entry for another (swap-delete slot renumbering)."""
        self.remove(old_slot)
        self.insert(new_slot)

    def set_sorted(self, slots: np.ndarray) -> None:
        """Replace the whole row with an already-sorted slot array."""
        k = len(slots)
        if k > len(self.data):
            cap = len(self.data)
            while cap < k:
                cap *= 2
            self.data = np.empty(cap, dtype=np.intp)
        self.data[:k] = slots
        self.count = k

    def clear(self) -> None:
        self.count = 0

    def copy(self) -> "_SlotRow":
        clone = _SlotRow(len(self.data))
        clone.data[: self.count] = self.data[: self.count]
        clone.count = self.count
        return clone


def _c2_inc(entries: dict[int, int], key: int, by: int = 1) -> None:
    """Add ``by`` witnesses to one C2 counter entry."""
    entries[key] = entries.get(key, 0) + by


def _c2_dec(entries: dict[int, int], key: int, by: int = 1) -> None:
    """Retract ``by`` witnesses; entries never store zero (pruned here).

    A missing key raises ``KeyError`` — by the maintenance invariant a
    retraction always targets a positive counter, so silent tolerance
    would only hide a bookkeeping bug.
    """
    left = entries[key] - by
    if left:
        entries[key] = left
    else:
        del entries[key]


@dataclass(frozen=True)
class TopologyDelta:
    """The strategy-independent record of one applied topology event.

    Produced by :meth:`AdHocDigraph.apply_event` *after* the mutation is
    committed, a delta carries everything a recoding strategy's event
    handler needs beyond the post-event graph itself: the event kind
    (power changes are classified increase/decrease here, where the old
    range is still known) and the pre-event conflict set of the node for
    power increases (the CP extension recodes exactly the nodes that
    *gained* a constraint).

    Because deltas capture only graph-derived state, one delta stream
    can be fanned out to any number of per-strategy assignment states —
    the topology mutation and conflict-delta computation run once, not
    once per strategy.
    """

    #: Event kind after classification:
    #: ``"join" | "leave" | "move" | "power_increase" | "power_decrease"``.
    kind: str
    #: The initiating node (joined / left / moved / changed power).
    node_id: NodeId
    #: Topology version after this event was applied.
    version: int
    #: The removed node's last configuration (``leave`` only).
    removed_config: NodeConfig | None = None
    #: Transmission range before the change (power events only).
    old_range: float | None = None
    #: CA1 ∪ CA2 conflict set of ``node_id`` *before* the event
    #: (power events only).
    old_conflicts: frozenset[NodeId] = field(default_factory=frozenset)


class AdHocDigraph:
    """The power-controlled ad-hoc network digraph (paper section 2).

    Edge rule: ``u -> v`` iff the propagation model says ``u``'s
    transmission covers ``v`` (free space: ``d(u, v) <= r_u``).

    Parameters
    ----------
    propagation:
        Propagation model; defaults to the paper's free-space disc.
    dense_conflicts:
        ``True`` forces the dense per-event conflict derivation,
        ``False`` the grid-accelerated incremental one.  ``None``
        (default) consults the ``REPRO_DENSE`` environment variable.
    array_core:
        ``True`` runs the array-native incremental core (slot-bucketed
        grid, fused pairwise edge recomputation, batched CA2 deltas),
        ``False`` the object-level dict core.  ``None`` (default)
        consults ``REPRO_ARRAY`` (on unless set to ``0``).  Ignored in
        dense and sparse modes.  All cores are byte-identical in every
        query and in snapshots; the choice is purely an
        execution-speed/memory knob.
    sparse_core:
        ``True`` runs the sparse large-N core (CSR-style sorted slot
        rows, per-slot C2 witness dicts, O(N + E) memory), ``False``
        pins a dense-block core and disables auto-promotion.  ``None``
        (default) consults ``REPRO_SPARSE`` — and, when that is unset,
        lets a default array-core graph auto-promote to sparse once it
        reaches ``_SPARSE_AUTO_MIN`` nodes.  Ignored in dense mode.
    sparse_scalar:
        ``True`` pins the sparse core's *scalar* kernels — the per-slot
        ``searchsorted`` row edits, per-pair witness-dict updates and
        per-cell candidate streaming exactly as PR 7 shipped them —
        instead of the batched row-rebuild/aggregated-counter kernels
        that replaced them.  ``None`` (default) consults
        ``REPRO_SPARSE_SCALAR``.  Both paths are byte-identical in every
        query, snapshot and delta; the scalar path exists as the
        equivalence oracle and as the same-machine baseline the
        ``speedup_vs_pr7`` bench ratio is measured against.
    grid_cell_size:
        Explicit spatial-grid cell size.  Default: sized from observed
        transmission ranges (a disc query then touches O(1) cells).
    """

    def __init__(
        self,
        propagation: PropagationModel | None = None,
        *,
        dense_conflicts: bool | None = None,
        array_core: bool | None = None,
        sparse_core: bool | None = None,
        sparse_scalar: bool | None = None,
        grid_cell_size: float | None = None,
    ) -> None:
        self._prop: PropagationModel = (
            propagation if propagation is not None else FreeSpacePropagation()
        )
        # Exactly free space (not a subclass): gates the inlined
        # distance kernel on the array fast path.
        self._fs = type(self._prop) is FreeSpacePropagation
        if dense_conflicts is None:
            dense_conflicts = _dense_from_env()
        self._dense = bool(dense_conflicts)
        if sparse_core is None:
            # An explicit array_core choice pins that exact core — the
            # REPRO_SPARSE env only steers default-knobbed graphs.
            sparse = array_core is None and _sparse_from_env()
            # Auto-promotion stays armed only while every core knob is
            # at its default: an explicit array/sparse choice (or the
            # REPRO_SPARSE=0 pin) is a request for that exact core.
            self._sparse_auto = (
                not self._dense and not sparse and array_core is None and _sparse_auto_allowed()
            )
        else:
            sparse = bool(sparse_core)
            self._sparse_auto = False
        self._sparse = sparse and not self._dense
        if sparse_scalar is None:
            sparse_scalar = _sparse_scalar_from_env()
        self._sparse_scalar = bool(sparse_scalar)
        if array_core is None:
            array_core = _array_from_env()
        self._array = bool(array_core) and not self._dense and not self._sparse
        #: Whether the spatial index (if any) is keyed by slot
        #: (:class:`SlotGridIndex`) rather than node id.
        self._slotgrid = self._array or self._sparse
        cap = _INITIAL_CAPACITY
        self._pos = np.zeros((cap, 2), dtype=np.float64)
        self._range = np.zeros(cap, dtype=np.float64)
        self._ids: list[NodeId] = []  # index -> id, for the active block
        self._ida = np.zeros(cap, dtype=np.int64)  # slot-aligned ids (hot queries)
        self._index: dict[NodeId, int] = {}
        if self._sparse:
            self._adj = None
            self._c2 = None
            # CSR-style per-slot rows and per-slot CA2 witness dicts
            # (key: other slot, value: |out(u) ∩ out(v)| > 0).
            self._outr: list[_SlotRow] = []
            self._inr: list[_SlotRow] = []
            self._c2s: list[dict[int, int]] = []
        else:
            self._adj = np.zeros((cap, cap), dtype=bool)
            # Incremental mode: CA2 witness counts C2[u, v] = |out(u) ∩ out(v)|.
            self._c2 = None if self._dense else np.zeros((cap, cap), dtype=np.int32)
            self._outr = self._inr = self._c2s = None  # type: ignore[assignment]
        self._use_grid = (not self._dense) and bool(getattr(self._prop, "disc_bounded", False))
        self._grid: UniformGridIndex | SlotGridIndex | None = None
        self._grid_cell = grid_cell_size
        # The cell size the grid has — or, while the array core defers
        # building it (below _GRID_LAZY_MIN nodes), *would* have — under
        # the first-insert / regrid-factor rules.  Maintained on every
        # insert and power raise so snapshots and the deferred build see
        # the same geometry the dict core's eager grid evolves.
        self._cell_live: float | None = None
        # Cached upper bound on max(range); may be stale-high after a
        # removal or power decrease, which only widens candidate discs
        # (still a superset — results unchanged).
        self._max_range = 0.0
        # Dense mode: conflict matrix re-derived once per topology version.
        self._version = 0
        self._cm_cache: np.ndarray | None = None
        self._cm_version = -1
        # Per-version memo of derived conflict queries.  Multi-strategy
        # replay issues the same queries once per strategy between two
        # topology events; the memo makes repeats O(1).
        self._memo: dict = {}
        self._memo_version = -1
        # Per-slot conflict-row cache for conflict_slot_lists, keyed by
        # topology version like the id-based memo (slots and node ids
        # are both ints, so the two caches cannot share one dict).
        self._crow_cache: dict[int, np.ndarray] = {}
        self._crow_version = -1
        # Delta-snapshot bookkeeping: slot -> topology version of the
        # last mutation that rewrote the slot's occupant/configuration
        # (edges are derived from endpoint configs, so config-dirty
        # slots bound every edge change).  ``_delta_floor`` is the
        # earliest base version :meth:`delta_snapshot` can serve —
        # tracking starts at construction (or at restore).
        self._touched: dict[int, int] = {}
        self._delta_floor = 0
        # Copy-on-write bookkeeping (see :meth:`fork`): when a graph is
        # forked, the dense blocks / sparse rows / grid are shared
        # between the siblings and privatized on first write.
        self._blocks_shared = False
        self._grid_shared = False
        self._rows_cow = False
        self._owned_slots: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def propagation(self) -> PropagationModel:
        """The propagation model edges are computed under."""
        return self._prop

    @property
    def dense_conflicts(self) -> bool:
        """Whether this graph runs the dense (escape-hatch) conflict path."""
        return self._dense

    @property
    def array_core(self) -> bool:
        """Whether this graph runs the array-native incremental core."""
        return self._array

    @property
    def sparse_core(self) -> bool:
        """Whether this graph runs the sparse (CSR rows) conflict core."""
        return self._sparse

    @property
    def sparse_scalar(self) -> bool:
        """Whether the sparse core runs the scalar (PR 7 oracle) kernels."""
        return self._sparse_scalar

    @property
    def core(self) -> str:
        """The active core: ``"dense"``, ``"dict"``, ``"array"`` or ``"sparse"``.

        Stamped into sweep manifests and stored point provenance so
        results record which core produced them.  Note an auto-promoted
        graph reports ``"sparse"`` from the promotion event on.
        """
        if self._dense:
            return "dense"
        if self._sparse:
            return "sparse"
        return "array" if self._array else "dict"

    @property
    def version(self) -> int:
        """The topology version (bumped once per applied mutation).

        The anchor of the delta-snapshot protocol: a
        :meth:`delta_snapshot` is taken *against* a base version and a
        delta :meth:`apply_delta` refuses to land on any other version,
        so chained checkpoints can never silently diverge.
        """
        return self._version

    @property
    def delta_floor(self) -> int:
        """Earliest version :meth:`delta_snapshot` can use as a base.

        ``0`` for a graph built by live mutation; the restored version
        for a graph rebuilt by :meth:`restore`, whose per-slot history
        starts there.
        """
        return self._delta_floor

    @property
    def grid_index(self) -> UniformGridIndex | SlotGridIndex | None:
        """The spatial index backing the fast path (``None`` if unused).

        The dict core indexes node *ids* (:class:`UniformGridIndex`);
        the array core indexes node *slots* (:class:`SlotGridIndex`) and
        defers building it until the population is large enough for
        candidate queries to pay — accessing this property forces the
        deferred build so callers always observe a complete index.
        """
        if self._grid is None and self._use_grid and self._cell_live is not None and self._ids:
            self._build_grid(self._cell_live)
        return self._grid

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._index

    def node_ids(self) -> list[NodeId]:
        """All node ids, ascending."""
        return sorted(self._index)

    def config(self, node_id: NodeId) -> NodeConfig:
        """The current configuration of ``node_id``."""
        i = self._idx(node_id)
        return NodeConfig(
            node_id, float(self._pos[i, 0]), float(self._pos[i, 1]), float(self._range[i])
        )

    def configs(self) -> list[NodeConfig]:
        """All node configurations, ascending by id."""
        return [self.config(v) for v in self.node_ids()]

    def position_of(self, node_id: NodeId) -> tuple[float, float]:
        """The ``(x, y)`` position of ``node_id``."""
        i = self._idx(node_id)
        return (float(self._pos[i, 0]), float(self._pos[i, 1]))

    def range_of(self, node_id: NodeId) -> float:
        """The transmission range of ``node_id``."""
        return float(self._range[self._idx(node_id)])

    # ------------------------------------------------------------------
    # Edge queries
    # ------------------------------------------------------------------
    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        si, di = self._idx(src), self._idx(dst)
        if self._sparse:
            return self._outr[si].contains(di)
        return bool(self._adj[si, di])

    def out_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Nodes within ``node_id``'s transmission range (sorted)."""
        i = self._idx(node_id)
        if self._sparse:
            return sorted(self._ida[self._outr[i].view()].tolist())
        n = len(self._ids)
        return sorted(self._ida[:n][self._adj[i, :n]].tolist())

    def in_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Nodes whose transmissions reach ``node_id`` (sorted)."""
        i = self._idx(node_id)
        if self._sparse:
            return sorted(self._ida[self._inr[i].view()].tolist())
        n = len(self._ids)
        return sorted(self._ida[:n][self._adj[:n, i]].tolist())

    def undirected_neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Union of in- and out-neighbors (sorted)."""
        i = self._idx(node_id)
        if self._sparse:
            both = np.union1d(self._outr[i].view(), self._inr[i].view())
            return sorted(self._ida[both].tolist())
        n = len(self._ids)
        mask = self._adj[i, :n] | self._adj[:n, i]
        return sorted(self._ida[:n][mask].tolist())

    def out_degree(self, node_id: NodeId) -> int:
        """Number of out-neighbors."""
        i = self._idx(node_id)
        if self._sparse:
            return len(self._outr[i])
        return int(self._adj[i, : len(self._ids)].sum())

    def in_degree(self, node_id: NodeId) -> int:
        """Number of in-neighbors."""
        i = self._idx(node_id)
        if self._sparse:
            return len(self._inr[i])
        return int(self._adj[: len(self._ids), i].sum())

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate all directed edges as ``(src, dst)`` id pairs.

        Row-major slot order (identical across cores: out-rows are
        sorted, matching ``np.nonzero`` on the dense block).
        """
        n = len(self._ids)
        if self._sparse:
            for r in range(n):
                src = self._ids[r]
                for c in self._outr[r].view().tolist():
                    yield (src, self._ids[c])
            return
        rows, cols = np.nonzero(self._adj[:n, :n])
        for r, c in zip(rows.tolist(), cols.tolist()):
            yield (self._ids[r], self._ids[c])

    def edge_count(self) -> int:
        """Total number of directed edges."""
        n = len(self._ids)
        if self._sparse:
            return sum(row.count for row in self._outr)
        return int(self._adj[:n, :n].sum())

    def adjacency(self) -> tuple[list[NodeId], np.ndarray]:
        """``(ids, A)`` where ``A[i, j]`` == edge ``ids[i] -> ids[j]``.

        ``ids`` is ascending; ``A`` is a copy safe to mutate.  This is the
        entry point for vectorized consumers (conflict-matrix builds,
        whole-network recoloring).  The sparse core densifies its rows
        here — this is an O(N²) materialization by contract, meant for
        whole-network consumers, not per-event hot paths.
        """
        order = sorted(range(len(self._ids)), key=lambda j: self._ids[j])
        ids = [self._ids[j] for j in order]
        n = len(self._ids)
        block = self._adj_block() if self._sparse else self._adj[:n, :n]
        perm = np.asarray(order, dtype=np.intp)
        return ids, block[np.ix_(perm, perm)].copy()

    def positions_and_ranges(self) -> tuple[list[NodeId], np.ndarray, np.ndarray]:
        """``(ids, positions, ranges)`` aligned arrays, ids ascending."""
        order = sorted(range(len(self._ids)), key=lambda j: self._ids[j])
        ids = [self._ids[j] for j in order]
        perm = np.asarray(order, dtype=np.intp)
        return ids, self._pos[perm].copy(), self._range[perm].copy()

    # ------------------------------------------------------------------
    # Copy-on-write plumbing (see fork())
    # ------------------------------------------------------------------
    def _own_dense_blocks(self) -> None:
        """Privatize the shared dense adjacency/C2 blocks before writing.

        Dense-block cores mutate the (cap, cap) arrays on every event,
        so the first mutation after a fork pays the one deferred block
        copy; read-only forks (stored checkpoints) never pay it.
        """
        if self._blocks_shared:
            if self._adj is not None:
                self._adj = self._adj.copy()
            if self._c2 is not None:
                self._c2 = self._c2.copy()
            self._blocks_shared = False

    def _own_grid(self) -> None:
        """Privatize the shared spatial index before mutating it."""
        if self._grid_shared:
            if self._grid is not None:
                self._grid = self._grid.copy()
            self._grid_shared = False

    def _own_slot(self, slot: int) -> None:
        """Privatize one shared sparse slot (rows + witness dict).

        The sparse core's row-level copy-on-write gate: called before
        any in-place mutation of ``_outr[slot]`` / ``_inr[slot]`` /
        ``_c2s[slot]``.  Forked graphs share the per-slot objects and
        copy exactly the slots their replay touches, so a fork's cost
        is O(touched neighborhoods), not O(N + E).
        """
        if self._rows_cow and slot not in self._owned_slots:
            self._outr[slot] = self._outr[slot].copy()
            self._inr[slot] = self._inr[slot].copy()
            self._c2s[slot] = dict(self._c2s[slot])
            self._owned_slots.add(slot)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, cfg: NodeConfig) -> None:
        """Join ``cfg`` to the network, creating its in/out edges."""
        if cfg.node_id in self._index:
            raise DuplicateNodeError(cfg.node_id)
        if not self._sparse:
            self._own_dense_blocks()
        n = len(self._ids) + 1
        self._ensure_capacity(n)
        i = n - 1
        self._pos[i] = (cfg.x, cfg.y)
        self._range[i] = cfg.tx_range
        if cfg.tx_range > self._max_range:
            self._max_range = float(cfg.tx_range)
        self._ids.append(cfg.node_id)
        self._ida[i] = cfg.node_id
        self._index[cfg.node_id] = i
        if self._use_grid:
            self._grid_insert(i, cfg.node_id, cfg.x, cfg.y, cfg.tx_range)
        if self._dense:
            self._recompute_row(i)
            self._recompute_col(i)
        elif self._sparse:
            self._ensure_sparse_slot(i)
            new_out, new_in = self._sparse_edge_sets(i)
            self._sparse_apply_row(i, new_out)
            self._sparse_apply_col(i, new_in)
        elif self._array:
            self._insert_edges_array(i)
            if self._sparse_auto and n >= _SPARSE_AUTO_MIN:
                self._promote_to_sparse()
        else:
            self._apply_row_delta(i, self._coverage_mask(i))
            self._apply_col_delta(i, self._covered_mask(i))
        self._version += 1
        self._touched[i] = self._version
        if _met.ENABLED:
            _met.REGISTRY.inc("core.join.sequential")

    def bulk_join(self, configs: Iterable[NodeConfig]) -> list[TopologyDelta]:
        """Admit a whole join round as one streaming batched mutation.

        Returns one ``join`` delta per config, with the same version
        numbers sequential :meth:`add_node` calls would assign, and
        leaves the graph in exactly the state they would (final
        adjacency depends only on the final configurations).  On the
        sparse core the round is committed in three streaming passes —
        geometry for every joiner, one grid-bucketed edge-set sweep
        (:meth:`_bulk_edge_sets`: co-located joiners share one candidate
        gather and one block distance pass), and one grouped
        structural/C2 commit per touched receiver — so admission cost
        scales with touched neighborhoods, never with N per event.
        Other cores (and trivial rounds) fall back to sequential
        :meth:`add_node`, which preserves auto-promotion semantics.

        :meth:`apply_round` routes all-join runs here; calling it
        directly is useful for flash-crowd initialization (build a
        10⁵-node network without 10⁵ separate candidate queries).
        """
        configs = list(configs)
        if not self._sparse or len(configs) < 2:
            deltas = []
            for cfg in configs:
                self.add_node(cfg)
                deltas.append(TopologyDelta("join", cfg.node_id, self._version))
            return deltas
        # Pre-validate: batched geometry must not fail half-written.
        live = set(self._index)
        for cfg in configs:
            if cfg.node_id in live:
                raise DuplicateNodeError(cfg.node_id)
            live.add(cfg.node_id)
        if _met.ENABLED:
            _met.REGISTRY.inc("core.join.bulk", len(configs))
            _met.REGISTRY.inc("core.join.bulk_batches")
        deltas = []
        dirty_slots: list[int] = []
        for cfg in configs:
            n = len(self._ids) + 1
            self._ensure_capacity(n)
            i = n - 1
            self._pos[i] = (cfg.x, cfg.y)
            self._range[i] = cfg.tx_range
            if cfg.tx_range > self._max_range:
                self._max_range = float(cfg.tx_range)
            self._ids.append(cfg.node_id)
            self._ida[i] = cfg.node_id
            self._index[cfg.node_id] = i
            self._ensure_sparse_slot(i)
            if self._use_grid:
                self._grid_insert(i, cfg.node_id, cfg.x, cfg.y, cfg.tx_range)
            dirty_slots.append(i)
            self._version += 1
            self._touched[i] = self._version
            deltas.append(TopologyDelta("join", cfg.node_id, self._version))
        # Fresh slots have empty rows, so the old sides are all empty.
        old = dict.fromkeys(dirty_slots, _EMPTY_SLOTS)
        new_out, new_in = self._bulk_edge_sets(dirty_slots)
        self._commit_dirty_rows(dirty_slots, set(dirty_slots), old, old, new_out, new_in)
        return deltas

    def remove_node(self, node_id: NodeId) -> NodeConfig:
        """Remove ``node_id`` and all incident edges; returns its config."""
        cfg = self.config(node_id)
        n = len(self._ids)
        i = self._index[node_id]
        if self._sparse:
            self._sparse_unlink(i)
        else:
            self._own_dense_blocks()
            c2 = self._c2
            if c2 is not None:
                # The receiver clique at i dissolves: every pair of its
                # in-neighbors loses one common-out-neighbor witness.  Pairs
                # involving i itself vanish with its row/column below.
                src = np.flatnonzero(self._adj[:n, i])
                if src.size > 1:
                    c2[np.ix_(src, src)] -= 1
                    c2[src, src] += 1
        self._vacate_slot(i)
        self._version += 1
        if i != n - 1:
            # Swap-delete moved the last slot's occupant into i.
            self._touched[i] = self._version
        return cfg

    def _vacate_slot(self, i: int) -> None:
        """Release slot ``i`` by swap-deleting the last slot into it.

        The shared tail of every removal: unlinks the slot from the
        spatial index and the id↔slot maps, moves the last slot's
        entries into ``i`` across **all** per-slot tables (positions,
        ranges, dense adjacency/C2 blocks or sparse rows/witness dicts,
        id arrays, grid membership), and clears the freed trailing slot.
        The caller must already have retracted the departing node's
        conflict contributions (dense C2 clique / sparse unlink) —
        this helper only renumbers and zeroes storage.
        """
        n = len(self._ids)
        node_id = self._ids[i]
        if self._grid is not None:
            self._own_grid()
            self._grid.remove(i if self._slotgrid else node_id)
        self._index.pop(node_id)
        last = n - 1
        c2 = self._c2
        if i != last:
            # Swap-delete: move the last slot into i.
            self._pos[i] = self._pos[last]
            self._range[i] = self._range[last]
            if self._adj is not None:
                self._adj[i, : last + 1] = self._adj[last, : last + 1]
                self._adj[: last + 1, i] = self._adj[: last + 1, last]
                self._adj[i, i] = False
            if c2 is not None:
                c2[i, : last + 1] = c2[last, : last + 1]
                c2[: last + 1, i] = c2[: last + 1, last]
                c2[i, i] = 0
            if self._sparse:
                self._sparse_rename_slot(last, i)
            moved = self._ids[last]
            self._ids[i] = moved
            self._ida[i] = moved
            self._index[moved] = i
            if self._slotgrid and self._grid is not None:
                # The slot grid tracks slots, not ids: follow the
                # swap-delete renumbering of the last slot into i.
                self._grid.rename(last, i)
        self._ids.pop()
        if self._adj is not None:
            self._adj[last, : last + 1] = False
            self._adj[: last + 1, last] = False
        if c2 is not None:
            c2[last, : last + 1] = 0
            c2[: last + 1, last] = 0
        if self._sparse:
            self._outr.pop()
            self._inr.pop()
            self._c2s.pop()

    def move_node(self, node_id: NodeId, x: float, y: float) -> None:
        """Relocate ``node_id``; recomputes its out- and in-edges."""
        i = self._idx(node_id)
        if not self._sparse:
            self._own_dense_blocks()
        self._pos[i] = (float(x), float(y))
        if self._grid is not None:
            self._own_grid()
            self._grid.move(i if self._slotgrid else node_id, float(x), float(y))
        if self._dense:
            self._recompute_row(i)
            self._recompute_col(i)
        elif self._sparse:
            new_out, new_in = self._sparse_edge_sets(i)
            self._sparse_apply_row(i, new_out)
            self._sparse_apply_col(i, new_in)
        elif self._array:
            self._refresh_edges_array(i)
        else:
            self._apply_row_delta(i, self._coverage_mask(i))
            self._apply_col_delta(i, self._covered_mask(i))
        self._version += 1
        self._touched[i] = self._version

    def set_range(self, node_id: NodeId, tx_range: float) -> None:
        """Change ``node_id``'s transmission range; recomputes out-edges.

        In-edges are unaffected: whether *others* reach this node depends
        only on their ranges.
        """
        if tx_range <= 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"tx_range must be positive, got {tx_range}")
        i = self._idx(node_id)
        if not self._sparse:
            self._own_dense_blocks()
        self._range[i] = float(tx_range)
        if tx_range > self._max_range:
            self._max_range = float(tx_range)
        if (
            self._use_grid
            and self._grid_cell is None
            and self._cell_live is not None
            and tx_range > _REGRID_FACTOR * self._cell_live
        ):
            self._cell_live = float(tx_range)
            if self._grid is not None:
                self._build_grid(self._cell_live)
        if self._dense:
            self._recompute_row(i)
        elif self._sparse:
            self._sparse_apply_row(i, self._sparse_out_set(i))
        elif self._array:
            self._apply_row_delta_array(i, self._coverage_mask(i))
        else:
            self._apply_row_delta(i, self._coverage_mask(i))
        self._version += 1
        self._touched[i] = self._version

    # ------------------------------------------------------------------
    # Event replay
    # ------------------------------------------------------------------
    def apply_event(self, event: "Event") -> TopologyDelta:
        """Apply one reconfiguration event; return its conflict delta.

        The returned :class:`TopologyDelta` captures the pre-event state
        handlers need (old range and old conflict set for power changes,
        the removed configuration for leaves), so per-strategy consumers
        never re-derive topology work.  This is the single mutation
        entry point of the replay pipeline: the event loop applies each
        event exactly once here and fans the delta out to every
        strategy's assignment state.
        """
        from repro.events.base import JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent

        if isinstance(event, JoinEvent):
            self.add_node(event.config)
            return TopologyDelta("join", event.node_id, self._version)
        if isinstance(event, LeaveEvent):
            removed = self.remove_node(event.node_id)
            return TopologyDelta("leave", event.node_id, self._version, removed_config=removed)
        if isinstance(event, MoveEvent):
            self.move_node(event.node_id, event.x, event.y)
            return TopologyDelta("move", event.node_id, self._version)
        if isinstance(event, PowerChangeEvent):
            old_range = self.range_of(event.node_id)
            old_conflicts = frozenset(self.conflict_neighbor_ids(event.node_id))
            self.set_range(event.node_id, event.new_range)
            kind = "power_increase" if event.new_range > old_range else "power_decrease"
            return TopologyDelta(
                kind,
                event.node_id,
                self._version,
                old_range=old_range,
                old_conflicts=old_conflicts,
            )
        raise InvalidEventError(f"unknown event type {type(event).__name__}")

    def replay_events(self, events: Iterable["Event"]) -> Iterator[TopologyDelta]:
        """Lazily apply ``events`` in order, yielding one delta each.

        The replayable conflict-delta stream: consumers iterate deltas
        while the graph advances underneath, so per-event derived state
        (conflict sets, the memo) is always for the just-applied event.
        """
        for event in events:
            yield self.apply_event(event)

    def apply_round(self, events: Iterable["Event"]) -> list[TopologyDelta]:
        """Apply one churn round of events with multi-event batching.

        Returns one :class:`TopologyDelta` per event, with the same
        kinds, node ids and version numbers :meth:`apply_event` would
        produce, and leaves the graph in **exactly** the state
        sequential application would (the final topology depends only on
        each live node's final configuration, which batching preserves).
        The intermediate graph states between the round's events are
        *not* materialized — callers that must observe them (per-event
        strategy reactions with sequential semantics) should stay on
        :meth:`replay_events`.

        Only the sparse core batches; the other cores fall back to
        sequential application (identical results either way).  Within
        the round, contiguous runs of join/move events are vectorized —
        one geometry/grid commit pass, one grid-bucketed edge-set sweep
        over the touched slots (pure join runs route through
        :meth:`bulk_join`), grouped edge flips, and a single fused C2
        reconciliation per touched receiver row, so a receiver hit by
        ``k`` events in the round reconciles once instead of ``k``
        times.  Leave and power-change events flush the run (a leave
        renumbers slots and must capture the departing configuration; a
        power delta must capture the pre-event conflict set) and apply
        sequentially.
        """
        events = list(events)
        if not self._sparse or len(events) < 2:
            return [self.apply_event(ev) for ev in events]
        from repro.events.base import JoinEvent, MoveEvent

        deltas: list[TopologyDelta] = []
        batch: list[Event] = []
        for ev in events:
            if isinstance(ev, (JoinEvent, MoveEvent)):
                batch.append(ev)
            else:
                self._flush_round_batch(batch, deltas)
                deltas.append(self.apply_event(ev))
        self._flush_round_batch(batch, deltas)
        return deltas

    def replay_rounds(
        self, rounds: Iterable[Iterable["Event"]]
    ) -> Iterator[list[TopologyDelta]]:
        """Lazily apply round-structured events via :meth:`apply_round`.

        Yields the per-round delta lists; the graph advances one round
        at a time, so derived queries between yields observe the
        just-committed round (round-commit semantics).
        """
        for round_events in rounds:
            yield self.apply_round(round_events)

    # ------------------------------------------------------------------
    # Snapshots (warm starts)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Serialize the full topology state to a JSON-able dict.

        Captures everything :meth:`restore` needs to resume replay
        byte-identically: node configurations (in slot order, so the
        CA2 counter block stays aligned), the directed edge list, the
        incremental CA2 witness counters, the spatial grid's current
        cell size, and the topology version.  Derived caches (the query
        memo, the dense conflict matrix) are rebuilt on demand and are
        not part of the state.

        Schema 2 additionally records the propagation model's name, so
        chained restores (snapshot → restore → replay → snapshot → …,
        the checkpoint-timeline pattern) cannot silently swap the edge
        semantics mid-chain: restoring a snapshot taken under a
        non-default model without supplying that model is an error, not
        a free-space reinterpretation.  Schema 3 stores the CA2
        counters as sparse ``[u, v, count]`` triples (row-major,
        ascending columns — the ``np.nonzero`` order) instead of the
        dense N×N list, so snapshot size scales with witnesses, not
        N²; dense-mode graphs keep ``c2 = None`` as before.  Snapshots
        are idempotent across the chain — re-snapshotting a restored
        graph reproduces the original dict byte-for-byte.
        """
        n = len(self._ids)
        if self._sparse:
            # Row-major edge order with ascending columns — exactly the
            # np.nonzero order of the dense block, so sparse snapshots
            # are byte-identical to array/dict ones.  The per-slot dicts
            # hold ascending keys only transiently, so each row is
            # sorted on the way out.
            edges = [
                [r, int(c)] for r in range(n) for c in self._outr[r].view().tolist()
            ]
            c2: list | None = [
                [u, v, int(entries[v])]
                for u, entries in enumerate(self._c2s[:n])
                for v in sorted(entries)
            ]
        else:
            rows, cols = np.nonzero(self._adj[:n, :n])
            edges = [[int(r), int(c)] for r, c in zip(rows.tolist(), cols.tolist())]
            if self._c2 is None:
                c2 = None
            else:
                cr, cc = np.nonzero(self._c2[:n, :n])
                cv = self._c2[cr, cc]
                c2 = [
                    [int(u), int(v), int(k)]
                    for u, v, k in zip(cr.tolist(), cc.tolist(), cv.tolist())
                ]
        return {
            "schema": 3,
            "propagation": type(self._prop).__name__,
            "dense": self._dense,
            "version": self._version,
            "explicit_cell": self._grid_cell,
            "grid_cell_size": self._cell_live if self._use_grid else None,
            "nodes": [
                [
                    int(self._ids[i]),
                    float(self._pos[i, 0]),
                    float(self._pos[i, 1]),
                    float(self._range[i]),
                ]
                for i in range(n)
            ],
            "edges": edges,
            "c2": c2,
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict,
        *,
        propagation: PropagationModel | None = None,
        array_core: bool | None = None,
        sparse_core: bool | None = None,
    ) -> "AdHocDigraph":
        """Rebuild a graph from a :meth:`snapshot` dict.

        The restored graph continues exactly where the snapshot was
        taken: same slot layout, adjacency, CA2 counters, grid cell
        size and topology version, so subsequent events produce results
        byte-identical to the original instance's — and so do chained
        restores, where the restored graph is replayed further,
        re-snapshotted and restored again (pinned by
        ``tests/sim/test_timeline.py``).  Accepts schema 1 (pre-PR 5
        snapshots, which did not record the propagation model) and
        schema 2, which refuses to restore a snapshot taken under a
        non-default propagation model unless that model is supplied.

        Snapshots are core-independent: the conflict core (array /
        dict) is an execution knob, not state, so a snapshot written by
        either core restores into whichever core is ambient (or the
        explicit ``array_core``) and re-snapshots byte-identically —
        pinned by ``tests/sim/test_array_replay.py``.
        """
        from repro.errors import ConfigurationError

        if snapshot.get("kind") == "digraph-delta":
            raise ConfigurationError(
                "restore() was given a delta snapshot; deltas apply to a live "
                "graph at their base version via apply_delta()"
            )
        schema = snapshot.get("schema")
        if schema not in (1, 2, 3):
            raise ConfigurationError(f"unsupported digraph snapshot schema {schema!r}")
        recorded = snapshot.get("propagation")
        if propagation is None and recorded not in (None, FreeSpacePropagation.__name__):
            raise ConfigurationError(
                f"snapshot was taken under propagation model {recorded!r}; pass a "
                "matching model to restore() instead of defaulting to free space"
            )
        if propagation is not None and recorded not in (None, type(propagation).__name__):
            raise ConfigurationError(
                f"snapshot was taken under propagation model {recorded!r}, but "
                f"restore() was given {type(propagation).__name__!r}"
            )
        g = cls(
            propagation,
            dense_conflicts=snapshot["dense"],
            grid_cell_size=snapshot["explicit_cell"],
            array_core=array_core,
            sparse_core=sparse_core,
        )
        nodes = snapshot["nodes"]
        n = len(nodes)
        if g._array and g._sparse_auto and n >= _SPARSE_AUTO_MIN:
            # A default-knobbed graph this large would have auto-promoted
            # during replay; restore straight into the sparse core rather
            # than allocating the O(N²) blocks just to convert them.
            g._activate_sparse()
        g._ensure_capacity(max(n, 1))
        for slot, (node_id, x, y, tx_range) in enumerate(nodes):
            g._pos[slot] = (x, y)
            g._range[slot] = tx_range
            g._ids.append(node_id)
            g._ida[slot] = node_id
            g._index[node_id] = slot
        triples = schema == 3
        if g._sparse:
            g._restore_sparse_state(n, snapshot["edges"], snapshot["c2"], triples=triples)
        else:
            for src, dst in snapshot["edges"]:
                g._adj[src, dst] = True
            if g._c2 is not None and n:
                c2 = snapshot["c2"]
                if c2 is None:  # snapshot came from a dense-mode graph
                    a = g._adj[:n, :n]
                    g._c2[:n, :n] = (a.astype(np.int32) @ a.T.astype(np.int32))
                    np.fill_diagonal(g._c2[:n, :n], 0)
                elif triples:
                    arr = np.asarray(c2, dtype=np.int64).reshape(-1, 3)
                    g._c2[arr[:, 0], arr[:, 1]] = arr[:, 2]
                else:
                    g._c2[:n, :n] = np.asarray(c2, dtype=np.int32)
        if g._use_grid:
            cell = snapshot["grid_cell_size"]
            if cell is None and n:  # schema-1 snapshots did not record it
                cell = float(g._range[:n].max())
            if cell is not None:
                g._cell_live = float(cell)
                if n and not (g._slotgrid and n < _GRID_LAZY_MIN):
                    g._build_grid(g._cell_live)
        g._max_range = float(g._range[:n].max()) if n else 0.0
        g._version = snapshot["version"]
        # A freshly restored graph carries no per-slot mutation history,
        # so the earliest base version it can serve deltas from is its own.
        g._delta_floor = g._version
        return g

    def copy(self) -> "AdHocDigraph":
        """Deep copy (same propagation model object, copied arrays)."""
        g = AdHocDigraph.__new__(AdHocDigraph)
        g._prop = self._prop
        g._fs = self._fs
        g._dense = self._dense
        g._array = self._array
        g._sparse = self._sparse
        g._sparse_scalar = self._sparse_scalar
        g._sparse_auto = self._sparse_auto
        g._slotgrid = self._slotgrid
        g._pos = self._pos.copy()
        g._range = self._range.copy()
        g._adj = None if self._adj is None else self._adj.copy()
        g._ids = list(self._ids)
        g._ida = self._ida.copy()
        g._index = dict(self._index)
        g._c2 = None if self._c2 is None else self._c2.copy()
        if self._sparse:
            g._outr = [row.copy() for row in self._outr]
            g._inr = [row.copy() for row in self._inr]
            g._c2s = [dict(d) for d in self._c2s]
        else:
            g._outr = g._inr = g._c2s = None
        g._use_grid = self._use_grid
        g._grid = None if self._grid is None else self._grid.copy()
        g._grid_cell = self._grid_cell
        g._cell_live = self._cell_live
        g._max_range = self._max_range
        g._version = self._version
        g._touched = dict(self._touched)
        g._delta_floor = self._delta_floor
        g._blocks_shared = False
        g._grid_shared = False
        g._rows_cow = False
        g._owned_slots = set()
        g._cm_cache = None
        g._cm_version = -1
        g._memo = {}
        g._memo_version = -1
        g._crow_cache = {}
        g._crow_version = -1
        return g

    def fork(self) -> "AdHocDigraph":
        """Copy-on-write fork: a clone sharing the heavy conflict state.

        Both siblings keep referencing the same adjacency/C2 blocks
        (array/dict/dense cores), the same sparse rows and witness
        dicts (sparse core), and the same spatial grid; the first
        mutation on either side copies only what it touches — whole
        blocks for the dense cores, the individual rows of the mutated
        slots for the sparse core, the grid on its first geometric
        change.  Flat O(N) per-slot tables (positions, ranges, ids)
        are copied eagerly; the checkpoint-tree fork rate makes those
        copies noise next to the O(N²)/O(N+E) state being shared.

        Either sibling may keep mutating; results are byte-identical
        to a :meth:`copy`-based clone (pinned by the CoW aliasing
        tests).
        """
        g = AdHocDigraph.__new__(AdHocDigraph)
        g._prop = self._prop
        g._fs = self._fs
        g._dense = self._dense
        g._array = self._array
        g._sparse = self._sparse
        g._sparse_scalar = self._sparse_scalar
        g._sparse_auto = self._sparse_auto
        g._slotgrid = self._slotgrid
        g._pos = self._pos.copy()
        g._range = self._range.copy()
        g._ids = list(self._ids)
        g._ida = self._ida.copy()
        g._index = dict(self._index)
        # Heavy state transfers by reference; CoW flags arm both sides.
        g._adj = self._adj
        g._c2 = self._c2
        if self._adj is not None or self._c2 is not None:
            self._blocks_shared = True
            g._blocks_shared = True
        else:
            g._blocks_shared = False
        if self._sparse:
            g._outr = list(self._outr)
            g._inr = list(self._inr)
            g._c2s = list(self._c2s)
            # Every row is shared again after a fork — including rows a
            # previous fork had already privatized on this side.
            self._rows_cow = True
            self._owned_slots = set()
            g._rows_cow = True
            g._owned_slots = set()
        else:
            g._outr = g._inr = g._c2s = None
            g._rows_cow = False
            g._owned_slots = set()
        g._use_grid = self._use_grid
        g._grid = self._grid
        if self._grid is not None:
            self._grid_shared = True
            g._grid_shared = True
        else:
            g._grid_shared = False
        g._grid_cell = self._grid_cell
        g._cell_live = self._cell_live
        g._max_range = self._max_range
        g._version = self._version
        g._touched = dict(self._touched)
        g._delta_floor = self._delta_floor
        g._cm_cache = None
        g._cm_version = -1
        g._memo = {}
        g._memo_version = -1
        g._crow_cache = {}
        g._crow_version = -1
        return g

    # ------------------------------------------------------------------
    # Delta snapshots (O(changes) checkpoints)
    # ------------------------------------------------------------------
    def delta_snapshot(self, base_version: int) -> dict:
        """Serialize only the state touched since ``base_version``.

        Returns a JSON-able delta that :meth:`apply_delta` replays on a
        graph sitting exactly at ``base_version`` (typically a
        :meth:`fork` taken at that version), reproducing this graph's
        state byte-identically — including the CA2 witness counters,
        which are *not* serialized: they are a pure function of the
        final adjacency, so the applier reconstructs them through the
        same incremental kernels live mutation uses.  Chained deltas
        compose: ``delta(v0→v1)`` then ``delta(v1→v2)`` lands on the
        same state as ``delta(v0→v2)``.

        The per-slot dirty journal is overwrite-to-latest, so any base
        at or above :attr:`delta_floor` (graph creation, or the version
        a restore landed on) can be served; earlier bases raise
        :class:`ConfigurationError` because the history no longer
        exists.
        """
        from repro.errors import ConfigurationError

        if base_version > self._version:
            raise ConfigurationError(
                f"delta base version {base_version} is ahead of the graph "
                f"(version {self._version})"
            )
        if base_version < self._delta_floor:
            raise ConfigurationError(
                f"delta base version {base_version} predates this graph's "
                f"history (serveable floor {self._delta_floor})"
            )
        n = len(self._ids)
        dirty = sorted(
            s for s, v in self._touched.items() if v > base_version and s < n
        )
        slots = []
        for s in dirty:
            if self._sparse:
                out = [int(c) for c in self._outr[s].view().tolist()]
                inn = [int(c) for c in self._inr[s].view().tolist()]
            else:
                out = np.flatnonzero(self._adj[s, :n]).tolist()
                inn = np.flatnonzero(self._adj[:n, s]).tolist()
            slots.append(
                [
                    s,
                    int(self._ids[s]),
                    float(self._pos[s, 0]),
                    float(self._pos[s, 1]),
                    float(self._range[s]),
                    out,
                    inn,
                ]
            )
        return {
            "schema": 1,
            "kind": "digraph-delta",
            "base_version": int(base_version),
            "version": int(self._version),
            "n": n,
            "cell": self._cell_live if self._use_grid else None,
            "slots": slots,
        }

    def apply_delta(self, delta: dict) -> None:
        """Replay a :meth:`delta_snapshot` onto this graph.

        The graph must sit exactly at the delta's recorded base version
        — anything else means the delta was cut against a different
        state and would silently diverge, so a mismatch raises
        :class:`ConfigurationError` naming both versions.

        Application is four-phased: (A) unlink every dirty slot and
        every slot beyond the delta's population through the live
        incremental kernels, leaving the untouched induced subgraph;
        (B) adjust the population tables; (C) commit the dirty slots'
        final configurations and bring the spatial grid to the
        recorded cell size — maintained in place (O(dirty) removes and
        inserts) when the cell size is unchanged, rebuilt from scratch
        otherwise; (D) apply each dirty slot's final out- and
        in-rows through the same kernels, which reconstruct the CA2
        counters exactly (they are a pure function of the final
        adjacency, and the kernels maintain the invariant at every
        step, so any application order lands on identical bytes).
        """
        from repro.errors import ConfigurationError

        if delta.get("kind") != "digraph-delta":
            raise ConfigurationError("apply_delta() expects a delta_snapshot() dict")
        base = delta["base_version"]
        if base != self._version:
            raise ConfigurationError(
                f"delta was cut against base version {base}, but this graph "
                f"is at version {self._version}"
            )
        n0 = len(self._ids)
        n1 = delta["n"]
        records = delta["slots"]
        if not records and n1 == n0:
            # Version-only advance (e.g. events that net out to nothing
            # never happen today, but an empty delta is still valid).
            self._version = delta["version"]
            return
        self._own_dense_blocks()
        version = delta["version"]
        dirty = [rec[0] for rec in records]
        dirty_set = set(dirty)
        for s in range(n0, n1):
            if s not in dirty_set:
                raise ConfigurationError(
                    f"corrupt delta: grown slot {s} has no dirty record"
                )

        # Grid plan: when the delta's recorded cell size matches the
        # live grid's, the grid is maintained in place — O(dirty)
        # removes and inserts — instead of rebuilt over all N slots
        # (the rebuild, not the kernels, dominated apply_delta at
        # large N).  A cell-size change (regrid on the producer) or an
        # absent grid falls back to the full rebuild below.
        cell = delta["cell"] if self._use_grid else None
        incremental = (
            self._use_grid
            and self._grid is not None
            and cell is not None
            and float(cell) == self._grid.cell_size
        )
        if incremental:
            self._own_grid()

        # Phase A — unlink: retract every edge incident to a slot whose
        # content changes (or vanishes), through the incremental kernels
        # so the CA2 counters stay exact for the surviving subgraph.
        unlink = sorted(set(s for s in dirty if s < n0) | set(range(n1, n0)))
        if self._sparse:
            for s in unlink:
                self._sparse_unlink(s)
        elif self._dense:
            for s in unlink:
                self._adj[s, :n0] = False
                self._adj[:n0, s] = False
        else:
            zeros = np.zeros(n0, dtype=bool)
            row_apply = (
                self._apply_row_delta_array if self._array else self._apply_row_delta
            )
            col_apply = (
                self._apply_col_delta_array if self._array else self._apply_col_delta
            )
            for s in unlink:
                row_apply(s, zeros)
                col_apply(s, zeros)
        for s in unlink:
            if incremental:
                self._grid.remove(s if self._slotgrid else self._ids[s])
            self._index.pop(self._ids[s], None)

        # Phase B — population: shrink or grow the per-slot tables.
        if n1 < n0:
            del self._ids[n1:]
            if self._sparse:
                del self._outr[n1:]
                del self._inr[n1:]
                del self._c2s[n1:]
        elif n1 > n0:
            self._ensure_capacity(n1)
            self._ids.extend(0 for _ in range(n1 - n0))
            if self._sparse:
                self._ensure_sparse_slot(n1 - 1)

        # Phase C — configurations: commit each dirty slot's final
        # (id, position, range) and rebuild the spatial grid.
        for s, node_id, x, y, r, _out, _inn in records:
            if s >= n1:
                raise ConfigurationError(
                    f"corrupt delta: dirty slot {s} beyond population {n1}"
                )
            self._pos[s] = (x, y)
            self._range[s] = r
            self._ids[s] = node_id
            self._ida[s] = node_id
            self._index[node_id] = s
            self._touched[s] = version
            if incremental:
                self._grid.insert(s if self._slotgrid else node_id, float(x), float(y))
        self._max_range = float(self._range[:n1].max()) if n1 else 0.0
        if self._use_grid:
            self._cell_live = None if cell is None else float(cell)
        if self._use_grid and not incremental:
            if self._cell_live is not None and n1 and not (
                self._slotgrid and n1 < _GRID_LAZY_MIN and self._grid is None
            ):
                self._build_grid(self._cell_live)
            else:
                self._grid = None
                self._grid_shared = False

        # Phase D — edges: apply each dirty slot's final out-row and
        # in-row through the live kernels.  They diff against current
        # state, so interleaved dirty-dirty edges commit exactly once
        # no matter the order.
        if self._sparse:
            for s, _nid, _x, _y, _r, out, inn in records:
                self._sparse_apply_row(s, np.asarray(out, dtype=np.intp))
                self._sparse_apply_col(s, np.asarray(inn, dtype=np.intp))
        elif self._dense:
            for s, _nid, _x, _y, _r, out, inn in records:
                row = np.zeros(n1, dtype=bool)
                row[out] = True
                self._adj[s, :n1] = row
                col = np.zeros(n1, dtype=bool)
                col[inn] = True
                self._adj[:n1, s] = col
        else:
            row_apply = (
                self._apply_row_delta_array if self._array else self._apply_row_delta
            )
            col_apply = (
                self._apply_col_delta_array if self._array else self._apply_col_delta
            )
            for s, _nid, _x, _y, _r, out, inn in records:
                row = np.zeros(n1, dtype=bool)
                row[out] = True
                col = np.zeros(n1, dtype=bool)
                col[inn] = True
                row_apply(s, row)
                col_apply(s, col)
        self._version = version

    def state_nbytes(self) -> int:
        """Rough in-memory footprint of the conflict state, in bytes.

        Used by checkpoint eviction budgets; counts the heavy state
        (adjacency/C2 blocks or sparse rows + witness dicts) plus the
        flat per-slot tables, not Python object overhead.
        """
        total = self._pos.nbytes + self._range.nbytes + self._ida.nbytes
        if self._adj is not None:
            total += self._adj.nbytes
        if self._c2 is not None:
            total += self._c2.nbytes
        if self._sparse:
            n = len(self._ids)
            for s in range(n):
                total += self._outr[s].data.nbytes + self._inr[s].data.nbytes
                total += 64 * len(self._c2s[s])
        return total

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------
    def conflict_neighbor_ids(self, node_id: NodeId) -> set[NodeId]:
        """Nodes conflicting with ``node_id`` under CA1 ∪ CA2.

        CA1: an edge in either direction; CA2: a common out-neighbor.
        This is the hot query of every recoding strategy.  Incremental
        mode reads the maintained counter row; dense mode reads the
        per-event conflict matrix re-derived by
        :func:`repro.topology.conflicts.conflict_matrix`.  Results are
        memoized per topology version, so replaying one event against
        many strategies derives each conflict set once.
        """
        memo = self._query_memo()
        cached = memo.get(node_id)
        if _met.ENABLED:
            _met.REGISTRY.inc("core.memo.miss" if cached is None else "core.memo.hit")
        if cached is None:
            i = self._idx(node_id)
            n = len(self._ids)
            if self._sparse:
                cached = frozenset(self._ida[self._sparse_conflict_slots(i)].tolist())
                memo[node_id] = cached
                return set(cached)
            if self._dense:
                mask = self._dense_conflict_block()[i]
            else:
                a = self._adj
                mask = a[i, :n] | a[:n, i] | (self._c2[i, :n] > 0)
                mask[i] = False
            cached = frozenset(self._ida[:n][mask].tolist())
            memo[node_id] = cached
        return set(cached)

    def conflict_slots(self, slot: int) -> np.ndarray:
        """Slots conflicting with ``slot`` under CA1 ∪ CA2 (sorted).

        The slot-native counterpart of :meth:`conflict_neighbor_ids`:
        on the sparse core it unions the out-row, in-row and the C2
        witness keys — O(deg) work with no N-wide mask — which is what
        lets large-N event loops query conflicts at constant density
        without touching O(N) memory per query.  The dense-block cores
        derive it from their row masks; membership is identical.
        """
        if self._sparse:
            return self._sparse_conflict_slots(slot)
        n = len(self._ids)
        if self._dense:
            return np.flatnonzero(self._dense_conflict_block()[slot])
        a = self._adj
        mask = a[slot, :n] | a[:n, slot] | (self._c2[slot, :n] > 0)
        mask[slot] = False
        return np.flatnonzero(mask)

    def conflict_adjacency(self) -> tuple[list[NodeId], np.ndarray]:
        """``(ids, C)`` — the symmetric CA1 ∪ CA2 conflict matrix.

        ``ids`` is ascending; ``C`` is a copy safe to mutate.  The
        incremental mode assembles it from the maintained CA2 counters
        in O(N²) boolean work (no matmul); the dense mode returns the
        per-event re-derivation.  Whole-network consumers (the BBB
        recolor, clique bounds) use this instead of
        ``conflict_matrix(adjacency())``.  The assembled matrix is
        memoized per topology version (callers receive fresh copies).
        """
        memo = self._query_memo()
        cached = memo.get(_CONFLICT_ADJ_KEY)
        if cached is None:
            n = len(self._ids)
            order = sorted(range(n), key=lambda j: self._ids[j])
            ids = [self._ids[j] for j in order]
            if self._dense:
                block = self._dense_conflict_block()
            elif self._sparse:
                a = self._adj_block()
                block = a | a.T
                for u, entries in enumerate(self._c2s):
                    if entries:
                        block[u, list(entries)] = True
                np.fill_diagonal(block, False)
            else:
                a = self._adj[:n, :n]
                block = a | a.T | (self._c2[:n, :n] > 0)
                np.fill_diagonal(block, False)
            perm = np.asarray(order, dtype=np.intp)
            cached = (ids, block[np.ix_(perm, perm)])
            memo[_CONFLICT_ADJ_KEY] = cached
        ids, block = cached
        return list(ids), block.copy()

    # ------------------------------------------------------------------
    # Array-native query surface
    # ------------------------------------------------------------------
    # Slot-indexed variants of the id-based queries above.  A *slot* is
    # the node's row index in the contiguous storage blocks (``_pos``,
    # ``_adj``, ``_c2``); slots stay dense 0..n-1 under swap-delete, so
    # a node's slot is stable only between removals.  Batch consumers
    # (the bench's vectorized event loop, array color lanes) translate
    # ids to slots once per event and then work purely on index arrays.

    def slot_of(self, node_id: NodeId) -> int:
        """The storage slot of ``node_id`` (valid until the next removal)."""
        return self._idx(node_id)

    def slot_ids(self) -> np.ndarray:
        """Node ids by slot — ``slot_ids()[s]`` is slot ``s``'s id.

        A read-only int64 view over live slots; copy before storing.
        """
        n = len(self._ids)
        out = self._ida[:n]
        out.flags.writeable = False
        return out

    def out_slots(self, slot: int) -> np.ndarray:
        """Slots of ``slot``'s out-neighbors (ascending index array)."""
        if self._sparse:
            return self._outr[slot].values()
        n = len(self._ids)
        return self._adj[slot, :n].nonzero()[0]

    def in_slots(self, slot: int) -> np.ndarray:
        """Slots of ``slot``'s in-neighbors (ascending index array)."""
        if self._sparse:
            return self._inr[slot].values()
        n = len(self._ids)
        return self._adj[:n, slot].nonzero()[0]

    def v1_slots(self, slot: int) -> np.ndarray:
        """Slots of ``slot``'s closed in-neighborhood (``slot`` + in-neighbors).

        The "one-hop upstream vicinity" every event handler revisits:
        the nodes whose conflict rows an event at ``slot`` can change.
        Fused so the hot loop pays one column copy, one bit set and one
        ``nonzero`` instead of an ``in_slots`` + ``np.append`` round trip
        (sparse core: one sorted insertion into the in-row copy).
        """
        if self._sparse:
            row = self._inr[slot].view()
            k = len(row)
            pos = int(row.searchsorted(slot))
            out = np.empty(k + 1, dtype=np.intp)
            out[:pos] = row[:pos]
            out[pos] = slot
            out[pos + 1 :] = row[pos:]
            return out
        n = len(self._ids)
        col = self._adj[:n, slot].copy()
        col[slot] = True
        return col.nonzero()[0]

    def conflict_masks(self, slots: np.ndarray) -> np.ndarray:
        """Batched CA1 ∪ CA2 conflict rows for many slots at once.

        Returns a ``(k, n)`` boolean block whose row ``j`` marks the
        slots conflicting with ``slots[j]`` (diagonal cleared).  One
        fused boolean expression over the adjacency and witness blocks
        replaces ``k`` separate :meth:`conflict_neighbor_ids` calls —
        the array core's replacement for the per-node frozenset query
        in strategy inner loops.  The sparse core scatters its O(deg)
        conflict rows into the requested block (the result is O(k·N) by
        contract — large-N consumers should iterate
        :meth:`conflict_slots` instead).
        """
        s = np.asarray(slots, dtype=np.intp)
        n = len(self._ids)
        if self._sparse:
            rows = np.zeros((len(s), n), dtype=bool)
            for j, slot in enumerate(s.tolist()):
                rows[j, self._sparse_conflict_slots(slot)] = True
            return rows
        if self._dense:
            rows = self._dense_conflict_block()[s]
        else:
            a = self._adj
            rows = a[s, :n] | a[:n, s].T | (self._c2[s, :n] > 0)
            rows[_iota(len(s)), s] = False
        return rows

    def conflict_slot_lists(self, slots: np.ndarray) -> list[np.ndarray]:
        """Per-slot CA1 ∪ CA2 conflict arrays for many slots in one pass.

        Returns ``[conflict_slots(s) for s in slots]`` — same membership
        and the same sorted-ascending order — but on the sparse core the
        rows are **read-only and version-cached**: between two topology
        mutations every slot's row is derived at most once (neighboring
        V1 queries overlap heavily, so a round-commit consumer touching
        each slot ≈deg times pays the derivation once), and uncached
        slots are answered by **one** sort-and-dedup pass over their
        concatenated rows instead of one ``np.unique`` per slot — each
        slot's members are offset into a disjoint ``[j·n, (j+1)·n)``
        band, the union is deduplicated globally, and band boundaries
        are found with a single ``searchsorted``.  This is the batched
        V1 query of the large-N event loop; at ≈20 members per call the
        per-slot query overhead was a top-three profile line before
        batching.  Do not mutate the returned arrays (they are frozen
        and shared across calls); the dense-block cores fall back to
        the per-slot query — identical membership either way.
        """
        s = np.asarray(slots, dtype=np.intp)
        if not self._sparse or not len(s):
            return [self.conflict_slots(int(u)) for u in s.tolist()]
        cache = self._crow_cache
        if self._crow_version != self._version:
            cache = self._crow_cache = {}
            self._crow_version = self._version
        requested = s.tolist()
        members = [u for u in dict.fromkeys(requested) if u not in cache]
        if _met.ENABLED:
            _met.REGISTRY.inc("core.crow_cache.hit", len(requested) - len(members))
            _met.REGISTRY.inc("core.crow_cache.miss", len(members))
        if not members:
            return [cache[u] for u in requested]
        outr, inr, c2s = self._outr, self._inr, self._c2s
        n = len(self._ids)
        k = len(members)
        row_parts: list[np.ndarray] = []
        row_lens: list[int] = []
        key_lens: list[int] = []
        total_keys = 0
        for u in members:
            ov = outr[u].view()
            iv = inr[u].view()
            row_parts.append(ov)
            row_parts.append(iv)
            row_lens.append(ov.size + iv.size)
            m = len(c2s[u])
            key_lens.append(m)
            total_keys += m
        bands = np.arange(k, dtype=np.intp) * n
        rows_flat = np.concatenate(row_parts)
        rows_flat += np.repeat(bands, row_lens)
        if total_keys:
            # One fromiter over every member's witness keys beats one
            # array materialization per dict by a wide margin.
            keys_flat = np.fromiter(
                chain.from_iterable(c2s[u] for u in members),
                dtype=np.intp,
                count=total_keys,
            )
            keys_flat += np.repeat(bands, key_lens)
            flat = np.concatenate((rows_flat, keys_flat))
        else:
            flat = rows_flat
        if flat.size:
            # Explicit sort + adjacent-dedup: the bands are already
            # near-sorted runs, which quicksort exploits, and it avoids
            # np.unique's hash path (measured ~5x slower on these sizes).
            flat.sort()
            keep = np.empty(flat.size, dtype=bool)
            keep[0] = True
            np.not_equal(flat[1:], flat[:-1], out=keep[1:])
            merged = flat[keep]
            bounds = merged.searchsorted(bands[1:]).tolist()
            bounds.append(merged.size)
            lo = 0
            for j, hi in enumerate(bounds):
                row = merged[lo:hi] - j * n  # strips the band offset
                row.flags.writeable = False
                cache[members[j]] = row
                lo = hi
        else:
            for u in members:
                cache[u] = _EMPTY_SLOTS
        return [cache[u] for u in requested]

    def undirected_hop_distances(self, src: NodeId) -> dict[NodeId, int]:
        """BFS hop counts from ``src`` over the undirected support.

        Unreachable nodes are absent from the result.  Used for the
        k-hop vicinities of the CP strategy and for the >= 5 hops apart
        condition of parallel joins (Theorem 4.1.10).
        """
        n = len(self._ids)
        i = self._idx(src)
        dist = np.full(n, -1, dtype=np.int64)
        dist[i] = 0
        if self._sparse:
            # Frontier BFS over the CSR rows: O(E reached), no dense block.
            frontier_slots = [i]
            hops = 0
            while frontier_slots:
                hops += 1
                parts = []
                for u in frontier_slots:
                    parts.append(self._outr[u].view())
                    parts.append(self._inr[u].view())
                reached = np.unique(np.concatenate(parts)) if parts else _EMPTY_SLOTS
                fresh = reached[dist[reached] < 0]
                dist[fresh] = hops
                frontier_slots = fresh.tolist()
            return {self._ids[j]: int(dist[j]) for j in range(n) if dist[j] >= 0}
        undirected = self._adj[:n, :n] | self._adj[:n, :n].T
        frontier = np.zeros(n, dtype=bool)
        frontier[i] = True
        hops = 0
        while frontier.any():
            hops += 1
            reached = undirected[frontier].any(axis=0)
            fresh = reached & (dist < 0)
            dist[fresh] = hops
            frontier = fresh
        return {self._ids[j]: int(dist[j]) for j in range(n) if dist[j] >= 0}

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` (test/example interop only)."""
        import networkx as nx

        g = nx.DiGraph()
        for cfg in self.configs():
            g.add_node(cfg.node_id, x=cfg.x, y=cfg.y, tx_range=cfg.tx_range)
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _query_memo(self) -> dict:
        """The derived-query memo for the current topology version."""
        if self._memo_version != self._version:
            self._memo = {}
            self._memo_version = self._version
        return self._memo

    def _idx(self, node_id: NodeId) -> int:
        try:
            return self._index[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self._range)
        if needed <= cap:
            return
        new_cap = cap
        while new_cap < needed:
            new_cap *= 2
        pos = np.zeros((new_cap, 2), dtype=np.float64)
        rng = np.zeros(new_cap, dtype=np.float64)
        n = len(self._ids)
        pos[:n] = self._pos[:n]
        rng[:n] = self._range[:n]
        ida = np.zeros(new_cap, dtype=np.int64)
        ida[:n] = self._ida[:n]
        self._pos, self._range, self._ida = pos, rng, ida
        if self._adj is not None:
            adj = np.zeros((new_cap, new_cap), dtype=bool)
            adj[:n, :n] = self._adj[:n, :n]
            self._adj = adj
        if self._c2 is not None:
            c2 = np.zeros((new_cap, new_cap), dtype=np.int32)
            c2[:n, :n] = self._c2[:n, :n]
            self._c2 = c2

    # -- spatial grid ---------------------------------------------------
    def _grid_insert(self, slot: int, node_id: NodeId, x: float, y: float, tx_range: float) -> None:
        """Track ``slot`` in the spatial index (array core: maybe lazily).

        The array core indexes the node by ``slot``, the dict core by
        ``node_id``; cell geometry is identical either way.  While the
        array core's population is below ``_GRID_LAZY_MIN`` only the
        cell-size scalar is advanced — per-node upkeep would cost more
        than the full scans the small graph uses anyway — and the grid
        is bulk-built from the position block on first need.
        """
        if self._grid_cell is not None:
            if self._cell_live is None:
                self._cell_live = self._grid_cell  # explicit cell size wins
        else:
            live = self._cell_live
            if live is None or tx_range > _REGRID_FACTOR * live:
                # Regrid rule: a new maximum range outgrowing the cell
                # re-cells the grid so disc queries stay O(1) cells
                # (e.g. the paper's raisefactor sweep).
                self._cell_live = float(tx_range)
        if self._grid is None:
            if self._slotgrid and len(self._ids) < _GRID_LAZY_MIN:
                return
            self._build_grid(self._cell_live)
            return
        self._own_grid()
        self._grid.insert(slot if self._slotgrid else node_id, float(x), float(y))
        if self._grid.cell_size != self._cell_live:
            self._build_grid(self._cell_live)

    def _build_grid(self, cell: float) -> None:
        """(Re)build the spatial index over all live slots at ``cell`` size."""
        n = len(self._ids)
        if self._slotgrid:
            grid: UniformGridIndex | SlotGridIndex = SlotGridIndex(cell)
            for slot in range(n):
                grid.insert(slot, float(self._pos[slot, 0]), float(self._pos[slot, 1]))
        else:
            grid = UniformGridIndex(cell)
            for slot in range(n):
                grid.insert(self._ids[slot], float(self._pos[slot, 0]), float(self._pos[slot, 1]))
        self._grid = grid
        self._grid_shared = False

    def _candidate_slots(self, i: int, radius: float) -> np.ndarray | None:
        """Slots of nodes within ``radius`` of slot ``i`` (grid superset).

        ``None`` means the grid is unavailable (dense mode, non-disc
        propagation, or an empty graph) and the caller must scan all N.
        The array core reads slot arrays straight out of the grid
        buckets; the dict core translates the id list through the index
        dict — same membership, so downstream masks are identical.
        """
        if not self._use_grid or self._grid is None:
            return None
        x, y = self._pos[i]
        if self._slotgrid:
            return self._grid.candidate_slots(float(x), float(y), radius)
        ids = self._grid.candidates_in_box(float(x), float(y), radius)
        index = self._index
        return np.asarray([index[v] for v in ids], dtype=np.intp)

    # -- edge-mask computation ------------------------------------------
    def _coverage_mask(self, i: int) -> np.ndarray:
        """Out-edge mask of slot ``i`` (which targets does it cover?)."""
        n = len(self._ids)
        r = float(self._range[i])
        cand = self._candidate_slots(i, r)
        if cand is None:
            mask = self._prop.coverage(self._pos[i], r, self._pos[:n]).copy()
        else:
            mask = np.zeros(n, dtype=bool)
            if cand.size:
                covered = self._prop.coverage(self._pos[i], r, self._pos[cand])
                mask[cand[covered]] = True
        mask[i] = False
        return mask

    def _covered_mask(self, i: int) -> np.ndarray:
        """In-edge mask of slot ``i`` (which sources cover it?).

        The grid query uses the current maximum range as its radius: any
        source whose disc reaches ``i`` lies within that distance.
        """
        n = len(self._ids)
        cand = self._candidate_slots(i, float(self._range[:n].max())) if n else None
        if cand is None:
            mask = self._prop.covered_by(self._pos[i], self._pos[:n], self._range[:n]).copy()
        else:
            mask = np.zeros(n, dtype=bool)
            if cand.size:
                covered = self._prop.covered_by(
                    self._pos[i], self._pos[cand], self._range[cand]
                )
                mask[cand[covered]] = True
        mask[i] = False
        return mask

    # -- array-core edge recomputation ----------------------------------
    def _refresh_edges_array(self, i: int) -> None:
        """Recompute slot ``i``'s out- and in-edges (array fast path).

        One candidate fetch at the current maximum range (any node that
        covers or is covered by ``i`` lies within it) and one pairwise
        distance pass answer both directions, then the batched CA1/CA2
        delta appliers fold the changes into the adjacency block and
        witness counters.  Byte-identical to the dict core's separate
        ``_coverage_mask`` / ``_covered_mask`` queries.
        """
        n = len(self._ids)
        cand = self._candidate_slots_array(i)
        free_space = self._fs
        if cand is None:
            if free_space:
                # Inline free-space kernel: identical arithmetic to
                # within_disc / covered_by (same subtraction, einsum and
                # closed-disc compares), one distance pass, no model
                # dispatch.
                diff = self._pos[:n] - self._pos[i]
                d2 = np.einsum("ij,ij->i", diff, diff)
                r = float(self._range[i])
                new_row = d2 <= r * r
                rr = self._range[:n]
                new_col = d2 <= rr * rr
            else:
                cov, covby = pairwise_masks(
                    self._prop, self._pos[i], float(self._range[i]), self._pos[:n], self._range[:n]
                )
                new_row = np.asarray(cov, dtype=bool).copy()
                new_col = np.asarray(covby, dtype=bool).copy()
        else:
            new_row = np.zeros(n, dtype=bool)
            new_col = np.zeros(n, dtype=bool)
            if cand.size:
                if free_space:
                    diff = self._pos[cand] - self._pos[i]
                    d2 = np.einsum("ij,ij->i", diff, diff)
                    r = float(self._range[i])
                    cov = d2 <= r * r
                    rr = self._range[cand]
                    covby = d2 <= rr * rr
                else:
                    cov, covby = pairwise_masks(
                        self._prop,
                        self._pos[i],
                        float(self._range[i]),
                        self._pos[cand],
                        self._range[cand],
                    )
                new_row[cand[cov]] = True
                new_col[cand[covby]] = True
        new_row[i] = False
        new_col[i] = False
        self._apply_row_delta_array(i, new_row)
        self._apply_col_delta_array(i, new_col)

    def _insert_edges_array(self, i: int) -> None:
        """Create slot ``i``'s edges on join (array fast path).

        The join specialization of :meth:`_refresh_edges_array`: the
        fresh slot's row, column and witness counters are all zero, so
        the old/new comparisons degenerate — every out-edge contributes
        ``+1`` (the witness counts with ``i`` are straight sums over the
        receivers' columns) and the in-neighbor clique is asserted
        without a retraction.  Same arithmetic as the general deltas on
        an empty old state, so the result is byte-identical.
        """
        if not self._fs or self._candidate_slots_array(i) is not None:
            self._refresh_edges_array(i)
            return
        n = len(self._ids)
        diff = self._pos[:n] - self._pos[i]
        d2 = np.einsum("ij,ij->i", diff, diff)
        r = float(self._range[i])
        new_row = d2 <= r * r
        rr = self._range[:n]
        new_col = d2 <= rr * rr
        new_row[i] = False
        new_col[i] = False
        a = self._adj
        c2 = self._c2
        idx = new_row.nonzero()[0]
        if idx.size:
            cnt = a[:n, idx].sum(axis=1, dtype=np.int32)
            # cnt[i] is 0 by construction: row i is still empty.
            c2[i, :n] = cnt
            c2[:n, i] = cnt
        a[i, :n] = new_row
        new = new_col.nonzero()[0]
        if new.size:
            c2[new[:, None], new] += 1
            c2[new, new] -= 1
        a[:n, i] = new_col

    def _candidate_slots_array(self, i: int) -> np.ndarray | None:
        """Candidate fetch for the array refresh; ``None`` = scan all N.

        Uses the cached maximum range as the radius (covers both edge
        directions) and tells the grid to bail out to a full scan when
        at least 3/4 of all slots fall in the query box — at that
        density the gather costs more than testing everyone, and the
        masks are identical either way (grid candidates are supersets).
        When the whole population occupies no more cells than a single
        query ring (~5×5 with the guard), no query can be selective and
        the grid is skipped outright.
        """
        if not self._use_grid or self._grid is None:
            return None
        if self._grid.cell_count <= _MIN_SELECTIVE_CELLS:
            return None
        n = len(self._ids)
        x, y = self._pos[i]
        cand = self._grid.candidate_slots(
            float(x), float(y), self._max_range, cutoff=max(1, (3 * n) // 4)
        )
        if _met.ENABLED:
            _count_grid_result(cand)
        return cand

    def _apply_row_delta_array(self, i: int, new_row: np.ndarray) -> None:
        """Batched out-edge replacement for slot ``i`` (array core).

        Same counter math as :meth:`_apply_row_delta` — when ``i``
        starts (stops) covering a receiver ``w``, every other
        in-neighbor of ``w`` gains (loses) one CA2 witness with ``i`` —
        but fused into a single signed matvec: gather the changed
        receivers' in-neighbor columns once and multiply by ±1 per
        receiver.  Exact integer arithmetic, so the counters are
        byte-identical to the dict core's two-pass form.
        """
        n = len(self._ids)
        a = self._adj
        old_row = a[i, :n]
        idx = (old_row != new_row).nonzero()[0]
        if idx.size:
            sign = np.where(new_row[idx], np.int32(1), np.int32(-1))
            cnt = a[:n, idx] @ sign
            cnt[i] = 0  # no (i, i) pair; i's own row is the one changing
            c2 = self._c2
            c2[i, :n] += cnt
            c2[:n, i] += cnt
        a[i, :n] = new_row

    def _apply_col_delta_array(self, i: int, new_col: np.ndarray) -> None:
        """Batched in-edge replacement for slot ``i`` (array core).

        The in-neighbor set of ``i`` changes from ``old`` to ``new``;
        a pair ``(u, v)`` holds a CA2 witness at ``i`` iff both are
        in-neighbors, so the counter block update is "retract the old
        clique, assert the new one": ``C2[old × old] -= 1`` then
        ``C2[new × new] += 1``.  Pairs kept in both cancel exactly
        (integer adds commute), so the result is byte-identical to any
        finer-grained delta, with just two broadcast writes plus two
        diagonal corrections (the diagonal stays 0 by convention).
        """
        n = len(self._ids)
        a = self._adj
        old_col = a[:n, i]
        changed = old_col != new_col
        if changed.any():
            c2 = self._c2
            old = old_col.nonzero()[0]
            new = new_col.nonzero()[0]
            if old.size:
                c2[old[:, None], old] -= 1
                c2[old, old] += 1
            if new.size:
                c2[new[:, None], new] += 1
                c2[new, new] -= 1
        a[:n, i] = new_col

    # -- incremental CA2 maintenance ------------------------------------
    def _apply_row_delta(self, i: int, new_row: np.ndarray) -> None:
        """Replace slot ``i``'s out-edges, updating the CA2 counters.

        When ``i`` starts (stops) covering a receiver ``w``, every other
        in-neighbor of ``w`` gains (loses) one common-out-neighbor
        witness with ``i`` — counted vectorized from ``w``'s column.
        """
        n = len(self._ids)
        a = self._adj
        old_row = a[i, :n]
        added = np.flatnonzero(new_row & ~old_row)
        removed = np.flatnonzero(old_row & ~new_row)
        if added.size or removed.size:
            cnt = a[:n, added].sum(axis=1, dtype=np.int32)
            cnt -= a[:n, removed].sum(axis=1, dtype=np.int32)
            cnt[i] = 0  # no (i, i) pair; i's own row is the one changing
            c2 = self._c2
            c2[i, :n] += cnt
            c2[:n, i] += cnt
        a[i, :n] = new_row

    def _apply_col_delta(self, i: int, new_col: np.ndarray) -> None:
        """Replace slot ``i``'s in-edges, updating the CA2 counters.

        The in-neighbors of receiver ``i`` form a CA2 clique: retract
        the old clique's witness counts, assert the new one's.
        """
        n = len(self._ids)
        a = self._adj
        c2 = self._c2
        old = np.flatnonzero(a[:n, i])
        new = np.flatnonzero(new_col)
        if old.size > 1:
            c2[np.ix_(old, old)] -= 1
            c2[old, old] += 1
        if new.size > 1:
            c2[np.ix_(new, new)] += 1
            c2[new, new] -= 1
        a[:n, i] = new_col

    # -- sparse (CSR rows) core -----------------------------------------
    def _activate_sparse(self) -> None:
        """Switch the core flags and storage to sparse (no data carried)."""
        self._sparse = True
        self._array = False
        self._sparse_auto = False
        self._slotgrid = True
        self._adj = None
        self._c2 = None
        self._outr = []
        self._inr = []
        self._c2s = []

    def _ensure_sparse_slot(self, slot: int) -> None:
        """Grow the per-slot row/witness tables to include ``slot``."""
        outr, inr, c2s = self._outr, self._inr, self._c2s
        while len(outr) <= slot:
            if self._rows_cow:
                # Fresh rows are private to this graph, never shared
                # with a fork sibling.
                self._owned_slots.add(len(outr))
            outr.append(_SlotRow())
            inr.append(_SlotRow())
            c2s.append({})

    def _promote_to_sparse(self) -> None:
        """Convert the dense array-core blocks into sparse rows in place.

        Triggered by :meth:`add_node` when a default-knobbed array-core
        graph reaches ``_SPARSE_AUTO_MIN`` nodes: from here on the
        O(N²) blocks would dominate memory and every C2 delta would
        touch full rows.  The conversion is pure re-representation —
        queries, snapshots and subsequent events are byte-identical to
        both the array core (had it continued) and a from-scratch
        sparse graph.  The slot grid is already slot-keyed and carries
        over untouched.
        """
        n = len(self._ids)
        a, c2 = self._adj, self._c2
        self._activate_sparse()
        if not n:
            return
        self._ensure_sparse_slot(n - 1)
        for i in range(n):
            self._outr[i].set_sorted(np.flatnonzero(a[i, :n]))
            self._inr[i].set_sorted(np.flatnonzero(a[:n, i]))
        rows, cols = np.nonzero(c2[:n, :n])
        vals = c2[rows, cols]
        c2s = self._c2s
        for u, v, count in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            c2s[u][v] = count

    def _restore_sparse_state(
        self, n: int, edges: list, c2: list | None, *, triples: bool = False
    ) -> None:
        """Populate the sparse rows/witness dicts from snapshot fields.

        ``triples`` selects the schema-3 form (``[u, v, count]`` rows)
        — it cannot be sniffed from the payload, because a dense N×N
        list at ``n == 3`` is shape-identical to a triple list.
        """
        if not n:
            return
        self._ensure_sparse_slot(n - 1)
        out_lists: list[list[int]] = [[] for _ in range(n)]
        in_lists: list[list[int]] = [[] for _ in range(n)]
        for src, dst in edges:
            out_lists[src].append(dst)
            in_lists[dst].append(src)
        for slot in range(n):
            # snapshot edges are row-major with ascending columns
            self._outr[slot].set_sorted(np.asarray(out_lists[slot], dtype=np.intp))
            self._inr[slot].set_sorted(np.asarray(sorted(in_lists[slot]), dtype=np.intp))
        c2s = self._c2s
        if c2 is None:
            # Dense-mode snapshot (no counters recorded): re-derive them
            # from the in-rows — each receiver's in-clique contributes
            # one witness per ordered pair.
            for slot in range(n):
                members = self._inr[slot].view().tolist()
                for a in members:
                    da = c2s[a]
                    for b in members:
                        if b != a:
                            _c2_inc(da, b)
            return
        if triples:
            for u, v, count in c2:
                c2s[u][v] = int(count)
            return
        arr = np.asarray(c2, dtype=np.int64)
        rows, cols = np.nonzero(arr)
        vals = arr[rows, cols]
        for u, v, count in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            c2s[u][v] = int(count)

    def _adj_block(self) -> np.ndarray:
        """Densify the sparse out-rows into an (n, n) boolean block.

        O(N²) by contract — only whole-network consumers (``adjacency``,
        ``conflict_adjacency``, snapshots) call it, never per-event paths.
        """
        n = len(self._ids)
        block = np.zeros((n, n), dtype=bool)
        for i in range(n):
            block[i, self._outr[i].view()] = True
        return block

    def _c2_block(self) -> np.ndarray:
        """Densify the per-slot witness dicts into an (n, n) int32 block."""
        n = len(self._ids)
        block = np.zeros((n, n), dtype=np.int32)
        for u, entries in enumerate(self._c2s):
            if entries:
                block[u, list(entries)] = list(entries.values())
        return block

    def _sparse_candidates(self, i: int, radius: float) -> np.ndarray | None:
        """Per-cell candidate gather for slot ``i``; ``None`` = full scan.

        Streams the occupied cell blocks near ``i`` from
        :meth:`SlotGridIndex.iter_candidate_blocks` and bails out to a
        full scan the moment the running count reaches the 3/4-of-N
        selectivity cutoff — so an unselective query never concatenates
        (and a selective one never allocates an N-wide mask; the exact
        filter runs on the gathered index array directly).  Requires the
        propagation model to evaluate targets elementwise
        (``elementwise`` contract in ``topology/propagation.py``), which
        every disc-bounded model satisfies.
        """
        if not self._use_grid or self._grid is None:
            return None
        grid = self._grid
        if grid.cell_count <= _MIN_SELECTIVE_CELLS:
            return None
        if not getattr(self._prop, "elementwise", True):
            return None
        n = len(self._ids)
        cutoff = max(1, (3 * n) // 4)
        x, y = self._pos[i]
        if self._sparse_scalar:
            # PR 7 oracle: stream per-cell blocks, bail at the cutoff.
            blocks: list[np.ndarray] = []
            total = 0
            for block in grid.iter_candidate_blocks(float(x), float(y), radius):
                total += len(block)
                if total >= cutoff:
                    if _met.ENABLED:
                        _count_grid_result(None)
                    return None
                blocks.append(block)
            out = np.concatenate(blocks) if blocks else _EMPTY_SLOTS
            if _met.ENABLED:
                _count_grid_result(out)
            return out
        # Batched kernel: the grid concatenates the same candidate
        # blocks itself (identical membership and cutoff semantics,
        # pinned by tests/geometry) without the generator round trips
        # and per-block flag writes of the streaming form.
        cand = grid.candidate_slots(float(x), float(y), radius, cutoff=cutoff)
        if _met.ENABLED:
            _count_grid_result(cand)
        return cand

    def _sparse_edge_sets(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Final (out, in) slot sets of ``i`` under the current geometry.

        Sorted ascending, ``i`` excluded.  One candidate gather at the
        cached maximum range answers both directions (any node that
        covers or is covered by ``i`` lies within it), mirroring the
        array core's fused refresh; the fallback full scan computes the
        same membership, so downstream deltas are identical either way.
        """
        n = len(self._ids)
        r = float(self._range[i])
        cand = self._sparse_candidates(i, self._max_range)
        if cand is None:
            pos = self._pos[:n]
            if self._fs:
                diff = pos - self._pos[i]
                d2 = np.einsum("ij,ij->i", diff, diff)
                cov = d2 <= r * r
                rr = self._range[:n]
                covby = d2 <= rr * rr
            else:
                cov, covby = pairwise_masks(self._prop, self._pos[i], r, pos, self._range[:n])
                cov = np.asarray(cov, dtype=bool).copy()
                covby = np.asarray(covby, dtype=bool).copy()
            cov[i] = False
            covby[i] = False
            return np.flatnonzero(cov), np.flatnonzero(covby)
        if not cand.size:
            return _EMPTY_SLOTS.copy(), _EMPTY_SLOTS.copy()
        if self._fs:
            diff = self._pos[cand] - self._pos[i]
            d2 = np.einsum("ij,ij->i", diff, diff)
            cov = d2 <= r * r
            rr = self._range[cand]
            covby = d2 <= rr * rr
        else:
            cov, covby = pairwise_masks(
                self._prop, self._pos[i], r, self._pos[cand], self._range[cand]
            )
        out = cand[cov]
        inn = cand[covby]
        out = np.sort(out[out != i])
        inn = np.sort(inn[inn != i])
        return out, inn

    def _bulk_edge_sets(
        self, slots: list[int]
    ) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
        """Final (out, in) edge sets of many slots from one bucketed sweep.

        The streaming kernel behind :meth:`bulk_join` and the round
        batcher: the dirty slots are grouped by grid cell, each occupied
        cell makes **one** candidate-window gather
        (:meth:`SlotGridIndex.candidate_slots_cell`) and **one** block
        distance pass (:func:`block_masks`) for all its members, and the
        per-member exact filters cut the shared superset down — so a
        whole join round streams cell by cell without materializing a
        per-node candidate array per event, and co-located joiners share
        their gather.  Every subtraction and comparison is the same
        IEEE-754 operation :meth:`_sparse_edge_sets` performs for the
        corresponding pair, and both candidate windows are supersets of
        the exact disc, so the filtered membership is byte-identical to
        the per-slot path.  Unselective cells (the 3n/4 cutoff), scalar
        mode (the PR 7 oracle), non-elementwise models and gridless
        graphs all fall back to that path.
        """
        new_out: dict[int, np.ndarray] = {}
        new_in: dict[int, np.ndarray] = {}
        grid = self._grid
        if (
            self._sparse_scalar
            or not self._use_grid
            or grid is None
            or grid.cell_count <= _MIN_SELECTIVE_CELLS
            or not getattr(self._prop, "elementwise", True)
        ):
            for i in slots:
                new_out[i], new_in[i] = self._sparse_edge_sets(i)
            return new_out, new_in
        n = len(self._ids)
        cutoff = max(1, (3 * n) // 4)
        radius = self._max_range
        pos, rng = self._pos, self._range
        groups: dict[tuple[int, int], list[int]] = {}
        for i in slots:
            groups.setdefault(grid.cell_of(i), []).append(i)
        for (cx, cy), members in groups.items():
            cand = grid.candidate_slots_cell(cx, cy, radius, cutoff=cutoff)
            if _met.ENABLED:
                _count_grid_result(cand)
            if cand is None:
                for i in members:
                    new_out[i], new_in[i] = self._sparse_edge_sets(i)
                continue
            g = np.asarray(members, dtype=np.intp)
            ps = pos[g]
            rs = rng[g]
            cps = pos[cand]
            crs = rng[cand]
            if self._fs:
                diff = cps[None, :, :] - ps[:, None, :]
                d2 = np.einsum("gcj,gcj->gc", diff, diff)
                cov = d2 <= (rs * rs)[:, None]
                covby = d2 <= (crs * crs)[None, :]
            else:
                cov, covby = block_masks(self._prop, ps, rs, cps, crs)
            for j, i in enumerate(members):
                o = cand[cov[j]]
                new_out[i] = np.sort(o[o != i])
                s = cand[covby[j]]
                new_in[i] = np.sort(s[s != i])
        return new_out, new_in

    def _sparse_out_set(self, i: int) -> np.ndarray:
        """Final out slot set of ``i`` only (power changes: in-edges fixed)."""
        n = len(self._ids)
        r = float(self._range[i])
        cand = self._sparse_candidates(i, r)
        if cand is None:
            mask = np.asarray(
                self._prop.coverage(self._pos[i], r, self._pos[:n]), dtype=bool
            ).copy()
            mask[i] = False
            return np.flatnonzero(mask)
        if not cand.size:
            return _EMPTY_SLOTS.copy()
        covered = np.asarray(self._prop.coverage(self._pos[i], r, self._pos[cand]), dtype=bool)
        out = cand[covered]
        return np.sort(out[out != i])

    def _sparse_conflict_slots(self, i: int) -> np.ndarray:
        """CA1 ∪ CA2 conflict slots of ``i``: out ∪ in ∪ witness keys."""
        out = self._outr[i].view()
        inn = self._inr[i].view()
        entries = self._c2s[i]
        if entries:
            keys = np.fromiter(entries.keys(), dtype=np.intp, count=len(entries))
            return np.unique(np.concatenate((out, inn, keys)))
        return np.union1d(out, inn)

    def _sparse_apply_row(self, i: int, new_out: np.ndarray) -> None:
        """Replace slot ``i``'s out-row, batching the C2 witness deltas.

        When ``i`` starts (stops) covering a receiver ``w``, every other
        in-neighbor of ``w`` gains (loses) one common-out-neighbor
        witness with ``i``.  The batched kernel aggregates those deltas
        *per co-parent* before touching any dict: the changed receivers'
        in-rows are concatenated into one flat slot array, one
        ``np.unique`` collapses them to distinct co-parents, and signed
        occurrence counts (``np.bincount`` over the unique inverse —
        grouped ``np.add.at``-style accumulation) become one merged
        update per ``(i, u)`` pair instead of one dict call per witness.
        Exact integer arithmetic and the same never-store-zero /
        fail-on-negative invariant as :func:`_c2_dec`, so counters stay
        byte-identical to the scalar oracle
        (:meth:`_sparse_apply_row_scalar`).
        """
        if self._sparse_scalar:
            self._sparse_apply_row_scalar(i, new_out)
            return
        self._own_slot(i)
        outr, inr, c2s = self._outr, self._inr, self._c2s
        row_i = outr[i]
        old_out = row_i.view()
        if old_out.size:
            added = np.setdiff1d(new_out, old_out, assume_unique=True)
            removed = np.setdiff1d(old_out, new_out, assume_unique=True)
        else:
            added, removed = new_out, old_out
        if added.size or removed.size:
            # Gather every changed receiver's co-parents.  Removals drop
            # ``i`` from the in-row first (the remaining members are the
            # losers); additions read the row before ``i`` joins it (the
            # existing members are the gainers) — their structural
            # inserts are deferred below, because the gathered views
            # alias the rows' live buffers until the concatenate copies.
            added_list = added.tolist()
            parts: list[np.ndarray] = []
            gained = 0
            for w in added_list:
                v = inr[w].view()
                if v.size:
                    parts.append(v)
                    gained += v.size
            for w in removed.tolist():
                self._own_slot(w)
                row = inr[w]
                row.remove(i)
                v = row.view()
                if v.size:
                    parts.append(v)
            if parts:
                flat = np.concatenate(parts)
                uniq, inv = np.unique(flat, return_inverse=True)
                delta = np.bincount(inv[:gained], minlength=uniq.size)
                delta -= np.bincount(inv[gained:], minlength=uniq.size)
                di = c2s[i]
                get_i = di.get
                for u, d in zip(uniq.tolist(), delta.tolist()):
                    if d == 0:
                        continue  # gains and losses at u cancelled exactly
                    left = get_i(u, 0) + d
                    if left > 0:
                        di[u] = left
                    elif left == 0:
                        del di[u]
                    else:  # a witness count went negative: bookkeeping bug
                        raise KeyError(u)
                    self._own_slot(u)
                    du = c2s[u]
                    left = du.get(i, 0) + d
                    if left > 0:
                        du[i] = left
                    elif left == 0:
                        del du[i]
                    else:
                        raise KeyError(i)
            for w in added_list:
                self._own_slot(w)
                inr[w].insert(i)
        row_i.set_sorted(new_out)

    def _sparse_apply_row_scalar(self, i: int, new_out: np.ndarray) -> None:
        """The PR 7 per-witness form of :meth:`_sparse_apply_row`.

        One dict operation per ``(pair, direction)`` witness delta —
        kept verbatim as the byte-identity oracle the batched kernel is
        pinned against, and as the same-machine baseline behind the
        bench's ``speedup_vs_pr7`` ratio.
        """
        self._own_slot(i)
        outr, inr, c2s = self._outr, self._inr, self._c2s
        old_out = outr[i].view()
        added = np.setdiff1d(new_out, old_out, assume_unique=True)
        removed = np.setdiff1d(old_out, new_out, assume_unique=True)
        if added.size or removed.size:
            di = c2s[i]
            for w in removed.tolist():
                self._own_slot(w)
                row = inr[w]
                row.remove(i)
                for u in row.view().tolist():
                    self._own_slot(u)
                    _c2_dec(di, u)
                    _c2_dec(c2s[u], i)
            for w in added.tolist():
                self._own_slot(w)
                row = inr[w]
                for u in row.view().tolist():
                    self._own_slot(u)
                    _c2_inc(di, u)
                    _c2_inc(c2s[u], i)
                row.insert(i)
        outr[i].set_sorted(new_out)

    def _sparse_apply_col(self, i: int, new_in: np.ndarray) -> None:
        """Replace slot ``i``'s in-row: reconcile the receiver clique."""
        self._own_slot(i)
        outr, inr = self._outr, self._inr
        old_in = inr[i].values()
        self._reconcile_receiver(i, old_in, new_in)
        if old_in.size:
            arrived = np.setdiff1d(new_in, old_in, assume_unique=True)
            departed = np.setdiff1d(old_in, new_in, assume_unique=True)
        else:  # join fast path: every in-neighbor is new
            arrived, departed = new_in, old_in
        for u in arrived.tolist():
            self._own_slot(u)
            outr[u].insert(i)
        for u in departed.tolist():
            self._own_slot(u)
            outr[u].remove(i)
        inr[i].set_sorted(new_in)

    def _reconcile_receiver(self, w: int, old: np.ndarray, new: np.ndarray) -> None:
        """Fused C2 update for receiver ``w``'s in-set change old → new.

        The in-neighbors of ``w`` form a CA2 clique; with ``A = new \\
        old`` (arrivals), ``R = old \\ new`` (departures) and ``K = old
        ∩ new`` (keepers), the ordered-pair witness deltas are exactly:
        retract ``(r, u)`` for every ``r ∈ R, u ∈ old \\ {r}`` plus
        ``(k, r)`` for every ``k ∈ K, r ∈ R``; assert the mirror-image
        pairs over ``new`` and ``A``.  Pairs among the keepers cancel —
        they are never touched — so the work is O((|A|+|R|)·deg(w))
        dict operations, not a clique-sized broadcast.
        """
        if len(old) == len(new) and np.array_equal(old, new):
            return
        c2s = self._c2s
        if old.size:
            added = np.setdiff1d(new, old, assume_unique=True)
            removed = np.setdiff1d(old, new, assume_unique=True)
            kept = np.setdiff1d(old, removed, assume_unique=True).tolist()
        else:  # join fast path: the whole new clique is asserted
            added, removed, kept = new, old, []
        olds = old.tolist()
        for r in removed.tolist():
            self._own_slot(r)
            dr = c2s[r]
            for u in olds:
                if u != r:
                    _c2_dec(dr, u)
            for k in kept:
                self._own_slot(k)
                _c2_dec(c2s[k], r)
        news = new.tolist()
        if self._sparse_scalar:
            for a in added.tolist():
                self._own_slot(a)
                da = c2s[a]
                for u in news:
                    if u != a:
                        _c2_inc(da, u)
                for k in kept:
                    self._own_slot(k)
                    _c2_inc(c2s[k], a)
            return
        for a in added.tolist():
            # Assertions only ever increase counters, so the whole
            # member list can be bulk-counted at C speed; the one
            # self-count (``a ∈ news``) is backed out by hand — the
            # diagonal is never stored, so backing it out either
            # restores the prior entry or deletes the fresh ``+1``.
            self._own_slot(a)
            da = c2s[a]
            _count_elements(da, news)
            left = da[a] - 1
            if left:
                da[a] = left
            else:
                del da[a]
            for k in kept:
                self._own_slot(k)
                _c2_inc(c2s[k], a)

    def _sparse_unlink(self, i: int) -> None:
        """Retract slot ``i``'s conflict contributions before removal.

        The receiver clique at ``i`` dissolves (fused retraction), the
        incident rows drop ``i``, and every witness pair involving ``i``
        vanishes wholesale by dropping its dict and the mirror keys —
        no per-receiver retraction needed for pairs that die with the
        node.
        """
        self._own_slot(i)
        outr, inr, c2s = self._outr, self._inr, self._c2s
        old_in = inr[i].values()
        self._reconcile_receiver(i, old_in, _EMPTY_SLOTS)
        for u in old_in.tolist():
            self._own_slot(u)
            outr[u].remove(i)
        inr[i].clear()
        for w in outr[i].view().tolist():
            self._own_slot(w)
            inr[w].remove(i)
        outr[i].clear()
        entries = c2s[i]
        for u in entries:
            self._own_slot(u)
            del c2s[u][i]
        c2s[i] = {}

    def _sparse_rename_slot(self, last: int, i: int) -> None:
        """Renumber slot ``last`` to the vacated ``i`` across all rows.

        The sparse half of the swap-delete: the moved node's own row
        objects transfer by reference, and every referencing row and
        witness dict swaps the ``last`` entry for ``i``.  ``i`` must
        already be fully unlinked.
        """
        outr, inr, c2s = self._outr, self._inr, self._c2s
        row = outr[last]
        for w in row.view().tolist():
            self._own_slot(w)
            inr[w].replace(last, i)
        col = inr[last]
        for u in col.view().tolist():
            self._own_slot(u)
            outr[u].replace(last, i)
        entries = c2s[last]
        for v in entries:
            self._own_slot(v)
            mirror = c2s[v]
            mirror[i] = mirror.pop(last)
        outr[i] = row
        inr[i] = col
        c2s[i] = entries
        if self._rows_cow:
            # The moved node's row objects transferred by reference:
            # slot ``i`` inherits slot ``last``'s ownership status.
            if last in self._owned_slots:
                self._owned_slots.discard(last)
                self._owned_slots.add(i)
            else:
                self._owned_slots.discard(i)

    def _flush_round_batch(self, batch: list, deltas: list[TopologyDelta]) -> None:
        """Commit a contiguous join/move run as one batched mutation.

        The sparse half of :meth:`apply_round`: one geometry/grid commit
        pass over the run, one final edge-set requery per touched slot,
        grouped edge flips, and a single fused C2 reconciliation per
        changed receiver row.  Exact because the final adjacency depends
        only on each live node's final (position, range) — joins and
        moves neither renumber slots nor consult pre-event conflict
        state, which is why leaves and power changes flush the run.
        """
        if not batch:
            return
        if len(batch) == 1:
            deltas.append(self.apply_event(batch[0]))
            batch.clear()
            return
        from repro.events.base import JoinEvent

        if all(isinstance(ev, JoinEvent) for ev in batch):
            # Pure join runs take the streaming bulk-join path: one
            # grid-bucketed sweep instead of per-slot candidate queries.
            deltas.extend(self.bulk_join([ev.config for ev in batch]))
            batch.clear()
            return

        # Pre-validate the whole run: sequential application reports
        # these per event; batched geometry must not fail half-written.
        live = set(self._index)
        for ev in batch:
            if isinstance(ev, JoinEvent):
                if ev.config.node_id in live:
                    raise DuplicateNodeError(ev.config.node_id)
                live.add(ev.config.node_id)
            elif ev.node_id not in live:
                raise UnknownNodeError(ev.node_id)

        # Phase 1 — commit geometry (positions, ranges, ids, grid) for
        # the whole run, in order, emitting the per-event deltas.
        dirty: dict[int, None] = {}
        for ev in batch:
            if isinstance(ev, JoinEvent):
                cfg = ev.config
                n = len(self._ids) + 1
                self._ensure_capacity(n)
                i = n - 1
                self._pos[i] = (cfg.x, cfg.y)
                self._range[i] = cfg.tx_range
                if cfg.tx_range > self._max_range:
                    self._max_range = float(cfg.tx_range)
                self._ids.append(cfg.node_id)
                self._ida[i] = cfg.node_id
                self._index[cfg.node_id] = i
                self._ensure_sparse_slot(i)
                if self._use_grid:
                    self._grid_insert(i, cfg.node_id, cfg.x, cfg.y, cfg.tx_range)
                dirty[i] = None
                self._version += 1
                self._touched[i] = self._version
                deltas.append(TopologyDelta("join", cfg.node_id, self._version))
            else:  # MoveEvent
                i = self._index[ev.node_id]
                self._pos[i] = (float(ev.x), float(ev.y))
                if self._grid is not None:
                    self._own_grid()
                    self._grid.move(i, float(ev.x), float(ev.y))
                dirty[i] = None
                self._version += 1
                self._touched[i] = self._version
                deltas.append(TopologyDelta("move", ev.node_id, self._version))

        outr, inr = self._outr, self._inr
        dirty_slots = list(dirty)

        # Phase 2 — capture old rows, then requery the final edge sets
        # of every touched slot against the committed round geometry
        # (one grid-bucketed sweep; co-located slots share a gather).
        old_out = {i: outr[i].values() for i in dirty_slots}
        old_in = {i: inr[i].values() for i in dirty_slots}
        new_out, new_in = self._bulk_edge_sets(dirty_slots)

        self._commit_dirty_rows(dirty_slots, set(dirty), old_out, old_in, new_out, new_in)
        batch.clear()

    def _commit_dirty_rows(
        self,
        dirty_slots: list[int],
        dirty_set: set[int],
        old_out: dict[int, np.ndarray],
        old_in: dict[int, np.ndarray],
        new_out: dict[int, np.ndarray],
        new_in: dict[int, np.ndarray],
    ) -> None:
        """Commit requeried rows for the dirty slots (structural + C2).

        The shared tail of :meth:`bulk_join` and the round batcher:
        given every dirty slot's old and final (out, in) sets, flip the
        structural edges and reconcile the C2 witness counters so the
        graph is exactly what sequential application would leave.

        Phase 3 — group the out-row diffs by outside receiver, so a
        receiver hit by k events reconciles once, not k times.  The
        grouping is vectorized: every dirty row's asserted and
        retracted receivers concatenate into one (receiver, source)
        array pair — retractions carry ``~source`` so one intp array
        holds both signs — dirty receivers are masked out in one
        indexed lookup, and a single stable argsort over the receivers
        yields the per-receiver runs.
        """
        outr, inr, c2s = self._outr, self._inr, self._c2s
        recv_parts: list[np.ndarray] = []
        src_parts: list[np.ndarray] = []
        for i in dirty_slots:
            old = old_out[i]
            if old.size:
                add = np.setdiff1d(new_out[i], old, assume_unique=True)
                rem = np.setdiff1d(old, new_out[i], assume_unique=True)
            else:  # join fast path: every receiver is newly asserted
                add, rem = new_out[i], old
            if add.size:
                recv_parts.append(add)
                src_parts.append(np.full(add.size, i, dtype=np.intp))
            if rem.size:
                recv_parts.append(rem)
                src_parts.append(np.full(rem.size, ~i, dtype=np.intp))
        groups: list[tuple[int, np.ndarray]] = []
        if recv_parts:
            recv = np.concatenate(recv_parts)
            src = np.concatenate(src_parts)
            is_dirty = np.zeros(len(self._ids), dtype=bool)
            is_dirty[dirty_slots] = True
            keep = ~is_dirty[recv]
            if keep.any():
                recv = recv[keep]
                src = src[keep]
                order = recv.argsort(kind="stable")
                recv = recv[order]
                src = src[order]
                starts = np.flatnonzero(np.diff(recv)) + 1
                receivers = recv[np.concatenate((np.zeros(1, dtype=np.intp), starts))]
                for w, seg in zip(receivers.tolist(), np.split(src, starts)):
                    groups.append((w, seg))

        # Phase 4 — C2 reconciliation, one pass per changed receiver
        # row.  Dirty receivers get the full old → new reconcile; an
        # outside receiver hit by a single event takes the same cheap
        # incremental update the sequential path would (the common case
        # in spread-out rounds), and only receivers hit by several
        # events pay the fused array reconcile — which is exactly where
        # fusing wins, because the k hits reconcile once.
        for w in dirty_slots:
            self._reconcile_receiver(w, old_in[w], new_in[w])
        for w, seg in groups:
            self._own_slot(w)
            row = inr[w]
            if seg.size == 1:
                i = int(seg[0])
                if i >= 0:
                    self._own_slot(i)
                    di = c2s[i]
                    for u in row.view().tolist():
                        self._own_slot(u)
                        _c2_inc(di, u)
                        _c2_inc(c2s[u], i)
                    row.insert(i)
                else:
                    i = ~i
                    row.remove(i)
                    self._own_slot(i)
                    di = c2s[i]
                    for u in row.view().tolist():
                        self._own_slot(u)
                        _c2_dec(di, u)
                        _c2_dec(c2s[u], i)
                continue
            adds = seg[seg >= 0]
            dels = ~seg[seg < 0]
            old = row.values()
            new = old
            if dels.size:
                new = np.setdiff1d(new, np.sort(dels), assume_unique=True)
            if adds.size:
                new = np.union1d(new, adds)
            self._reconcile_receiver(w, old, new)
            row.set_sorted(new)

        # Phase 5 — structural flips: dirty rows replaced wholesale,
        # non-dirty sources get their grouped out-row edits.
        for i in dirty_slots:
            self._own_slot(i)
            old = old_in[i]
            if old.size:
                arrived = np.setdiff1d(new_in[i], old, assume_unique=True)
                departed = np.setdiff1d(old, new_in[i], assume_unique=True)
            else:  # join fast path: every in-neighbor is new
                arrived, departed = new_in[i], old
            for u in arrived.tolist():
                if u not in dirty_set:
                    self._own_slot(u)
                    outr[u].insert(i)
            for u in departed.tolist():
                if u not in dirty_set:
                    self._own_slot(u)
                    outr[u].remove(i)
            outr[i].set_sorted(new_out[i])
            inr[i].set_sorted(new_in[i])

    # -- dense escape hatch ---------------------------------------------
    def _dense_conflict_block(self) -> np.ndarray:
        """The dense conflict matrix, re-derived once per topology version."""
        if self._cm_version != self._version:
            from repro.topology.conflicts import conflict_matrix

            n = len(self._ids)
            self._cm_cache = conflict_matrix(self._adj[:n, :n])
            self._cm_version = self._version
        return self._cm_cache

    def _recompute_row(self, i: int) -> None:
        """Out-edges of slot ``i`` by full scan (dense mode)."""
        n = len(self._ids)
        mask = self._prop.coverage(self._pos[i], float(self._range[i]), self._pos[:n])
        mask[i] = False
        self._adj[i, :n] = mask

    def _recompute_col(self, i: int) -> None:
        """In-edges of slot ``i`` by full scan (dense mode)."""
        n = len(self._ids)
        mask = self._prop.covered_by(self._pos[i], self._pos[:n], self._range[:n])
        mask[i] = False
        self._adj[:n, i] = mask
