"""Propagation models: which targets does a transmitter cover?

The paper's base model is the free-space disc: ``vi -> vj`` iff
``d_ij <= r_i``.  Section 2 notes the generalization where obstacles can
suppress an edge even within range; :class:`ObstructedPropagation`
implements that with rectangular obstacles and line-of-sight tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Protocol, runtime_checkable

import numpy as np

from repro.geometry.distance import within_disc
from repro.geometry.obstacles import RectObstacle, los_mask

__all__ = [
    "PropagationModel",
    "FreeSpacePropagation",
    "ObstructedPropagation",
    "block_masks",
    "pairwise_masks",
    "ELEMENTWISE_DEFAULT",
]


@runtime_checkable
class PropagationModel(Protocol):
    """Strategy deciding which targets a transmission covers."""

    def coverage(
        self,
        src_position: np.ndarray,
        src_range: float,
        target_positions: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask over ``target_positions`` rows covered by the source.

        Implementations must be pure functions of their arguments.  The
        caller removes self-loops; implementations need not.
        """
        ...  # pragma: no cover - protocol

    def covered_by(
        self,
        target_position: np.ndarray,
        src_positions: np.ndarray,
        src_ranges: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask over sources: which of them cover ``target_position``.

        The reverse query (used to recompute a node's in-edges after a
        join or move).
        """
        ...  # pragma: no cover - protocol


#: The *elementwise* contract: a model evaluates each target row
#: independently — mask entry ``k`` is a pure function of the source
#: and target ``k`` alone, never of which other targets appear in the
#: batch.  Both built-in models satisfy it (distance and line-of-sight
#: tests are per-pair), and the sparse conflict core depends on it to
#: evaluate grid-bucketed candidate *subsets*: partitioning the targets
#: across per-cell blocks and concatenating the filtered results must
#: equal one whole-array evaluation.  A model that breaks the contract
#: (e.g. capacity-limited coverage of the nearest k targets) must set
#: ``elementwise = False`` on the class, which pins such graphs to
#: whole-population evaluation (the grid prefilter is skipped).
ELEMENTWISE_DEFAULT = True


def pairwise_masks(
    model: PropagationModel,
    position: np.ndarray,
    tx_range: float,
    positions: np.ndarray,
    ranges: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """``(coverage, covered_by)`` masks of one node against candidates.

    The fused query of the array conflict core: after a join or move of
    a node both its out-edges (*which candidates does it cover?*) and
    its in-edges (*which candidates cover it?*) must be recomputed over
    the same candidate set.  Models exposing a ``pairwise`` method (the
    built-in free-space and obstructed models do) answer both from one
    distance pass; other models fall back to two independent queries.
    Either way the masks are bitwise identical to separate
    ``coverage``/``covered_by`` calls — the array and dict cores must
    produce byte-identical edges.
    """
    native = getattr(model, "pairwise", None)
    if native is not None:
        return native(position, tx_range, positions, ranges)
    return (
        model.coverage(position, tx_range, positions),
        model.covered_by(position, positions, ranges),
    )


def block_masks(
    model: PropagationModel,
    positions: np.ndarray,
    tx_ranges: np.ndarray,
    target_positions: np.ndarray,
    target_ranges: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """``(coverage, covered_by)`` blocks of many sources vs. one candidate set.

    The block-distance contract behind the sparse core's streaming bulk
    join: ``g`` dirty nodes sharing a grid cell are evaluated against the
    cell's ``c`` candidates in one call instead of ``g`` separate
    :func:`pairwise_masks` queries.  Returns two ``(g, c)`` boolean
    arrays — row ``j`` of ``coverage`` marks the candidates node ``j``
    covers, row ``j`` of ``covered_by`` marks the candidates covering
    node ``j``.  Models exposing a ``pairwise_block`` method (the
    built-in free-space model does) answer from one broadcast distance
    block; other models fall back to a per-row :func:`pairwise_masks`
    loop.  Either way every row is bitwise identical to the
    corresponding single-source query — required for the bulk-join
    path's byte-equivalence with sequential joins.
    """
    native = getattr(model, "pairwise_block", None)
    if native is not None:
        return native(positions, tx_ranges, target_positions, target_ranges)
    g = len(positions)
    c = len(target_positions)
    cov = np.zeros((g, c), dtype=bool)
    covby = np.zeros((g, c), dtype=bool)
    for j in range(g):
        cov[j], covby[j] = pairwise_masks(
            model, positions[j], float(tx_ranges[j]), target_positions, target_ranges
        )
    return cov, covby


@dataclass(frozen=True)
class FreeSpacePropagation:
    """The paper's base model: closed disc of radius ``src_range``.

    ``disc_bounded`` declares that coverage never exceeds the
    transmission disc, which lets :class:`~repro.topology.digraph.AdHocDigraph`
    prefilter edge recomputation through its spatial grid index.
    """

    disc_bounded: ClassVar[bool] = True
    #: Per-target purity — see ``ELEMENTWISE_DEFAULT`` above.
    elementwise: ClassVar[bool] = True

    def coverage(
        self,
        src_position: np.ndarray,
        src_range: float,
        target_positions: np.ndarray,
    ) -> np.ndarray:
        """Mask of targets within the closed transmission disc."""
        if len(target_positions) == 0:
            return np.zeros(0, dtype=bool)
        return within_disc(target_positions, src_position, src_range)

    def covered_by(
        self,
        target_position: np.ndarray,
        src_positions: np.ndarray,
        src_ranges: np.ndarray,
    ) -> np.ndarray:
        """Mask of sources whose disc covers ``target_position``."""
        if len(src_positions) == 0:
            return np.zeros(0, dtype=bool)
        pos = np.asarray(src_positions, dtype=np.float64)
        diff = pos - np.asarray(target_position, dtype=np.float64).reshape(2)
        d2 = np.einsum("ij,ij->i", diff, diff)
        r = np.asarray(src_ranges, dtype=np.float64)
        return d2 <= r * r

    def pairwise(
        self,
        position: np.ndarray,
        tx_range: float,
        positions: np.ndarray,
        ranges: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(coverage, covered_by)`` from a single distance pass.

        The array core's fused edge recomputation: the squared distances
        to the candidate set are computed once and compared against the
        node's own range (out-edges) and the candidates' ranges
        (in-edges).  Bitwise identical to separate ``coverage`` /
        ``covered_by`` calls.
        """
        if len(positions) == 0:
            empty = np.zeros(0, dtype=bool)
            return empty, empty
        pos = np.asarray(positions, dtype=np.float64)
        diff = pos - np.asarray(position, dtype=np.float64).reshape(2)
        d2 = np.einsum("ij,ij->i", diff, diff)
        r = np.asarray(ranges, dtype=np.float64)
        return d2 <= float(tx_range) * float(tx_range), d2 <= r * r

    def pairwise_block(
        self,
        positions: np.ndarray,
        tx_ranges: np.ndarray,
        target_positions: np.ndarray,
        target_ranges: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(coverage, covered_by)`` blocks from one broadcast distance pass.

        The free-space leg of the block-distance contract (see
        :func:`block_masks`): one ``(g, c)`` squared-distance block is
        compared against the sources' own ranges (out-edges) and the
        candidates' ranges (in-edges).  Each subtraction and product is
        the same IEEE-754 operation :meth:`pairwise` performs for the
        corresponding pair, so every row is bitwise identical to the
        single-source query.
        """
        g = len(positions)
        c = len(target_positions)
        if g == 0 or c == 0:
            empty = np.zeros((g, c), dtype=bool)
            return empty, empty.copy()
        pos = np.asarray(positions, dtype=np.float64)
        tgt = np.asarray(target_positions, dtype=np.float64)
        diff = tgt[None, :, :] - pos[:, None, :]
        d2 = np.einsum("gcj,gcj->gc", diff, diff)
        r = np.asarray(tx_ranges, dtype=np.float64)
        tr = np.asarray(target_ranges, dtype=np.float64)
        return d2 <= (r * r)[:, None], d2 <= (tr * tr)[None, :]


@dataclass(frozen=True)
class ObstructedPropagation:
    """Disc propagation filtered by line-of-sight around obstacles.

    A target is covered iff it is within range *and* the straight segment
    from source to target does not cross any obstacle.  Coverage is a
    subset of the free-space disc, so the grid fast path stays sound
    (``disc_bounded``).
    """

    disc_bounded: ClassVar[bool] = True
    #: LOS is a per-pair test, so blockwise evaluation stays exact.
    elementwise: ClassVar[bool] = True

    obstacles: tuple[RectObstacle, ...] = field(default_factory=tuple)

    def coverage(
        self,
        src_position: np.ndarray,
        src_range: float,
        target_positions: np.ndarray,
    ) -> np.ndarray:
        """Mask of in-range targets with unobstructed line of sight."""
        if len(target_positions) == 0:
            return np.zeros(0, dtype=bool)
        mask = within_disc(target_positions, src_position, src_range)
        if self.obstacles and mask.any():
            # Only run LOS tests for in-range candidates.
            idx = np.flatnonzero(mask)
            visible = los_mask(src_position, np.asarray(target_positions)[idx], self.obstacles)
            mask = mask.copy()
            mask[idx] = visible
        return mask

    def covered_by(
        self,
        target_position: np.ndarray,
        src_positions: np.ndarray,
        src_ranges: np.ndarray,
    ) -> np.ndarray:
        """Mask of covering sources with unobstructed line of sight."""
        if len(src_positions) == 0:
            return np.zeros(0, dtype=bool)
        pos = np.asarray(src_positions, dtype=np.float64)
        tgt = np.asarray(target_position, dtype=np.float64).reshape(2)
        diff = pos - tgt
        d2 = np.einsum("ij,ij->i", diff, diff)
        r = np.asarray(src_ranges, dtype=np.float64)
        mask = d2 <= r * r
        if self.obstacles and mask.any():
            # Line of sight is symmetric, so reuse the forward test.
            idx = np.flatnonzero(mask)
            visible = los_mask(tgt, pos[idx], self.obstacles)
            mask = mask.copy()
            mask[idx] = visible
        return mask

    def pairwise(
        self,
        position: np.ndarray,
        tx_range: float,
        positions: np.ndarray,
        ranges: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(coverage, covered_by)`` sharing one distance and LOS pass.

        Distances are computed once; line-of-sight (symmetric between a
        pair of points) is tested once over the union of in-range
        candidates and applied to both directions — bitwise identical
        to separate ``coverage`` / ``covered_by`` calls.
        """
        if len(positions) == 0:
            empty = np.zeros(0, dtype=bool)
            return empty, empty
        pos = np.asarray(positions, dtype=np.float64)
        origin = np.asarray(position, dtype=np.float64).reshape(2)
        diff = pos - origin
        d2 = np.einsum("ij,ij->i", diff, diff)
        r = np.asarray(ranges, dtype=np.float64)
        cov = d2 <= float(tx_range) * float(tx_range)
        covby = d2 <= r * r
        if self.obstacles:
            either = cov | covby
            if either.any():
                idx = np.flatnonzero(either)
                visible = np.ones(len(pos), dtype=bool)
                visible[idx] = los_mask(origin, pos[idx], self.obstacles)
                cov = cov & visible
                covby = covby & visible
        return cov, covby
