"""The unified experiment orchestrator: one pipeline for every sweep.

Every evaluation in this repo — the paper's five figure experiments and
each registered extended scenario — runs through :func:`run_sweep`,
which stages the work through four pluggable layers:

1. **plan** — the scenario spec is resolved once per sweep value, per-run
   seeds derive from one master ``SeedSequence`` (paired across sweep
   values when the spec asks for it), and every (point, run) becomes a
   content-addressed :class:`~repro.sim.executor.TaskGroup`.  Tasks
   sharing an execution-timeline prefix (same run seed, same
   placement/join prefix token — see :mod:`repro.sim.timeline`) are
   grouped so execution walks them over one checkpoint tree instead of
   replaying the shared prefix per point;
2. **claim** — tasks whose artifacts already exist in the results
   backend (:mod:`repro.sim.results`) are served from cache;
3. **execute** — pending groups run on an
   :class:`~repro.sim.executor.Executor` (serial, process pool, or the
   store-queue worker drain), each replaying its workload *single-pass*
   against all strategies with
   :class:`~repro.sim.network.MultiStrategyReplay`;
4. **collect** — results fold into an
   :class:`~repro.analysis.series.ExperimentSeries` (persisted together
   with a run manifest when a store is given).

:class:`SweepSpec` is the frozen execution plan (scenario × runs ×
seed); the legacy ``run_*_experiment`` functions in
:mod:`repro.sim.experiments` are thin builders of such plans.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro import obs
from repro.analysis.series import ExperimentSeries
from repro.errors import ConfigurationError
from repro.sim.control import PrecisionTarget, RunController, resolve_precision
from repro.sim.executor import Executor, TaskGroup, resolve_executor
from repro.sim.registry import get_scenario
from repro.sim.results import ResultsBackend, seed_token, spec_digest
from repro.sim.results import point_key as _point_key
from repro.sim.runner import resolve_runs
from repro.sim.scenarios import ScenarioSpec, resolve_sweep
from repro.topology.digraph import default_core

__all__ = ["SweepSpec", "build_sweep", "plan_additional_tasks", "plan_tasks", "run_sweep"]

#: Metric names of the absolute measure (end-state totals).
ABS_METRICS = ("max_color", "recodings", "messages")
#: Metric names of the delta measures (change from the join baseline).
DELTA_METRICS = ("delta_max_color", "delta_recodings", "delta_messages")

_DEFAULT_RUNS = 5
_DEFAULT_SEED = 2001


@dataclass(frozen=True)
class SweepSpec:
    """A fully resolved sweep execution plan.

    ``points[i]`` is the scenario with its sweep axis pinned to
    ``scenario.sweep_values[i]``; ``seeds[i][r]`` is the
    ``SeedSequence`` driving run ``r`` of point ``i``.  With
    ``scenario.paired_runs`` the seed rows are identical across points,
    so every sweep value perturbs the same base networks.
    """

    scenario: ScenarioSpec
    points: tuple[ScenarioSpec, ...]
    seeds: tuple[tuple[np.random.SeedSequence, ...], ...]
    runs: int
    seed: int

    @property
    def sweep_key(self) -> str:
        """Content hash naming this exact sweep (spec × runs × seed)."""
        return spec_digest(self.scenario, extra={"runs": self.runs, "seed": self.seed})

    def tasks(self) -> list[tuple[int, int, ScenarioSpec, np.random.SeedSequence]]:
        """All (point index, run index, point spec, seed) work items."""
        return [
            (i, r, point, self.seeds[i][r])
            for i, point in enumerate(self.points)
            for r in range(self.runs)
        ]


def build_sweep(
    scenario: ScenarioSpec | str,
    *,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    env_runs: str | None = None,
) -> SweepSpec:
    """Resolve a scenario (or registered name) into a :class:`SweepSpec`.

    Raises :class:`ConfigurationError` for empty sweeps, invalid
    resolved points (e.g. a range sweep value driving ``min_range``
    non-positive) and ``delta_rounds`` measures with more than one
    sweep value — all *before* any computation starts.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if strategies is not None:
        spec = replace(spec, strategies=tuple(strategies))
    if not spec.sweep_values:
        raise ConfigurationError(f"scenario {spec.name!r} has no sweep values")
    if spec.measure == "delta_rounds" and len(spec.sweep_values) != 1:
        raise ConfigurationError(
            "delta_rounds scenarios sweep within one trace and need exactly "
            f"one sweep value, got {spec.sweep_values}"
        )
    runs = resolve_runs(runs, _DEFAULT_RUNS, env_runs)
    points = tuple(resolve_sweep(spec, value) for value in spec.sweep_values)
    # Seed derivation is prefix-stable in `runs`: SeedSequence.spawn
    # numbers children from zero, so run r's seed depends only on
    # (seed, point, r) — never on how many runs were planned.  The
    # adaptive controller relies on this to extend a sweep's run count
    # while every already-computed point key stays valid.
    master = np.random.SeedSequence(seed)
    if spec.paired_runs:
        row = tuple(master.spawn(runs))
        seeds = tuple(row for _ in points)
    else:
        point_seqs = master.spawn(len(points))
        seeds = tuple(tuple(point_seqs[i].spawn(runs)) for i in range(len(points)))
    return SweepSpec(scenario=spec, points=points, seeds=seeds, runs=runs, seed=seed)


# ----------------------------------------------------------------------
# Stage 1: plan
# ----------------------------------------------------------------------
def _task_context(spec: ScenarioSpec, point: ScenarioSpec, i: int, r: int, seed) -> dict:
    return {
        "experiment": spec.series_id,
        "scenario": spec.name,
        "sweep_axis": spec.sweep_axis,
        "sweep_value": spec.sweep_values[i],
        "run": r,
        "seed": seed_token(seed),
        "measure": spec.measure,
        "strategies": list(point.strategies),
    }


def plan_tasks(sweep: SweepSpec, *, warm_start: bool | None = None) -> list[TaskGroup]:
    """Plan stage: every (point, run) as content-addressed task groups.

    Tasks that share an execution-timeline prefix — the same run seed
    *and* the same placement/join prefix token
    (:func:`repro.sim.timeline.prefix_token`, a digest of exactly the
    spec fields the placement draw consumes) — are planned into one
    group per run, so executors walk them over a shared checkpoint tree
    instead of replaying the common prefix per point.  In practice that
    groups paired sweeps over perturbation axes (``maxdisp``,
    ``raisefactor``, ``steps``, …); axes that touch the placement
    (``n``, ``avg_range``) key apart and stay singleton groups, as does
    every unpaired sweep (distinct seeds never share a draw).
    ``warm_start=False`` disables grouping entirely (results are
    identical either way).
    """
    from repro.sim.timeline import prefix_token

    spec = sweep.scenario
    keys = {(i, r): _point_key(point, point_seed) for i, r, point, point_seed in sweep.tasks()}
    contexts = {
        (i, r): _task_context(spec, point, i, r, point_seed)
        for i, r, point, point_seed in sweep.tasks()
    }
    tokens = {
        (i, r): prefix_token(point, point_seed) for i, r, point, point_seed in sweep.tasks()
    }
    # group per run by (seed, placement prefix); insertion order keeps
    # groups sorted by first (point, run) appearance
    rows: dict[tuple, list[tuple[int, int, ScenarioSpec]]] = {}
    for i, r, point, point_seed in sweep.tasks():
        if warm_start is False:
            row_key = ("solo", i, r)
        else:
            row_key = (r, seed_token(point_seed), tokens[(i, r)])
        rows.setdefault(row_key, []).append((i, r, point))
    groups: list[TaskGroup] = []
    for members in rows.values():
        indices = tuple((i, r) for i, r, _ in members)
        groups.append(
            TaskGroup(
                indices=indices,
                points=tuple(point for _, _, point in members),
                seed=sweep.seeds[members[0][0]][members[0][1]],
                keys=tuple(keys[ix] for ix in indices),
                contexts=tuple(contexts[ix] for ix in indices),
                warm=len(members) > 1,
                stage_tokens=tuple(tokens[ix] for ix in indices),
            )
        )
    return groups


def plan_additional_tasks(
    sweep: SweepSpec,
    runs_per_point: Sequence[int],
    want: dict[int, int],
    *,
    warm_start: bool | None = None,
) -> list[TaskGroup]:
    """Plan only the *new* run tasks raising each point to ``want[i]``.

    Rebuilds the sweep at the highest requested run count (seed
    derivation is prefix-stable, so existing run seeds — and hence
    point keys — are unchanged) and keeps exactly the group members
    with ``runs_per_point[i] <= r < want[i]``.  Warm-start row groups
    survive intact when the controller raises whole paired rows.
    """
    if not want:
        return []
    new_runs = max(want.values())
    extended = build_sweep(sweep.scenario, runs=new_runs, seed=sweep.seed)
    target = {i: want.get(i, runs_per_point[i]) for i in range(len(sweep.points))}
    groups: list[TaskGroup] = []
    for group in plan_tasks(extended, warm_start=warm_start):
        keep = [m for m, (i, r) in enumerate(group.indices) if runs_per_point[i] <= r < target[i]]
        if not keep:
            continue
        groups.append(group if len(keep) == len(group.indices) else group.subset(keep))
    return groups


# ----------------------------------------------------------------------
# Stage 2: claim
# ----------------------------------------------------------------------
def claim_cached(
    groups: Sequence[TaskGroup], store: ResultsBackend | None, resume: bool
) -> tuple[dict[tuple[int, int], list], list[TaskGroup]]:
    """Claim stage: split planned groups into cached results and pending work.

    Partially cached warm groups shrink to their missing members (the
    shared baseline is still built only once for what remains).
    """
    results: dict[tuple[int, int], list] = {}
    if store is None or not resume:
        return results, list(groups)
    cached_points = store.load_points([key for group in groups for key in group.keys])
    pending: list[TaskGroup] = []
    for group in groups:
        missing = []
        for m, key in enumerate(group.keys):
            cached = cached_points.get(key)
            if cached is None:
                missing.append(m)
            else:
                results[group.indices[m]] = cached
        if not missing:
            continue
        pending.append(group if len(missing) == len(group.keys) else group.subset(missing))
    return results, pending


# ----------------------------------------------------------------------
# Stages 3+4: execute, collect
# ----------------------------------------------------------------------
def run_sweep(
    scenario: ScenarioSpec | str,
    *,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    processes: int | None = None,
    store: ResultsBackend | None = None,
    resume: bool = True,
    executor: Executor | str | None = None,
    warm_start: bool | None = None,
    precision: RunController | PrecisionTarget | float | None = None,
) -> ExperimentSeries:
    """Run one sweep through the unified pipeline; return its series.

    ``scenario`` is a spec or registered name; ``runs`` defaults to 5
    (``REPRO_RUNS`` overrides).  ``executor`` selects the execution
    layer (``"serial"`` / ``"process"`` / ``"worker"`` or an
    :class:`~repro.sim.executor.Executor` instance); the default keeps
    the historical behavior of ``processes``.  ``warm_start=False``
    disables checkpoint-tree prefix sharing — every (point, run)
    replays cold (``None`` shares whenever tasks' timelines allow it;
    results are identical either way).  With a
    ``store``, completed points are loaded instead of recomputed
    (unless ``resume=False``), fresh points are persisted as they land,
    and the assembled series plus a run manifest (spec fields, runs,
    seed, executor name, the orchestrator's conflict core, point keys,
    computed/cached split) are written.  The series ``notes`` field
    records the computed/cached split of this invocation.

    ``precision`` switches on adaptive run counts: ``runs`` becomes the
    *starting* budget per point and, after each collect pass, a
    :class:`~repro.sim.control.RunController` plans additional
    content-addressed run tasks for every point whose confidence
    interval is still wider than the target (a float is shorthand for a
    relative-CI target; see :class:`~repro.sim.control.PrecisionTarget`
    for the full knob set, including the ``max_runs`` hard cap).
    Incremental runs flow through the same claim/execute stages, so a
    store serves previously computed runs from cache and a repeated
    adaptive sweep reproduces the identical series without computing
    anything.
    """
    import os

    # Phase spans mirror the pipeline stages of the module docstring;
    # `minim-cdma report` keys its per-phase table off these names, and
    # the trace-completeness check pairs each execute span's `pending`
    # count against the task.compute spans the executors emit.
    with obs.span("sweep.plan", cat="sweep"):
        sweep = build_sweep(
            scenario,
            runs=runs,
            seed=seed,
            strategies=strategies,
            env_runs=os.environ.get("REPRO_RUNS"),
        )
        spec = sweep.scenario
        controller = resolve_precision(precision)
        exec_ = resolve_executor(executor, processes)
        groups = plan_tasks(sweep, warm_start=warm_start)
    with obs.span("sweep.claim", cat="sweep", scenario=spec.name, planned=len(groups)):
        results, pending = claim_cached(groups, store, resume)
    with obs.span(
        "sweep.execute", cat="sweep", scenario=spec.name, pending=len(pending), executor=exec_.name
    ):
        results.update(exec_.execute(pending, backend=store, resume=resume))
    computed = sum(len(g.indices) for g in pending)
    # plan_tasks already hashed every point key; harvest, don't rehash
    keys = {ix: key for g in groups for ix, key in zip(g.indices, g.keys)}

    runs_per_point = [sweep.runs] * len(sweep.points)
    passes = 0
    if controller is not None:
        while True:
            want = controller.plan(
                _point_samples(sweep, results, runs_per_point),
                runs_per_point,
                paired=spec.paired_runs,
            )
            extra = plan_additional_tasks(sweep, runs_per_point, want, warm_start=warm_start)
            if not extra:
                break
            with obs.span("sweep.claim", cat="sweep", scenario=spec.name, planned=len(extra)):
                extra_cached, extra_pending = claim_cached(extra, store, resume)
            results.update(extra_cached)
            with obs.span(
                "sweep.execute",
                cat="sweep",
                scenario=spec.name,
                pending=len(extra_pending),
                executor=exec_.name,
                adaptive_pass=passes + 1,
            ):
                results.update(exec_.execute(extra_pending, backend=store, resume=resume))
            computed += sum(len(g.indices) for g in extra_pending)
            keys.update({ix: key for g in extra for ix, key in zip(g.indices, g.keys)})
            for i, n in want.items():
                runs_per_point[i] = n
            passes += 1
        controller.runs_per_point = list(runs_per_point)
        controller.passes = passes

    with obs.span("sweep.collect", cat="sweep", scenario=spec.name):
        series = _assemble_series(sweep, results, runs_per_point)
    cached = len(keys) - computed
    series.notes = f"{computed} points computed, {cached} from cache"
    if controller is not None:
        series.notes += (
            f"; adaptive: {sum(runs_per_point)} total runs "
            f"({passes} extra pass{'es' if passes != 1 else ''})"
        )
    if store is not None:
        manifest = {
            "experiment": spec.series_id,
            "scenario": spec.name,
            "measure": spec.measure,
            "sweep_axis": spec.sweep_axis,
            "sweep_values": list(spec.sweep_values),
            "strategies": list(spec.strategies),
            "runs": sweep.runs,
            "seed": sweep.seed,
            "executor": exec_.name,
            # the orchestrator's conflict core (array/dict/dense) — an
            # audit stamp, never a result discriminator: cores are
            # byte-identical by contract
            "core": default_core(),
            "points": [
                keys[(i, r)]
                for i in range(len(sweep.points))
                for r in range(runs_per_point[i])
            ],
            "computed": computed,
            "cached": cached,
            "series_locator": f"{store.locator}::series/{spec.series_id}",
            # The series/<id> slot is latest-wins; this copy is
            # keyed by the sweep's content hash and never clobbered.
            "series": series.to_dict(),
        }
        manifest_key = sweep.sweep_key
        if controller is not None:
            import dataclasses

            target = dataclasses.asdict(controller.target)
            manifest["adaptive"] = {
                "target": target,
                "runs_per_point": list(runs_per_point),
                "total_runs": sum(runs_per_point),
                "passes": passes,
            }
            # a fixed and an adaptive sweep from the same base spec are
            # different computations; key their manifests apart
            manifest_key = spec_digest(
                spec, extra={"runs": sweep.runs, "seed": sweep.seed, "precision": target}
            )
        store.save_series(series)
        store.save_manifest(manifest_key, manifest)
    return series


def _point_samples(
    sweep: SweepSpec, results: dict[tuple[int, int], list], runs_per_point: Sequence[int]
) -> list[np.ndarray]:
    """Per point, that point's collected results with the run axis first.

    The shared substrate of the collect stage and the run controller:
    ``samples[i]`` has shape ``(runs_per_point[i], strategies, metrics)``
    (plus a rounds axis for ``delta_rounds`` scenarios, which have a
    single point).
    """
    if sweep.scenario.measure == "delta_rounds":
        data = np.asarray([results[(0, r)] for r in range(runs_per_point[0])], dtype=np.float64)
        if data.ndim != 4:
            raise ConfigurationError(
                f"scenario {sweep.scenario.name!r} produced no perturbation rounds to sample"
            )
        return [data]
    return [
        np.asarray([results[(i, r)] for r in range(runs_per_point[i])], dtype=np.float64)
        for i in range(len(sweep.points))
    ]


def _assemble_series(
    sweep: SweepSpec,
    results: dict[tuple[int, int], list],
    runs_per_point: Sequence[int] | None = None,
) -> ExperimentSeries:
    """Collect stage: fold point results into an :class:`ExperimentSeries`.

    Run counts may differ per point (adaptive sweeps), so means and
    standard errors are computed per point over that point's own runs.
    A single-run point reports stderr 0.0 — ``ddof=1`` on one sample
    would put NaN into the stored series, and the controller separately
    refuses to treat ``n = 1`` as converged, so the guard never hides a
    point that still needs runs.
    """
    spec = sweep.scenario
    strategies = spec.strategies
    if runs_per_point is None:
        runs_per_point = [sweep.runs] * len(sweep.points)
    counts = list(runs_per_point)
    samples = _point_samples(sweep, results, counts)

    def _mean_sem(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = block.shape[0]
        mean = block.mean(axis=0)
        if n > 1:
            sem = block.std(axis=0, ddof=1) / np.sqrt(n)
        else:  # no variance estimate from one run; never NaN in a store
            sem = np.zeros_like(mean)
        return mean, sem

    if spec.measure == "delta_rounds":
        # samples[0]: run, strategy, round, metric -> x-axis is the round
        mean, sem = _mean_sem(samples[0])
        means = mean.transpose(1, 0, 2)  # round, strategy, metric
        sems = sem.transpose(1, 0, 2)
        x_values = [float(t) for t in range(1, means.shape[0] + 1)]
        metric_names = DELTA_METRICS
    else:
        stats = [_mean_sem(block) for block in samples]
        means = np.stack([m for m, _ in stats])  # x, strategy, metric
        sems = np.stack([s for _, s in stats])
        x_values = [float(v) for v in spec.sweep_values]
        metric_names = DELTA_METRICS if spec.measure == "delta" else ABS_METRICS
    metrics = {
        m: {s: means[:, si, mi].tolist() for si, s in enumerate(strategies)}
        for mi, m in enumerate(metric_names)
    }
    stderr = {
        m: {s: sems[:, si, mi].tolist() for si, s in enumerate(strategies)}
        for mi, m in enumerate(metric_names)
    }
    return ExperimentSeries(
        experiment=spec.series_id,
        x_label=spec.series_x_label,
        x_values=x_values,
        metrics=metrics,
        runs=max(counts),
        stderr=stderr,
    )
