"""The unified experiment orchestrator: one pipeline for every sweep.

Every evaluation in this repo — the paper's five figure experiments and
each registered extended scenario — runs through :func:`run_sweep`,
which stages the work through four pluggable layers:

1. **plan** — the scenario spec is resolved once per sweep value, per-run
   seeds derive from one master ``SeedSequence`` (paired across sweep
   values when the spec asks for it), and every (point, run) becomes a
   content-addressed :class:`~repro.sim.executor.TaskGroup`.  Paired
   delta sweeps group each run's points into one *warm-start* group
   that builds the shared baseline network once and forks it per point;
2. **claim** — tasks whose artifacts already exist in the results
   backend (:mod:`repro.sim.results`) are served from cache;
3. **execute** — pending groups run on an
   :class:`~repro.sim.executor.Executor` (serial, process pool, or the
   store-queue worker drain), each replaying its workload *single-pass*
   against all strategies with
   :class:`~repro.sim.network.MultiStrategyReplay`;
4. **collect** — results fold into an
   :class:`~repro.analysis.series.ExperimentSeries` (persisted together
   with a run manifest when a store is given).

:class:`SweepSpec` is the frozen execution plan (scenario × runs ×
seed); the legacy ``run_*_experiment`` functions in
:mod:`repro.sim.experiments` are thin builders of such plans.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.series import ExperimentSeries
from repro.errors import ConfigurationError
from repro.sim.executor import Executor, TaskGroup, resolve_executor
from repro.sim.registry import get_scenario
from repro.sim.results import ResultsBackend, seed_token, spec_digest
from repro.sim.results import point_key as _point_key
from repro.sim.runner import resolve_runs
from repro.sim.scenarios import ScenarioSpec, resolve_sweep

__all__ = ["SweepSpec", "build_sweep", "plan_tasks", "run_sweep"]

#: Metric names of the absolute measure (end-state totals).
ABS_METRICS = ("max_color", "recodings", "messages")
#: Metric names of the delta measures (change from the join baseline).
DELTA_METRICS = ("delta_max_color", "delta_recodings", "delta_messages")

_DEFAULT_RUNS = 5
_DEFAULT_SEED = 2001

#: Sweep axes that perturb the trace *before* any placement draw, so a
#: paired delta sweep over them shares one baseline network per run
#: seed.  ``n`` and ``avg_range`` change the placement itself and are
#: excluded (warm grouping would always fall back to cold rebuilds).
_WARM_SAFE_AXES = ("steps", "maxdisp", "fraction", "cycles", "raisefactor")


@dataclass(frozen=True)
class SweepSpec:
    """A fully resolved sweep execution plan.

    ``points[i]`` is the scenario with its sweep axis pinned to
    ``scenario.sweep_values[i]``; ``seeds[i][r]`` is the
    ``SeedSequence`` driving run ``r`` of point ``i``.  With
    ``scenario.paired_runs`` the seed rows are identical across points,
    so every sweep value perturbs the same base networks.
    """

    scenario: ScenarioSpec
    points: tuple[ScenarioSpec, ...]
    seeds: tuple[tuple[np.random.SeedSequence, ...], ...]
    runs: int
    seed: int

    @property
    def sweep_key(self) -> str:
        """Content hash naming this exact sweep (spec × runs × seed)."""
        return spec_digest(self.scenario, extra={"runs": self.runs, "seed": self.seed})

    def tasks(self) -> list[tuple[int, int, ScenarioSpec, np.random.SeedSequence]]:
        """All (point index, run index, point spec, seed) work items."""
        return [
            (i, r, point, self.seeds[i][r])
            for i, point in enumerate(self.points)
            for r in range(self.runs)
        ]


def build_sweep(
    scenario: ScenarioSpec | str,
    *,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    env_runs: str | None = None,
) -> SweepSpec:
    """Resolve a scenario (or registered name) into a :class:`SweepSpec`.

    Raises :class:`ConfigurationError` for empty sweeps, invalid
    resolved points (e.g. a range sweep value driving ``min_range``
    non-positive) and ``delta_rounds`` measures with more than one
    sweep value — all *before* any computation starts.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if strategies is not None:
        spec = replace(spec, strategies=tuple(strategies))
    if not spec.sweep_values:
        raise ConfigurationError(f"scenario {spec.name!r} has no sweep values")
    if spec.measure == "delta_rounds" and len(spec.sweep_values) != 1:
        raise ConfigurationError(
            "delta_rounds scenarios sweep within one trace and need exactly "
            f"one sweep value, got {spec.sweep_values}"
        )
    runs = resolve_runs(runs, _DEFAULT_RUNS, env_runs)
    points = tuple(resolve_sweep(spec, value) for value in spec.sweep_values)
    master = np.random.SeedSequence(seed)
    if spec.paired_runs:
        row = tuple(master.spawn(runs))
        seeds = tuple(row for _ in points)
    else:
        point_seqs = master.spawn(len(points))
        seeds = tuple(tuple(point_seqs[i].spawn(runs)) for i in range(len(points)))
    return SweepSpec(scenario=spec, points=points, seeds=seeds, runs=runs, seed=seed)


# ----------------------------------------------------------------------
# Stage 1: plan
# ----------------------------------------------------------------------
def _warm_eligible(spec: ScenarioSpec, n_points: int, warm_start: bool | None) -> bool:
    """Whether this sweep's runs share a baseline worth forking."""
    if warm_start is False:
        return False
    return (
        spec.paired_runs
        and spec.measure == "delta"
        and n_points > 1
        and spec.sweep_axis in _WARM_SAFE_AXES
    )


def _task_context(spec: ScenarioSpec, point: ScenarioSpec, i: int, r: int, seed) -> dict:
    return {
        "experiment": spec.series_id,
        "scenario": spec.name,
        "sweep_axis": spec.sweep_axis,
        "sweep_value": spec.sweep_values[i],
        "run": r,
        "seed": seed_token(seed),
        "measure": spec.measure,
        "strategies": list(point.strategies),
    }


def plan_tasks(sweep: SweepSpec, *, warm_start: bool | None = None) -> list[TaskGroup]:
    """Plan stage: every (point, run) as content-addressed task groups.

    Returns one singleton group per (point, run) — or, when the sweep
    is warm-start eligible (``paired_runs`` delta sweeps over a
    perturbation-only axis), one group per run holding that run's whole
    point row, so executors build the shared baseline network once per
    run seed.
    """
    spec = sweep.scenario
    keys = {(i, r): _point_key(point, point_seed) for i, r, point, point_seed in sweep.tasks()}
    contexts = {
        (i, r): _task_context(spec, point, i, r, point_seed)
        for i, r, point, point_seed in sweep.tasks()
    }
    groups: list[TaskGroup] = []
    if _warm_eligible(spec, len(sweep.points), warm_start):
        for r in range(sweep.runs):
            indices = tuple((i, r) for i in range(len(sweep.points)))
            groups.append(
                TaskGroup(
                    indices=indices,
                    points=sweep.points,
                    seed=sweep.seeds[0][r],
                    keys=tuple(keys[ix] for ix in indices),
                    contexts=tuple(contexts[ix] for ix in indices),
                    warm=True,
                )
            )
        return groups
    for i, r, point, point_seed in sweep.tasks():
        groups.append(
            TaskGroup(
                indices=((i, r),),
                points=(point,),
                seed=point_seed,
                keys=(keys[(i, r)],),
                contexts=(contexts[(i, r)],),
            )
        )
    return groups


# ----------------------------------------------------------------------
# Stage 2: claim
# ----------------------------------------------------------------------
def claim_cached(
    groups: Sequence[TaskGroup], store: ResultsBackend | None, resume: bool
) -> tuple[dict[tuple[int, int], list], list[TaskGroup]]:
    """Claim stage: split planned groups into cached results and pending work.

    Partially cached warm groups shrink to their missing members (the
    shared baseline is still built only once for what remains).
    """
    results: dict[tuple[int, int], list] = {}
    if store is None or not resume:
        return results, list(groups)
    cached_points = store.load_points([key for group in groups for key in group.keys])
    pending: list[TaskGroup] = []
    for group in groups:
        missing = []
        for m, key in enumerate(group.keys):
            cached = cached_points.get(key)
            if cached is None:
                missing.append(m)
            else:
                results[group.indices[m]] = cached
        if not missing:
            continue
        if len(missing) == len(group.keys):
            pending.append(group)
        else:
            pending.append(
                replace(
                    group,
                    indices=tuple(group.indices[m] for m in missing),
                    points=tuple(group.points[m] for m in missing),
                    keys=tuple(group.keys[m] for m in missing),
                    contexts=tuple(group.contexts[m] for m in missing),
                )
            )
    return results, pending


# ----------------------------------------------------------------------
# Stages 3+4: execute, collect
# ----------------------------------------------------------------------
def run_sweep(
    scenario: ScenarioSpec | str,
    *,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    processes: int | None = None,
    store: ResultsBackend | None = None,
    resume: bool = True,
    executor: Executor | str | None = None,
    warm_start: bool | None = None,
) -> ExperimentSeries:
    """Run one sweep through the unified pipeline; return its series.

    ``scenario`` is a spec or registered name; ``runs`` defaults to 5
    (``REPRO_RUNS`` overrides).  ``executor`` selects the execution
    layer (``"serial"`` / ``"process"`` / ``"worker"`` or an
    :class:`~repro.sim.executor.Executor` instance); the default keeps
    the historical behavior of ``processes``.  ``warm_start=False``
    disables baseline forking for paired delta sweeps (``None`` enables
    it whenever eligible; results are identical either way).  With a
    ``store``, completed points are loaded instead of recomputed
    (unless ``resume=False``), fresh points are persisted as they land,
    and the assembled series plus a run manifest are written.  The
    series ``notes`` field records the computed/cached split of this
    invocation.
    """
    import os

    sweep = build_sweep(
        scenario,
        runs=runs,
        seed=seed,
        strategies=strategies,
        env_runs=os.environ.get("REPRO_RUNS"),
    )
    spec = sweep.scenario
    tasks = sweep.tasks()

    groups = plan_tasks(sweep, warm_start=warm_start)
    results, pending = claim_cached(groups, store, resume)
    exec_ = resolve_executor(executor, processes)
    results.update(exec_.execute(pending, backend=store, resume=resume))

    series = _assemble_series(sweep, results)
    computed = sum(len(g.indices) for g in pending)
    cached = len(tasks) - computed
    series.notes = f"{computed} points computed, {cached} from cache"
    if store is not None:
        # plan_tasks already hashed every point key; harvest, don't rehash
        keys = {ix: key for g in groups for ix, key in zip(g.indices, g.keys)}
        store.save_series(series)
        store.save_manifest(
            sweep.sweep_key,
            {
                "experiment": spec.series_id,
                "scenario": spec.name,
                "measure": spec.measure,
                "sweep_axis": spec.sweep_axis,
                "sweep_values": list(spec.sweep_values),
                "strategies": list(spec.strategies),
                "runs": sweep.runs,
                "seed": sweep.seed,
                "executor": exec_.name,
                "points": [keys[(i, r)] for i, r, _, _ in tasks],
                "computed": computed,
                "cached": cached,
                "series_locator": f"{store.locator}::series/{spec.series_id}",
                # The series/<id> slot is latest-wins; this copy is
                # keyed by the sweep's content hash and never clobbered.
                "series": series.to_dict(),
            },
        )
    return series


def _assemble_series(sweep: SweepSpec, results: dict[tuple[int, int], list]) -> ExperimentSeries:
    """Collect stage: fold point results into an :class:`ExperimentSeries`."""
    spec = sweep.scenario
    runs = sweep.runs
    strategies = spec.strategies
    if spec.measure == "delta_rounds":
        # results[(0, r)][strategy][round][metric]
        raw = [results[(0, r)] for r in range(runs)]
        data = np.asarray(raw, dtype=np.float64)  # run, strategy, round, metric
        if data.ndim != 4:
            raise ConfigurationError(
                f"scenario {spec.name!r} produced no perturbation rounds to sample"
            )
        data = data.transpose(2, 0, 1, 3)  # round, run, strategy, metric
        x_values = [float(t) for t in range(1, data.shape[0] + 1)]
        metric_names = DELTA_METRICS
    else:
        raw = [[results[(i, r)] for r in range(runs)] for i in range(len(sweep.points))]
        data = np.asarray(raw, dtype=np.float64)  # x, run, strategy, metric
        x_values = [float(v) for v in spec.sweep_values]
        metric_names = DELTA_METRICS if spec.measure == "delta" else ABS_METRICS
    means = data.mean(axis=1)
    if runs > 1:
        sems = data.std(axis=1, ddof=1) / np.sqrt(runs)
    else:
        sems = np.zeros_like(means)
    metrics = {
        m: {s: means[:, si, mi].tolist() for si, s in enumerate(strategies)}
        for mi, m in enumerate(metric_names)
    }
    stderr = {
        m: {s: sems[:, si, mi].tolist() for si, s in enumerate(strategies)}
        for mi, m in enumerate(metric_names)
    }
    return ExperimentSeries(
        experiment=spec.series_id,
        x_label=spec.series_x_label,
        x_values=x_values,
        metrics=metrics,
        runs=runs,
        stderr=stderr,
    )
