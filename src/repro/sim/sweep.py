"""The unified experiment orchestrator: one pipeline for every sweep.

Every evaluation in this repo — the paper's five figure experiments and
each registered extended scenario — runs through :func:`run_sweep`:

1. the scenario spec is resolved once per sweep value (axis × value),
2. per-run seeds are derived from one master ``SeedSequence`` (paired
   across sweep values when the spec asks for it),
3. each (point, run) pair becomes one task; tasks already present in
   the :class:`~repro.sim.results.ResultsStore` are served from cache,
   the rest are fanned out through
   :func:`~repro.sim.runner.parallel_map`,
4. a task replays the point's phased workload *single-pass* against all
   strategies with :class:`~repro.sim.network.MultiStrategyReplay` —
   topology mutation and conflict-delta computation happen once per
   event, not once per strategy,
5. results are assembled into an
   :class:`~repro.analysis.series.ExperimentSeries` (and persisted to
   the store together with a run manifest when one is given).

:class:`SweepSpec` is the frozen execution plan (scenario × runs ×
seed); the legacy ``run_*_experiment`` functions in
:mod:`repro.sim.experiments` are now thin builders of such plans.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.series import ExperimentSeries
from repro.errors import ConfigurationError
from repro.sim.network import MultiStrategyReplay
from repro.sim.registry import get_scenario
from repro.sim.results import ResultsStore, seed_token, spec_digest
from repro.sim.runner import parallel_map, resolve_runs
from repro.sim.scenarios import ScenarioSpec, resolve_sweep, scenario_phases
from repro.strategies import make_strategy

__all__ = ["SweepSpec", "build_sweep", "run_sweep"]

#: Metric names of the absolute measure (end-state totals).
ABS_METRICS = ("max_color", "recodings", "messages")
#: Metric names of the delta measures (change from the join baseline).
DELTA_METRICS = ("delta_max_color", "delta_recodings", "delta_messages")

_DEFAULT_RUNS = 5
_DEFAULT_SEED = 2001


@dataclass(frozen=True)
class SweepSpec:
    """A fully resolved sweep execution plan.

    ``points[i]`` is the scenario with its sweep axis pinned to
    ``scenario.sweep_values[i]``; ``seeds[i][r]`` is the
    ``SeedSequence`` driving run ``r`` of point ``i``.  With
    ``scenario.paired_runs`` the seed rows are identical across points,
    so every sweep value perturbs the same base networks.
    """

    scenario: ScenarioSpec
    points: tuple[ScenarioSpec, ...]
    seeds: tuple[tuple[np.random.SeedSequence, ...], ...]
    runs: int
    seed: int

    @property
    def sweep_key(self) -> str:
        """Content hash naming this exact sweep (spec × runs × seed)."""
        return spec_digest(self.scenario, extra={"runs": self.runs, "seed": self.seed})

    def tasks(self) -> list[tuple[int, int, ScenarioSpec, np.random.SeedSequence]]:
        """All (point index, run index, point spec, seed) work items."""
        return [
            (i, r, point, self.seeds[i][r])
            for i, point in enumerate(self.points)
            for r in range(self.runs)
        ]


def build_sweep(
    scenario: ScenarioSpec | str,
    *,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    env_runs: str | None = None,
) -> SweepSpec:
    """Resolve a scenario (or registered name) into a :class:`SweepSpec`.

    Raises :class:`ConfigurationError` for empty sweeps, invalid
    resolved points (e.g. a range sweep value driving ``min_range``
    non-positive) and ``delta_rounds`` measures with more than one
    sweep value — all *before* any computation starts.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if strategies is not None:
        spec = replace(spec, strategies=tuple(strategies))
    if not spec.sweep_values:
        raise ConfigurationError(f"scenario {spec.name!r} has no sweep values")
    if spec.measure == "delta_rounds" and len(spec.sweep_values) != 1:
        raise ConfigurationError(
            "delta_rounds scenarios sweep within one trace and need exactly "
            f"one sweep value, got {spec.sweep_values}"
        )
    runs = resolve_runs(runs, _DEFAULT_RUNS, env_runs)
    points = tuple(resolve_sweep(spec, value) for value in spec.sweep_values)
    master = np.random.SeedSequence(seed)
    if spec.paired_runs:
        row = tuple(master.spawn(runs))
        seeds = tuple(row for _ in points)
    else:
        point_seqs = master.spawn(len(points))
        seeds = tuple(tuple(point_seqs[i].spawn(runs)) for i in range(len(points)))
    return SweepSpec(scenario=spec, points=points, seeds=seeds, runs=runs, seed=seed)


# ----------------------------------------------------------------------
# Per-point replay (runs in worker processes; must stay module-level)
# ----------------------------------------------------------------------
def _replay_point(args: tuple) -> list:
    """Compute one (point, run): single-pass multi-strategy replay.

    Returns, per strategy, either one ``[max_color, recodings,
    messages]`` triple (absolute / delta measures) or one triple per
    perturbation round (``delta_rounds``).  When a store root is given
    the artifact is persisted *here*, in the worker, so every completed
    point survives an interrupted sweep (resume recovers it even if the
    orchestrating process never returns from the fan-out).
    """
    point, seed, store_root, key, context = args
    result = _compute_point(point, seed)
    if store_root is not None:
        ResultsStore(store_root).save_point(key, result, context=context)
    return result


def _compute_point(point: ScenarioSpec, seed) -> list:
    phases = scenario_phases(point, np.random.default_rng(seed))
    replay = MultiStrategyReplay([make_strategy(name) for name in point.strategies])
    for event in phases.baseline:
        replay.apply(event)
    if point.measure == "absolute":
        for round_events in phases.rounds:
            for event in round_events:
                replay.apply(event)
        return [
            [
                float(lane.assignment.max_color()),
                float(lane.metrics.total_recodings),
                float(lane.metrics.total_messages),
            ]
            for lane in replay.lanes
        ]
    baselines = [lane.metrics.snapshot() for lane in replay.lanes]
    if point.measure == "delta":
        for round_events in phases.rounds:
            for event in round_events:
                replay.apply(event)
        return [_delta_triple(before, lane) for before, lane in zip(baselines, replay.lanes)]
    # delta_rounds: cumulative deltas sampled after every round.
    out: list[list[list[float]]] = [[] for _ in replay.lanes]
    for round_events in phases.rounds:
        for event in round_events:
            replay.apply(event)
        for i, (before, lane) in enumerate(zip(baselines, replay.lanes)):
            out[i].append(_delta_triple(before, lane))
    return out


def _delta_triple(before, lane) -> list[float]:
    delta = before.delta(lane.metrics.snapshot())
    return [
        float(delta.max_color),
        float(delta.total_recodings),
        float(delta.total_messages),
    ]


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def run_sweep(
    scenario: ScenarioSpec | str,
    *,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    processes: int | None = None,
    store: ResultsStore | None = None,
    resume: bool = True,
) -> ExperimentSeries:
    """Run one sweep through the unified pipeline; return its series.

    ``scenario`` is a spec or registered name; ``runs`` defaults to 5
    (``REPRO_RUNS`` overrides).  With a ``store``, completed points are
    loaded instead of recomputed (unless ``resume=False``), fresh
    points are persisted as they land, and the assembled series plus a
    run manifest are written.  The series ``notes`` field records the
    computed/cached split of this invocation.
    """
    import os

    sweep = build_sweep(
        scenario,
        runs=runs,
        seed=seed,
        strategies=strategies,
        env_runs=os.environ.get("REPRO_RUNS"),
    )
    spec = sweep.scenario
    tasks = sweep.tasks()

    results: dict[tuple[int, int], list] = {}
    pending: list[tuple] = []
    pending_index: list[tuple[int, int]] = []
    keys: dict[tuple[int, int], str] = {}
    for i, r, point, point_seed in tasks:
        key = None
        context = None
        if store is not None:
            key = keys[(i, r)] = store.point_key(point, point_seed)
            if resume:
                cached = store.load_point(key)
                if cached is not None:
                    results[(i, r)] = cached
                    continue
            context = {
                "experiment": spec.series_id,
                "scenario": spec.name,
                "sweep_axis": spec.sweep_axis,
                "sweep_value": spec.sweep_values[i],
                "run": r,
                "seed": seed_token(point_seed),
                "measure": spec.measure,
                "strategies": list(point.strategies),
            }
        store_root = None if store is None else str(store.root)
        pending.append((point, point_seed, store_root, key, context))
        pending_index.append((i, r))

    fresh = parallel_map(_replay_point, pending, processes=processes)
    for (i, r), result in zip(pending_index, fresh):
        results[(i, r)] = result

    series = _assemble_series(sweep, results)
    computed, cached = len(pending), len(tasks) - len(pending)
    series.notes = f"{computed} points computed, {cached} from cache"
    if store is not None:
        store.save_series(series)
        store.save_manifest(
            sweep.sweep_key,
            {
                "experiment": spec.series_id,
                "scenario": spec.name,
                "measure": spec.measure,
                "sweep_axis": spec.sweep_axis,
                "sweep_values": list(spec.sweep_values),
                "strategies": list(spec.strategies),
                "runs": sweep.runs,
                "seed": sweep.seed,
                "points": [keys[(i, r)] for i, r, _, _ in tasks],
                "computed": computed,
                "cached": cached,
                "series_path": str(store.series_path(spec.series_id)),
                # The series/<id>.json slot is latest-wins; this copy is
                # keyed by the sweep's content hash and never clobbered.
                "series": series.to_dict(),
            },
        )
    return series


def _assemble_series(sweep: SweepSpec, results: dict[tuple[int, int], list]) -> ExperimentSeries:
    """Fold point results into an :class:`ExperimentSeries`."""
    spec = sweep.scenario
    runs = sweep.runs
    strategies = spec.strategies
    if spec.measure == "delta_rounds":
        # results[(0, r)][strategy][round][metric]
        raw = [results[(0, r)] for r in range(runs)]
        data = np.asarray(raw, dtype=np.float64)  # run, strategy, round, metric
        if data.ndim != 4:
            raise ConfigurationError(
                f"scenario {spec.name!r} produced no perturbation rounds to sample"
            )
        data = data.transpose(2, 0, 1, 3)  # round, run, strategy, metric
        x_values = [float(t) for t in range(1, data.shape[0] + 1)]
        metric_names = DELTA_METRICS
    else:
        raw = [[results[(i, r)] for r in range(runs)] for i in range(len(sweep.points))]
        data = np.asarray(raw, dtype=np.float64)  # x, run, strategy, metric
        x_values = [float(v) for v in spec.sweep_values]
        metric_names = DELTA_METRICS if spec.measure == "delta" else ABS_METRICS
    means = data.mean(axis=1)
    if runs > 1:
        sems = data.std(axis=1, ddof=1) / np.sqrt(runs)
    else:
        sems = np.zeros_like(means)
    metrics = {
        m: {s: means[:, si, mi].tolist() for si, s in enumerate(strategies)}
        for mi, m in enumerate(metric_names)
    }
    stderr = {
        m: {s: sems[:, si, mi].tolist() for si, s in enumerate(strategies)}
        for mi, m in enumerate(metric_names)
    }
    return ExperimentSeries(
        experiment=spec.series_id,
        x_label=spec.series_x_label,
        x_values=x_values,
        metrics=metrics,
        runs=runs,
        stderr=stderr,
    )
