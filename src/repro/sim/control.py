"""Adaptive run-count control: precision-targeted sequential sampling.

A fixed-run sweep spends the same simulation budget on every point, no
matter how noisy it is.  The control plane inverts that: after each
collect pass, :class:`RunController` inspects per-point mean/stderr and
plans *additional* runs only for points whose confidence interval is
still wider than the target — the sequential sampling large
power-control studies use to keep per-point estimates
confidence-bounded without paying worst-case run counts everywhere.

:class:`PrecisionTarget` is the declarative goal: a point is converged
when, for every (strategy, metric) sample mean, the two-sided
``confidence`` CI half-width ``z * sem`` is within ``rel * |mean|``
*or* within ``abs_tol`` (the absolute floor keeps near-zero means from
demanding infinite runs).  ``max_runs`` hard-caps the budget per point.

Planning jumps straight to the *predicted* run count: the CI half-width
shrinks as ``z·σ/√n``, so the smallest converging budget is
``n* = (z·σ/tol)²`` for the point's worst (strategy, metric) cell — one
plan→execute→collect pass typically lands the target instead of
doubling toward it.  ``growth`` remains the per-pass floor (an
unconverged point always grows at least geometrically), which caps the
number of passes logarithmically even when early, small-sample variance
estimates undershoot; ``predict=False`` restores the pure geometric
schedule.

Because every run task stays content-addressed (the seed of run ``r``
depends only on the master seed and ``r``, never on how many runs were
planned — see :func:`repro.sim.sweep.build_sweep`), incremental
planning reuses the results store: re-running an adaptive sweep serves
every previously computed run from cache and re-derives the same
decisions, so the assembled series is byte-identical.

This module is pure policy — it holds no reference to sweeps, stores or
executors.  :func:`repro.sim.sweep.run_sweep` owns the loop and feeds
the controller raw per-point sample arrays.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PrecisionTarget", "RunController", "resolve_precision", "z_score"]


def z_score(confidence: float) -> float:
    """The two-sided normal critical value for ``confidence``.

    Solves ``erf(z / sqrt(2)) = confidence`` by bisection on the stdlib
    ``math.erf`` — no SciPy dependency, deterministic to double
    precision (0.95 → 1.9599…).
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    lo, hi = 0.0, 40.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if math.erf(mid / math.sqrt(2.0)) < confidence:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class PrecisionTarget:
    """The declarative convergence goal of an adaptive sweep.

    Attributes
    ----------
    rel:
        Target relative CI half-width: converged where
        ``z * sem <= rel * |mean|``.  ``None`` disables the relative
        criterion (then ``abs_tol`` must be set).
    abs_tol:
        Absolute CI half-width floor: a cell is also converged where
        ``z * sem <= abs_tol``.  Keeps near-zero means (delta metrics
        that round to 0) from demanding unbounded runs.
    confidence:
        Two-sided confidence level the half-width is computed at.
    min_runs:
        Never judge convergence on fewer samples than this (and never
        below 2 — a single run has no variance estimate at all, so
        ``n = 1`` always counts as "needs more runs", not "converged").
    max_runs:
        Hard cap on runs per point; a point that still hasn't converged
        at the cap is reported as-is rather than planned further.
    growth:
        Per-pass growth *floor*: an unconverged point at ``n`` runs is
        always planned to at least ``ceil(n * growth)``, so even when
        the variance prediction undershoots (σ estimated from few
        samples) the number of sequential passes stays logarithmic in
        the final run count.
    predict:
        Jump straight to the variance-predicted run count
        ``n* = (z·σ/tol)²`` instead of growing purely geometrically
        (the default).  ``False`` restores the pre-prediction schedule.
    """

    rel: float | None = 0.05
    abs_tol: float | None = None
    confidence: float = 0.95
    min_runs: int = 2
    max_runs: int = 32
    growth: float = 2.0
    predict: bool = True

    def __post_init__(self) -> None:
        if self.rel is None and self.abs_tol is None:
            raise ConfigurationError(
                "precision target needs a criterion: set rel (relative CI "
                "half-width) and/or abs_tol (absolute half-width)"
            )
        if self.rel is not None and self.rel <= 0:
            raise ConfigurationError(f"rel must be > 0, got {self.rel}")
        if self.abs_tol is not None and self.abs_tol <= 0:
            raise ConfigurationError(f"abs_tol must be > 0, got {self.abs_tol}")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.min_runs < 1:
            raise ConfigurationError(f"min_runs must be >= 1, got {self.min_runs}")
        if self.max_runs < self.min_runs:
            raise ConfigurationError(
                f"max_runs ({self.max_runs}) must be >= min_runs ({self.min_runs})"
            )
        if self.growth <= 1.0:
            raise ConfigurationError(f"growth must be > 1, got {self.growth}")

    @property
    def z(self) -> float:
        """The critical value matching ``confidence``."""
        return z_score(self.confidence)


class RunController:
    """Plans additional runs per sweep point until the target is met.

    The controller is deliberately stateless between passes except for
    bookkeeping the sweep fills in afterwards (``runs_per_point``,
    ``passes``, ``total_runs``) — every decision derives from the
    sample arrays handed to :meth:`plan`, so identical data always
    yields identical plans (the property that makes adaptive sweeps
    cache-stable across re-runs).
    """

    def __init__(self, target: PrecisionTarget | None = None) -> None:
        self.target = target or PrecisionTarget()
        #: Final per-point run counts; filled in by ``run_sweep``.
        self.runs_per_point: list[int] | None = None
        #: Number of extra plan→execute passes; filled in by ``run_sweep``.
        self.passes: int = 0

    @property
    def total_runs(self) -> int | None:
        """Total runs of the last controlled sweep (``None`` before one)."""
        return None if self.runs_per_point is None else sum(self.runs_per_point)

    def converged(self, samples: np.ndarray) -> bool:
        """Whether one point's sample block meets the precision target.

        ``samples`` has the run axis first (shape ``(n, ...)``); the
        remaining axes are (strategy, metric) cells — every cell must
        meet the target.  ``n`` below ``min_runs`` (or 2) is never
        converged: with one run there is no variance estimate, and
        treating it as converged would freeze every point at its first
        sample.
        """
        data = np.asarray(samples, dtype=np.float64)
        n = data.shape[0]
        if n < max(2, self.target.min_runs):
            return False
        mean = data.mean(axis=0)
        half = self.target.z * data.std(axis=0, ddof=1) / math.sqrt(n)
        return bool(np.all(half <= self._tolerances(mean)))

    def _tolerances(self, mean: np.ndarray) -> np.ndarray:
        """Per-cell CI half-width tolerance (the rel/abs maximum)."""
        tol = np.full_like(mean, -np.inf)
        if self.target.rel is not None:
            tol = np.maximum(tol, self.target.rel * np.abs(mean))
        if self.target.abs_tol is not None:
            tol = np.maximum(tol, self.target.abs_tol)
        return tol

    def required_runs(self, samples: np.ndarray) -> int:
        """The variance-predicted converging run count of one point.

        The CI half-width at ``n`` runs is ``z·σ/√n``, so the smallest
        budget meeting a tolerance ``tol`` is ``n* = (z·σ/tol)²``; the
        prediction takes the worst (strategy, metric) cell.  Cells with
        zero spread need one run; a cell whose tolerance is non-positive
        (a zero mean under a rel-only target) can never converge and
        predicts ``max_runs`` outright.  The estimate trusts the current
        σ — :meth:`plan` re-checks convergence on the fresh samples, so
        an undershoot only costs another (geometrically-floored) pass.
        """
        data = np.asarray(samples, dtype=np.float64)
        n = data.shape[0]
        if n < 2:  # no variance estimate yet: nothing to predict from
            return max(2, self.target.min_runs)
        sd = data.std(axis=0, ddof=1)
        tol = self._tolerances(data.mean(axis=0))
        with np.errstate(divide="ignore", invalid="ignore"):
            need = np.square(self.target.z * sd / tol)
        need = np.where(tol <= 0.0, float(self.target.max_runs), need)
        # a zero-spread cell is satisfied at any tolerance (half-width 0),
        # including tol == 0 — the sd mask must win over the tol mask, or
        # a constant-zero metric under a rel-only target would burn the
        # whole run budget despite already counting as converged
        need = np.where(sd <= 0.0, 1.0, need)
        worst = float(np.max(need, initial=1.0))
        if not math.isfinite(worst):
            return self.target.max_runs
        return min(self.target.max_runs, max(1, math.ceil(worst)))

    def plan(
        self,
        samples: Sequence[np.ndarray],
        runs_per_point: Sequence[int],
        *,
        paired: bool = False,
    ) -> dict[int, int]:
        """``{point index: new run count}`` for points needing more runs.

        ``samples[i]`` holds point ``i``'s collected results with the
        run axis first.  Points at ``max_runs`` are left alone; an
        unconverged point jumps straight to its variance-predicted
        count (:meth:`required_runs`), floored by the target's
        geometric batch factor so progress is guaranteed even when a
        small-sample σ underestimates (``predict=False`` keeps the pure
        geometric schedule).  With ``paired`` every point is raised to
        the same (maximum) count, because paired sweeps share seed rows
        across points — ragged counts would silently unpair the extra
        runs and break the common-random-numbers variance reduction
        (and checkpoint-tree row grouping) the pairing exists for.
        """
        if len(samples) != len(runs_per_point):
            raise ConfigurationError(
                f"plan needs one sample block per point: got {len(samples)} "
                f"blocks for {len(runs_per_point)} points"
            )
        want: dict[int, int] = {}
        for i, (block, n) in enumerate(zip(samples, runs_per_point)):
            if n >= self.target.max_runs:
                continue
            if self.converged(block):
                continue
            grown = max(n + 1, math.ceil(n * self.target.growth))
            if self.target.predict:
                grown = max(grown, self.required_runs(block))
            want[i] = min(self.target.max_runs, max(grown, self.target.min_runs))
        if paired and want:
            top = max(want.values())
            want = {i: top for i, n in enumerate(runs_per_point) if n < top}
        return want


def resolve_precision(
    precision: "RunController | PrecisionTarget | float | None",
) -> RunController | None:
    """Resolve ``run_sweep``'s ``precision`` argument to a controller.

    ``None`` keeps the fixed-run pipeline; a float is shorthand for a
    relative-CI target at the defaults; targets and controllers pass
    through (handing in a controller instance additionally exposes the
    run bookkeeping to the caller afterwards).
    """
    if precision is None:
        return None
    if isinstance(precision, RunController):
        return precision
    if isinstance(precision, PrecisionTarget):
        return RunController(precision)
    if isinstance(precision, (int, float)) and not isinstance(precision, bool):
        return RunController(PrecisionTarget(rel=float(precision)))
    raise ConfigurationError(
        f"not a precision target: {precision!r} (expected a float, "
        "PrecisionTarget, RunController, or None)"
    )
