"""Event-loop benchmarks: conflict maintenance modes and replay sharing.

``minim-cdma bench`` times the strategy-independent core of the
simulator — topology mutation plus the conflict-set derivation every
recoding strategy consumes (the conflict sets of the event node and its
in-neighbors, i.e. the ``V1`` of Fig 3) — over two traces:

* the paper's join sweep at ``--n`` nodes, and
* one registered scenario's full event trace (default
  ``random-waypoint``, re-based to ``--n`` nodes so moves dominate).

Each trace runs once per conflict core: the array-native core (flat
numpy slots, batched conflict rows — the default), the dict-keyed
incremental core (``REPRO_ARRAY=0``, labeled ``grid``), the
``REPRO_DENSE=1`` escape hatch that re-derives the dense conflict
matrix per event, and the sparse CSR-row core (``REPRO_SPARSE=1``).
The array entries carry ``speedup_vs_dict`` — the CI-gated ratio of
the PR 6 rewrite — and a separate :func:`run_large_n_bench` drives
N≥2000 join traces at constant node density on the array and sparse
cores, the regime where the dense blocks' O(N²) memory and N-wide
masks collapse; its sparse entry drives the whole trace through the
streaming bulk-join path and carries the CI-gated ``speedup_vs_pr7``
(over the per-event scalar kernels it replaced) plus
``speedup_vs_array`` and a tracemalloc memory ceiling, and a
round-structured mobility entry measures
:meth:`~repro.topology.digraph.AdHocDigraph.apply_round` batching.
Every entry records ``peak_mem_mb`` (the traced warmup's peak), so
``BENCH_eventloop.json`` tracks the memory trajectory alongside
events/sec.

A second comparison (:func:`run_replay_bench`) times what the unified
sweep pipeline deduplicates: replaying one workload against several
strategy lanes.  ``per-strategy`` rebuilds an
:class:`~repro.sim.network.AdHocNetwork` per lane — the pre-pipeline
pattern, paying topology mutation and conflict-delta computation once
*per strategy* — while ``shared`` drives one
:class:`~repro.sim.network.MultiStrategyReplay` that pays them once per
event and fans the delta out to all lanes.  Lanes run the first-fit
floor common to every recoding strategy (read the event node's conflict
set, commit a color, record metrics), so the comparison isolates the
replay core; full-strategy sweeps add per-lane matching/recolor work on
top that no replay can share.

A third comparison (:func:`run_warmstart_bench`) times what snapshot
warm starts save on paired delta sweeps: ``cold`` rebuilds the shared
baseline network for every sweep value, ``warm`` builds it once and
replays each value's perturbation round on a
:meth:`~repro.sim.network.MultiStrategyReplay.fork`.

A fourth comparison (:func:`run_adaptive_bench`) measures what the
adaptive run-count controller saves on the *sampling* budget: ``fixed``
runs every sweep point at the worst-case run count, ``adaptive`` starts
small and adds runs per point only until the confidence-interval target
is met (:mod:`repro.sim.control`).  Here ``events`` counts simulation
runs, and the adaptive entry's ``run_savings_vs_fixed`` is the
fixed/adaptive run-count ratio — deterministic for a given seed, so CI
can gate it like the other intra-run speedups.

A fifth comparison (:func:`run_timeline_bench`) times what the
checkpoint-tree execution timeline saves beyond the PR 3 warm path on
round-structured sweeps — a ``delta_rounds``-style sweep whose point
``k`` samples the cumulative delta after round ``k``.  ``warm-rounds``
forks the shared baseline once per point and replays rounds ``1..k``
cold (the PR 3 behavior, Σk rounds total); ``timeline`` walks the same
members over the checkpoint tree, so point ``k`` forks from point
``k-1``'s last shared round and the sweep replays max(k) rounds total.
The timeline entry's ``timeline_prefix_sharing`` ratio is gated in CI.

A sixth comparison (:func:`run_obs_overhead_bench`) prices the
observability layer itself: the same join trace with tracing off and
on, the ``on`` entry carrying the CI-gated ``trace_on_vs_off``
throughput ratio (the ≤3%-overhead contract of :mod:`repro.obs`).

A seventh comparison (:func:`run_checkpoint_bench`) prices the
checkpoint fork/serialize paths at N=10⁴: after each churn round the
state is captured as a full in-process ``copy`` (the pre-CoW fork), a
``full`` JSON snapshot round-trip, a ``replay`` of the whole round
prefix from the shared base (what a consumer pays with no checkpoint
at all), and a ``delta`` — CoW :meth:`~AdHocDigraph.fork` plus a
serialized :meth:`~AdHocDigraph.delta_snapshot` /
:meth:`~AdHocDigraph.apply_delta` round-trip onto a consumer shadow.
The delta entry carries the CI-gated ``ckpt_delta_speedup`` (the best
rival wall over the delta wall) and ``ckpt_bytes_ratio`` (delta bytes
over full-snapshot bytes, a ceiling gate).

Results land in ``BENCH_eventloop.json`` (one entry per trace × mode
with ``scenario``, ``n``, ``wall_seconds``, ``events_per_sec``) so the
perf trajectory is machine-readable from CI artifacts.
"""

from __future__ import annotations

import json
import math
from collections.abc import Set
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import lowest_available_color
from repro.errors import ConfigurationError
from repro.events.base import Event, JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.obs.clock import perf_seconds, traced_peak_mb
from repro.sim.network import AdHocNetwork, MultiStrategyReplay
from repro.sim.random_networks import sample_configs
from repro.sim.registry import get_scenario
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.topology.digraph import AdHocDigraph
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = [
    "drive_event_loop",
    "drive_event_rounds",
    "run_adaptive_bench",
    "run_checkpoint_bench",
    "run_event_loop_bench",
    "run_large_n_bench",
    "run_obs_overhead_bench",
    "run_replay_bench",
    "run_timeline_bench",
    "run_warmstart_bench",
    "write_bench_json",
]

_DEFAULT_OUT = Path("BENCH_eventloop.json")

_EVENT_LOOP_MODES = ("array", "grid", "dense", "sparse")

#: Modes the drivers accept beyond the small-N matrix: ``sparse-scalar``
#: pins the PR 7 per-event kernels (``sparse_scalar=True``), the oracle
#: and same-machine baseline for the large-n ``speedup_vs_pr7`` ratio.
_DRIVER_MODES = (*_EVENT_LOOP_MODES, "sparse-scalar")

#: The array core's dense blocks need ~1.5 GB at N=10⁴ and grow O(N²);
#: above this the large-n bench drops the array leg rather than OOM.
_ARRAY_MAX_LARGE_N = 10000

#: The per-event scalar baseline runs ~1.7k events/sec; above this the
#: comparison leg would dominate the bench wall clock, so the large-n
#: bench skips it (no ``speedup_vs_pr7`` on those entries).
_SCALAR_MAX_LARGE_N = 20000


def _bench_graph(mode: str) -> AdHocDigraph:
    """A fresh digraph pinned to the named conflict core."""
    if mode == "sparse":
        return AdHocDigraph(sparse_core=True)
    if mode == "sparse-scalar":
        return AdHocDigraph(sparse_core=True, sparse_scalar=True)
    # explicit array_core pins the core (and disarms auto-promotion),
    # so large-n array entries honestly measure the dense blocks
    return AdHocDigraph(dense_conflicts=mode == "dense", array_core=mode == "array")


def _apply_setup(graph: AdHocDigraph, setup: list[Event] | None, mode: str) -> None:
    """Build the untimed starting topology for a bench driver.

    Sparse-core graphs admit it through one
    :meth:`~repro.topology.digraph.AdHocDigraph.apply_round` (the bulk
    join path — byte-identical to sequential application and the only
    way an N=10⁵ setup finishes in bench-friendly time); other cores
    replay it event by event.
    """
    if not setup:
        return
    if mode == "sparse":
        graph.apply_round(setup)
    else:
        for ev in setup:
            graph.apply_event(ev)


def drive_event_loop(
    events: list[Event],
    *,
    mode: str | None = None,
    dense_conflicts: bool | None = None,
    setup: list[Event] | None = None,
) -> float:
    """Apply ``events`` to a fresh digraph; return the wall seconds.

    Per event, after the topology mutation, the conflict sets of the
    event node and its in-neighbors are derived — the exact queries a
    recoding strategy issues as its first step (constraint collection
    over ``V1``), so every mode answers the same workload:

    - ``"array"`` — the array core; V1 is gathered as a slot index
      array and all its conflict rows come from one batched
      :meth:`~repro.topology.digraph.AdHocDigraph.conflict_masks` call.
    - ``"grid"`` — the dict core (``REPRO_ARRAY=0`` equivalent); one
      :meth:`~repro.topology.digraph.AdHocDigraph.conflict_neighbor_ids`
      query per V1 member.
    - ``"dense"`` — the per-event dense re-derivation escape hatch.
    - ``"sparse"`` — the sparse (CSR rows) core; V1's conflict rows
      come from one batched
      :meth:`~repro.topology.digraph.AdHocDigraph.conflict_slot_lists`
      call, its row-native query that never widens to an N-sized mask.
    - ``"sparse-scalar"`` — the sparse core pinned to the PR 7 scalar
      kernels (``sparse_scalar=True``), one
      :meth:`~repro.topology.digraph.AdHocDigraph.conflict_slots` call
      per V1 member; the same-machine baseline behind the large-n
      bench's ``speedup_vs_pr7``.

    Each mode drives its *native* query pattern deliberately: the bench
    compares the end-to-end event loop a strategy replay would run on
    that core, not one query API transplanted across cores.

    ``setup`` events, when given, build the starting topology *outside*
    the timed region (no conflict queries) — the mobility benches use
    this to time churn over an already-joined population.
    ``dense_conflicts`` is the legacy boolean spelling (``True`` →
    ``"dense"``, ``False`` → ``"grid"``) kept for callers predating the
    array core.
    """
    if mode is None:
        if dense_conflicts is None:
            raise ValueError("pass mode= ('array' | 'grid' | 'dense' | 'sparse')")
        mode = "dense" if dense_conflicts else "grid"
    if mode not in _DRIVER_MODES:
        raise ValueError(f"unknown event-loop mode {mode!r}; expected one of {_DRIVER_MODES}")
    graph = _bench_graph(mode)
    _apply_setup(graph, setup, mode)
    start = perf_seconds()
    for ev in events:
        if isinstance(ev, JoinEvent):
            graph.add_node(ev.config)
        elif isinstance(ev, MoveEvent):
            graph.move_node(ev.node_id, ev.x, ev.y)
        elif isinstance(ev, PowerChangeEvent):
            graph.set_range(ev.node_id, ev.new_range)
        elif isinstance(ev, LeaveEvent):
            graph.remove_node(ev.node_id)
            continue  # nothing to recode around a departed node
        if mode == "array":
            s = graph.slot_of(ev.node_id)
            graph.conflict_masks(graph.v1_slots(s))
        elif mode == "sparse":
            s = graph.slot_of(ev.node_id)
            graph.conflict_slot_lists(graph.v1_slots(s))
        elif mode == "sparse-scalar":
            s = graph.slot_of(ev.node_id)
            for u in graph.v1_slots(s).tolist():
                graph.conflict_slots(int(u))
        else:
            for u in graph.in_neighbors(ev.node_id):
                graph.conflict_neighbor_ids(u)
            graph.conflict_neighbor_ids(ev.node_id)
    return perf_seconds() - start


def drive_event_rounds(
    rounds: list[list[Event]],
    *,
    mode: str = "sparse",
    setup: list[Event] | None = None,
) -> float:
    """Apply round-structured ``rounds`` via batched application.

    The round-commit counterpart of :func:`drive_event_loop`: each
    round goes through
    :meth:`~repro.topology.digraph.AdHocDigraph.apply_round` (one
    batched topology commit — all-join rounds take the sparse core's
    streaming :meth:`~repro.topology.digraph.AdHocDigraph.bulk_join`
    path), then the same V1 conflict queries run per delta against the
    post-round graph, batched through
    :meth:`~repro.topology.digraph.AdHocDigraph.conflict_slot_lists`
    under the sparse core.  ``setup`` builds the starting topology
    untimed, as in :func:`drive_event_loop`.  Used by the large-n
    bench's ``sparse`` and ``sparse-rounds`` entries.
    """
    if mode not in _DRIVER_MODES:
        raise ValueError(f"unknown event-loop mode {mode!r}; expected one of {_DRIVER_MODES}")
    graph = _bench_graph(mode)
    _apply_setup(graph, setup, mode)
    start = perf_seconds()
    for round_events in rounds:
        deltas = graph.apply_round(round_events)
        for delta in deltas:
            if delta.kind == "leave" or delta.node_id not in graph:
                continue
            s = graph.slot_of(delta.node_id)
            if mode == "sparse":
                graph.conflict_slot_lists(graph.v1_slots(s))
            elif mode == "sparse-scalar":
                for u in graph.v1_slots(s).tolist():
                    graph.conflict_slots(int(u))
            else:
                graph.conflict_masks(graph.v1_slots(s))
    return perf_seconds() - start


def _traces(n: int, scenario: str, seed: int) -> list[tuple[str, int, list[Event]]]:
    """The benchmark traces: ``(label, n, events)`` triples."""
    from repro.sim.scenarios import resolve_sweep, scenario_trace

    rng = np.random.default_rng(seed)
    join_events: list[Event] = [JoinEvent(c) for c in sample_configs(n, rng)]
    spec = get_scenario(scenario)
    spec = resolve_sweep(replace(spec, n=n), spec.sweep_values[-1])
    _, scen_events = scenario_trace(spec, np.random.default_rng(seed + 1))
    return [("fig10-join", n, join_events), (spec.name, spec.n, scen_events)]


def run_event_loop_bench(
    *,
    n: int = 120,
    runs: int = 3,
    scenario: str = "random-waypoint",
    seed: int = 2001,
) -> list[dict]:
    """Time all traces in all three conflict cores; return the entries.

    Each entry is ``{scenario, n, mode, events, runs, wall_seconds,
    events_per_sec, peak_mem_mb}`` with ``wall_seconds`` the median
    over ``runs`` repetitions and ``peak_mem_mb`` the tracemalloc peak
    of the untimed warmup repetition.  Array-mode entries carry
    ``speedup_vs_dict`` (the array core over the dict core, the
    CI-gated tentpole ratio of PR 6); grid-mode entries keep the
    historical ``speedup_vs_dense``.  Sparse entries carry an ungated
    ``speedup_vs_array`` that is *below 1 at this scale* — honest
    visibility for the small-N regression (per-row bookkeeping beats
    dense blocks only once N is large; auto-promotion therefore waits
    for N≥4096).  The sparse core's gated regime is
    :func:`run_large_n_bench`.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    entries: list[dict] = []
    for label, trace_n, events in _traces(n, scenario, seed):
        timings: dict[str, float] = {}
        per_mode: dict[str, dict] = {}
        for mode in _EVENT_LOOP_MODES:
            peak = traced_peak_mb(lambda: drive_event_loop(events, mode=mode))  # warmup
            wall = float(np.median([drive_event_loop(events, mode=mode) for _ in range(runs)]))
            timings[mode] = wall
            entry = {
                "scenario": label,
                "n": trace_n,
                "mode": mode,
                "events": len(events),
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": len(events) / wall if wall > 0 else float("inf"),
                "peak_mem_mb": peak,
            }
            per_mode[mode] = entry
            entries.append(entry)
        per_mode["array"]["speedup_vs_dict"] = timings["grid"] / timings["array"]
        per_mode["grid"]["speedup_vs_dense"] = timings["dense"] / timings["grid"]
        per_mode["sparse"]["speedup_vs_array"] = timings["array"] / timings["sparse"]
    return entries


def run_large_n_bench(
    *,
    n: int = 10000,
    runs: int = 1,
    seed: int = 2001,
    max_mem_mb: float | None = 512.0,
) -> list[dict]:
    """Time an N≥2000 join trace: array vs sparse core, plus rounds.

    The large-N regime the sparse core unlocks.  The arena scales with
    ``n`` at the paper's node density (side ∝ √n, so average degree
    stays at the paper's ≈23 instead of the graph degenerating toward a
    clique), and the ``large-join``-family entries are produced:

    - ``large-join/array`` — the dense-block array core, whose O(N²)
      adjacency/C2 blocks and N-wide candidate masks dominate here;
      dropped above N=10⁴ (its blocks alone would need several GiB);
    - ``large-join/sparse-scalar`` — the PR 7 per-event kernels
      (``sparse_scalar=True``), the same-machine baseline for
      ``speedup_vs_pr7``; dropped above N=2·10⁴ where the ~1.7k
      events/sec scalar loop would dominate the bench wall clock;
    - ``large-join/sparse`` — the vectorized CSR-row core driving the
      whole join trace as *one* :func:`drive_event_rounds` round (the
      streaming ``bulk_join`` path) with per-delta batched V1 queries.
      Carries the CI-gated ``speedup_vs_pr7`` (bulk wall over the
      scalar baseline's) and ``speedup_vs_array`` when those legs ran,
      and is subject to ``max_mem_mb``: the bench *fails*
      (:class:`ConfigurationError`) if the sparse run's tracemalloc
      peak exceeds the ceiling, which pins the O(N+E) memory claim,
      not just the speed;
    - ``large-rounds/sparse-rounds`` — waypoint-style substep mobility
      rounds (each round moves a cohort through several intermediate
      positions) driven through
      :meth:`~repro.topology.digraph.AdHocDigraph.apply_round`,
      reporting ``round_batch_speedup`` over applying the same rounds
      event-by-event.  Batching wins exactly when rounds revisit nodes
      — intermediate edge flips cancel before any C2 work happens.

    Away from the canonical N=10⁴ point the scenario labels carry the
    node count (``large-join-100000``), so the regression gate's
    ``(scenario, mode)`` keys never mix entries from different N.
    Every entry records ``peak_mem_mb`` from its untimed traced
    warmup.  ``n`` below 2000 is a configuration error: smaller traces
    measure the event-loop bench's regime, not this one.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    if n < 2000:
        raise ConfigurationError(f"large-n bench needs n >= 2000, got {n}")
    side = 100.0 * math.sqrt(n / 120.0)
    rng = np.random.default_rng(seed)
    events: list[Event] = [JoinEvent(c) for c in sample_configs(n, rng, area=(side, side))]
    join_label = "large-join" if n == 10000 else f"large-join-{n}"
    rounds_label = "large-rounds" if n == 10000 else f"large-rounds-{n}"
    entries: list[dict] = []
    timings: dict[str, float] = {}
    peaks: dict[str, float] = {}
    legs = [
        mode
        for mode, ceiling in (("array", _ARRAY_MAX_LARGE_N), ("sparse-scalar", _SCALAR_MAX_LARGE_N))
        if n <= ceiling
    ]
    for mode in legs:
        peaks[mode] = traced_peak_mb(lambda: drive_event_loop(events, mode=mode))  # warmup
        wall = float(np.median([drive_event_loop(events, mode=mode) for _ in range(runs)]))
        timings[mode] = wall
        entries.append(
            {
                "scenario": join_label,
                "n": n,
                "mode": mode,
                "events": len(events),
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": len(events) / wall if wall > 0 else float("inf"),
                "peak_mem_mb": peaks[mode],
            }
        )

    def drive_bulk() -> float:
        return drive_event_rounds([events], mode="sparse")

    peaks["sparse"] = traced_peak_mb(drive_bulk)  # warmup
    wall = float(np.median([drive_bulk() for _ in range(runs)]))
    timings["sparse"] = wall
    sparse_entry = {
        "scenario": join_label,
        "n": n,
        "mode": "sparse",
        "events": len(events),
        "runs": runs,
        "wall_seconds": wall,
        "events_per_sec": len(events) / wall if wall > 0 else float("inf"),
        "peak_mem_mb": peaks["sparse"],
    }
    if "array" in timings:
        sparse_entry["speedup_vs_array"] = timings["array"] / wall
    if "sparse-scalar" in timings:
        sparse_entry["speedup_vs_pr7"] = timings["sparse-scalar"] / wall
    entries.append(sparse_entry)
    if max_mem_mb is not None and peaks["sparse"] > max_mem_mb:
        raise ConfigurationError(
            f"sparse {join_label} peaked at {peaks['sparse']:.1f} MiB, "
            f"over the {max_mem_mb:.1f} MiB ceiling — the O(N+E) memory "
            "contract of the sparse core is broken"
        )

    rounds = _substep_rounds(events, side, seed=seed + 1)
    round_events = sum(len(r) for r in rounds)
    flat = [ev for r in rounds for ev in r]

    def drive_rounds() -> float:
        return drive_event_rounds(rounds, mode="sparse", setup=events)

    peak = traced_peak_mb(drive_rounds)  # warmup
    seq_wall = float(
        np.median([drive_event_loop(flat, mode="sparse", setup=events) for _ in range(runs)])
    )
    wall = float(np.median([drive_rounds() for _ in range(runs)]))
    entries.append(
        {
            "scenario": rounds_label,
            "n": n,
            "mode": "sparse-rounds",
            "events": round_events,
            "runs": runs,
            "wall_seconds": wall,
            "events_per_sec": round_events / wall if wall > 0 else float("inf"),
            "peak_mem_mb": peak,
            "round_batch_speedup": seq_wall / wall if wall > 0 else float("inf"),
        }
    )
    return entries


def _substep_rounds(
    join_events: list[Event],
    side: float,
    *,
    seed: int,
    rounds: int = 20,
    cohort: int = 16,
    substeps: int = 8,
) -> list[list[Event]]:
    """Waypoint substep mobility rounds over the joined population.

    Each round picks a cohort of nodes and walks every member toward a
    fresh waypoint in ``substeps`` intermediate moves — the round shape
    where batched application shines, because only each walker's final
    position survives the round.
    """
    rng = np.random.default_rng(seed)
    ids = [ev.config.node_id for ev in join_events]
    out: list[list[Event]] = []
    for _ in range(rounds):
        sel = rng.choice(ids, size=min(cohort, len(ids)), replace=False)
        starts = rng.uniform(0.0, side, size=(len(sel), 2))
        targets = rng.uniform(0.0, side, size=(len(sel), 2))
        round_events: list[Event] = []
        for step in range(1, substeps + 1):
            frac = step / substeps
            pos = starts + frac * (targets - starts)
            round_events.extend(
                MoveEvent(int(nid), float(x), float(y))
                for nid, (x, y) in zip(sel.tolist(), pos.tolist())
            )
        out.append(round_events)
    return out


class _FirstFitLane(RecodingStrategy):
    """The per-event floor shared by all recoding strategies.

    On every event it reads the initiating node's conflict set and
    keeps/claims the lowest consistent color — i.e. exactly the
    constraint collection + commit step that Minim, CP and BBB all
    perform before their strategy-specific optimization.  Used by the
    replay bench so the shared/per-strategy comparison measures the
    replay core rather than matching/recolor cost.
    """

    name = "FirstFit"

    def _first_fit(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId, kind: str
    ) -> RecodeResult:
        taken = set()
        for u in graph.conflict_neighbor_ids(node_id):
            color = assignment.get(u)
            if color is not None:
                taken.add(color)
        old = assignment.get(node_id)
        if old is not None and old not in taken:
            return RecodeResult(kind, node_id, {})
        new = lowest_available_color(taken)
        return RecodeResult(kind, node_id, {node_id: (old, new)})

    def on_join(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId
    ) -> RecodeResult:
        return self._first_fit(graph, assignment, node_id, "join")

    def on_leave(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        old_color: Color,
    ) -> RecodeResult:
        return RecodeResult("leave", node_id, {})

    def on_move(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId
    ) -> RecodeResult:
        return self._first_fit(graph, assignment, node_id, "move")

    def on_power_change(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        *,
        increased: bool,
        old_conflict_neighbors: Set[NodeId],
    ) -> RecodeResult:
        kind = "power_increase" if increased else "power_decrease"
        if not increased:
            return RecodeResult(kind, node_id, {})
        return self._first_fit(graph, assignment, node_id, kind)


def _drive_per_strategy(events: list[Event], lanes: int) -> float:
    """Replay ``events`` once per lane on independent networks."""
    start = perf_seconds()
    for _ in range(lanes):
        net = AdHocNetwork(_FirstFitLane())
        for ev in events:
            net.apply(ev)
    return perf_seconds() - start


def _drive_shared(events: list[Event], lanes: int) -> float:
    """Replay ``events`` single-pass against ``lanes`` strategy lanes."""
    start = perf_seconds()
    replay = MultiStrategyReplay([_FirstFitLane() for _ in range(lanes)])
    replay.run(events)
    return perf_seconds() - start


def run_replay_bench(
    *,
    n: int = 120,
    runs: int = 3,
    lanes: int = 3,
    seed: int = 2001,
) -> list[dict]:
    """Time shared vs per-strategy replay of the N-node join sweep.

    Returns two entries (modes ``per-strategy`` and ``shared``) shaped
    like the event-loop bench's; the shared entry carries
    ``speedup_vs_per_strategy`` — the events/sec ratio the single-pass
    multi-strategy replay achieves over rebuilding a network per
    strategy.  ``wall_seconds`` is the median over ``runs`` repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    rng = np.random.default_rng(seed)
    events: list[Event] = [JoinEvent(c) for c in sample_configs(n, rng)]
    entries: list[dict] = []
    timings: dict[str, float] = {}
    for mode, drive in (("per-strategy", _drive_per_strategy), ("shared", _drive_shared)):
        peak = traced_peak_mb(lambda: drive(events, lanes))  # warmup
        wall = float(np.median([drive(events, lanes) for _ in range(runs)]))
        timings[mode] = wall
        entries.append(
            {
                "scenario": "multi-strategy-replay",
                "n": n,
                "mode": mode,
                "lanes": lanes,
                "events": len(events),
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": len(events) / wall if wall > 0 else float("inf"),
                "peak_mem_mb": peak,
            }
        )
    entries[-1]["speedup_vs_per_strategy"] = timings["per-strategy"] / timings["shared"]
    return entries


def _drive_cold_sweep(baseline: list[Event], rounds: list[list[Event]], lanes: int) -> float:
    """Rebuild the baseline network for every sweep value (pre-warm-start)."""
    start = perf_seconds()
    for round_events in rounds:
        replay = MultiStrategyReplay([_FirstFitLane() for _ in range(lanes)])
        replay.run(baseline)
        replay.run(round_events)
    return perf_seconds() - start


def _drive_warm_sweep(baseline: list[Event], rounds: list[list[Event]], lanes: int) -> float:
    """Build the baseline once; fork it per sweep value (warm start)."""
    start = perf_seconds()
    base = MultiStrategyReplay([_FirstFitLane() for _ in range(lanes)])
    base.run(baseline)
    for round_events in rounds:
        base.fork().run(round_events)
    return perf_seconds() - start


def run_warmstart_bench(
    *,
    n: int = 100,
    runs: int = 3,
    sweep_points: int = 5,
    lanes: int = 3,
    seed: int = 2001,
) -> list[dict]:
    """Time cold-rebuild vs snapshot-fork replay of a paired delta sweep.

    The workload mirrors the fig11-style paired sweeps: one shared
    baseline join phase of ``n`` nodes, then one power-raise
    perturbation round per sweep value.  ``cold`` rebuilds the baseline
    network per value (the pre-warm-start pipeline); ``warm`` builds it
    once and replays each value's round on a
    :meth:`~repro.sim.network.MultiStrategyReplay.fork`.  Both entries
    report the *logical* event count of the sweep (values × trace
    length), so their ``events_per_sec`` ratio equals
    ``speedup_vs_cold`` on the warm entry.  ``wall_seconds`` is the
    median over ``runs`` repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if sweep_points < 1:
        raise ValueError(f"sweep_points must be >= 1, got {sweep_points}")
    from repro.sim.workloads import power_raise_workload

    rng = np.random.default_rng(seed)
    configs = sample_configs(n, rng)
    baseline: list[Event] = [JoinEvent(c) for c in configs]
    rounds = [
        list(
            power_raise_workload(
                configs, 1.5 + k, np.random.default_rng(seed + 1 + k), fraction=0.5
            )
        )
        for k in range(sweep_points)
    ]
    logical_events = sum(len(baseline) + len(r) for r in rounds)
    entries: list[dict] = []
    timings: dict[str, float] = {}
    for mode, drive in (("cold", _drive_cold_sweep), ("warm", _drive_warm_sweep)):
        peak = traced_peak_mb(lambda: drive(baseline, rounds, lanes))  # warmup
        wall = float(np.median([drive(baseline, rounds, lanes) for _ in range(runs)]))
        timings[mode] = wall
        entries.append(
            {
                "scenario": "warmstart-delta-sweep",
                "n": n,
                "mode": mode,
                "lanes": lanes,
                "sweep_points": sweep_points,
                "events": logical_events,
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": logical_events / wall if wall > 0 else float("inf"),
                "peak_mem_mb": peak,
            }
        )
    entries[-1]["speedup_vs_cold"] = timings["cold"] / timings["warm"]
    return entries


def run_timeline_bench(
    *,
    n: int = 60,
    runs: int = 3,
    sweep_points: int = 6,
    seed: int = 2001,
) -> list[dict]:
    """Time checkpoint-tree round sharing against per-point round replay.

    The workload is a ``delta_rounds`` sweep decomposed into points: a
    paired delta sweep over ``steps`` in ``2, 4, …, 2·sweep_points``
    (jump mobility on ``n`` nodes), where sampling round ``k`` is point
    ``k`` of the sweep.  ``warm-rounds`` is the PR 3 warm path — the
    shared baseline is forked once per point and every point replays
    its own rounds cold, Σk rounds in total; ``timeline`` executes the
    identical members through :func:`repro.sim.timeline.compute_group`,
    whose checkpoint tree lets each point fork from the previous one's
    last shared round, max(k) rounds in total.  Both modes run the real
    strategy pipeline and report the sweep's *logical* event count, so
    the events/sec ratio equals ``timeline_prefix_sharing`` on the
    timeline entry.  ``wall_seconds`` is the median over ``runs``
    repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if sweep_points < 2:
        raise ValueError(f"sweep_points must be >= 2, got {sweep_points}")
    from repro.sim.scenarios import MobilitySpec
    from repro.sim.sweep import build_sweep, plan_tasks
    from repro.sim.timeline import _ExecState, build_plan, compute_group

    spec = replace(
        get_scenario("fig12-move-rounds"),
        n=n,
        strategies=("Minim",),
        mobility=MobilitySpec(kind="jumps", steps=2, maxdisp=40.0),
        sweep_axis="steps",
        sweep_values=tuple(float(2 * k) for k in range(1, sweep_points + 1)),
        measure="delta",
    )
    sweep = build_sweep(spec, runs=1, seed=seed)
    (group,) = plan_tasks(sweep)
    assert group.warm and len(group.points) == sweep_points
    logical_events = sum(
        len(build_plan(point, group.seed).events) for point in group.points
    )

    def drive_warm_rounds() -> None:
        # PR 3: one baseline build, then every point replays its own
        # rounds from a baseline fork
        plans = [build_plan(point, group.seed) for point in group.points]
        base = _ExecState.fresh(plans[0].strategies)
        base.apply_stage(plans[0].stages[0], plans[0].measure)
        for plan in plans:
            state = base.fork()
            for stage in plan.stages[1:]:
                state.apply_stage(stage, plan.measure)
            state.result(plan.measure)

    def drive_timeline() -> None:
        compute_group(group.points, group.seed)

    entries: list[dict] = []
    timings: dict[str, float] = {}
    for mode, drive in (("warm-rounds", drive_warm_rounds), ("timeline", drive_timeline)):
        peak = traced_peak_mb(drive)  # warmup
        walls = []
        for _ in range(runs):
            start = perf_seconds()
            drive()
            walls.append(perf_seconds() - start)
        wall = float(np.median(walls))
        timings[mode] = wall
        entries.append(
            {
                "scenario": "timeline-prefix-sharing",
                "n": n,
                "mode": mode,
                "sweep_points": sweep_points,
                "events": logical_events,
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": logical_events / wall if wall > 0 else float("inf"),
                "peak_mem_mb": peak,
            }
        )
    entries[-1]["timeline_prefix_sharing"] = timings["warm-rounds"] / timings["timeline"]
    return entries


def run_adaptive_bench(
    *,
    runs: int = 3,
    fixed_runs: int = 12,
    seed: int = 2001,
) -> list[dict]:
    """Time a fixed-budget sweep against its adaptive equivalent.

    Both modes run the same seeded smoke sweep through
    :func:`repro.sim.sweep.run_sweep` without a store, so every
    repetition honestly recomputes.  Unlike the event-loop benches this
    one deliberately ignores ``--n``: it measures the *controller*, so
    the workload is pinned to a small, genuinely noisy sweep (tiny
    ``paper-join`` networks, variance large relative to the means)
    where the growth loop actually has to iterate — at large ``n`` the
    means dwarf the noise, every point converges at the starting budget
    and the gated ratio would degenerate into the constant
    ``fixed_runs / min_runs``, blind to controller regressions.

    ``fixed`` spends ``fixed_runs`` runs on every sweep point;
    ``adaptive`` starts at 2 runs per point and lets the
    :class:`~repro.sim.control.RunController` add runs until the CI
    target is met, capped at the same ``fixed_runs``.  ``events``
    counts simulation runs and the adaptive entry carries
    ``run_savings_vs_fixed`` — the run-budget ratio the controller
    saves, which is deterministic for a given seed (same samples, same
    convergence decisions) and therefore CI-gateable.  ``wall_seconds``
    is the median over ``runs`` repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if fixed_runs < 2:
        raise ValueError(f"fixed_runs must be >= 2, got {fixed_runs}")
    from repro.sim.control import PrecisionTarget, RunController
    from repro.sim.sweep import run_sweep

    spec = replace(
        get_scenario("paper-join"),
        n=16,
        strategies=("Minim",),
        sweep_values=(6.0, 8.0, 10.0),
    )
    target = PrecisionTarget(rel=0.5, abs_tol=2.0, min_runs=2, max_runs=fixed_runs)

    def drive_fixed() -> tuple[float, int]:
        start = perf_seconds()
        run_sweep(spec, runs=fixed_runs, seed=seed)
        return perf_seconds() - start, fixed_runs * len(spec.sweep_values)

    def drive_adaptive() -> tuple[float, int]:
        controller = RunController(target)
        start = perf_seconds()
        run_sweep(spec, runs=2, seed=seed, precision=controller)
        assert controller.total_runs is not None
        return perf_seconds() - start, controller.total_runs

    entries: list[dict] = []
    totals: dict[str, int] = {}
    for mode, drive in (("fixed", drive_fixed), ("adaptive", drive_adaptive)):
        peak = traced_peak_mb(drive)  # warmup
        samples = [drive() for _ in range(runs)]
        walls = [w for w, _ in samples]
        run_counts = {t for _, t in samples}
        if len(run_counts) != 1:  # pragma: no cover - seeded, hence stable
            raise RuntimeError(f"non-deterministic {mode} run count: {run_counts}")
        total = run_counts.pop()
        wall = float(np.median(walls))
        totals[mode] = total
        entries.append(
            {
                "scenario": "adaptive-sweep",
                "n": spec.n,
                "mode": mode,
                "sweep_points": len(spec.sweep_values),
                "events": total,
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": total / wall if wall > 0 else float("inf"),
                "peak_mem_mb": peak,
            }
        )
    entries[-1]["run_savings_vs_fixed"] = totals["fixed"] / totals["adaptive"]
    return entries


def run_obs_overhead_bench(
    *,
    n: int = 240,
    runs: int = 5,
    inner: int = 10,
    seed: int = 2001,
) -> list[dict]:
    """Time the event loop with tracing off vs on; return both entries.

    The observability layer's contract is that its hot-path guards
    (``if _met.ENABLED: ...`` in the conflict cores) cost nothing
    measurable when tracing is off and only a few percent when on.
    This bench pins that claim: the fig10-style join trace runs through
    :func:`drive_event_loop` on the array core twice — ``off`` with the
    obs layer disabled, ``on`` inside an :func:`repro.obs.enable` /
    :func:`repro.obs.close` window writing to a throwaway trace file —
    and the ``on`` entry carries ``trace_on_vs_off``, the off/on wall
    ratio (1.0 = free, 0.97 = 3% slowdown; CI gates the floor).  Each
    sample drives the trace ``inner`` times, the off and on samples of
    a round run back to back (so slow machine drift — thermal
    throttling, noisy CI neighbors — hits both legs equally instead of
    masquerading as overhead), and ``trace_on_vs_off`` is the *best*
    per-round ratio over ``runs`` rounds: scheduler noise on a
    millisecond sample is one-sided and larger than the true overhead,
    so the gate asks for one clean paired round rather than every round
    clean — a real unguarded-hot-path regression drags every round down
    and still fails.  The published ``wall_seconds`` per leg is the
    minimum over rounds, the timeit convention.

    Runs refuse to start while tracing is already enabled (e.g. under
    ``bench --trace``): the off leg would silently measure the on
    configuration and the ratio would gate nothing.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if inner < 1:
        raise ValueError(f"inner must be >= 1, got {inner}")
    import tempfile

    from repro import obs

    if obs.enabled():
        raise ConfigurationError(
            "the obs-overhead bench toggles tracing itself; rerun without --trace"
        )
    rng = np.random.default_rng(seed)
    events: list[Event] = [JoinEvent(c) for c in sample_configs(n, rng)]

    def drive() -> float:
        return sum(drive_event_loop(events, mode="array") for _ in range(inner))

    walls = {"off": float("inf"), "on": float("inf")}
    peaks: dict[str, float] = {}
    peaks["off"] = traced_peak_mb(drive)  # warmup
    with tempfile.TemporaryDirectory() as td:
        sink = Path(td) / "obs-overhead.jsonl"
        obs.enable(sink)
        try:
            peaks["on"] = traced_peak_mb(drive)  # warmup
        finally:
            obs.close()
        round_ratios: list[float] = []
        for _ in range(runs):
            off_wall = drive()
            obs.enable(sink)
            try:
                on_wall = drive()
            finally:
                obs.close()
            walls["off"] = min(walls["off"], off_wall)
            walls["on"] = min(walls["on"], on_wall)
            round_ratios.append(off_wall / on_wall if on_wall > 0 else 1.0)
    driven = inner * len(events)
    entries: list[dict] = []
    for mode in ("off", "on"):
        wall = walls[mode]
        entries.append(
            {
                "scenario": "obs-overhead",
                "n": n,
                "mode": mode,
                "events": driven,
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": driven / wall if wall > 0 else float("inf"),
                "peak_mem_mb": peaks[mode],
            }
        )
    entries[-1]["trace_on_vs_off"] = max(round_ratios)
    return entries


_CKPT_MODES = ("copy", "full", "replay", "delta")


def _drive_checkpoints(
    mode: str,
    template: AdHocDigraph,
    rounds: list[list[Event]],
) -> tuple[float, int]:
    """Advance a producer through ``rounds``, checkpointing each one.

    Returns ``(checkpoint_wall, serialized_bytes)``.  Round application
    itself is *untimed* — it is identical across modes, and leaving it
    in would dilute every ratio toward 1 — so the wall isolates what
    each checkpointing discipline adds per round:

    - ``copy`` — a full in-process :meth:`~AdHocDigraph.copy`, the
      pre-CoW fork every live checkpoint paid;
    - ``full`` — a complete JSON snapshot serialize + restore, the
      cross-process path without deltas (bytes summed);
    - ``replay`` — no checkpoint: a consumer forks the shared base and
      replays the whole round prefix, so round ``k`` costs ``k`` round
      applications (what the delta chain saves a late joiner);
    - ``delta`` — CoW :meth:`~AdHocDigraph.fork` plus a serialized
      delta cut against the previous round's version, applied onto a
      consumer shadow that tracks the chain (bytes summed).
    """
    producer = template.copy()
    shadow = template.copy() if mode == "delta" else None
    base_version = producer.version
    wall = 0.0
    nbytes = 0
    for idx, round_events in enumerate(rounds):
        producer.apply_round(round_events)
        start = perf_seconds()
        if mode == "copy":
            producer.copy()
        elif mode == "full":
            blob = json.dumps(producer.snapshot(), separators=(",", ":"))
            nbytes += len(blob)
            AdHocDigraph.restore(json.loads(blob))
        elif mode == "replay":
            consumer = template.fork()
            for prefix_round in rounds[: idx + 1]:
                consumer.apply_round(prefix_round)
        else:
            producer.fork()
            blob = json.dumps(producer.delta_snapshot(base_version), separators=(",", ":"))
            nbytes += len(blob)
            shadow.apply_delta(json.loads(blob))
            base_version = producer.version
        wall += perf_seconds() - start
    if shadow is not None and shadow.version != producer.version:
        raise ConfigurationError(
            f"delta shadow diverged: consumer at version {shadow.version}, "
            f"producer at {producer.version}"
        )
    return wall, nbytes


def run_checkpoint_bench(
    *,
    n: int = 10000,
    runs: int = 1,
    rounds: int = 4,
    seed: int = 2001,
) -> list[dict]:
    """Price the four checkpoint disciplines on an N=10⁴ churn trace.

    Builds the canonical constant-density join population on the
    sparse core (untimed), then drives ``rounds`` waypoint churn rounds
    through :func:`_drive_checkpoints` once per mode.  Entries land
    under scenario ``large-ckpt`` (``large-ckpt-{n}`` away from the
    canonical point) with ``events`` = checkpoints taken, so
    ``events_per_sec`` reads as checkpoints/sec.  The ``delta`` entry
    carries the two CI-gated fields:

    - ``ckpt_delta_speedup`` — min(copy, full, replay wall) over the
      delta wall.  The floor is 2: the CoW fork + O(changes) delta
      must beat the *best* rival discipline, not just the strawman.
    - ``ckpt_bytes_ratio`` — serialized delta bytes over full-snapshot
      bytes, gated as a *ceiling* (≤0.2): if a delta ever degenerates
      into a near-full snapshot, the O(changes) claim is broken even
      if the wall clock still looks fine.

    Absolute byte counts are published alongside
    (``ckpt_delta_bytes`` / ``ckpt_full_bytes``) so the trajectory of
    both sides of the ratio stays machine-readable.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    if rounds < 2:
        raise ConfigurationError(f"checkpoint bench needs rounds >= 2, got {rounds}")
    side = 100.0 * math.sqrt(n / 120.0)
    rng = np.random.default_rng(seed)
    joins: list[Event] = [JoinEvent(c) for c in sample_configs(n, rng, area=(side, side))]
    template = _bench_graph("sparse")
    template.apply_round(joins)
    churn = _substep_rounds(joins, side, seed=seed + 1, rounds=rounds)
    label = "large-ckpt" if n == 10000 else f"large-ckpt-{n}"
    entries: list[dict] = []
    walls: dict[str, float] = {}
    sizes: dict[str, int] = {}
    for mode in _CKPT_MODES:
        peak = traced_peak_mb(lambda: _drive_checkpoints(mode, template, churn))  # warmup
        samples = [_drive_checkpoints(mode, template, churn) for _ in range(runs)]
        wall = float(np.median([w for w, _ in samples]))
        walls[mode] = wall
        sizes[mode] = samples[0][1]
        entries.append(
            {
                "scenario": label,
                "n": n,
                "mode": mode,
                "events": rounds,
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": rounds / wall if wall > 0 else float("inf"),
                "peak_mem_mb": peak,
            }
        )
    delta_entry = entries[-1]
    rival = min(walls[m] for m in _CKPT_MODES if m != "delta")
    delta_entry["ckpt_delta_speedup"] = (
        rival / walls["delta"] if walls["delta"] > 0 else float("inf")
    )
    delta_entry["ckpt_bytes_ratio"] = (
        sizes["delta"] / sizes["full"] if sizes["full"] > 0 else float("inf")
    )
    delta_entry["ckpt_delta_bytes"] = sizes["delta"]
    delta_entry["ckpt_full_bytes"] = sizes["full"]
    return entries


def write_bench_json(entries: list[dict], out: Path | None = None) -> Path:
    """Write bench entries to ``out`` (default ``BENCH_eventloop.json``)."""
    path = _DEFAULT_OUT if out is None else out
    if path.parent != Path():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")
    return path
