"""Event-loop benchmarks: conflict maintenance modes and replay sharing.

``minim-cdma bench`` times the strategy-independent core of the
simulator — topology mutation plus the conflict-set derivation every
recoding strategy consumes (the conflict sets of the event node and its
in-neighbors, i.e. the ``V1`` of Fig 3) — over two traces:

* the paper's join sweep at ``--n`` nodes, and
* one registered scenario's full event trace (default
  ``random-waypoint``, re-based to ``--n`` nodes so moves dominate).

Each trace runs once per conflict core: the array-native core (flat
numpy slots, batched conflict rows — the default), the dict-keyed
incremental core (``REPRO_ARRAY=0``, labeled ``grid``), and the
``REPRO_DENSE=1`` escape hatch that re-derives the dense conflict
matrix per event.  The array entries carry ``speedup_vs_dict`` — the
CI-gated ratio of the tentpole rewrite — and a separate
:func:`run_large_n_bench` drives an N≥2000 join trace on the array
core alone, a regime where the dict path is no longer interactive.

A second comparison (:func:`run_replay_bench`) times what the unified
sweep pipeline deduplicates: replaying one workload against several
strategy lanes.  ``per-strategy`` rebuilds an
:class:`~repro.sim.network.AdHocNetwork` per lane — the pre-pipeline
pattern, paying topology mutation and conflict-delta computation once
*per strategy* — while ``shared`` drives one
:class:`~repro.sim.network.MultiStrategyReplay` that pays them once per
event and fans the delta out to all lanes.  Lanes run the first-fit
floor common to every recoding strategy (read the event node's conflict
set, commit a color, record metrics), so the comparison isolates the
replay core; full-strategy sweeps add per-lane matching/recolor work on
top that no replay can share.

A third comparison (:func:`run_warmstart_bench`) times what snapshot
warm starts save on paired delta sweeps: ``cold`` rebuilds the shared
baseline network for every sweep value, ``warm`` builds it once and
replays each value's perturbation round on a
:meth:`~repro.sim.network.MultiStrategyReplay.fork`.

A fourth comparison (:func:`run_adaptive_bench`) measures what the
adaptive run-count controller saves on the *sampling* budget: ``fixed``
runs every sweep point at the worst-case run count, ``adaptive`` starts
small and adds runs per point only until the confidence-interval target
is met (:mod:`repro.sim.control`).  Here ``events`` counts simulation
runs, and the adaptive entry's ``run_savings_vs_fixed`` is the
fixed/adaptive run-count ratio — deterministic for a given seed, so CI
can gate it like the other intra-run speedups.

A fifth comparison (:func:`run_timeline_bench`) times what the
checkpoint-tree execution timeline saves beyond the PR 3 warm path on
round-structured sweeps — a ``delta_rounds``-style sweep whose point
``k`` samples the cumulative delta after round ``k``.  ``warm-rounds``
forks the shared baseline once per point and replays rounds ``1..k``
cold (the PR 3 behavior, Σk rounds total); ``timeline`` walks the same
members over the checkpoint tree, so point ``k`` forks from point
``k-1``'s last shared round and the sweep replays max(k) rounds total.
The timeline entry's ``timeline_prefix_sharing`` ratio is gated in CI.

Results land in ``BENCH_eventloop.json`` (one entry per trace × mode
with ``scenario``, ``n``, ``wall_seconds``, ``events_per_sec``) so the
perf trajectory is machine-readable from CI artifacts.
"""

from __future__ import annotations

import json
import time
from collections.abc import Set
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import lowest_available_color
from repro.events.base import Event, JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.network import AdHocNetwork, MultiStrategyReplay
from repro.sim.random_networks import sample_configs
from repro.sim.registry import get_scenario
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.topology.digraph import AdHocDigraph
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = [
    "drive_event_loop",
    "run_adaptive_bench",
    "run_event_loop_bench",
    "run_large_n_bench",
    "run_replay_bench",
    "run_timeline_bench",
    "run_warmstart_bench",
    "write_bench_json",
]

_DEFAULT_OUT = Path("BENCH_eventloop.json")

_EVENT_LOOP_MODES = ("array", "grid", "dense")


def drive_event_loop(
    events: list[Event],
    *,
    mode: str | None = None,
    dense_conflicts: bool | None = None,
) -> float:
    """Apply ``events`` to a fresh digraph; return the wall seconds.

    Per event, after the topology mutation, the conflict sets of the
    event node and its in-neighbors are derived — the exact queries a
    recoding strategy issues as its first step (constraint collection
    over ``V1``), so every mode answers the same workload:

    - ``"array"`` — the array core; V1 is gathered as a slot index
      array and all its conflict rows come from one batched
      :meth:`~repro.topology.digraph.AdHocDigraph.conflict_masks` call.
    - ``"grid"`` — the dict core (``REPRO_ARRAY=0`` equivalent); one
      :meth:`~repro.topology.digraph.AdHocDigraph.conflict_neighbor_ids`
      query per V1 member.
    - ``"dense"`` — the per-event dense re-derivation escape hatch.

    ``dense_conflicts`` is the legacy boolean spelling (``True`` →
    ``"dense"``, ``False`` → ``"grid"``) kept for callers predating the
    array core.
    """
    if mode is None:
        if dense_conflicts is None:
            raise ValueError("pass mode= ('array' | 'grid' | 'dense')")
        mode = "dense" if dense_conflicts else "grid"
    if mode not in _EVENT_LOOP_MODES:
        raise ValueError(f"unknown event-loop mode {mode!r}; expected one of {_EVENT_LOOP_MODES}")
    graph = AdHocDigraph(dense_conflicts=mode == "dense", array_core=mode == "array")
    batched = mode == "array"
    start = time.perf_counter()
    for ev in events:
        if isinstance(ev, JoinEvent):
            graph.add_node(ev.config)
        elif isinstance(ev, MoveEvent):
            graph.move_node(ev.node_id, ev.x, ev.y)
        elif isinstance(ev, PowerChangeEvent):
            graph.set_range(ev.node_id, ev.new_range)
        elif isinstance(ev, LeaveEvent):
            graph.remove_node(ev.node_id)
            continue  # nothing to recode around a departed node
        if batched:
            s = graph.slot_of(ev.node_id)
            graph.conflict_masks(graph.v1_slots(s))
        else:
            for u in graph.in_neighbors(ev.node_id):
                graph.conflict_neighbor_ids(u)
            graph.conflict_neighbor_ids(ev.node_id)
    return time.perf_counter() - start


def _traces(n: int, scenario: str, seed: int) -> list[tuple[str, int, list[Event]]]:
    """The benchmark traces: ``(label, n, events)`` triples."""
    from repro.sim.scenarios import resolve_sweep, scenario_trace

    rng = np.random.default_rng(seed)
    join_events: list[Event] = [JoinEvent(c) for c in sample_configs(n, rng)]
    spec = get_scenario(scenario)
    spec = resolve_sweep(replace(spec, n=n), spec.sweep_values[-1])
    _, scen_events = scenario_trace(spec, np.random.default_rng(seed + 1))
    return [("fig10-join", n, join_events), (spec.name, spec.n, scen_events)]


def run_event_loop_bench(
    *,
    n: int = 120,
    runs: int = 3,
    scenario: str = "random-waypoint",
    seed: int = 2001,
) -> list[dict]:
    """Time all traces in all three conflict cores; return the entries.

    Each entry is ``{scenario, n, mode, events, runs, wall_seconds,
    events_per_sec}`` with ``wall_seconds`` the median over ``runs``
    repetitions.  Array-mode entries carry ``speedup_vs_dict`` (the
    array core over the dict core, the CI-gated tentpole ratio);
    grid-mode entries keep the historical ``speedup_vs_dense``.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    entries: list[dict] = []
    for label, trace_n, events in _traces(n, scenario, seed):
        timings: dict[str, float] = {}
        for mode in _EVENT_LOOP_MODES:
            drive_event_loop(events, mode=mode)  # warmup
            wall = float(np.median([drive_event_loop(events, mode=mode) for _ in range(runs)]))
            timings[mode] = wall
            entries.append(
                {
                    "scenario": label,
                    "n": trace_n,
                    "mode": mode,
                    "events": len(events),
                    "runs": runs,
                    "wall_seconds": wall,
                    "events_per_sec": len(events) / wall if wall > 0 else float("inf"),
                }
            )
        array_entry, grid_entry = entries[-3], entries[-2]
        array_entry["speedup_vs_dict"] = timings["grid"] / timings["array"]
        grid_entry["speedup_vs_dense"] = timings["dense"] / timings["grid"]
    return entries


def run_large_n_bench(
    *,
    n: int = 2000,
    runs: int = 1,
    seed: int = 2001,
) -> list[dict]:
    """Time an N≥2000 join trace on the array core alone.

    The regime the array rewrite unlocks: at ``n=2000`` the dict core
    needs minutes per trace (and the dense hatch far longer), so this
    bench drives only the array mode and reports a single
    ``large-join`` entry shaped like the event-loop bench's.  CI gates
    its absolute ``events_per_sec`` floor rather than a speedup ratio.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if n < 2000:
        raise ValueError(f"large-n bench needs n >= 2000, got {n}")
    rng = np.random.default_rng(seed)
    events: list[Event] = [JoinEvent(c) for c in sample_configs(n, rng)]
    drive_event_loop(events[: n // 4], mode="array")  # warmup on a prefix
    wall = float(np.median([drive_event_loop(events, mode="array") for _ in range(runs)]))
    return [
        {
            "scenario": "large-join",
            "n": n,
            "mode": "array",
            "events": len(events),
            "runs": runs,
            "wall_seconds": wall,
            "events_per_sec": len(events) / wall if wall > 0 else float("inf"),
        }
    ]


class _FirstFitLane(RecodingStrategy):
    """The per-event floor shared by all recoding strategies.

    On every event it reads the initiating node's conflict set and
    keeps/claims the lowest consistent color — i.e. exactly the
    constraint collection + commit step that Minim, CP and BBB all
    perform before their strategy-specific optimization.  Used by the
    replay bench so the shared/per-strategy comparison measures the
    replay core rather than matching/recolor cost.
    """

    name = "FirstFit"

    def _first_fit(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId, kind: str
    ) -> RecodeResult:
        taken = set()
        for u in graph.conflict_neighbor_ids(node_id):
            color = assignment.get(u)
            if color is not None:
                taken.add(color)
        old = assignment.get(node_id)
        if old is not None and old not in taken:
            return RecodeResult(kind, node_id, {})
        new = lowest_available_color(taken)
        return RecodeResult(kind, node_id, {node_id: (old, new)})

    def on_join(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId
    ) -> RecodeResult:
        return self._first_fit(graph, assignment, node_id, "join")

    def on_leave(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        old_color: Color,
    ) -> RecodeResult:
        return RecodeResult("leave", node_id, {})

    def on_move(
        self, graph: DigraphLike, assignment: CodeAssignment, node_id: NodeId
    ) -> RecodeResult:
        return self._first_fit(graph, assignment, node_id, "move")

    def on_power_change(
        self,
        graph: DigraphLike,
        assignment: CodeAssignment,
        node_id: NodeId,
        *,
        increased: bool,
        old_conflict_neighbors: Set[NodeId],
    ) -> RecodeResult:
        kind = "power_increase" if increased else "power_decrease"
        if not increased:
            return RecodeResult(kind, node_id, {})
        return self._first_fit(graph, assignment, node_id, kind)


def _drive_per_strategy(events: list[Event], lanes: int) -> float:
    """Replay ``events`` once per lane on independent networks."""
    start = time.perf_counter()
    for _ in range(lanes):
        net = AdHocNetwork(_FirstFitLane())
        for ev in events:
            net.apply(ev)
    return time.perf_counter() - start


def _drive_shared(events: list[Event], lanes: int) -> float:
    """Replay ``events`` single-pass against ``lanes`` strategy lanes."""
    start = time.perf_counter()
    replay = MultiStrategyReplay([_FirstFitLane() for _ in range(lanes)])
    replay.run(events)
    return time.perf_counter() - start


def run_replay_bench(
    *,
    n: int = 120,
    runs: int = 3,
    lanes: int = 3,
    seed: int = 2001,
) -> list[dict]:
    """Time shared vs per-strategy replay of the N-node join sweep.

    Returns two entries (modes ``per-strategy`` and ``shared``) shaped
    like the event-loop bench's; the shared entry carries
    ``speedup_vs_per_strategy`` — the events/sec ratio the single-pass
    multi-strategy replay achieves over rebuilding a network per
    strategy.  ``wall_seconds`` is the median over ``runs`` repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    rng = np.random.default_rng(seed)
    events: list[Event] = [JoinEvent(c) for c in sample_configs(n, rng)]
    entries: list[dict] = []
    timings: dict[str, float] = {}
    for mode, drive in (("per-strategy", _drive_per_strategy), ("shared", _drive_shared)):
        drive(events, lanes)  # warmup
        wall = float(np.median([drive(events, lanes) for _ in range(runs)]))
        timings[mode] = wall
        entries.append(
            {
                "scenario": "multi-strategy-replay",
                "n": n,
                "mode": mode,
                "lanes": lanes,
                "events": len(events),
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": len(events) / wall if wall > 0 else float("inf"),
            }
        )
    entries[-1]["speedup_vs_per_strategy"] = timings["per-strategy"] / timings["shared"]
    return entries


def _drive_cold_sweep(baseline: list[Event], rounds: list[list[Event]], lanes: int) -> float:
    """Rebuild the baseline network for every sweep value (pre-warm-start)."""
    start = time.perf_counter()
    for round_events in rounds:
        replay = MultiStrategyReplay([_FirstFitLane() for _ in range(lanes)])
        replay.run(baseline)
        replay.run(round_events)
    return time.perf_counter() - start


def _drive_warm_sweep(baseline: list[Event], rounds: list[list[Event]], lanes: int) -> float:
    """Build the baseline once; fork it per sweep value (warm start)."""
    start = time.perf_counter()
    base = MultiStrategyReplay([_FirstFitLane() for _ in range(lanes)])
    base.run(baseline)
    for round_events in rounds:
        base.fork().run(round_events)
    return time.perf_counter() - start


def run_warmstart_bench(
    *,
    n: int = 100,
    runs: int = 3,
    sweep_points: int = 5,
    lanes: int = 3,
    seed: int = 2001,
) -> list[dict]:
    """Time cold-rebuild vs snapshot-fork replay of a paired delta sweep.

    The workload mirrors the fig11-style paired sweeps: one shared
    baseline join phase of ``n`` nodes, then one power-raise
    perturbation round per sweep value.  ``cold`` rebuilds the baseline
    network per value (the pre-warm-start pipeline); ``warm`` builds it
    once and replays each value's round on a
    :meth:`~repro.sim.network.MultiStrategyReplay.fork`.  Both entries
    report the *logical* event count of the sweep (values × trace
    length), so their ``events_per_sec`` ratio equals
    ``speedup_vs_cold`` on the warm entry.  ``wall_seconds`` is the
    median over ``runs`` repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if sweep_points < 1:
        raise ValueError(f"sweep_points must be >= 1, got {sweep_points}")
    from repro.sim.workloads import power_raise_workload

    rng = np.random.default_rng(seed)
    configs = sample_configs(n, rng)
    baseline: list[Event] = [JoinEvent(c) for c in configs]
    rounds = [
        list(
            power_raise_workload(
                configs, 1.5 + k, np.random.default_rng(seed + 1 + k), fraction=0.5
            )
        )
        for k in range(sweep_points)
    ]
    logical_events = sum(len(baseline) + len(r) for r in rounds)
    entries: list[dict] = []
    timings: dict[str, float] = {}
    for mode, drive in (("cold", _drive_cold_sweep), ("warm", _drive_warm_sweep)):
        drive(baseline, rounds, lanes)  # warmup
        wall = float(np.median([drive(baseline, rounds, lanes) for _ in range(runs)]))
        timings[mode] = wall
        entries.append(
            {
                "scenario": "warmstart-delta-sweep",
                "n": n,
                "mode": mode,
                "lanes": lanes,
                "sweep_points": sweep_points,
                "events": logical_events,
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": logical_events / wall if wall > 0 else float("inf"),
            }
        )
    entries[-1]["speedup_vs_cold"] = timings["cold"] / timings["warm"]
    return entries


def run_timeline_bench(
    *,
    n: int = 60,
    runs: int = 3,
    sweep_points: int = 6,
    seed: int = 2001,
) -> list[dict]:
    """Time checkpoint-tree round sharing against per-point round replay.

    The workload is a ``delta_rounds`` sweep decomposed into points: a
    paired delta sweep over ``steps`` in ``2, 4, …, 2·sweep_points``
    (jump mobility on ``n`` nodes), where sampling round ``k`` is point
    ``k`` of the sweep.  ``warm-rounds`` is the PR 3 warm path — the
    shared baseline is forked once per point and every point replays
    its own rounds cold, Σk rounds in total; ``timeline`` executes the
    identical members through :func:`repro.sim.timeline.compute_group`,
    whose checkpoint tree lets each point fork from the previous one's
    last shared round, max(k) rounds in total.  Both modes run the real
    strategy pipeline and report the sweep's *logical* event count, so
    the events/sec ratio equals ``timeline_prefix_sharing`` on the
    timeline entry.  ``wall_seconds`` is the median over ``runs``
    repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if sweep_points < 2:
        raise ValueError(f"sweep_points must be >= 2, got {sweep_points}")
    from repro.sim.scenarios import MobilitySpec
    from repro.sim.sweep import build_sweep, plan_tasks
    from repro.sim.timeline import _ExecState, build_plan, compute_group

    spec = replace(
        get_scenario("fig12-move-rounds"),
        n=n,
        strategies=("Minim",),
        mobility=MobilitySpec(kind="jumps", steps=2, maxdisp=40.0),
        sweep_axis="steps",
        sweep_values=tuple(float(2 * k) for k in range(1, sweep_points + 1)),
        measure="delta",
    )
    sweep = build_sweep(spec, runs=1, seed=seed)
    (group,) = plan_tasks(sweep)
    assert group.warm and len(group.points) == sweep_points
    logical_events = sum(
        len(build_plan(point, group.seed).events) for point in group.points
    )

    def drive_warm_rounds() -> None:
        # PR 3: one baseline build, then every point replays its own
        # rounds from a baseline fork
        plans = [build_plan(point, group.seed) for point in group.points]
        base = _ExecState.fresh(plans[0].strategies)
        base.apply_stage(plans[0].stages[0], plans[0].measure)
        for plan in plans:
            state = base.fork()
            for stage in plan.stages[1:]:
                state.apply_stage(stage, plan.measure)
            state.result(plan.measure)

    def drive_timeline() -> None:
        compute_group(group.points, group.seed)

    entries: list[dict] = []
    timings: dict[str, float] = {}
    for mode, drive in (("warm-rounds", drive_warm_rounds), ("timeline", drive_timeline)):
        drive()  # warmup
        walls = []
        for _ in range(runs):
            start = time.perf_counter()
            drive()
            walls.append(time.perf_counter() - start)
        wall = float(np.median(walls))
        timings[mode] = wall
        entries.append(
            {
                "scenario": "timeline-prefix-sharing",
                "n": n,
                "mode": mode,
                "sweep_points": sweep_points,
                "events": logical_events,
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": logical_events / wall if wall > 0 else float("inf"),
            }
        )
    entries[-1]["timeline_prefix_sharing"] = timings["warm-rounds"] / timings["timeline"]
    return entries


def run_adaptive_bench(
    *,
    runs: int = 3,
    fixed_runs: int = 12,
    seed: int = 2001,
) -> list[dict]:
    """Time a fixed-budget sweep against its adaptive equivalent.

    Both modes run the same seeded smoke sweep through
    :func:`repro.sim.sweep.run_sweep` without a store, so every
    repetition honestly recomputes.  Unlike the event-loop benches this
    one deliberately ignores ``--n``: it measures the *controller*, so
    the workload is pinned to a small, genuinely noisy sweep (tiny
    ``paper-join`` networks, variance large relative to the means)
    where the growth loop actually has to iterate — at large ``n`` the
    means dwarf the noise, every point converges at the starting budget
    and the gated ratio would degenerate into the constant
    ``fixed_runs / min_runs``, blind to controller regressions.

    ``fixed`` spends ``fixed_runs`` runs on every sweep point;
    ``adaptive`` starts at 2 runs per point and lets the
    :class:`~repro.sim.control.RunController` add runs until the CI
    target is met, capped at the same ``fixed_runs``.  ``events``
    counts simulation runs and the adaptive entry carries
    ``run_savings_vs_fixed`` — the run-budget ratio the controller
    saves, which is deterministic for a given seed (same samples, same
    convergence decisions) and therefore CI-gateable.  ``wall_seconds``
    is the median over ``runs`` repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if fixed_runs < 2:
        raise ValueError(f"fixed_runs must be >= 2, got {fixed_runs}")
    from repro.sim.control import PrecisionTarget, RunController
    from repro.sim.sweep import run_sweep

    spec = replace(
        get_scenario("paper-join"),
        n=16,
        strategies=("Minim",),
        sweep_values=(6.0, 8.0, 10.0),
    )
    target = PrecisionTarget(rel=0.5, abs_tol=2.0, min_runs=2, max_runs=fixed_runs)

    def drive_fixed() -> tuple[float, int]:
        start = time.perf_counter()
        run_sweep(spec, runs=fixed_runs, seed=seed)
        return time.perf_counter() - start, fixed_runs * len(spec.sweep_values)

    def drive_adaptive() -> tuple[float, int]:
        controller = RunController(target)
        start = time.perf_counter()
        run_sweep(spec, runs=2, seed=seed, precision=controller)
        assert controller.total_runs is not None
        return time.perf_counter() - start, controller.total_runs

    entries: list[dict] = []
    totals: dict[str, int] = {}
    for mode, drive in (("fixed", drive_fixed), ("adaptive", drive_adaptive)):
        drive()  # warmup
        samples = [drive() for _ in range(runs)]
        walls = [w for w, _ in samples]
        run_counts = {t for _, t in samples}
        if len(run_counts) != 1:  # pragma: no cover - seeded, hence stable
            raise RuntimeError(f"non-deterministic {mode} run count: {run_counts}")
        total = run_counts.pop()
        wall = float(np.median(walls))
        totals[mode] = total
        entries.append(
            {
                "scenario": "adaptive-sweep",
                "n": spec.n,
                "mode": mode,
                "sweep_points": len(spec.sweep_values),
                "events": total,
                "runs": runs,
                "wall_seconds": wall,
                "events_per_sec": total / wall if wall > 0 else float("inf"),
            }
        )
    entries[-1]["run_savings_vs_fixed"] = totals["fixed"] / totals["adaptive"]
    return entries


def write_bench_json(entries: list[dict], out: Path | None = None) -> Path:
    """Write bench entries to ``out`` (default ``BENCH_eventloop.json``)."""
    path = _DEFAULT_OUT if out is None else out
    if path.parent != Path():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")
    return path
