"""Live observability over a results store: stats, watch, CSV export.

An operator running a worker fleet against a shared store previously
had no view into the drain: which tasks are pending, who holds claims
and for how long, which workers are actually producing points, and
whether anything got quarantined.  :class:`StoreMonitor` answers all of
that from the :class:`~repro.sim.results.ResultsBackend` alone — no
side channel to the workers — powering ``minim-cdma store stats`` (one
snapshot) and ``store watch`` (a polling loop).

Two data sources feed a snapshot:

* the backend's cheap aggregates
  (:meth:`~repro.sim.results.ResultsBackend.claim_info`, quarantine
  listings, break counters and key counts — each fetched once per
  snapshot; :meth:`~repro.sim.results.ResultsBackend.queue_stats` is
  the one-call programmatic equivalent): task, claim, quarantine and
  lease-break counts plus claim owners/ages — safe to poll every
  second on large stores;
* the point records' provenance contexts (``worker`` / ``saved_at``,
  stamped by the execution layer as each point lands), from which
  per-worker throughput is derived.  This walks every point record, so
  :meth:`StoreMonitor.stats` can skip it with ``workers=False`` and
  ``store watch`` exposes the same switch.

:func:`export_csv` is the point-level analytics escape hatch: one CSV
row per (point, strategy[, round]) with the sweep coordinates, run
index, metric triple and worker provenance — the lightweight first step
of the ROADMAP's columnar-analytics item, consumable by any dataframe
library without new dependencies.
"""

from __future__ import annotations

import csv
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.errors import ConfigurationError
from repro.sim.results import ResultsBackend

__all__ = ["StoreMonitor", "StoreStats", "WorkerStats", "export_csv"]

#: Column order of ``store export`` rows (stable: scripts parse this).
CSV_COLUMNS = (
    "point_key",
    "experiment",
    "scenario",
    "sweep_axis",
    "sweep_value",
    "run",
    "seed",
    "measure",
    "strategy",
    "round",
    "max_color",
    "recodings",
    "messages",
    "worker",
    "saved_at",
)


@dataclass(frozen=True)
class WorkerStats:
    """Throughput of one worker, derived from point provenance."""

    worker: str
    points: int
    first_saved_at: float
    last_saved_at: float

    @property
    def points_per_sec(self) -> float | None:
        """Observed save rate; ``None`` below two timestamped points."""
        span = self.last_saved_at - self.first_saved_at
        if self.points < 2 or span <= 0:
            return None
        return (self.points - 1) / span


@dataclass(frozen=True)
class StoreStats:
    """One observability snapshot of a results store."""

    backend: str
    locator: str
    points: int
    manifests: int
    series: int
    tasks: int
    claims: int
    oldest_claim_age: float
    quarantined: int
    lease_breaks: int
    claim_details: dict[str, dict] = field(default_factory=dict)
    quarantine_reasons: dict[str, str] = field(default_factory=dict)
    workers: tuple[WorkerStats, ...] = ()

    @property
    def tasks_pending(self) -> int:
        """Published tasks not currently under claim."""
        return max(0, self.tasks - self.claims)

    def render(self) -> str:
        """The human view ``store stats`` / ``store watch`` print."""
        lines = [
            f"{self.backend} store {self.locator}",
            f"  points      {self.points}",
            f"  manifests   {self.manifests}",
            f"  series      {self.series}",
            f"  tasks       {self.tasks} ({self.tasks_pending} pending, "
            f"{self.claims} claimed)",
            f"  quarantined {self.quarantined}",
            f"  lease breaks {self.lease_breaks}",
        ]
        if self.claim_details:
            lines.append("  claims:")
            for key, info in sorted(self.claim_details.items()):
                lines.append(f"    {key}  owner={info['owner']}  age={info['age']:.1f}s")
        if self.quarantine_reasons:
            lines.append("  quarantine:")
            for key, reason in sorted(self.quarantine_reasons.items()):
                lines.append(f"    {key}  {reason or '<no reason recorded>'}")
        if self.workers:
            lines.append("  workers:")
            for w in sorted(self.workers, key=lambda w: w.worker):
                rate = f"{w.points_per_sec:.2f}/s" if w.points_per_sec is not None else "-"
                lines.append(f"    {w.worker:<24} {w.points:>6} point(s)  {rate}")
        return "\n".join(lines)


class StoreMonitor:
    """Observability over one results backend (``store stats/watch``)."""

    def __init__(self, backend: ResultsBackend) -> None:
        self.backend = backend

    def stats(self, *, workers: bool = True) -> StoreStats:
        """Take one snapshot.

        ``workers=False`` skips the point-record walk (per-worker
        throughput and nothing else), keeping the snapshot cheap on
        very large stores.  Claim and quarantine state are fetched
        exactly once and handed to
        :meth:`~repro.sim.results.ResultsBackend.queue_stats` for the
        aggregate counts — one snapshot never pays the backend twice
        for the same scan, and SQLite keeps its single-connection count
        path.
        """
        backend = self.backend
        claim_details = backend.claim_info()
        parked = backend.list_quarantined()
        aggregate = backend.queue_stats(claim_info=claim_details, quarantined=parked)
        quarantine_reasons = {
            key: (backend.load_quarantined(key) or {}).get("reason", "") for key in parked
        }
        return StoreStats(
            backend=aggregate["backend"],
            locator=aggregate["locator"],
            points=aggregate["points"],
            manifests=aggregate["manifests"],
            series=aggregate["series"],
            tasks=aggregate["tasks"],
            claims=aggregate["claims"],
            oldest_claim_age=aggregate["oldest_claim_age"],
            quarantined=aggregate["quarantined"],
            lease_breaks=aggregate["lease_breaks"],
            claim_details=claim_details,
            quarantine_reasons=quarantine_reasons,
            workers=self.worker_stats() if workers else (),
        )

    def worker_stats(self) -> tuple[WorkerStats, ...]:
        """Per-worker throughput from the points' provenance contexts.

        Points computed before provenance stamping existed (or saved
        directly through ``save_point``) have no worker id and are
        grouped under ``"<unattributed>"``.
        """
        per_worker: dict[str, list[float]] = {}
        counts: dict[str, int] = {}
        for _, record in self.backend.iter_point_records():
            context = record.get("context") or {}
            worker = str(context.get("worker") or "<unattributed>")
            counts[worker] = counts.get(worker, 0) + 1
            saved_at = context.get("saved_at")
            if isinstance(saved_at, (int, float)):
                per_worker.setdefault(worker, []).append(float(saved_at))
        out = []
        for worker, n in counts.items():
            stamps = per_worker.get(worker, [])
            first = min(stamps) if stamps else 0.0
            last = max(stamps) if stamps else 0.0
            out.append(
                WorkerStats(worker=worker, points=n, first_saved_at=first, last_saved_at=last)
            )
        return tuple(sorted(out, key=lambda w: w.worker))

    def watch(
        self,
        *,
        interval: float = 2.0,
        iterations: int | None = None,
        workers: bool = True,
        stream: IO[str] | None = None,
    ) -> int:
        """Poll and print snapshots until interrupted (``store watch``).

        ``iterations`` bounds the loop (``None`` runs until Ctrl-C —
        the KeyboardInterrupt is absorbed so a watch session exits
        cleanly); returns the number of snapshots printed.
        """
        if interval <= 0:
            raise ConfigurationError(f"watch interval must be > 0, got {interval}")
        stream = stream if stream is not None else sys.stdout
        printed = 0
        try:
            while iterations is None or printed < iterations:
                if printed:
                    time.sleep(interval)
                    print(file=stream)
                snapshot = self.stats(workers=workers)
                print(f"[{time.strftime('%H:%M:%S')}]", file=stream)
                print(snapshot.render(), file=stream)
                printed += 1
        except KeyboardInterrupt:
            pass
        return printed


def _csv_rows_for_point(key: str, record: dict):
    """Flatten one point record into CSV rows (one per strategy/round)."""
    context = record.get("context") or {}
    result = record.get("result")
    if not isinstance(result, list):
        return
    strategies = context.get("strategies") or []
    base = {
        "point_key": key,
        "experiment": context.get("experiment", ""),
        "scenario": context.get("scenario", ""),
        "sweep_axis": context.get("sweep_axis", ""),
        "sweep_value": context.get("sweep_value", ""),
        "run": context.get("run", ""),
        "seed": context.get("seed", ""),
        "measure": context.get("measure", ""),
        "worker": context.get("worker", ""),
        "saved_at": context.get("saved_at", ""),
    }
    for si, lane in enumerate(result):
        strategy = strategies[si] if si < len(strategies) else f"s{si}"
        if lane and isinstance(lane[0], list):  # delta_rounds: one triple per round
            rounds = [(t + 1, triple) for t, triple in enumerate(lane)]
        else:
            rounds = [("", lane)]
        for round_no, triple in rounds:
            if not (isinstance(triple, list) and len(triple) == 3):
                continue
            yield {
                **base,
                "strategy": strategy,
                "round": round_no,
                "max_color": triple[0],
                "recodings": triple[1],
                "messages": triple[2],
            }


def export_csv(backend: ResultsBackend, out: Path | str | IO[str]) -> int:
    """Dump point-level rows from any backend as CSV; returns row count.

    Columns are :data:`CSV_COLUMNS`.  For absolute/delta measures the
    metric columns hold the point's triple (deltas for delta measures —
    the ``measure`` column says which) and ``round`` is empty; for
    ``delta_rounds`` points each perturbation round becomes its own row
    with the 1-based round number.
    """
    if hasattr(out, "write"):
        return _write_csv(backend, out)  # type: ignore[arg-type]
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        return _write_csv(backend, fh)


def _write_csv(backend: ResultsBackend, fh: IO[str]) -> int:
    writer = csv.DictWriter(fh, fieldnames=list(CSV_COLUMNS))
    writer.writeheader()
    rows = 0
    for key, record in backend.iter_point_records():
        for row in _csv_rows_for_point(key, record):
            writer.writerow(row)
            rows += 1
    return rows
