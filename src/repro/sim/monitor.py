"""Live observability over a results store: stats, watch, CSV export.

An operator running a worker fleet against a shared store previously
had no view into the drain: which tasks are pending, who holds claims
and for how long, which workers are actually producing points, and
whether anything got quarantined.  :class:`StoreMonitor` answers all of
that from the :class:`~repro.sim.results.ResultsBackend` alone — no
side channel to the workers — powering ``minim-cdma store stats`` (one
snapshot) and ``store watch`` (a polling loop).

Two data sources feed a snapshot:

* the backend's cheap aggregates
  (:meth:`~repro.sim.results.ResultsBackend.claim_info`, quarantine
  listings, break counters and key counts — each fetched once per
  snapshot; :meth:`~repro.sim.results.ResultsBackend.queue_stats` is
  the one-call programmatic equivalent): task, claim, quarantine and
  lease-break counts plus claim owners/ages — safe to poll every
  second on large stores;
* the point records' provenance contexts (``worker`` / ``saved_at``,
  stamped by the execution layer as each point lands), from which
  per-worker throughput is derived, joined with the workers' heartbeat
  stamps (:meth:`~repro.sim.results.ResultsBackend.heartbeats`) so a
  worker whose last beat is older than the lease TTL is flagged
  ``STALE``.  This walks every point record, so
  :meth:`StoreMonitor.stats` can skip it with ``workers=False`` and
  ``store watch`` exposes the same switch.

:func:`export_csv` is the point-level analytics escape hatch: one CSV
row per (point, strategy[, round]) with the sweep coordinates, run
index, metric triple and worker provenance — the lightweight first step
of the ROADMAP's columnar-analytics item, consumable by any dataframe
library without new dependencies.  :func:`export_parquet` is step two:
the same rows as a columnar Parquet table (gated on ``pyarrow`` being
importable) plus sweep-level join columns resolved from the stored
manifests, so million-row exports stay compact and join back to their
sweeps without re-parsing manifests.

:func:`inspect_quarantined` is the triage half of the quarantine
machinery: replay a parked task group under the serial executor — in
process, no pool, full traceback on failure — and release it back into
the queue when it completes (its points are already saved, so the next
drain just cleans the task up).
"""

from __future__ import annotations

import csv
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.errors import ConfigurationError
from repro.sim.results import DEFAULT_CLAIM_TTL, ResultsBackend

__all__ = [
    "StoreMonitor",
    "StoreStats",
    "WorkerStats",
    "export_csv",
    "export_parquet",
    "inspect_quarantined",
]

#: Column order of ``store export`` rows (stable: scripts parse this).
CSV_COLUMNS = (
    "point_key",
    "experiment",
    "scenario",
    "sweep_axis",
    "sweep_value",
    "run",
    "seed",
    "measure",
    "strategy",
    "round",
    "max_color",
    "recodings",
    "messages",
    "worker",
    "saved_at",
    "core",
)


def _fmt_bytes(n: int | float) -> str:
    """Human byte size (``1234`` → ``1.2 kB``)."""
    n = float(n)
    for unit in ("B", "kB", "MB", "GB"):
        if n < 1000 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1000
    return f"{n:.1f} GB"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class WorkerStats:
    """Throughput of one worker, derived from point provenance.

    ``heartbeat_age`` is seconds since the worker's last heartbeat
    stamp (:meth:`~repro.sim.results.ResultsBackend.record_heartbeat`),
    or ``None`` for workers that never stamped one (pre-heartbeat
    fleets, or points saved outside a worker loop); ``stale`` flags a
    heartbeat older than the lease TTL — a live worker beats every
    third of the TTL, so missing a whole TTL means the process is gone
    or wedged and its claims are heading for a lease break.
    """

    worker: str
    points: int
    first_saved_at: float
    last_saved_at: float
    heartbeat_age: float | None = None
    stale: bool = False

    @property
    def points_per_sec(self) -> float | None:
        """Observed save rate; ``None`` below two timestamped points."""
        span = self.last_saved_at - self.first_saved_at
        if self.points < 2 or span <= 0:
            return None
        return (self.points - 1) / span


@dataclass(frozen=True)
class StoreStats:
    """One observability snapshot of a results store."""

    backend: str
    locator: str
    points: int
    manifests: int
    series: int
    tasks: int
    claims: int
    oldest_claim_age: float
    quarantined: int
    lease_breaks: int
    checkpoints: dict = field(default_factory=dict)
    claim_details: dict[str, dict] = field(default_factory=dict)
    quarantine_reasons: dict[str, str] = field(default_factory=dict)
    workers: tuple[WorkerStats, ...] = ()

    @property
    def tasks_pending(self) -> int:
        """Published tasks not currently under claim."""
        return max(0, self.tasks - self.claims)

    def render(self) -> str:
        """The human view ``store stats`` / ``store watch`` print."""
        lines = [
            f"{self.backend} store {self.locator}",
            f"  points      {self.points}",
            f"  manifests   {self.manifests}",
            f"  series      {self.series}",
            f"  tasks       {self.tasks} ({self.tasks_pending} pending, "
            f"{self.claims} claimed)",
            f"  quarantined {self.quarantined}",
            f"  lease breaks {self.lease_breaks}",
        ]
        if self.checkpoints:
            c = self.checkpoints
            lines.append(
                f"  checkpoints {c.get('count', 0)} "
                f"({_fmt_bytes(c.get('bytes', 0))}, "
                f"{c.get('hits', 0)} hit(s), {c.get('misses', 0)} miss(es), "
                f"{c.get('gc_removed', 0)} gc-removed)"
            )
        if self.claim_details:
            lines.append("  claims:")
            for key, info in sorted(self.claim_details.items()):
                lines.append(f"    {key}  owner={info['owner']}  age={info['age']:.1f}s")
        if self.quarantine_reasons:
            lines.append("  quarantine:")
            for key, reason in sorted(self.quarantine_reasons.items()):
                lines.append(f"    {key}  {reason or '<no reason recorded>'}")
        if self.workers:
            lines.append("  workers:")
            for w in sorted(self.workers, key=lambda w: w.worker):
                rate = f"{w.points_per_sec:.2f}/s" if w.points_per_sec is not None else "-"
                beat = f"heartbeat {w.heartbeat_age:.0f}s ago" if w.heartbeat_age is not None else ""
                if w.stale:
                    beat += "  STALE (no heartbeat within the lease TTL)"
                lines.append(f"    {w.worker:<24} {w.points:>6} point(s)  {rate}  {beat}".rstrip())
        return "\n".join(lines)


class StoreMonitor:
    """Observability over one results backend (``store stats/watch``).

    ``lease_ttl`` is the staleness horizon for worker heartbeats: a
    worker whose last heartbeat is older than this is flagged ``STALE``
    in snapshots (workers beat every third of the claim TTL, so the
    monitor's default matches the executors').
    """

    def __init__(self, backend: ResultsBackend, *, lease_ttl: float = DEFAULT_CLAIM_TTL) -> None:
        self.backend = backend
        self.lease_ttl = lease_ttl

    def stats(self, *, workers: bool = True) -> StoreStats:
        """Take one snapshot.

        ``workers=False`` skips the point-record walk (per-worker
        throughput and nothing else), keeping the snapshot cheap on
        very large stores.  Claim and quarantine state are fetched
        exactly once and handed to
        :meth:`~repro.sim.results.ResultsBackend.queue_stats` for the
        aggregate counts — one snapshot never pays the backend twice
        for the same scan, and SQLite keeps its single-connection count
        path.
        """
        backend = self.backend
        claim_details = backend.claim_info()
        parked = backend.list_quarantined()
        aggregate = backend.queue_stats(claim_info=claim_details, quarantined=parked)
        quarantine_reasons = {
            key: (backend.load_quarantined(key) or {}).get("reason", "") for key in parked
        }
        return StoreStats(
            backend=aggregate["backend"],
            locator=aggregate["locator"],
            points=aggregate["points"],
            manifests=aggregate["manifests"],
            series=aggregate["series"],
            tasks=aggregate["tasks"],
            claims=aggregate["claims"],
            oldest_claim_age=aggregate["oldest_claim_age"],
            quarantined=aggregate["quarantined"],
            lease_breaks=aggregate["lease_breaks"],
            checkpoints=aggregate.get("checkpoints", {}),
            claim_details=claim_details,
            quarantine_reasons=quarantine_reasons,
            workers=self.worker_stats() if workers else (),
        )

    def worker_stats(self) -> tuple[WorkerStats, ...]:
        """Per-worker throughput from the points' provenance contexts.

        Points computed before provenance stamping existed (or saved
        directly through ``save_point``) have no worker id and are
        grouped under ``"<unattributed>"``.  Heartbeat stamps join in
        (age + staleness against ``lease_ttl``); a worker that has
        heartbeats but no saved points yet still gets a row, so a
        wedged worker that never produced anything is visible.
        """
        per_worker: dict[str, list[float]] = {}
        counts: dict[str, int] = {}
        for _, record in self.backend.iter_point_records():
            context = record.get("context") or {}
            worker = str(context.get("worker") or "<unattributed>")
            counts[worker] = counts.get(worker, 0) + 1
            saved_at = context.get("saved_at")
            if isinstance(saved_at, (int, float)):
                per_worker.setdefault(worker, []).append(float(saved_at))
        beats = self.backend.heartbeats()
        for worker in beats:
            counts.setdefault(worker, 0)
        now = time.time()
        out = []
        for worker, n in counts.items():
            stamps = per_worker.get(worker, [])
            first = min(stamps) if stamps else 0.0
            last = max(stamps) if stamps else 0.0
            age = now - beats[worker] if worker in beats else None
            out.append(
                WorkerStats(
                    worker=worker,
                    points=n,
                    first_saved_at=first,
                    last_saved_at=last,
                    heartbeat_age=age,
                    stale=age is not None and age > self.lease_ttl,
                )
            )
        return tuple(sorted(out, key=lambda w: w.worker))

    def watch(
        self,
        *,
        interval: float = 2.0,
        iterations: int | None = None,
        workers: bool = True,
        stream: IO[str] | None = None,
    ) -> int:
        """Poll and print snapshots until interrupted (``store watch``).

        ``iterations`` bounds the loop (``None`` runs until Ctrl-C —
        the KeyboardInterrupt is absorbed so a watch session exits
        cleanly); returns the number of snapshots printed.
        """
        if interval <= 0:
            raise ConfigurationError(f"watch interval must be > 0, got {interval}")
        stream = stream if stream is not None else sys.stdout
        printed = 0
        try:
            while iterations is None or printed < iterations:
                if printed:
                    time.sleep(interval)
                    print(file=stream)
                snapshot = self.stats(workers=workers)
                print(f"[{time.strftime('%H:%M:%S')}]", file=stream)
                print(snapshot.render(), file=stream)
                printed += 1
        except KeyboardInterrupt:
            pass
        return printed


def _csv_rows_for_point(key: str, record: dict):
    """Flatten one point record into CSV rows (one per strategy/round)."""
    context = record.get("context") or {}
    result = record.get("result")
    if not isinstance(result, list):
        return
    strategies = context.get("strategies") or []
    base = {
        "point_key": key,
        "experiment": context.get("experiment", ""),
        "scenario": context.get("scenario", ""),
        "sweep_axis": context.get("sweep_axis", ""),
        "sweep_value": context.get("sweep_value", ""),
        "run": context.get("run", ""),
        "seed": context.get("seed", ""),
        "measure": context.get("measure", ""),
        "worker": context.get("worker", ""),
        "saved_at": context.get("saved_at", ""),
        "core": context.get("core", ""),
    }
    for si, lane in enumerate(result):
        strategy = strategies[si] if si < len(strategies) else f"s{si}"
        if lane and isinstance(lane[0], list):  # delta_rounds: one triple per round
            rounds = [(t + 1, triple) for t, triple in enumerate(lane)]
        else:
            rounds = [("", lane)]
        for round_no, triple in rounds:
            if not (isinstance(triple, list) and len(triple) == 3):
                continue
            yield {
                **base,
                "strategy": strategy,
                "round": round_no,
                "max_color": triple[0],
                "recodings": triple[1],
                "messages": triple[2],
            }


def export_csv(backend: ResultsBackend, out: Path | str | IO[str]) -> int:
    """Dump point-level rows from any backend as CSV; returns row count.

    Columns are :data:`CSV_COLUMNS`.  For absolute/delta measures the
    metric columns hold the point's triple (deltas for delta measures —
    the ``measure`` column says which) and ``round`` is empty; for
    ``delta_rounds`` points each perturbation round becomes its own row
    with the 1-based round number.
    """
    if hasattr(out, "write"):
        return _write_csv(backend, out)  # type: ignore[arg-type]
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        return _write_csv(backend, fh)


def _write_csv(backend: ResultsBackend, fh: IO[str]) -> int:
    writer = csv.DictWriter(fh, fieldnames=list(CSV_COLUMNS))
    writer.writeheader()
    rows = 0
    for key, record in backend.iter_point_records():
        for row in _csv_rows_for_point(key, record):
            writer.writerow(row)
            rows += 1
    return rows


# ----------------------------------------------------------------------
# Columnar export (Parquet, gated on pyarrow)
# ----------------------------------------------------------------------
#: Sweep-level join columns appended to :data:`CSV_COLUMNS` in Parquet
#: exports, resolved by joining each point key against the stored sweep
#: manifests.
PARQUET_SWEEP_COLUMNS = ("sweep_key", "sweep_runs", "sweep_seed", "sweep_executor", "sweep_core")


def _sweep_join_index(backend: ResultsBackend) -> dict[str, dict]:
    """``{point key: sweep-level join columns}`` from the manifests.

    A point computed under several manifests (an adaptive re-plan of the
    same sweep) joins to the most recently listed one; points saved
    outside any manifest (direct ``save_point``) get null columns.
    """
    index: dict[str, dict] = {}
    for sweep_key in backend.list_manifests():
        manifest = backend.load_manifest(sweep_key) or {}
        columns = {
            "sweep_key": sweep_key,
            "sweep_runs": manifest.get("runs"),
            "sweep_seed": manifest.get("seed"),
            "sweep_executor": manifest.get("executor"),
            "sweep_core": manifest.get("core"),
        }
        for point_key in manifest.get("points", []):
            index[point_key] = columns
    return index


#: Explicit Arrow types per export column.  Pinning the schema (instead
#: of inferring it from materialized rows) keeps the writer streaming —
#: batches flush as the point-record walk proceeds, so a 10⁶-row export
#: never holds more than one batch of dicts — and keeps column types
#: stable even when an early batch is all-null in some column.
_PARQUET_TYPES = {
    "point_key": "string",
    "experiment": "string",
    "scenario": "string",
    "sweep_axis": "string",
    "sweep_value": "float64",
    "run": "int64",
    "seed": "string",
    "measure": "string",
    "strategy": "string",
    "round": "int64",
    "max_color": "float64",
    "recodings": "float64",
    "messages": "float64",
    "worker": "string",
    "saved_at": "float64",
    "core": "string",
    "sweep_key": "string",
    "sweep_runs": "int64",
    "sweep_seed": "int64",
    "sweep_executor": "string",
    "sweep_core": "string",
}


def export_parquet(backend: ResultsBackend, out: Path | str, *, batch_rows: int = 10_000) -> int:
    """Stream point-level rows into a Parquet table; returns the row count.

    The columnar step up from :func:`export_csv`: same per-row shape
    (:data:`CSV_COLUMNS`) plus the :data:`PARQUET_SWEEP_COLUMNS` join
    columns, so a dataframe can group and join 10⁶-row exports by sweep
    without touching the manifests.  Rows are written in ``batch_rows``
    batches under a fixed schema, so peak memory is one batch no matter
    the store size.  Requires ``pyarrow``; raises a clean
    :class:`~repro.errors.ConfigurationError` when it is not importable
    (the package deliberately does not depend on it).
    """
    try:
        import pyarrow as pa
        import pyarrow.parquet as pq
    except ImportError as exc:
        raise ConfigurationError(
            "store export --parquet needs pyarrow, which is not installed "
            "(pip install pyarrow) — use --csv for the dependency-free export"
        ) from exc
    schema = pa.schema([(name, getattr(pa, kind)()) for name, kind in _PARQUET_TYPES.items()])
    joins = _sweep_join_index(backend)
    empty_join = dict.fromkeys(PARQUET_SWEEP_COLUMNS)
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = 0
    batch: list[dict] = []
    with pq.ParquetWriter(path, schema) as writer:

        def flush() -> None:
            if batch:
                writer.write_table(pa.Table.from_pylist(batch, schema=schema))
                batch.clear()

        for key, record in backend.iter_point_records():
            join = joins.get(key, empty_join)
            for row in _csv_rows_for_point(key, record):
                # Parquet columns are typed: blank CSV cells become nulls
                batch.append(
                    {
                        **{col: (None if value == "" else value) for col, value in row.items()},
                        **join,
                    }
                )
                rows += 1
            if len(batch) >= batch_rows:
                flush()
        flush()
    return rows


# ----------------------------------------------------------------------
# Quarantine triage (``store inspect``)
# ----------------------------------------------------------------------
def inspect_quarantined(
    backend: ResultsBackend, key: str, *, stream: IO[str] | None = None
) -> dict:
    """Replay a quarantined task group serially; requeue it on success.

    The debugger-friendly half of poison-task quarantine: rebuild the
    parked descriptor, print its quarantine context (reason, lease
    breaks, park time), and recompute it under the serial executor — in
    the calling process, so a reproducible crash surfaces with its full
    traceback instead of a broken-lease counter.  When the replay
    completes, the member points are persisted and the task is
    requeued with a clean slate (the next drain sees the points and
    simply cleans the task up), so a spuriously-parked group needs no
    separate ``store requeue``.  Returns a summary dict
    (``members``/``requeued``/the quarantine context).
    """
    from repro.sim.executor import SerialExecutor, group_from_payload

    record = backend.load_quarantined(key)
    if record is None:
        raise ConfigurationError(f"{key!r} is not quarantined in {backend.locator}")
    stream = stream if stream is not None else sys.stdout
    reason = record.get("reason", "")
    breaks = record.get("lease_breaks", 0)
    print(f"quarantined task {key}", file=stream)
    print(f"  reason       {reason or '<no reason recorded>'}", file=stream)
    print(f"  lease breaks {breaks}", file=stream)
    payload = record.get("payload")
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"quarantine record {key!r} in {backend.locator} has no task payload"
        )
    group = group_from_payload(payload)  # undecodable descriptors raise here
    print(
        f"  replaying {len(group.points)} member(s) under the serial executor…",
        file=stream,
    )
    results = SerialExecutor().execute([group], backend=backend, resume=False)
    requeued = backend.requeue_quarantined(key)
    print(
        f"  replay ok: {len(results)} point(s) computed and saved; "
        f"{'requeued with a clean slate' if requeued else 'requeue raced a peer'}",
        file=stream,
    )
    return {
        "key": key,
        "reason": reason,
        "lease_breaks": breaks,
        "members": len(results),
        "requeued": requeued,
    }
