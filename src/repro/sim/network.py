"""The simulation facade: topology + assignment + strategy + metrics.

``AdHocNetwork`` owns the event loop contract (paper section 2): events
are applied one at a time; the topology mutation happens first, then the
strategy computes recodes, then the assignment is updated and metrics
recorded.  With ``validate=True`` every event is followed by a full
CA1/CA2 check (used heavily in tests).
"""

from __future__ import annotations

from repro.coloring.assignment import CodeAssignment
from repro.coloring.verify import assert_valid
from repro.errors import ConnectivityError, InvalidEventError
from repro.events.base import Event, JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.metrics import MetricsCollector
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.topology.conflicts import conflict_neighbors
from repro.topology.connectivity import has_minimal_connectivity
from repro.topology.digraph import AdHocDigraph
from repro.topology.node import NodeConfig
from repro.topology.propagation import PropagationModel
from repro.types import NodeId

__all__ = ["AdHocNetwork"]


class AdHocNetwork:
    """A live power-controlled ad-hoc network under a recoding strategy.

    Parameters
    ----------
    strategy:
        The recoding strategy invoked after every topology change.
    propagation:
        Propagation model (default free space).
    validate:
        When True, assert CA1/CA2 validity after every event (slow;
        meant for tests).
    enforce_connectivity:
        When True, reject reconfigurations that violate the paper's
        Minimal Connectivity assumption.
    dense_conflicts:
        Forwarded to :class:`AdHocDigraph`: ``True`` forces the dense
        per-event conflict derivation, ``False`` the grid-accelerated
        incremental one, ``None`` consults ``REPRO_DENSE``.
    """

    def __init__(
        self,
        strategy: RecodingStrategy,
        *,
        propagation: PropagationModel | None = None,
        validate: bool = False,
        enforce_connectivity: bool = False,
        dense_conflicts: bool | None = None,
    ) -> None:
        self.graph = AdHocDigraph(propagation, dense_conflicts=dense_conflicts)
        self.assignment = CodeAssignment()
        self.strategy = strategy
        self.metrics = MetricsCollector()
        self.validate = validate
        self.enforce_connectivity = enforce_connectivity

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: Event) -> RecodeResult:
        """Apply one reconfiguration event and recode per the strategy."""
        if isinstance(event, JoinEvent):
            return self.join(event.config)
        if isinstance(event, LeaveEvent):
            return self.leave(event.node_id)
        if isinstance(event, MoveEvent):
            return self.move(event.node_id, event.x, event.y)
        if isinstance(event, PowerChangeEvent):
            return self.set_range(event.node_id, event.new_range)
        raise InvalidEventError(f"unknown event type {type(event).__name__}")

    def join(self, cfg: NodeConfig) -> RecodeResult:
        """A new node connects (paper section 4.1)."""
        self.graph.add_node(cfg)
        self._check_connectivity(cfg.node_id, "join")
        result = self.strategy.on_join(self.graph, self.assignment, cfg.node_id)
        return self._commit(result)

    def leave(self, node_id: NodeId) -> RecodeResult:
        """A node disconnects (paper section 4.3)."""
        old_color = self.assignment.unassign(node_id)
        self.graph.remove_node(node_id)
        result = self.strategy.on_leave(self.graph, self.assignment, node_id, old_color)
        return self._commit(result)

    def move(self, node_id: NodeId, x: float, y: float) -> RecodeResult:
        """A node relocates in one discrete step (paper section 4.4)."""
        self.graph.move_node(node_id, x, y)
        self._check_connectivity(node_id, "move")
        result = self.strategy.on_move(self.graph, self.assignment, node_id)
        return self._commit(result)

    def set_range(self, node_id: NodeId, new_range: float) -> RecodeResult:
        """A node changes transmission power (paper sections 4.2 / 4.3).

        Equal-range "changes" are treated as decreases (no new
        constraints arise), i.e. no recoding.
        """
        old_range = self.graph.range_of(node_id)
        old_conflicts = conflict_neighbors(self.graph, node_id)
        self.graph.set_range(node_id, new_range)
        self._check_connectivity(node_id, "power change")
        result = self.strategy.on_power_change(
            self.graph,
            self.assignment,
            node_id,
            increased=new_range > old_range,
            old_conflict_neighbors=old_conflicts,
        )
        return self._commit(result)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def max_color(self) -> int:
        """Maximum code index currently assigned."""
        return self.assignment.max_color()

    def node_ids(self) -> list[NodeId]:
        """Current node ids, ascending."""
        return self.graph.node_ids()

    def is_valid(self) -> bool:
        """Whether the current assignment satisfies CA1 and CA2."""
        from repro.coloring.verify import is_valid

        return is_valid(self.graph, self.assignment)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _commit(self, result: RecodeResult) -> RecodeResult:
        for node, (_old, new) in result.changes.items():
            self.assignment.assign(node, new)
        self.metrics.record(result, self.assignment.max_color())
        if self.validate:
            assert_valid(self.graph, self.assignment)
        return result

    def _check_connectivity(self, node_id: NodeId, action: str) -> None:
        if self.enforce_connectivity and len(self.graph) > 1:
            if not has_minimal_connectivity(self.graph, node_id):
                raise ConnectivityError(
                    f"{action} of node {node_id} violates Minimal Connectivity "
                    "(needs at least one in- and one out-neighbor)"
                )
