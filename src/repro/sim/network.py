"""The simulation core: shared topology + per-strategy assignment state.

The event loop contract (paper section 2) is: events are applied one at
a time; the topology mutation happens first, then the strategy computes
recodes, then the assignment is updated and metrics recorded.  This
module splits those responsibilities:

* :class:`~repro.topology.digraph.AdHocDigraph` owns the topology and
  produces a :class:`~repro.topology.digraph.TopologyDelta` per event
  (via ``apply_event``);
* :class:`StrategyLane` owns everything per-strategy — the
  :class:`CodeAssignment`, the :class:`MetricsCollector`, and the
  dispatch of a delta to the right strategy handler;
* :class:`AdHocNetwork` composes one graph with one lane (the classic
  single-strategy facade, API unchanged);
* :class:`MultiStrategyReplay` composes one graph with *many* lanes:
  each event's topology mutation and conflict-delta computation run
  once and fan out to every lane — the single-pass replay that the
  experiment pipeline uses to compare strategies on identical
  workloads without re-deriving topology per strategy.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.coloring.assignment import ArrayCodeAssignment, CodeAssignment
from repro.coloring.verify import assert_valid
from repro.errors import ConfigurationError, ConnectivityError
from repro.events.base import Event, JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.metrics import EventRecord, MetricsCollector
from repro.strategies.base import RecodeResult, RecodingStrategy
from repro.topology.connectivity import has_minimal_connectivity
from repro.topology.digraph import AdHocDigraph, TopologyDelta, default_core
from repro.topology.node import NodeConfig
from repro.topology.propagation import PropagationModel
from repro.types import NodeId

__all__ = ["AdHocNetwork", "MultiStrategyReplay", "StrategyLane"]


class StrategyLane:
    """One strategy's private state riding a shared topology.

    A lane owns the :class:`CodeAssignment` and
    :class:`MetricsCollector` of exactly one strategy.  It never mutates
    the graph: :meth:`react` consumes a :class:`TopologyDelta` produced
    by the graph's ``apply_event`` and turns it into color changes,
    which makes any number of lanes safely shareable over one digraph.

    The color container matches the digraph's conflict core:
    ``array_colors=True`` (the default under the array and sparse
    cores, see :func:`repro.topology.digraph.default_core`) stores the
    lane's colors in a contiguous id-indexed :class:`ArrayCodeAssignment` with
    an O(1) ``max_color``; ``False`` keeps the dict-backed reference
    container.  The two are observably identical and serialize to the
    same :meth:`state_dict`, so the choice never leaks into results.
    """

    __slots__ = ("strategy", "assignment", "metrics", "validate")

    def __init__(
        self,
        strategy: RecodingStrategy,
        *,
        validate: bool = False,
        array_colors: bool | None = None,
    ) -> None:
        if array_colors is None:
            array_colors = default_core() in ("array", "sparse")
        self.strategy = strategy
        self.assignment = ArrayCodeAssignment() if array_colors else CodeAssignment()
        self.metrics = MetricsCollector()
        self.validate = validate

    @property
    def name(self) -> str:
        """The lane's strategy name (used in experiment tables)."""
        return self.strategy.name

    def fork(self) -> "StrategyLane":
        """An independent lane continuing from this lane's current state.

        The strategy object is shared (strategies are stateless between
        events — configuration only); the assignment and metrics are
        deep-copied so the fork and the original diverge freely.
        """
        clone = StrategyLane(
            self.strategy,
            validate=self.validate,
            array_colors=isinstance(self.assignment, ArrayCodeAssignment),
        )
        clone.assignment = self.assignment.copy()
        clone.metrics = self.metrics.clone()
        return clone

    def state_dict(self) -> dict:
        """Serialize the lane's per-strategy state to a JSON-able dict.

        Captures the strategy *name* (strategies are stateless between
        events, so the name rebuilds an equivalent object), the full
        assignment, and the metrics history — everything
        :meth:`load_state` needs to continue byte-identically.
        """
        return {
            "strategy": self.name,
            "assignment": [[int(node), int(color)] for node, color in self.assignment.items()],
            "metrics": [
                [r.kind, int(r.node), int(r.recodings), int(r.messages), int(r.max_color_after)]
                for r in self.metrics.records
            ],
        }

    def load_state(self, state: dict) -> "StrategyLane":
        """Adopt a :meth:`state_dict`; returns self for chaining."""
        if state.get("strategy") != self.name:
            raise ConfigurationError(
                f"lane state is for strategy {state.get('strategy')!r}, "
                f"this lane runs {self.name!r}"
            )
        # Rebuild with the lane's own container class: lane state is
        # core-independent, so a dict-core checkpoint loads into an
        # array-color lane (and vice versa) without translation.
        self.assignment = type(self.assignment)(
            {node: color for node, color in state["assignment"]}
        )
        self.metrics = MetricsCollector.from_records(
            [
                EventRecord(
                    kind=kind,
                    node=node,
                    recodings=recodings,
                    messages=messages,
                    max_color_after=max_color_after,
                )
                for kind, node, recodings, messages, max_color_after in state["metrics"]
            ]
        )
        return self

    def react(self, graph: AdHocDigraph, delta: TopologyDelta) -> RecodeResult:
        """Handle one applied event: recode, commit, record metrics."""
        kind = delta.kind
        strategy = self.strategy
        if kind == "join":
            result = strategy.on_join(graph, self.assignment, delta.node_id)
        elif kind == "leave":
            old_color = self.assignment.unassign(delta.node_id)
            result = strategy.on_leave(graph, self.assignment, delta.node_id, old_color)
        elif kind == "move":
            result = strategy.on_move(graph, self.assignment, delta.node_id)
        elif kind in ("power_increase", "power_decrease"):
            result = strategy.on_power_change(
                graph,
                self.assignment,
                delta.node_id,
                increased=kind == "power_increase",
                old_conflict_neighbors=set(delta.old_conflicts),
            )
        else:  # pragma: no cover - apply_event only emits the kinds above
            raise ConfigurationError(f"unknown delta kind {kind!r}")
        for node, (_old, new) in result.changes.items():
            self.assignment.assign(node, new)
        self.metrics.record(result, self.assignment.max_color())
        if self.validate:
            assert_valid(graph, self.assignment)
        return result


class _TopologyOwner:
    """Shared plumbing of the single- and multi-lane facades: one graph,
    one connectivity policy, one event entry point."""

    def __init__(
        self,
        *,
        propagation: PropagationModel | None,
        enforce_connectivity: bool,
        dense_conflicts: bool | None,
    ) -> None:
        self.graph = AdHocDigraph(propagation, dense_conflicts=dense_conflicts)
        self.enforce_connectivity = enforce_connectivity

    def _advance_topology(self, event: Event) -> TopologyDelta:
        """Apply ``event`` to the shared graph and police connectivity."""
        delta = self.graph.apply_event(event)
        if delta.kind != "leave":
            self._check_connectivity(delta.node_id, delta.kind)
        return delta

    def node_ids(self) -> list[NodeId]:
        """Current node ids, ascending."""
        return self.graph.node_ids()

    def _check_connectivity(self, node_id: NodeId, action: str) -> None:
        if self.enforce_connectivity and len(self.graph) > 1:
            if not has_minimal_connectivity(self.graph, node_id):
                raise ConnectivityError(
                    f"{action} of node {node_id} violates Minimal Connectivity "
                    "(needs at least one in- and one out-neighbor)"
                )


class AdHocNetwork(_TopologyOwner):
    """A live power-controlled ad-hoc network under a recoding strategy.

    Parameters
    ----------
    strategy:
        The recoding strategy invoked after every topology change.
    propagation:
        Propagation model (default free space).
    validate:
        When True, assert CA1/CA2 validity after every event (slow;
        meant for tests).
    enforce_connectivity:
        When True, reject reconfigurations that violate the paper's
        Minimal Connectivity assumption.
    dense_conflicts:
        Forwarded to :class:`AdHocDigraph`: ``True`` forces the dense
        per-event conflict derivation, ``False`` the grid-accelerated
        incremental one, ``None`` consults ``REPRO_DENSE``.
    """

    def __init__(
        self,
        strategy: RecodingStrategy,
        *,
        propagation: PropagationModel | None = None,
        validate: bool = False,
        enforce_connectivity: bool = False,
        dense_conflicts: bool | None = None,
    ) -> None:
        super().__init__(
            propagation=propagation,
            enforce_connectivity=enforce_connectivity,
            dense_conflicts=dense_conflicts,
        )
        self.lane = StrategyLane(
            strategy, validate=validate, array_colors=self.graph.core in ("array", "sparse")
        )

    # ------------------------------------------------------------------
    # Lane delegation (the pre-split public attributes)
    # ------------------------------------------------------------------
    @property
    def strategy(self) -> RecodingStrategy:
        """The lane's recoding strategy."""
        return self.lane.strategy

    @property
    def assignment(self) -> CodeAssignment:
        """The lane's current code assignment."""
        return self.lane.assignment

    @assignment.setter
    def assignment(self, value: CodeAssignment) -> None:
        # Compaction workflows (gossip / Kempe) swap in a recolored
        # assignment wholesale; the lane adopts it.
        self.lane.assignment = value

    @property
    def metrics(self) -> MetricsCollector:
        """The lane's metrics collector."""
        return self.lane.metrics

    @property
    def validate(self) -> bool:
        """Whether every event is followed by a full CA1/CA2 check."""
        return self.lane.validate

    @validate.setter
    def validate(self, value: bool) -> None:
        self.lane.validate = value

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: Event) -> RecodeResult:
        """Apply one reconfiguration event and recode per the strategy."""
        delta = self._advance_topology(event)
        return self.lane.react(self.graph, delta)

    def join(self, cfg: NodeConfig) -> RecodeResult:
        """A new node connects (paper section 4.1)."""
        return self.apply(JoinEvent(cfg))

    def leave(self, node_id: NodeId) -> RecodeResult:
        """A node disconnects (paper section 4.3)."""
        return self.apply(LeaveEvent(node_id))

    def move(self, node_id: NodeId, x: float, y: float) -> RecodeResult:
        """A node relocates in one discrete step (paper section 4.4)."""
        return self.apply(MoveEvent(node_id, x, y))

    def set_range(self, node_id: NodeId, new_range: float) -> RecodeResult:
        """A node changes transmission power (paper sections 4.2 / 4.3).

        Equal-range "changes" are treated as decreases (no new
        constraints arise), i.e. no recoding.
        """
        return self.apply(PowerChangeEvent(node_id, new_range))

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def max_color(self) -> int:
        """Maximum code index currently assigned."""
        return self.lane.assignment.max_color()

    def is_valid(self) -> bool:
        """Whether the current assignment satisfies CA1 and CA2."""
        from repro.coloring.verify import is_valid

        return is_valid(self.graph, self.lane.assignment)


class MultiStrategyReplay(_TopologyOwner):
    """Replay one event stream against many strategies in a single pass.

    The paper's evaluation compares strategies on *identical* workloads.
    Rebuilding an :class:`AdHocNetwork` per strategy re-derives the same
    topology mutations and conflict deltas once per strategy; this class
    applies each event to one shared :class:`AdHocDigraph` exactly once
    and fans the resulting :class:`TopologyDelta` out to a
    :class:`StrategyLane` per strategy.  Because strategies only read
    the graph (the handler contract forbids topology mutation) and the
    graph memoizes derived conflict queries per topology version, every
    lane sees byte-identical inputs to an independent replay — pinned by
    ``tests/sim/test_replay.py``.

    Parameters
    ----------
    strategies:
        The per-lane strategy instances (one lane each, in order).
    propagation, validate, enforce_connectivity, dense_conflicts:
        As for :class:`AdHocNetwork`; ``validate`` applies to all lanes.
    """

    def __init__(
        self,
        strategies: Sequence[RecodingStrategy],
        *,
        propagation: PropagationModel | None = None,
        validate: bool = False,
        enforce_connectivity: bool = False,
        dense_conflicts: bool | None = None,
    ) -> None:
        if not strategies:
            raise ConfigurationError("MultiStrategyReplay needs at least one strategy")
        super().__init__(
            propagation=propagation,
            enforce_connectivity=enforce_connectivity,
            dense_conflicts=dense_conflicts,
        )
        array = self.graph.core in ("array", "sparse")
        self.lanes = [StrategyLane(s, validate=validate, array_colors=array) for s in strategies]

    def lane(self, name: str) -> StrategyLane:
        """The lane whose strategy is named ``name`` (first match)."""
        for lane in self.lanes:
            if lane.name == name:
                return lane
        known = ", ".join(lane.name for lane in self.lanes)
        raise ConfigurationError(f"no lane named {name!r}; lanes: {known}")

    def fork(self) -> "MultiStrategyReplay":
        """An independent replay continuing from the current state.

        The snapshot/warm-start primitive of paired delta sweeps: build
        the shared baseline network once, then fork it per sweep value
        and replay only that value's perturbation rounds.  The graph
        forks copy-on-write (:meth:`AdHocDigraph.fork` — the heavy
        adjacency/C2 state is shared until either side mutates) and
        every lane's assignment/metrics state is forked, so the
        continuation is byte-equivalent to replaying the whole trace
        cold — pinned by ``tests/sim/test_warmstart.py``.
        """
        clone = MultiStrategyReplay.__new__(MultiStrategyReplay)
        clone.graph = self.graph.fork()
        clone.enforce_connectivity = self.enforce_connectivity
        clone.lanes = [lane.fork() for lane in self.lanes]
        return clone

    @property
    def version(self) -> int:
        """The underlying graph's topology version (delta anchor)."""
        return self.graph.version

    def delta_snapshot(self, base_version: int) -> dict:
        """Serialize only what changed since graph ``base_version``.

        The O(changes) counterpart of :meth:`snapshot`: the graph
        contributes a :meth:`~repro.topology.digraph.AdHocDigraph.delta_snapshot`
        while lane state (assignments, metrics counters) serializes in
        full — it is O(N) per lane, noise next to the O(N²)/O(N+E)
        conflict state the graph delta avoids.  :meth:`apply_delta` on
        a replay forked at ``base_version`` reproduces this replay's
        state byte-identically; chained deltas compose.
        """
        return {
            "schema": 1,
            "kind": "replay-delta",
            "graph": self.graph.delta_snapshot(base_version),
            "enforce_connectivity": self.enforce_connectivity,
            "lanes": [lane.state_dict() for lane in self.lanes],
        }

    def apply_delta(self, delta: dict) -> None:
        """Replay a :meth:`delta_snapshot` onto this replay instance.

        The graph must sit at the delta's base version (enforced by
        :meth:`AdHocDigraph.apply_delta`, which names both versions on
        mismatch); lane state is replaced wholesale, with the strategy
        name check of :meth:`StrategyLane.load_state` guarding lineup
        drift.
        """
        if delta.get("kind") != "replay-delta":
            raise ConfigurationError("apply_delta() expects a delta_snapshot() dict")
        if delta.get("schema") != 1:
            raise ConfigurationError(
                f"unsupported replay delta schema {delta.get('schema')!r}"
            )
        if len(delta["lanes"]) != len(self.lanes):
            raise ConfigurationError(
                f"replay delta carries {len(delta['lanes'])} lanes, "
                f"this replay has {len(self.lanes)}"
            )
        self.graph.apply_delta(delta["graph"])
        self.enforce_connectivity = bool(delta["enforce_connectivity"])
        for lane, state in zip(self.lanes, delta["lanes"]):
            lane.load_state(state)

    def snapshot(self) -> dict:
        """Serialize the whole replay state to a JSON-able dict.

        A serializable checkpoint: the graph's
        :meth:`~repro.topology.digraph.AdHocDigraph.snapshot` plus every
        lane's :meth:`~StrategyLane.state_dict`.  :meth:`restore` at any
        point of an event chain — mid-sweep, between perturbation
        rounds — continues byte-identically to the live instance
        (pinned by ``tests/sim/test_timeline.py``), so checkpoints can
        outlive the process that took them.  Snapshots are
        core-independent: the digraph records topology state, not the
        conflict core that produced it, and lane assignments serialize
        as sorted ``(node, color)`` pairs whichever container holds
        them, so a checkpoint written under the dict core restores
        under the array core byte-identically (and vice versa) —
        pinned by ``tests/sim/test_array_replay.py``.
        """
        return {
            "schema": 1,
            "graph": self.graph.snapshot(),
            "enforce_connectivity": self.enforce_connectivity,
            "lanes": [lane.state_dict() for lane in self.lanes],
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict,
        *,
        propagation: PropagationModel | None = None,
        validate: bool = False,
    ) -> "MultiStrategyReplay":
        """Rebuild a replay from a :meth:`snapshot` dict.

        Strategy objects are reconstructed by name (strategies carry no
        inter-event state); the graph restore enforces the snapshot's
        propagation contract, so a checkpoint taken under a non-default
        model cannot be silently resumed under free space.
        """
        from repro.strategies import make_strategy

        if snapshot.get("schema") != 1:
            raise ConfigurationError(
                f"unsupported replay snapshot schema {snapshot.get('schema')!r}"
            )
        clone = cls.__new__(cls)
        clone.graph = AdHocDigraph.restore(snapshot["graph"], propagation=propagation)
        clone.enforce_connectivity = bool(snapshot["enforce_connectivity"])
        array = clone.graph.core in ("array", "sparse")
        clone.lanes = [
            StrategyLane(
                make_strategy(state["strategy"]), validate=validate, array_colors=array
            ).load_state(state)
            for state in snapshot["lanes"]
        ]
        return clone

    def apply(self, event: Event) -> list[RecodeResult]:
        """Apply one event: mutate topology once, react in every lane."""
        delta = self._advance_topology(event)
        graph = self.graph
        return [lane.react(graph, delta) for lane in self.lanes]

    def run(self, events: Iterable[Event]) -> "MultiStrategyReplay":
        """Apply ``events`` in order; returns self for chaining."""
        for event in events:
            self.apply(event)
        return self

    def apply_round(self, events: Iterable[Event]) -> list[list[RecodeResult]]:
        """Apply one churn round with batched topology commit.

        **Round-commit semantics**: the whole round's topology mutations
        land first via :meth:`AdHocDigraph.apply_round` (one batched
        pass under the sparse core, sequential otherwise), then every
        per-event :class:`TopologyDelta` fans out to the lanes in event
        order — so lane reactions observe the *post-round* graph rather
        than each intermediate state.  Under the sparse core this is
        what makes sustained-churn replay scale: a receiver row touched
        by ``k`` events in the round reconciles once, not ``k`` times.
        All-join rounds go further and stream through
        :meth:`AdHocDigraph.bulk_join` — flash-crowd admission (e.g. a
        whole 10⁵-node population as one round) costs one grid-bucketed
        candidate sweep instead of one candidate query per joiner,
        with per-event deltas and final state byte-identical to
        sequential joins, so lane reactions are unaffected.

        This is deliberately **not** byte-identical to :meth:`run` on
        traces where strategies read the graph between events of the
        same round (recode choices may differ while both stay valid);
        registered scenario sweeps therefore keep the sequential path.
        Connectivity policing likewise moves to the round boundary: each
        delta's node is checked against the post-round graph (leaves,
        and nodes that left later in the same round, are skipped).

        Returns the per-event lists of lane results, in event order.
        """
        deltas = self.graph.apply_round(events)
        graph = self.graph
        if self.enforce_connectivity:
            for delta in deltas:
                if delta.kind != "leave" and delta.node_id in graph:
                    self._check_connectivity(delta.node_id, delta.kind)
        results: list[list[RecodeResult]] = []
        ephemeral: set[NodeId] = set()
        for delta in deltas:
            if delta.kind != "leave" and delta.node_id not in graph:
                # The node joined/moved and then left within this round:
                # reacting against the post-round graph would query a
                # departed node, so the lanes never see it (nor its
                # matching leave below — it was never assigned a code).
                ephemeral.add(delta.node_id)
                results.append([])
                continue
            if delta.kind == "leave" and delta.node_id in ephemeral:
                ephemeral.discard(delta.node_id)
                results.append([])
                continue
            results.append([lane.react(graph, delta) for lane in self.lanes])
        return results

    def run_rounds(self, rounds: Iterable[Iterable[Event]]) -> "MultiStrategyReplay":
        """Apply round-structured events via :meth:`apply_round`."""
        for round_events in rounds:
            self.apply_round(round_events)
        return self
