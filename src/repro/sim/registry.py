"""Scenario registry: look up declarative scenario specs by name.

The registry is a plain name -> :class:`~repro.sim.scenarios.ScenarioSpec`
mapping.  Built-in scenarios register themselves when
:mod:`repro.sim.scenarios` is imported; the lookup helpers trigger that
import lazily so ``get_scenario("dense-urban")`` always works without
callers having to know where the catalog lives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sim.scenarios import ScenarioSpec

__all__ = ["available_scenarios", "get_scenario", "register_scenario"]

_REGISTRY: dict[str, "ScenarioSpec"] = {}


def _ensure_builtins() -> None:
    """Import the built-in catalog so it registers itself (idempotent)."""
    import repro.sim.scenarios  # noqa: F401  (import side effect: registration)


def register_scenario(spec: "ScenarioSpec") -> "ScenarioSpec":
    """Add ``spec`` to the registry; duplicate names raise.

    Returns the spec so catalog modules can register at definition site.
    """
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> "ScenarioSpec":
    """The registered spec for ``name``; unknown names list the catalog."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigurationError(f"unknown scenario {name!r}; registered: {known}") from None


def available_scenarios() -> list[str]:
    """Names of all registered scenarios, ascending."""
    _ensure_builtins()
    return sorted(_REGISTRY)
