"""Run fan-out utilities.

Experiments average each data point over many independent runs (the
paper uses 100).  ``parallel_map`` optionally spreads runs across
processes; because every run's randomness derives from its own
``SeedSequence`` child, results are identical for any process count.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["chunk_evenly", "parallel_map", "resolve_runs"]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    processes: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across processes.

    ``processes in (None, 0, 1)`` runs serially.  For multi-process use,
    ``fn`` and the items must be picklable (the experiment runners use
    module-level functions and plain tuples).
    """
    items = list(items)
    if not processes or processes <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(fn, items))


def resolve_runs(runs: int | None, default: int, env_value: str | None) -> int:
    """Resolve a run count from explicit argument, env override, default.

    Priority: explicit ``runs`` > ``env_value`` (e.g. ``REPRO_RUNS``) >
    ``default``.  A bad explicit argument is caller error
    (``ValueError``); *any* bad env-sourced value — non-integer or
    < 1 alike — is environment misconfiguration and raises
    :class:`ConfigurationError`.
    """
    if runs is not None:
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        return runs
    if env_value:
        try:
            parsed = int(env_value)
        except ValueError:
            raise ConfigurationError(
                f"run-count env override must be an integer, got {env_value!r} "
                "(set e.g. REPRO_RUNS=10)"
            ) from None
        if parsed < 1:
            raise ConfigurationError(
                f"run-count env override must be >= 1, got {parsed} "
                "(set e.g. REPRO_RUNS=10)"
            )
        return parsed
    return default


def chunk_evenly(items: Sequence[T], chunks: int) -> list[list[T]]:
    """Split ``items`` into ``chunks`` contiguous near-equal pieces."""
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    n = len(items)
    out: list[list[T]] = []
    base, extra = divmod(n, chunks)
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out
